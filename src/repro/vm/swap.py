"""Swap area and swap cache.

Process I/O (swap I/O) moves pages between DRAM and the ULL device's swap
area.  The :class:`SwapCache` tracks pages whose transfer into DRAM has
completed but which the owning process has not yet touched — the landing
zone for the paper's DMA prefetches; a fault on a swap-cached page is a
*minor* fault (metadata only), not a major one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.errors import SimulationError

SlotObserver = Callable[[int, int, int], None]
"""Callback ``(slot, pid, vpn)`` fired when a slot is allocated."""


class SwapArea:
    """Slot allocator for the device-side swap space.

    Observers registered via :meth:`on_allocate` / :meth:`on_free` see
    every slot transition; the tiering layer uses them to maintain the
    slot-to-tier routing map without the allocator knowing about tiers.
    """

    def __init__(self, num_slots: int) -> None:
        if num_slots <= 0:
            raise ValueError("swap area needs at least one slot")
        self.num_slots = num_slots
        self._next_fresh = 0
        self._recycled: list[int] = []
        self._used: dict[int, tuple[int, int]] = {}
        self._on_allocate: list[SlotObserver] = []
        self._on_free: list[Callable[[int], None]] = []

    @property
    def used_slots(self) -> int:
        """Slots currently holding a page."""
        return len(self._used)

    def on_allocate(self, observer: SlotObserver) -> None:
        """Register a callback fired after every slot allocation."""
        self._on_allocate.append(observer)

    def on_free(self, observer: Callable[[int], None]) -> None:
        """Register a callback fired after every slot release."""
        self._on_free.append(observer)

    def allocate(self, pid: int, vpn: int) -> int:
        """Reserve a slot for (pid, vpn)."""
        if self._recycled:
            slot = self._recycled.pop()
        elif self._next_fresh < self.num_slots:
            slot = self._next_fresh
            self._next_fresh += 1
        else:
            raise SimulationError("swap area exhausted; size the device to the footprint")
        self._used[slot] = (pid, vpn)
        for observer in self._on_allocate:
            observer(slot, pid, vpn)
        return slot

    def free(self, slot: int) -> None:
        """Release *slot*."""
        if slot not in self._used:
            raise SimulationError(f"freeing unallocated swap slot {slot}")
        del self._used[slot]
        self._recycled.append(slot)
        for observer in self._on_free:
            observer(slot)

    def owner_of(self, slot: int) -> Optional[tuple[int, int]]:
        """(pid, vpn) stored in *slot*, or ``None``."""
        return self._used.get(slot)


@dataclass
class SwapCache:
    """Pages brought into DRAM ahead of demand (prefetch landing zone).

    Keyed by (pid, vpn).  ``hits`` counts demand touches that found their
    page already swap-cached — each one is a major fault converted into a
    minor fault by the prefetcher.
    """

    _pages: set[tuple[int, int]] = field(default_factory=set)
    hits: int = 0
    inserts: int = 0
    evictions: int = 0

    def insert(self, pid: int, vpn: int) -> None:
        """Record that (pid, vpn) landed in DRAM without a demand touch."""
        self._pages.add((pid, vpn))
        self.inserts += 1

    def take(self, pid: int, vpn: int) -> bool:
        """Consume a swap-cache entry on demand touch; True if present."""
        if (pid, vpn) in self._pages:
            self._pages.discard((pid, vpn))
            self.hits += 1
            return True
        return False

    def drop(self, pid: int, vpn: int) -> None:
        """Remove an entry because its frame was evicted before use."""
        if (pid, vpn) in self._pages:
            self._pages.discard((pid, vpn))
            self.evictions += 1

    def contains(self, pid: int, vpn: int) -> bool:
        """True if (pid, vpn) is swap-cached."""
        return (pid, vpn) in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def accuracy(self) -> float:
        """Fraction of inserted pages that were demand-touched before
        eviction (prefetch accuracy); 0.0 before any insert."""
        return self.hits / self.inserts if self.inserts else 0.0

"""Virtual memory: addresses, 4-level page tables, frames, swap, replacement."""

from repro.vm.address import (
    PAGE_SHIFT,
    VA_BITS,
    VirtualAddress,
    page_number,
    page_offset,
    compose,
)
from repro.vm.page_table import PageTable, PageTableEntry, PageTableStats
from repro.vm.frames import FrameAllocator, FrameInfo
from repro.vm.swap import SwapArea, SwapCache
from repro.vm.replacement import (
    ClockPolicy,
    GlobalLRUPolicy,
    PriorityAwareLRUPolicy,
    ReplacementPolicy,
    ResidentPage,
)
from repro.vm.mm import FaultKind, MemoryManager, MMStruct, TouchResult
from repro.vm.vma import VMA, AddressSpace

__all__ = [
    "PAGE_SHIFT",
    "VA_BITS",
    "VirtualAddress",
    "page_number",
    "page_offset",
    "compose",
    "PageTable",
    "PageTableEntry",
    "PageTableStats",
    "FrameAllocator",
    "FrameInfo",
    "SwapArea",
    "SwapCache",
    "ReplacementPolicy",
    "GlobalLRUPolicy",
    "PriorityAwareLRUPolicy",
    "ClockPolicy",
    "ResidentPage",
    "FaultKind",
    "MemoryManager",
    "MMStruct",
    "TouchResult",
    "VMA",
    "AddressSpace",
]

"""Per-process memory descriptors and the global memory manager.

:class:`MMStruct` mirrors the kernel's ``mm_struct``: it owns the
process's page table and fault counters.  :class:`MemoryManager` owns the
shared frame pool, swap area, swap cache and replacement policy, and
implements the residency state machine every I/O policy builds on:

* touch of a resident page      -> plain access;
* touch of a swap-cached page   -> **minor fault** (map the frame, no I/O);
* touch of a swapped-out page   -> **major fault** (device I/O required).

The paper "concentrates solely on addressing major page faults due to
their more substantial impact on execution time"; minor faults still cost
handler time but never storage time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.common.errors import SimulationError
from repro.vm.frames import FrameAllocator
from repro.vm.page_table import PageTable, PageTableEntry
from repro.vm.replacement import ReplacementPolicy, ResidentPage
from repro.vm.swap import SwapArea, SwapCache


class FaultKind(enum.Enum):
    """Classification of one memory touch."""

    HIT = "hit"
    MINOR = "minor"
    MAJOR = "major"


@dataclass
class TouchResult:
    """Outcome of :meth:`MemoryManager.classify_touch`.

    ``pte`` is the resolved leaf entry (set for HIT/MINOR) so callers can
    update access/dirty bits without a second walk.
    """

    kind: FaultKind
    frame: Optional[int] = None
    pte: Optional[PageTableEntry] = None


@dataclass
class MMStruct:
    """Per-process memory descriptor."""

    pid: int
    page_table: PageTable = field(default_factory=PageTable)
    footprint_pages: int = 0
    major_faults: int = 0
    minor_faults: int = 0
    resident_pages: int = 0

    def pte_for(self, vpn: int) -> Optional[PageTableEntry]:
        """Leaf PTE for *vpn*, if mapped."""
        return self.page_table.lookup_vpn(vpn)


EvictCallback = Callable[[int, int, int], None]
"""Callback (pid, vpn, frame) fired when a page is evicted from DRAM."""


class MemoryManager:
    """The shared virtual-memory substrate of one simulated machine."""

    def __init__(
        self,
        frames: FrameAllocator,
        swap: SwapArea,
        replacement: ReplacementPolicy,
    ) -> None:
        self.frames = frames
        self.swap = swap
        self.swap_cache = SwapCache()
        self.replacement = replacement
        self.page_shift = frames.page_size.bit_length() - 1
        self._mms: dict[int, MMStruct] = {}
        self._evict_callbacks: list[EvictCallback] = []
        self.evictions = 0

    def vpn_of(self, vaddr: int) -> int:
        """Virtual page number of *vaddr* at this machine's page size.

        With the default 4 KiB pages this matches
        :func:`repro.vm.address.page_number`; with huge pages (e.g.
        2 MiB) the numbering is correspondingly coarser.
        """
        return vaddr >> self.page_shift

    # -- process setup ------------------------------------------------------

    def register_process(self, pid: int, vpns: Iterable[int]) -> MMStruct:
        """Create the MMStruct for *pid* and map its footprint to swap.

        Every page starts swapped out (cold start), matching the paper's
        setup where DRAM is sized below the combined footprints and pages
        stream in through faults.
        """
        if pid in self._mms:
            raise SimulationError(f"pid {pid} registered twice")
        mm = MMStruct(pid=pid)
        for vpn in vpns:
            pte = mm.page_table.ensure_vpn(vpn)
            pte.unmap(self.swap.allocate(pid, vpn))
            mm.footprint_pages += 1
        self._mms[pid] = mm
        return mm

    def mm_of(self, pid: int) -> MMStruct:
        """MMStruct of a registered process."""
        mm = self._mms.get(pid)
        if mm is None:
            raise SimulationError(f"pid {pid} not registered")
        return mm

    def on_evict(self, callback: EvictCallback) -> None:
        """Register a callback fired on every page eviction (TLB
        shootdown, cache invalidation live on the machine side)."""
        self._evict_callbacks.append(callback)

    # -- the residency state machine ----------------------------------------

    def classify_touch(self, pid: int, vpn: int) -> TouchResult:
        """Classify a demand touch of (pid, vpn) without side effects
        beyond LRU refresh and fault counters.

        A MINOR result has already consumed the swap-cache entry and
        mapped the page; a MAJOR result leaves the page absent — the I/O
        policy decides how to bring it in.
        """
        mm = self.mm_of(pid)
        pte = mm.pte_for(vpn)
        if pte is None:
            raise SimulationError(f"pid {pid} touched unmapped vpn {vpn:#x}")
        if pte.present:
            pte.accessed = True
            self.replacement.on_touch(ResidentPage(pid, vpn))
            self.frames.clear_prefetched(pte.frame)  # type: ignore[arg-type]
            return TouchResult(kind=FaultKind.HIT, frame=pte.frame, pte=pte)
        if self.swap_cache.take(pid, vpn):
            # Prefetched page: frame already holds the data; mapping it is
            # a metadata-only minor fault.
            if pte.frame is None:
                raise SimulationError("swap-cached page lost its frame")
            pte.map_frame(pte.frame)
            pte.accessed = True
            mm.minor_faults += 1
            self.frames.clear_prefetched(pte.frame)
            self.replacement.on_touch(ResidentPage(pid, vpn))
            return TouchResult(kind=FaultKind.MINOR, frame=pte.frame, pte=pte)
        mm.major_faults += 1
        return TouchResult(kind=FaultKind.MAJOR, frame=None)

    def is_resident_or_cached(self, pid: int, vpn: int) -> bool:
        """True if (pid, vpn) is in DRAM (mapped or swap-cached)."""
        pte = self.mm_of(pid).pte_for(vpn)
        if pte is None:
            return False
        return pte.present or self.swap_cache.contains(pid, vpn)

    def install_page(self, pid: int, vpn: int, *, prefetched: bool = False) -> int:
        """Bring (pid, vpn) into DRAM, evicting if the pool is full.

        For a demand swap-in the page is mapped (present bit set); for a
        prefetch it lands in the swap cache with its frame parked in the
        PTE, to be mapped by the minor fault on first touch.  Returns the
        frame used.
        """
        mm = self.mm_of(pid)
        pte = mm.pte_for(vpn)
        if pte is None:
            raise SimulationError(f"installing unmapped vpn {vpn:#x} for pid {pid}")
        if pte.present:
            raise SimulationError(f"page (pid={pid}, vpn={vpn:#x}) already resident")
        frame = self.frames.allocate(pid, vpn, prefetched=prefetched)
        while frame is None:
            self._evict_one()
            frame = self.frames.allocate(pid, vpn, prefetched=prefetched)
        if prefetched:
            pte.frame = frame  # parked; present stays clear until touch
            self.swap_cache.insert(pid, vpn)
        else:
            pte.map_frame(frame)
        mm.resident_pages += 1
        self.replacement.on_resident(ResidentPage(pid, vpn))
        return frame

    def evict_pages_of(self, pid: int, max_pages: int) -> int:
        """Evict up to *max_pages* of *pid*'s resident pages (LRU-first).

        Used by the self-sacrificing path when a low-priority process
        relinquishes resources.  Returns the number evicted.
        """
        evicted = 0
        for frame in list(self.frames.frames_of(pid)):
            if evicted >= max_pages:
                break
            info = self.frames.owner_of(frame)
            if info is None:
                continue
            self._evict_page(info.pid, info.vpn, frame)
            evicted += 1
        return evicted

    def resident_pages_of(self, pid: int) -> int:
        """Number of DRAM pages currently held by *pid*."""
        return len(self.frames.frames_of(pid))

    def release_process(self, pid: int) -> int:
        """Process exit: evict all of *pid*'s pages and free its swap
        slots.  Returns the number of swap slots released."""
        self.evict_pages_of(pid, self.frames.num_frames)
        mm = self.mm_of(pid)
        released = 0
        for vpn in mm.page_table.mapped_vpns():
            pte = mm.pte_for(vpn)
            if pte is not None and pte.swap_slot is not None:
                self.swap.free(pte.swap_slot)
                pte.swap_slot = None
                released += 1
        return released

    # -- internals -----------------------------------------------------------

    def _evict_one(self) -> None:
        victim = self.replacement.choose_victim()
        pte = self.mm_of(victim.pid).pte_for(victim.vpn)
        if pte is None or pte.frame is None:
            raise SimulationError(
                f"replacement chose non-resident victim (pid={victim.pid}, vpn={victim.vpn:#x})"
            )
        self._evict_page(victim.pid, victim.vpn, pte.frame)

    def _evict_page(self, pid: int, vpn: int, frame: int) -> None:
        mm = self.mm_of(pid)
        pte = mm.pte_for(vpn)
        if pte is None:
            raise SimulationError("evicting unmapped page")
        self.swap_cache.drop(pid, vpn)
        if pte.swap_slot is None:
            pte.swap_slot = self.swap.allocate(pid, vpn)
        pte.unmap(pte.swap_slot)
        self.frames.free(frame)
        mm.resident_pages -= 1
        self.replacement.on_evicted(ResidentPage(pid, vpn))
        self.evictions += 1
        for callback in self._evict_callbacks:
            callback(pid, vpn, frame)

"""x86-64 virtual address decomposition.

A 64-bit x86-64 Linux system with 4-level page tables uses 48 meaningful
bits: 9 index bits each for PGD, PUD, PMD and PT, plus a 12-bit page
offset.  The paper's virtual-address-based prefetcher (Figure 2) walks
exactly this layout, so the decomposition is exposed as a first-class
value type.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import AddressError

PAGE_SHIFT = 12
"""log2 of the 4 KiB base page size."""

INDEX_BITS = 9
"""Index bits per page-table level."""

LEVELS = 4
"""Page-table levels: PGD, PUD, PMD, PT."""

VA_BITS = PAGE_SHIFT + LEVELS * INDEX_BITS
"""Meaningful virtual address bits (48)."""

ENTRIES_PER_TABLE = 1 << INDEX_BITS
"""Entries per page-table level (512)."""

_INDEX_MASK = ENTRIES_PER_TABLE - 1
_OFFSET_MASK = (1 << PAGE_SHIFT) - 1
_VA_LIMIT = 1 << VA_BITS


def _check(addr: int) -> None:
    if not 0 <= addr < _VA_LIMIT:
        raise AddressError(f"virtual address {addr:#x} outside the {VA_BITS}-bit space")


def page_number(addr: int) -> int:
    """Virtual page number of *addr*."""
    _check(addr)
    return addr >> PAGE_SHIFT


def page_offset(addr: int) -> int:
    """Byte offset of *addr* within its page."""
    _check(addr)
    return addr & _OFFSET_MASK


def compose(vpn: int, offset: int = 0) -> int:
    """Build a virtual address from a page number and offset."""
    if not 0 <= offset < (1 << PAGE_SHIFT):
        raise AddressError(f"page offset {offset:#x} out of range")
    addr = (vpn << PAGE_SHIFT) | offset
    _check(addr)
    return addr


@dataclass(frozen=True)
class VirtualAddress:
    """A decomposed 48-bit virtual address.

    Provides the per-level indices the prefetcher uses when it emulates
    ``pgd_offset()`` / ``pud_offset()`` / ``pmd_offset()`` /
    ``pte_offset()`` traversal.
    """

    value: int

    def __post_init__(self) -> None:
        _check(self.value)

    @property
    def pgd_index(self) -> int:
        """Index into the Page Global Directory (bits 47:39)."""
        return (self.value >> (PAGE_SHIFT + 3 * INDEX_BITS)) & _INDEX_MASK

    @property
    def pud_index(self) -> int:
        """Index into the Page Upper Directory (bits 38:30)."""
        return (self.value >> (PAGE_SHIFT + 2 * INDEX_BITS)) & _INDEX_MASK

    @property
    def pmd_index(self) -> int:
        """Index into the Page Middle Directory (bits 29:21)."""
        return (self.value >> (PAGE_SHIFT + INDEX_BITS)) & _INDEX_MASK

    @property
    def pt_index(self) -> int:
        """Index into the Page Table (bits 20:12)."""
        return (self.value >> PAGE_SHIFT) & _INDEX_MASK

    @property
    def offset(self) -> int:
        """Byte offset within the page (bits 11:0)."""
        return self.value & _OFFSET_MASK

    @property
    def vpn(self) -> int:
        """Virtual page number."""
        return self.value >> PAGE_SHIFT

    def indices(self) -> tuple[int, int, int, int]:
        """(pgd, pud, pmd, pt) indices, outermost first."""
        return (self.pgd_index, self.pud_index, self.pmd_index, self.pt_index)

    @classmethod
    def from_indices(
        cls, pgd: int, pud: int, pmd: int, pt: int, offset: int = 0
    ) -> "VirtualAddress":
        """Compose an address from per-level indices."""
        for name, idx in (("pgd", pgd), ("pud", pud), ("pmd", pmd), ("pt", pt)):
            if not 0 <= idx < ENTRIES_PER_TABLE:
                raise AddressError(f"{name} index {idx} out of range [0, {ENTRIES_PER_TABLE})")
        vpn = ((pgd << (3 * INDEX_BITS)) | (pud << (2 * INDEX_BITS)) | (pmd << INDEX_BITS)) | pt
        return cls(compose(vpn, offset))

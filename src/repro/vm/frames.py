"""Physical frame allocation.

One global pool of DRAM frames is shared by every process in a batch —
the contention over this pool ("all processes share and contend the
memory resources", Section 2.2) is what drives the page-fault behaviour
the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import SimulationError


@dataclass
class FrameInfo:
    """Reverse mapping for one allocated frame: who maps it."""

    frame: int
    pid: int
    vpn: int
    prefetched: bool = False


class FrameAllocator:
    """Fixed pool of physical frames with reverse mappings.

    Frames are identified by small integers ``[0, num_frames)``; the
    physical byte address of a frame is ``frame * page_size`` (used to
    invalidate cache lines when a frame is repurposed).
    """

    def __init__(self, num_frames: int, page_size: int) -> None:
        if num_frames <= 0:
            raise ValueError("frame pool must have at least one frame")
        self.num_frames = num_frames
        self.page_size = page_size
        self._free: list[int] = list(range(num_frames - 1, -1, -1))
        self._info: dict[int, FrameInfo] = {}

    @property
    def free_frames(self) -> int:
        """Frames currently unallocated."""
        return len(self._free)

    @property
    def used_frames(self) -> int:
        """Frames currently allocated."""
        return self.num_frames - len(self._free)

    @property
    def full(self) -> bool:
        """True if an allocation would require an eviction first."""
        return not self._free

    def allocate(self, pid: int, vpn: int, *, prefetched: bool = False) -> Optional[int]:
        """Allocate a frame for (pid, vpn); ``None`` if the pool is full."""
        if not self._free:
            return None
        frame = self._free.pop()
        self._info[frame] = FrameInfo(frame=frame, pid=pid, vpn=vpn, prefetched=prefetched)
        return frame

    def free(self, frame: int) -> FrameInfo:
        """Release *frame* back to the pool; returns its old mapping."""
        info = self._info.pop(frame, None)
        if info is None:
            raise SimulationError(f"freeing unallocated frame {frame}")
        self._free.append(frame)
        return info

    def owner_of(self, frame: int) -> Optional[FrameInfo]:
        """Mapping info of *frame*, or ``None`` if free."""
        return self._info.get(frame)

    def frames_of(self, pid: int) -> list[int]:
        """All frames currently mapped by *pid*."""
        return [f for f, info in self._info.items() if info.pid == pid]

    def frame_base_address(self, frame: int) -> int:
        """Physical byte address of the first byte of *frame*."""
        if not 0 <= frame < self.num_frames:
            raise SimulationError(f"frame {frame} out of range")
        return frame * self.page_size

    def clear_prefetched(self, frame: int) -> None:
        """Mark a prefetched frame as demand-touched."""
        info = self._info.get(frame)
        if info is not None:
            info.prefetched = False

"""A 4-level x86-64-style page table.

The structure mirrors what the paper's virtual-address-based prefetcher
walks (Figure 2): PGD -> PUD -> PMD -> PT, 512 entries per level.  The
leaf :class:`PageTableEntry` carries the control bits the ITS design
relies on — ``present`` for residency, and the repurposed spare-bit
``inv`` used by the fault-aware pre-execute policy (Section 3.4.2:
"several spare bits in the control-bit area of each page table entry can
be repurposed for the INV bit").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.vm.address import ENTRIES_PER_TABLE, VirtualAddress


@dataclass
class PageTableEntry:
    """One leaf PTE.

    ``frame`` holds the physical frame number while ``present`` is set;
    ``swap_slot`` holds the swap-area slot while the page is swapped out.
    """

    present: bool = False
    frame: Optional[int] = None
    swap_slot: Optional[int] = None
    accessed: bool = False
    dirty: bool = False
    inv: bool = False

    def map_frame(self, frame: int) -> None:
        """Mark the page resident in *frame*."""
        self.present = True
        self.frame = frame

    def unmap(self, swap_slot: Optional[int]) -> None:
        """Mark the page swapped out to *swap_slot*."""
        self.present = False
        self.frame = None
        self.swap_slot = swap_slot


@dataclass
class PageTableStats:
    """Counters over page-table operations."""

    walks: int = 0
    populated_tables: int = 0


class _Table:
    """One directory level: a sparse array of 512 children."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: dict[int, object] = {}


class PageTable:
    """Sparse 4-level radix page table for one process.

    Directory levels are allocated lazily on first mapping, matching how
    a real kernel populates its page tables, so the prefetcher's
    traversal naturally skips unpopulated regions.
    """

    def __init__(self) -> None:
        self._pgd = _Table()
        self.stats = PageTableStats()

    # -- kernel-style traversal helpers -----------------------------------

    def pgd_offset(self, va: VirtualAddress) -> Optional[_Table]:
        """PUD table referenced by the PGD entry for *va*, if populated."""
        return self._pgd.entries.get(va.pgd_index)  # type: ignore[return-value]

    def pud_offset(self, pud: _Table, va: VirtualAddress) -> Optional[_Table]:
        """PMD table referenced by the PUD entry for *va*, if populated."""
        return pud.entries.get(va.pud_index)  # type: ignore[return-value]

    def pmd_offset(self, pmd: _Table, va: VirtualAddress) -> Optional[_Table]:
        """Page table referenced by the PMD entry for *va*, if populated."""
        return pmd.entries.get(va.pmd_index)  # type: ignore[return-value]

    def pte_offset(self, pt: _Table, va: VirtualAddress) -> Optional[PageTableEntry]:
        """Leaf PTE for *va* within page table *pt*, if populated."""
        return pt.entries.get(va.pt_index)  # type: ignore[return-value]

    # -- public API ---------------------------------------------------------

    def walk(self, vaddr: int) -> Optional[PageTableEntry]:
        """Full 4-level walk; ``None`` if any level is unpopulated."""
        self.stats.walks += 1
        va = VirtualAddress(vaddr)
        pud = self.pgd_offset(va)
        if pud is None:
            return None
        pmd = self.pud_offset(pud, va)
        if pmd is None:
            return None
        pt = self.pmd_offset(pmd, va)
        if pt is None:
            return None
        return self.pte_offset(pt, va)

    def lookup_vpn(self, vpn: int) -> Optional[PageTableEntry]:
        """Walk by virtual page number instead of byte address."""
        return self.walk(vpn << 12)

    def ensure_pte(self, vaddr: int) -> PageTableEntry:
        """Walk, populating intermediate levels and the leaf as needed."""
        va = VirtualAddress(vaddr)
        pud = self._pgd.entries.get(va.pgd_index)
        if pud is None:
            pud = _Table()
            self._pgd.entries[va.pgd_index] = pud
            self.stats.populated_tables += 1
        pmd = pud.entries.get(va.pud_index)  # type: ignore[union-attr]
        if pmd is None:
            pmd = _Table()
            pud.entries[va.pud_index] = pmd  # type: ignore[union-attr]
            self.stats.populated_tables += 1
        pt = pmd.entries.get(va.pmd_index)  # type: ignore[union-attr]
        if pt is None:
            pt = _Table()
            pmd.entries[va.pmd_index] = pt  # type: ignore[union-attr]
            self.stats.populated_tables += 1
        pte = pt.entries.get(va.pt_index)  # type: ignore[union-attr]
        if pte is None:
            pte = PageTableEntry()
            pt.entries[va.pt_index] = pte  # type: ignore[union-attr]
        return pte  # type: ignore[return-value]

    def ensure_vpn(self, vpn: int) -> PageTableEntry:
        """:meth:`ensure_pte` keyed by virtual page number."""
        return self.ensure_pte(vpn << 12)

    def iter_ptes_from(
        self, vaddr: int, *, inclusive: bool = False
    ) -> Iterator[tuple[int, PageTableEntry]]:
        """Yield ``(vpn, pte)`` in ascending VA order, starting after *vaddr*.

        With ``inclusive=True`` the walk starts *at* the page holding
        *vaddr* instead of the one after it.

        This is the prefetcher's traversal (Figure 2 steps 6-7): it scans
        the leaf page table that holds the victim address and, when the
        table is exhausted, "reverts to traversing the next PMD entry" —
        and likewise climbs through PUD and PGD levels.  Unpopulated
        subtrees are skipped wholesale, so the walk touches only mapped
        regions.
        """
        va = VirtualAddress(vaddr)
        start = (va.pgd_index, va.pud_index, va.pmd_index, va.pt_index)
        for pgd_i in sorted(k for k in self._pgd.entries if k >= start[0]):
            pud = self._pgd.entries[pgd_i]
            pud_floor = start[1] if pgd_i == start[0] else 0
            for pud_i in sorted(k for k in pud.entries if k >= pud_floor):  # type: ignore[union-attr]
                pmd = pud.entries[pud_i]  # type: ignore[union-attr]
                pmd_floor = start[2] if (pgd_i, pud_i) == start[:2] else 0
                for pmd_i in sorted(k for k in pmd.entries if k >= pmd_floor):  # type: ignore[union-attr]
                    pt = pmd.entries[pmd_i]  # type: ignore[union-attr]
                    first = start[3] if inclusive else start[3] + 1
                    pt_floor = first if (pgd_i, pud_i, pmd_i) == start[:3] else 0
                    for pt_i in sorted(k for k in pt.entries if k >= pt_floor):  # type: ignore[union-attr]
                        vpn = (
                            (pgd_i << 27) | (pud_i << 18) | (pmd_i << 9) | pt_i
                        )
                        yield vpn, pt.entries[pt_i]  # type: ignore[union-attr, misc]

    def mapped_vpns(self) -> list[int]:
        """All VPNs with a leaf PTE, ascending."""
        return [vpn for vpn, __ in self.iter_ptes_from(0, inclusive=True)]

    def resident_vpns(self) -> list[int]:
        """VPNs whose PTE has the present bit set, ascending."""
        return [vpn for vpn in self.mapped_vpns() if self._present(vpn)]

    def _present(self, vpn: int) -> bool:
        pte = self.lookup_vpn(vpn)
        return pte is not None and pte.present

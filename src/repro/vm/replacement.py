"""Page replacement policies over the global frame pool.

Three policies:

* :class:`GlobalLRUPolicy` — plain global LRU, what the baselines use.
* :class:`PriorityAwareLRUPolicy` — the eviction bias implied by the ITS
  self-sacrificing thread (Section 4.2.1: it "avoids pages belonging to
  low-priority processes to kick out high-priority process's pages"):
  victims are preferentially drawn from low-priority processes, falling
  back to global LRU when no low-priority page is resident.
* :class:`ClockPolicy` — second-chance CLOCK, the approximation real
  kernels use instead of true LRU (a reference bit per page, a sweeping
  hand).  Available for fidelity experiments; the paper's simulator is
  LRU-based, so the defaults stay LRU.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import SimulationError


@dataclass(frozen=True)
class ResidentPage:
    """Identity of one resident page for replacement bookkeeping."""

    pid: int
    vpn: int

    def __post_init__(self) -> None:
        # Replacement structures hash a page on every touch; the generated
        # frozen-dataclass hash recomputes hash((pid, vpn)) each time,
        # which is measurable on the per-access hot path.  Cache it once.
        object.__setattr__(self, "_hash", hash((self.pid, self.vpn)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]


class ReplacementPolicy(ABC):
    """Interface shared by all page replacement policies."""

    @abstractmethod
    def on_resident(self, page: ResidentPage) -> None:
        """A page became resident."""

    @abstractmethod
    def on_touch(self, page: ResidentPage) -> None:
        """A resident page was accessed."""

    @abstractmethod
    def on_evicted(self, page: ResidentPage) -> None:
        """A page was removed from DRAM."""

    @abstractmethod
    def choose_victim(self) -> ResidentPage:
        """Pick the next page to evict; raises if nothing is resident."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of tracked resident pages."""


class GlobalLRUPolicy(ReplacementPolicy):
    """Global least-recently-used across all processes."""

    def __init__(self) -> None:
        self._lru: OrderedDict[ResidentPage, None] = OrderedDict()

    def on_resident(self, page: ResidentPage) -> None:
        self._lru[page] = None
        self._lru.move_to_end(page)

    def on_touch(self, page: ResidentPage) -> None:
        if page in self._lru:
            self._lru.move_to_end(page)

    def on_evicted(self, page: ResidentPage) -> None:
        self._lru.pop(page, None)

    def choose_victim(self) -> ResidentPage:
        if not self._lru:
            raise SimulationError("no resident pages to evict")
        return next(iter(self._lru))

    def __len__(self) -> int:
        return len(self._lru)


class ClockPolicy(ReplacementPolicy):
    """Second-chance CLOCK.

    Pages sit on a circular list with a reference bit.  The hand sweeps:
    a referenced page gets its bit cleared and a second chance; the
    first unreferenced page becomes the victim.  O(1) amortised, like
    the kernel's page-frame reclaim approximation.
    """

    def __init__(self) -> None:
        self._ring: OrderedDict[ResidentPage, bool] = OrderedDict()
        self.hand_sweeps = 0

    def on_resident(self, page: ResidentPage) -> None:
        self._ring[page] = True  # inserted hot

    def on_touch(self, page: ResidentPage) -> None:
        if page in self._ring:
            self._ring[page] = True

    def on_evicted(self, page: ResidentPage) -> None:
        self._ring.pop(page, None)

    def choose_victim(self) -> ResidentPage:
        if not self._ring:
            raise SimulationError("no resident pages to evict")
        # Sweep from the oldest insertion point, giving second chances.
        while True:
            page, referenced = next(iter(self._ring.items()))
            if not referenced:
                return page
            # Clear the bit and rotate the page to the back.
            del self._ring[page]
            self._ring[page] = False
            self.hand_sweeps += 1

    def __len__(self) -> int:
        return len(self._ring)


class PriorityAwareLRUPolicy(ReplacementPolicy):
    """LRU that shields high-priority processes' pages.

    ``is_low_priority`` is consulted at eviction time (priorities are a
    scheduler property, not a page property): the LRU order is scanned
    for the least-recent page owned by a *low-priority* process; only if
    none exists does the policy fall back to the global LRU victim.

    ``scan_limit`` bounds the shielding scan so the policy stays
    light-weight (a real kernel cannot scan the whole LRU list either).
    """

    def __init__(
        self,
        is_low_priority: Callable[[int], bool],
        scan_limit: int = 64,
    ) -> None:
        if scan_limit <= 0:
            raise ValueError("scan limit must be positive")
        self._lru: OrderedDict[ResidentPage, None] = OrderedDict()
        self._is_low_priority = is_low_priority
        self._scan_limit = scan_limit
        self.shielded_evictions = 0
        self.fallback_evictions = 0

    def on_resident(self, page: ResidentPage) -> None:
        self._lru[page] = None
        self._lru.move_to_end(page)

    def on_touch(self, page: ResidentPage) -> None:
        if page in self._lru:
            self._lru.move_to_end(page)

    def on_evicted(self, page: ResidentPage) -> None:
        self._lru.pop(page, None)

    def choose_victim(self) -> ResidentPage:
        if not self._lru:
            raise SimulationError("no resident pages to evict")
        for scanned, page in enumerate(self._lru):
            if scanned >= self._scan_limit:
                break
            if self._is_low_priority(page.pid):
                self.shielded_evictions += 1
                return page
        self.fallback_evictions += 1
        return next(iter(self._lru))

    def __len__(self) -> int:
        return len(self._lru)

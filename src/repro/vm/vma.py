"""Virtual memory areas: a convenient way to declare address spaces.

Workloads register their mapped pages with the memory manager as VPN
sets; building those sets by hand is error-prone for custom scenarios.
A :class:`VMA` names one contiguous region ("heap", "graph edges",
"kv-cache") and an :class:`AddressSpace` collects non-overlapping VMAs
and produces the VPN set / the ``mapped_vpns`` for a
:class:`~repro.sim.simulator.WorkloadInstance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.common.errors import AddressError
from repro.vm.address import PAGE_SHIFT, VA_BITS

_PAGE = 1 << PAGE_SHIFT


@dataclass(frozen=True)
class VMA:
    """One named, contiguous, page-aligned virtual memory area."""

    name: str
    start_va: int
    pages: int

    def __post_init__(self) -> None:
        if self.pages <= 0:
            raise AddressError(f"VMA {self.name!r} needs at least one page")
        if self.start_va % _PAGE != 0:
            raise AddressError(f"VMA {self.name!r} start {self.start_va:#x} not page-aligned")
        if self.end_va > (1 << VA_BITS):
            raise AddressError(f"VMA {self.name!r} exceeds the 48-bit address space")

    @property
    def end_va(self) -> int:
        """One past the last byte of the area."""
        return self.start_va + self.pages * _PAGE

    @property
    def first_vpn(self) -> int:
        """VPN of the first page."""
        return self.start_va >> PAGE_SHIFT

    def vpns(self) -> range:
        """All VPNs of the area."""
        return range(self.first_vpn, self.first_vpn + self.pages)

    def contains(self, vaddr: int) -> bool:
        """True if *vaddr* falls inside the area."""
        return self.start_va <= vaddr < self.end_va

    def address_of_page(self, index: int) -> int:
        """Virtual address of the *index*-th page of the area."""
        if not 0 <= index < self.pages:
            raise AddressError(f"page index {index} outside VMA {self.name!r}")
        return self.start_va + index * _PAGE

    def overlaps(self, other: "VMA") -> bool:
        """True if the two areas share any page."""
        return self.start_va < other.end_va and other.start_va < self.end_va


class AddressSpace:
    """A set of non-overlapping VMAs forming one process's mapping."""

    def __init__(self) -> None:
        self._vmas: list[VMA] = []

    def add(self, name: str, start_va: int, pages: int) -> VMA:
        """Create and register a VMA; rejects overlaps."""
        vma = VMA(name=name, start_va=start_va, pages=pages)
        for existing in self._vmas:
            if vma.overlaps(existing):
                raise AddressError(
                    f"VMA {name!r} overlaps {existing.name!r} "
                    f"([{existing.start_va:#x}, {existing.end_va:#x}))"
                )
        self._vmas.append(vma)
        return vma

    def add_after(self, name: str, pages: int, *, gap_pages: int = 0) -> VMA:
        """Append a VMA right after the highest existing one."""
        if not self._vmas:
            return self.add(name, _PAGE, pages)  # skip the null page
        top = max(v.end_va for v in self._vmas)
        return self.add(name, top + gap_pages * _PAGE, pages)

    def __iter__(self) -> Iterator[VMA]:
        return iter(self._vmas)

    def __len__(self) -> int:
        return len(self._vmas)

    def find(self, name: str) -> Optional[VMA]:
        """VMA by name, or ``None``."""
        for vma in self._vmas:
            if vma.name == name:
                return vma
        return None

    def vma_of(self, vaddr: int) -> Optional[VMA]:
        """The VMA holding *vaddr*, or ``None`` (a 'segfault')."""
        for vma in self._vmas:
            if vma.contains(vaddr):
                return vma
        return None

    def total_pages(self) -> int:
        """Pages across all areas."""
        return sum(v.pages for v in self._vmas)

    def mapped_vpns(self) -> frozenset[int]:
        """The VPN set for ``WorkloadInstance.mapped_vpns``."""
        return frozenset(vpn for vma in self._vmas for vpn in vma.vpns())

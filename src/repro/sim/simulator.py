"""The multi-programmed, trace-driven simulation loop.

One CPU executes the admitted processes under SCHED_RR; the installed
:class:`~repro.baselines.base.IOPolicy` decides what happens at every
major page fault.  Device-side progress (demand swap-ins, prefetches,
asynchronous completions) fires from the event queue as the clock
advances, so CPU and DMA overlap exactly as the paper's design intends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.cpu.core import StepOutcome
from repro.kernel.process import Process
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.smp import SMPScheduler
from repro.serving.admission import AdmissionView, Decision, build_admission
from repro.serving.request import (
    OUTCOME_ADMITTED,
    OUTCOME_COMPLETED,
    OUTCOME_DROPPED,
    Request,
    ServingSummary,
)
from repro.sim.machine import Machine, SMPMachine
from repro.sim.metrics import MetricsCollector, ProcessRecord, SimulationResult
from repro.storage.dma import DMARequest
from repro.trace.record import footprint_vpns
from repro.cpu.isa import Instruction

if TYPE_CHECKING:
    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class WorkloadInstance:
    """One process to admit: a named trace with a priority.

    ``mapped_vpns`` optionally declares the process's full mapped
    address space; when omitted it defaults to the pages the trace
    touches.  Mapping more than is touched is how graph workloads expose
    a real prefetch-accuracy problem (candidates may never be used).
    """

    name: str
    trace: list[Instruction]
    priority: int
    data_intensive: bool = False
    mapped_vpns: Optional[frozenset[int]] = None


def _rescale_vpns(vpns_4k: frozenset[int], page_size: int) -> set[int]:
    """Convert 4 KiB-based VPNs (the declaration convention used by the
    workload catalogue) to the machine's page granularity."""
    shift = page_size.bit_length() - 1
    delta = shift - 12
    if delta == 0:
        return set(vpns_4k)
    if delta > 0:  # huge pages: many 4K pages per machine page
        return {v >> delta for v in vpns_4k}
    # sub-4K pages: each 4K page spans several machine pages
    per_page = 1 << (-delta)
    return {
        (v << (-delta)) + i for v in vpns_4k for i in range(per_page)
    }


class Simulation:
    """A single run: one machine, one process batch, one I/O policy."""

    MAX_STEPS = 200_000_000
    """Hard safety bound on loop iterations (a run that needs more than
    this has diverged)."""

    def __init__(
        self,
        config: MachineConfig,
        workloads: Sequence[WorkloadInstance],
        policy,
        *,
        batch_name: str = "custom",
        event_log=None,
        telemetry: Optional["Telemetry"] = None,
        progress=None,
        progress_interval: int = 50_000,
        requests: Optional[Sequence[Request]] = None,
    ) -> None:
        if not workloads:
            raise SimulationError("a simulation needs at least one workload")
        if requests is not None and len(requests) != len(workloads):
            raise SimulationError(
                "open-loop runs need exactly one request per workload"
            )
        if progress_interval <= 0:
            raise SimulationError("progress interval must be positive")
        self.config = config
        self.policy = policy
        self.batch_name = batch_name
        self.telemetry = telemetry
        if telemetry is not None and event_log is None:
            # The telemetry handle owns the event log (adapter path); a
            # directly attached log still wins for backward compatibility.
            event_log = telemetry.event_log
        self.event_log = event_log
        self.progress = progress
        self.progress_interval = progress_interval

        self.processes: list[Process] = [
            Process(
                pid=index,
                name=w.name,
                priority=w.priority,
                trace=w.trace,
                data_intensive=w.data_intensive,
            )
            for index, w in enumerate(workloads)
        ]
        replacement = policy.create_replacement(self.processes)
        self._smp = config.cores.count > 1
        machine_cls = SMPMachine if self._smp else Machine
        self.machine = machine_cls(
            config,
            replacement,
            with_preexec_cache=policy.uses_preexec_cache,
            telemetry=telemetry,
        )
        if telemetry is not None:
            telemetry.bind_clock(lambda: self.machine.now_ns)
            if self._smp:
                telemetry.bind_core(lambda: self.machine.active)
        # Ledger and causal graph are opt-in riders on the telemetry
        # handle; both stay None (and cost one comparison per site) on
        # ordinary runs.
        self._ledger = telemetry.ledger if telemetry is not None else None
        self._causal = telemetry.causal if telemetry is not None else None
        self._demoted_pending = 0
        page_size = config.memory.page_size
        for process, workload in zip(self.processes, workloads):
            vpns = set(footprint_vpns(process.trace, page_size))
            if workload.mapped_vpns is not None:
                declared = _rescale_vpns(workload.mapped_vpns, page_size)
                missing = vpns - declared
                if missing:
                    raise SimulationError(
                        f"workload {process.name!r} touches pages outside its "
                        f"declared mapping (e.g. vpn {min(missing):#x})"
                    )
                vpns = declared
            if not vpns:
                raise SimulationError(f"workload {process.name!r} touches no memory")
            self.machine.memory.register_process(process.pid, sorted(vpns))

        if self._smp:
            self.scheduler = SMPScheduler(
                config.scheduler,
                config.cores,
                lambda: self.machine.now_ns,
                telemetry=telemetry,
            )
        else:
            self.scheduler = RoundRobinScheduler(config.scheduler)

        # Open-loop serving mode: processes are *not* admitted at t=0;
        # each arrives through the event queue at its request's arrival
        # time and passes admission first (docs/SERVING.md).  Closed-loop
        # runs take the legacy everything-at-zero path, bit-identically.
        self._serving = requests is not None
        self._requests: list[Request] = list(requests) if requests else []
        self._arrivals_outstanding = 0
        self._admission = build_admission(config.serving) if self._serving else None
        if self._serving:
            for process, request in zip(self.processes, self._requests):
                if request.rid != process.pid:
                    raise SimulationError(
                        f"request {request.rid} paired with pid {process.pid}"
                    )
                self._arrivals_outstanding += 1
                self.machine.events.schedule_at(
                    request.arrival_ns, "arrival", self._on_arrival,
                    payload=process.pid,
                )
        else:
            for process in self.processes:
                self.scheduler.add(process)

        self.metrics = MetricsCollector()
        self._last_pid: Optional[int] = None
        self._prefetch_inflight: set[tuple[int, int]] = set()
        policy.attach(self)

    # -- driving the run ----------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute until every process finishes; returns the result.

        If a ``progress`` callback was supplied, it fires every
        ``progress_interval`` loop steps with
        ``(now_ns, instructions_committed, processes_finished)`` — useful
        feedback on paper-scale runs.
        """
        if self._smp:
            return self._run_smp()
        steps = 0
        while self.scheduler.has_work() or self._arrivals_outstanding > 0:
            steps += 1
            if steps > self.MAX_STEPS:
                raise SimulationError("simulation exceeded MAX_STEPS; diverged?")
            if self.progress is not None and steps % self.progress_interval == 0:
                finished = sum(1 for p in self.processes if p.finished)
                self.progress(
                    self.machine.now_ns,
                    self.machine.total_instructions_committed(),
                    finished,
                )
            if self.scheduler.current is None:
                if not self._dispatch_or_idle():
                    continue
            self._step_current()
        return self._build_result()

    def _run_smp(self) -> SimulationResult:
        """The SMP driving loop: interleave cores lowest-clock first.

        Each core runs its own clock, advanced only while the core is
        active.  One iteration: (a) if no core has runnable work, fire
        the earliest pending event batch without moving any clock;
        (b) let idle cores steal from loaded ones; (c) activate the
        runnable core with the smallest clock (ties to the lowest id),
        pay any pending TLB-shootdown IPIs, clamp its clock to the
        dispatchee's ready time, and run one single-core step on it
        unchanged.  Lowest-clock-first selection bounds cross-core
        causality skew to one execution step (docs/SMP.md).
        """
        machine = self.machine
        scheduler = self.scheduler
        cores = machine.cores
        indices = range(len(cores))
        migration_ns = self.config.cores.migration_cost_ns
        steps = 0
        while scheduler.has_work() or self._arrivals_outstanding > 0:
            steps += 1
            if steps > self.MAX_STEPS:
                raise SimulationError("simulation exceeded MAX_STEPS; diverged?")
            if self.progress is not None and steps % self.progress_interval == 0:
                finished = sum(1 for p in self.processes if p.finished)
                self.progress(
                    max(core.now_ns for core in cores),
                    machine.total_instructions_committed(),
                    finished,
                )

            runnable = [i for i in indices if scheduler.core_runnable(i)]
            if not runnable:
                # Everything is blocked on I/O: deliver the earliest
                # completions; they unblock onto their owning cores.
                machine.fire_next_event()
                continue

            for thief in indices:
                if scheduler.core_runnable(thief):
                    continue
                stolen = scheduler.try_steal(thief)
                if stolen is None:
                    continue
                machine.activate(thief)
                scheduler.active = thief
                machine.advance_idle_to(stolen.ready_since_ns)
                machine.charge_steal(migration_ns)
                scheduler.steal_stats.migration_ns += migration_ns
                stolen.ready_since_ns = machine.now_ns
                runnable.append(thief)
                self.log_event("steal", stolen.pid)

            index = min(runnable, key=lambda i: (cores[i].now_ns, i))
            machine.activate(index)
            scheduler.active = index
            machine.drain_pending_shootdowns()
            self._last_pid = cores[index].last_pid
            if scheduler.current is None:
                head = scheduler.peek_next()
                if head is not None:
                    # The core idled until the event that readied the
                    # process it is about to run.
                    machine.advance_idle_to(head.ready_since_ns)
                if not self._dispatch_or_idle():
                    cores[index].last_pid = self._last_pid
                    continue
            self._step_current()
            cores[index].last_pid = self._last_pid

        machine.finalize()
        self.metrics.add_async_idle(sum(core.idle_ns for core in cores))
        return self._build_result()

    def _dispatch_or_idle(self) -> bool:
        """Bring a process onto the CPU; returns True if one is running."""
        process = self.scheduler.dispatch()
        if process is None:
            self._idle_until_next_event()
            return False
        if self._last_pid is not None and self._last_pid != process.pid:
            switch_start = self.machine.now_ns
            cost = self.machine.context_switch.perform(self._last_pid)
            self.machine.advance_ctx(cost)
            self.metrics.add_ctx_overhead(cost)
            self.charge_time(process.pid, "ctx_switch", cost)
            process.stats.context_switches += 1
            self.log_event("ctx_switch", process.pid)
            if self.telemetry is not None:
                self.telemetry.record_span(
                    "sched.ctx_switch", switch_start, switch_start + cost,
                    track="cpu", pid=process.pid,
                )
        self._last_pid = process.pid
        if self._serving:
            request = self._requests[process.pid]
            if request.start_ns is None:
                request.start_ns = self.machine.now_ns
        self.log_event("dispatch", process.pid)
        if self._causal is not None:
            unblock_id = self._causal.take_unblock(process.pid)
            if unblock_id is not None:
                self._causal.add(
                    "resume", self.machine.now_ns,
                    pid=process.pid, parent=unblock_id,
                )
        return True

    def _idle_until_next_event(self) -> None:
        next_time = self.machine.events.peek_time()
        if next_time is None:
            raise SimulationError(
                "no runnable process and no pending I/O: the machine is deadlocked"
            )
        gap = max(0, next_time - self.machine.now_ns)
        idle_start = self.machine.now_ns
        if self._ledger is not None and gap > 0:
            # Refine the idle reason while it is still observable: DMA
            # in flight means the core sleeps on storage; a pending
            # demoted fault means it waits out a demoted tail; anything
            # else is plain idle.
            if self.machine.dma.inflight > 0:
                category = "dma_wait"
            elif self._demoted_pending > 0:
                category = "demoted_wait"
            else:
                category = "idle"
            self._ledger.charge(self._core_index(), None, category, gap)
        self.machine.advance_to(max(next_time, self.machine.now_ns))
        self.metrics.add_async_idle(gap)
        if self.telemetry is not None and gap > 0:
            self.telemetry.record_span(
                "cpu.idle", idle_start, idle_start + gap, track="cpu"
            )
            self.telemetry.histogram("cpu.idle_gap_ns").observe(gap)

    def _step_current(self) -> None:
        process = self.scheduler.current
        if process is None:  # the fault handler may have blocked it
            return
        instr = process.current_instruction
        result = self.machine.cpu.execute(process.pid, instr)

        if result.outcome is StepOutcome.MAJOR_FAULT:
            process.stats.major_faults += 1
            self.log_event("major_fault", process.pid, result.fault_vpn)
            self.policy.on_major_fault(self, process, result.fault_vpn)
            if self.scheduler.current is process and process.slice_remaining_ns <= 0:
                self.scheduler.preempt_current()
            return

        self.consume_time(process, result.time_ns)
        if result.stall_ns:
            process.stats.memory_stall_ns += result.stall_ns
            self.metrics.add_memory_stall(result.stall_ns)
        if result.minor_fault:
            process.stats.minor_faults += 1
            self.metrics.add_handler_overhead(self.config.fault_handler_ns)
            self.log_event("minor_fault", process.pid)
        self.policy.on_instruction_complete(self, process, instr, result)
        process.advance()

        if process.finished:
            self.scheduler.finish_current(self.machine.now_ns)
            self._release_process_memory(process.pid)
            self.log_event("finish", process.pid)
            if self._serving:
                self._finish_request(process.pid)
        elif process.slice_remaining_ns <= 0:
            self.scheduler.preempt_current()
        elif self.scheduler.resume_preempts_current():
            # A sacrificed process's I/O completed and it outranks the
            # running process: RT semantics let it take the CPU back.
            displaced = self.scheduler.preempt_for_resume()
            switch_start = self.machine.now_ns
            cost = self.machine.context_switch.perform(displaced.pid)
            self.machine.advance_ctx(cost)
            self.metrics.add_ctx_overhead(cost)
            resumed = self.scheduler.current
            self.charge_time(
                resumed.pid if resumed is not None else None,
                "ctx_switch", cost,
            )
            if resumed is not None:
                resumed.stats.context_switches += 1
                self._last_pid = resumed.pid
                if self._causal is not None:
                    unblock_id = self._causal.take_unblock(resumed.pid)
                    if unblock_id is not None:
                        self._causal.add(
                            "resume", self.machine.now_ns,
                            pid=resumed.pid, parent=unblock_id,
                        )
            if self.telemetry is not None:
                self.telemetry.record_span(
                    "sched.ctx_switch", switch_start, switch_start + cost,
                    track="cpu",
                    pid=resumed.pid if resumed is not None else None,
                )

    # -- open-loop serving ---------------------------------------------------

    def _serving_load(self) -> int:
        """Admitted-but-unfinished requests (the admission queue depth)."""
        return sum(1 for r in self._requests if r.outcome == OUTCOME_ADMITTED)

    def _on_arrival(self, event) -> None:
        """An arrival (or deferred re-arrival) event: run admission.

        The event time, not the possibly-ahead machine clock, is the
        arrival stamp: the request became ready at its scheduled instant
        even if the CPU only notices while committing an instruction.
        """
        pid = event.payload
        request = self._requests[pid]
        process = self.processes[pid]
        now = event.time_ns
        first_attempt = request.deferrals == 0 and request.enqueue_ns is None
        if first_attempt:
            self.log_event("request_arrival", pid)
            if self.telemetry is not None:
                self.telemetry.counter("serving.arrivals").inc()

        assert self._admission is not None
        view = AdmissionView(now_ns=now, in_system=self._serving_load())
        decision = self._admission.decide(request, view)

        if decision is Decision.DEFER:
            request.deferrals += 1
            self.machine.events.schedule_at(
                now + self.config.serving.defer_ns, "arrival",
                self._on_arrival, payload=pid,
            )
            self.log_event("request_defer", pid)
            if self.telemetry is not None:
                self.telemetry.counter("serving.deferred").inc()
            return

        self._arrivals_outstanding -= 1
        if decision is Decision.DROP:
            request.outcome = OUTCOME_DROPPED
            self.log_event("request_drop", pid)
            if self.telemetry is not None:
                self.telemetry.counter("serving.dropped").inc()
            return

        if decision is Decision.DEMOTE:
            request.demoted = True
            process.priority = 0
            self.log_event("request_demote", pid)
            if self.telemetry is not None:
                self.telemetry.counter("serving.demoted").inc()

        request.outcome = OUTCOME_ADMITTED
        request.enqueue_ns = now
        self.scheduler.add(process)
        # The SMP scheduler stamps ready_since_ns with the admitting
        # core's clock; the request was ready at its arrival instant.
        process.ready_since_ns = now
        self.log_event("request_admit", pid)
        if self.telemetry is not None:
            self.telemetry.counter("serving.admitted").inc()
        if self._causal is not None:
            node = self._causal.add("request_arrival", now, pid=pid)
            self._causal.note_unblock(pid, node)

    def _finish_request(self, pid: int) -> None:
        """Stamp completion and publish the request's latency."""
        request = self._requests[pid]
        now = self.machine.now_ns
        request.finish_ns = now
        request.outcome = OUTCOME_COMPLETED
        self.log_event("request_done", pid)
        missed = now > request.deadline_ns
        if missed:
            self.log_event("deadline_miss", pid)
        if self.telemetry is not None:
            self.telemetry.counter("serving.completed").inc()
            latency = request.latency_ns
            assert latency is not None
            self.telemetry.histogram("serving.latency_ns").observe(latency)
            if missed:
                self.telemetry.counter("serving.deadline_miss").inc()
            self.telemetry.record_span(
                "serving.request", request.arrival_ns, now,
                track="serving", pid=pid,
            )

    def _build_serving_summary(self) -> ServingSummary:
        unresolved = [r.rid for r in self._requests if r.outcome == OUTCOME_ADMITTED]
        if unresolved or self._arrivals_outstanding:
            raise SimulationError(
                f"serving run ended with unresolved requests: {unresolved}"
            )
        return ServingSummary.from_config(
            self.config.serving, [r.to_record() for r in self._requests]
        )

    # -- services used by policies ------------------------------------------

    def log_event(
        self, kind: str, pid: Optional[int] = None, vpn: Optional[int] = None
    ) -> None:
        """Record an event if a log is attached (cheap no-op otherwise).

        With a telemetry handle attached, the event is also mirrored
        into the metric registry (``events.<kind>`` counters) and the
        span tracer (as an instant on the ``events`` track).
        """
        if self.event_log is not None:
            self.event_log.record(self.machine.now_ns, kind, pid, vpn)
        if self.telemetry is not None:
            self.telemetry.on_event(self.machine.now_ns, kind, pid, vpn)

    def consume_time(
        self, process: Process, dt_ns: int, *, category: Optional[str] = "run"
    ) -> None:
        """Charge *dt_ns* of CPU occupancy to *process* and advance the
        clock (firing any device events that come due).

        *category* is the time-ledger attribution (default ``run``);
        a policy that splits one consumed interval into several ledger
        segments passes ``category=None`` and calls :meth:`charge_time`
        itself for each segment.
        """
        if self._ledger is not None and category is not None:
            self.charge_time(process.pid, category, dt_ns)
        self.machine.advance(dt_ns)
        process.slice_remaining_ns -= dt_ns
        process.stats.cpu_time_ns += dt_ns

    def charge_time(self, pid: Optional[int], category: str, ns: int) -> None:
        """Attribute *ns* on the active core to (*pid*, *category*) in
        the time ledger (no-op when no ledger is attached)."""
        if self._ledger is not None and ns > 0:
            self._ledger.charge(self._core_index(), pid, category, ns)

    def _core_index(self) -> int:
        return self.machine.active if self._smp else 0

    def note_demote_blocked(self, delta: int) -> None:
        """Track how many demoted faults are waiting out their tail
        (lets the idle loop label the gap ``demoted_wait``)."""
        self._demoted_pending += delta

    def process_by_pid(self, pid: int) -> Process:
        """Look up a process by pid."""
        return self.processes[pid]

    def issue_prefetch(self, pid: int, vpn: int, *, at_ns: Optional[int] = None) -> bool:
        """Start a prefetch DMA for (pid, vpn) if it is worthwhile.

        Skips pages already resident, swap-cached, in flight, or not
        mapped by the process.  The completed page lands in the swap
        cache (a later touch is a minor fault).  ``at_ns`` lets a caller
        inside a busy-wait window submit at the logical issue time rather
        than the (not yet advanced) clock.  Returns True if a DMA was
        issued.
        """
        key = (pid, vpn)
        if key in self._prefetch_inflight:
            return False
        mm = self.machine.memory.mm_of(pid)
        pte = mm.pte_for(vpn)
        if pte is None or self.machine.memory.is_resident_or_cached(pid, vpn):
            return False
        self._prefetch_inflight.add(key)
        request = DMARequest(
            pid=pid, vpn=vpn, page_bytes=self.machine.memory.frames.page_size, prefetch=True
        )
        submit_ns = max(self.machine.now_ns, at_ns if at_ns is not None else 0)
        if self._causal is not None:
            issue_id = self._causal.add(
                "prefetch_issue", submit_ns,
                pid=pid, vpn=vpn, parent=self._causal.parent,
            )
            self._causal.note_prefetch(pid, vpn, issue_id)
            with self._causal.under(issue_id):
                self.machine.dma.read_page(
                    submit_ns, request, self._prefetch_complete
                )
        else:
            self.machine.dma.read_page(submit_ns, request, self._prefetch_complete)
        self.log_event("prefetch_issue", pid, vpn)
        return True

    def _prefetch_complete(self, request: DMARequest, time_ns: int) -> None:
        self._prefetch_inflight.discard((request.pid, request.vpn))
        process = self.process_by_pid(request.pid)
        installed = False
        if not process.finished and not self.machine.memory.is_resident_or_cached(
            request.pid, request.vpn
        ):
            self.machine.memory.install_page(request.pid, request.vpn, prefetched=True)
            self.log_event("prefetch_done", request.pid, request.vpn)
            installed = True
        if self._causal is not None:
            issue_id = self._causal.take_prefetch(request.pid, request.vpn)
            if issue_id is not None:
                self._causal.add(
                    "prefetch_done", time_ns,
                    pid=request.pid, vpn=request.vpn,
                    parent=issue_id, installed=installed,
                )

    def _release_process_memory(self, pid: int) -> None:
        """Free a finished process's frames and swap slots (process exit)."""
        self.machine.memory.release_process(pid)

    # -- result assembly -----------------------------------------------------

    def _publish_telemetry(self) -> None:
        """Dump end-of-run component statistics into the registry.

        The structures with per-access hot paths (caches, TLB) are not
        instrumented inline — their existing counters are published as
        gauges once the run completes, so enabling telemetry never
        perturbs the cache/TLB fast paths.
        """
        telemetry = self.telemetry
        assert telemetry is not None
        registry = telemetry.registry
        machine = self.machine
        machine.hierarchy.llc.publish_telemetry(registry, "llc")
        if machine.hierarchy.l1 is not None:
            machine.hierarchy.l1.publish_telemetry(registry, "l1")
        machine.tlb.publish_telemetry(registry, "tlb")
        self.scheduler.publish_telemetry(registry)
        registry.gauge("dma.completed").set(machine.dma.completed)
        registry.gauge("dma.prefetches_issued").set(machine.dma.prefetches_issued)
        registry.gauge("dma.writebacks_issued").set(machine.dma.writebacks_issued)
        registry.gauge("fault.handler_time_ns").set(machine.fault_handler.handler_time_ns)
        registry.gauge("swap_cache.hits").set(machine.memory.swap_cache.hits)
        idle = self.metrics.idle
        registry.gauge("idle.memory_stall_ns").set(idle.memory_stall_ns)
        registry.gauge("idle.sync_storage_ns").set(idle.sync_storage_ns)
        registry.gauge("idle.async_idle_ns").set(idle.async_idle_ns)
        registry.gauge("idle.ctx_switch_overhead_ns").set(idle.ctx_switch_overhead_ns)
        registry.gauge("idle.total_ns").set(idle.total_idle_ns)
        registry.gauge("overhead.handler_ns").set(idle.handler_overhead_ns)
        registry.gauge("cpu.instructions_committed").set(
            machine.total_instructions_committed()
        )
        registry.gauge("sim.makespan_ns").set(machine.now_ns)
        if machine.tiers is not None:
            machine.tiers.publish_telemetry(registry)
        if self._ledger is not None:
            for category, ns in self._ledger.by_category().items():
                registry.gauge(f"ledger.{category}_ns").set(ns)
        if self._smp:
            self._publish_smp_telemetry(registry)

    def _publish_smp_telemetry(self, registry) -> None:
        """Per-core ``cpu.core{i}.*`` buckets, per-core TLBs, and the
        cross-core shootdown totals (SMP runs only, so single-core
        telemetry output is byte-identical to before the SMP layer)."""
        machine = self.machine
        for core in machine.cores:
            prefix = f"cpu.core{core.index}."
            registry.gauge(f"{prefix}busy_ns").set(core.busy_ns)
            registry.gauge(f"{prefix}idle_ns").set(core.idle_ns)
            registry.gauge(f"{prefix}steal_ns").set(core.steal_ns)
            registry.gauge(f"{prefix}ctx_ns").set(core.ctx_ns)
            registry.gauge(f"{prefix}shootdown_ns").set(core.shootdown_ns)
            registry.gauge(f"{prefix}instructions").set(
                core.cpu.instructions_committed
            )
            core.tlb.publish_telemetry(registry, f"tlb.core{core.index}")
        registry.gauge("tlb.shootdown.count").set(machine.shootdown_ipis)
        registry.gauge("tlb.shootdown.cost_ns").set(
            sum(core.shootdown_ns for core in machine.cores)
        )

    def _build_result(self) -> SimulationResult:
        if self._ledger is not None:
            # The conservation law is an always-on invariant of any
            # ledger-attached run, not just a test-suite assertion: a
            # charge-site bug fails the run loudly instead of skewing
            # the breakdown silently.
            cores = len(self.machine.cores) if self._smp else 1
            self._ledger.audit(self.machine.now_ns, cores)
        records = []
        majors = minors = 0
        for process in self.processes:
            mm = self.machine.memory.mm_of(process.pid)
            majors += mm.major_faults
            minors += mm.minor_faults
            if (
                self._serving
                and self._requests[process.pid].outcome == OUTCOME_DROPPED
            ):
                # Shed by admission: the process never entered the run
                # queue, so it has no finish time and no record; its
                # absence is accounted on the request side.
                continue
            if process.stats.finish_time_ns is None:
                raise SimulationError(f"process {process.pid} never finished")
            records.append(
                ProcessRecord(
                    pid=process.pid,
                    name=process.name,
                    priority=process.priority,
                    data_intensive=process.data_intensive,
                    finish_time_ns=process.stats.finish_time_ns,
                    cpu_time_ns=process.stats.cpu_time_ns,
                    memory_stall_ns=process.stats.memory_stall_ns,
                    storage_wait_ns=process.stats.storage_wait_ns,
                    major_faults=mm.major_faults,
                    minor_faults=mm.minor_faults,
                    context_switches=process.stats.context_switches,
                )
            )
        if self.telemetry is not None:
            self._publish_telemetry()
        llc = self.machine.hierarchy.llc.stats
        engine = self.machine.preexec_engine
        return SimulationResult(
            policy=self.policy.name,
            batch=self.batch_name,
            makespan_ns=self.machine.now_ns,
            idle=self.metrics.idle,
            processes=records,
            demand_cache_misses=llc.demand_misses,
            demand_cache_accesses=llc.demand_accesses,
            major_faults=majors,
            minor_faults=minors,
            context_switches=self.machine.total_context_switches(),
            prefetch_issued=self.machine.dma.prefetches_issued,
            prefetch_hits=self.machine.memory.swap_cache.hits,
            preexec_instructions=engine.stats.instructions if engine else 0,
            preexec_lines_warmed=engine.stats.lines_warmed if engine else 0,
            instructions_committed=self.machine.total_instructions_committed(),
            serving=self._build_serving_summary() if self._serving else None,
            tiers=(
                self.machine.tiers.summary()
                if self.machine.tiers is not None
                else None
            ),
        )

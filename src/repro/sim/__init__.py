"""The trace-driven multi-programmed simulator."""

from repro.sim.metrics import IdleBreakdown, MetricsCollector, ProcessRecord, SimulationResult
from repro.sim.machine import CoreState, Machine, SMPMachine
from repro.sim.simulator import Simulation, WorkloadInstance
from repro.sim.batch import PAPER_BATCHES, BatchSpec, build_batch, batch_names
from repro.sim.eventlog import EventLog, SimEvent

__all__ = [
    "IdleBreakdown",
    "MetricsCollector",
    "ProcessRecord",
    "SimulationResult",
    "CoreState",
    "Machine",
    "SMPMachine",
    "Simulation",
    "WorkloadInstance",
    "PAPER_BATCHES",
    "BatchSpec",
    "build_batch",
    "batch_names",
    "EventLog",
    "SimEvent",
]

"""Metric collection and the simulation result record.

The paper's headline metric is **total CPU idle time**: "the aggregated
time of the CPU busy waiting for the response of memory and storage
devices during the cache misses and page faults" (Section 2.2).  We
decompose it:

* ``memory_stall_ns``       — DRAM waits on demand LLC misses;
* ``sync_storage_ns``       — busy-waits on synchronous major faults;
* ``async_idle_ns``         — time with no runnable process while I/O is
  in flight;
* ``ctx_switch_overhead_ns`` — direct context-switch time.

Context-switch time counts as idle: during the switch the CPU moves
register state around and "cannot proceed with process progress"
(Section 2.2's definition) — this is exactly why the paper's Async
baseline shows *more* idle time than Sync once device latency drops
below the switch cost.  Fault-handler software time is genuine kernel
work and is kept as overhead, outside the idle metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.serving.request import ServingSummary
    from repro.tiering.summary import TierSummary


@dataclass
class IdleBreakdown:
    """The three idle components plus the overhead components."""

    memory_stall_ns: int = 0
    sync_storage_ns: int = 0
    async_idle_ns: int = 0
    ctx_switch_overhead_ns: int = 0
    handler_overhead_ns: int = 0

    @property
    def total_idle_ns(self) -> int:
        """The paper's CPU idle time: every nanosecond in which the CPU
        advanced no process's committed instructions."""
        return (
            self.memory_stall_ns
            + self.sync_storage_ns
            + self.async_idle_ns
            + self.ctx_switch_overhead_ns
        )

    @property
    def total_overhead_ns(self) -> int:
        """Kernel-work time outside the idle metric."""
        return self.handler_overhead_ns


@dataclass(frozen=True)
class ProcessRecord:
    """Per-process outcome, the unit of Figure 5's analysis."""

    pid: int
    name: str
    priority: int
    data_intensive: bool
    finish_time_ns: int
    cpu_time_ns: int
    memory_stall_ns: int
    storage_wait_ns: int
    major_faults: int
    minor_faults: int
    context_switches: int


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    policy: str
    batch: str
    makespan_ns: int
    idle: IdleBreakdown
    processes: list[ProcessRecord]
    demand_cache_misses: int
    demand_cache_accesses: int
    major_faults: int
    minor_faults: int
    context_switches: int
    prefetch_issued: int
    prefetch_hits: int
    preexec_instructions: int
    preexec_lines_warmed: int
    instructions_committed: int
    serving: Optional["ServingSummary"] = None
    """Per-request serving summary of an open-loop run; ``None`` on
    closed-loop runs (and omitted from the stored encoding, so legacy
    payloads stay byte-identical — see :mod:`repro.analysis.store`)."""
    tiers: Optional["TierSummary"] = None
    """Per-tier accounting of a tiered-storage run; ``None`` (and
    omitted from the stored encoding) on single-device runs."""

    @property
    def total_idle_ns(self) -> int:
        """Total CPU idle time (the Figure 4a metric)."""
        return self.idle.total_idle_ns

    def finish_times_by_priority(self) -> list[ProcessRecord]:
        """Process records sorted from highest to lowest priority."""
        return sorted(self.processes, key=lambda r: -r.priority)

    def mean_finish_top_half_ns(self) -> float:
        """Average finish time of the top-50%-priority processes
        (Figure 5a)."""
        ordered = self.finish_times_by_priority()
        top = ordered[: len(ordered) // 2] or ordered
        return sum(r.finish_time_ns for r in top) / len(top)

    def mean_finish_bottom_half_ns(self) -> float:
        """Average finish time of the bottom-50%-priority processes
        (Figure 5b)."""
        ordered = self.finish_times_by_priority()
        bottom = ordered[len(ordered) // 2 :] or ordered
        return sum(r.finish_time_ns for r in bottom) / len(bottom)


class MetricsCollector:
    """Accumulates machine-wide timing during a run."""

    def __init__(self) -> None:
        self.idle = IdleBreakdown()

    def add_memory_stall(self, ns: int) -> None:
        """DRAM wait on a demand LLC miss."""
        self.idle.memory_stall_ns += ns

    def add_sync_storage_wait(self, ns: int) -> None:
        """Busy-wait on a synchronous major fault."""
        self.idle.sync_storage_ns += ns

    def add_async_idle(self, ns: int) -> None:
        """No runnable process; CPU waits for an I/O completion."""
        self.idle.async_idle_ns += ns

    def add_ctx_overhead(self, ns: int) -> None:
        """Direct context-switch cost."""
        self.idle.ctx_switch_overhead_ns += ns

    def add_handler_overhead(self, ns: int) -> None:
        """Page-fault handler software cost."""
        self.idle.handler_overhead_ns += ns

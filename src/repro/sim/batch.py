"""The four synthesis process batches of Section 4.1.

All four batches comprise Wrf, Blender and community detection, plus
three more processes chosen so that the batch contains 0, 1, 2 or 3
data-intensive workloads.  Priorities are assigned randomly (distinct,
drawn from the scheduler's priority levels), as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRNG
from repro.sim.simulator import WorkloadInstance
from repro.trace.workloads import WORKLOADS, build_workload


@dataclass(frozen=True)
class BatchSpec:
    """One named batch: six workload names."""

    name: str
    workloads: tuple[str, str, str, str, str, str]

    @property
    def data_intensive_count(self) -> int:
        """How many members are data-intensive."""
        return sum(1 for w in self.workloads if WORKLOADS[w].data_intensive)


_COMMON = ("wrf", "blender", "community")

PAPER_BATCHES: dict[str, BatchSpec] = {
    spec.name: spec
    for spec in (
        BatchSpec("No_Data_Intensive", (*_COMMON, "caffe", "deepsjeng", "xz")),
        BatchSpec("1_Data_Intensive", (*_COMMON, "caffe", "deepsjeng", "random_walk")),
        BatchSpec("2_Data_Intensive", (*_COMMON, "deepsjeng", "random_walk", "graph500")),
        BatchSpec("3_Data_Intensive", (*_COMMON, "random_walk", "graph500", "pagerank")),
    )
}
"""The four evaluation batches, keyed by name."""


def batch_names() -> list[str]:
    """Batch names in paper order (0 to 3 data-intensive processes)."""
    return list(PAPER_BATCHES)


def build_batch(
    name: str,
    *,
    seed: int = 42,
    scale: float = 1.0,
    config: MachineConfig | None = None,
) -> list[WorkloadInstance]:
    """Instantiate a paper batch: traces built, priorities assigned.

    The same *seed* yields the same traces and the same priority
    assignment regardless of the policy simulated, so policy comparisons
    are paired.
    """
    spec = PAPER_BATCHES.get(name)
    if spec is None:
        raise ConfigError(f"unknown batch {name!r}; known: {', '.join(PAPER_BATCHES)}")
    config = config or MachineConfig()
    rng = DeterministicRNG(seed)
    levels = config.scheduler.priority_levels
    priorities = rng.sample(range(levels), len(spec.workloads))
    instances = []
    for index, workload_name in enumerate(spec.workloads):
        build = build_workload(workload_name, rng.fork(index + 1), scale)
        instances.append(
            WorkloadInstance(
                name=workload_name,
                trace=build.trace,
                priority=priorities[index],
                data_intensive=WORKLOADS[workload_name].data_intensive,
                mapped_vpns=build.mapped_vpns,
            )
        )
    return instances


def run_batch_instrumented(
    name: str,
    policy,
    *,
    seed: int = 42,
    scale: float = 1.0,
    config: MachineConfig | None = None,
    cores: int | None = None,
    telemetry=None,
):
    """Build a paper batch, run it fully instrumented, return
    ``(result, telemetry)``.

    Convenience hook for trace capture: constructs a fresh
    :class:`~repro.telemetry.Telemetry` when none is passed, so
    ``result, t = run_batch_instrumented("1_Data_Intensive", ITSPolicy())``
    followed by :func:`~repro.telemetry.export_chrome_trace` is the
    shortest path from batch name to a Perfetto-loadable trace.
    *policy* is an :class:`~repro.baselines.base.IOPolicy` instance (not
    a name — name lookup lives in :mod:`repro.analysis.experiments`).
    ``cores``, when given, overrides the config's SMP core count
    (serialisation equality means ``cores=1`` over a default block still
    hashes and runs bit-identically to a config with no block at all).
    """
    import dataclasses

    from repro.engine import build_simulation
    from repro.telemetry import Telemetry

    config = config or MachineConfig()
    if cores is not None:
        config = dataclasses.replace(
            config, cores=dataclasses.replace(config.cores, count=cores)
        )
    if telemetry is None:
        telemetry = Telemetry()
    workloads = build_batch(name, seed=seed, scale=scale, config=config)
    result = build_simulation(
        config, workloads, policy, batch_name=name, telemetry=telemetry
    ).run()
    return result, telemetry

"""Machine assembly: every hardware and kernel component, plus the clock.

A :class:`Machine` wires the component models together the way Figure 1
draws them: CPU core over TLB/LLC/DRAM, the memory manager over the frame
pool and swap, the DMA controller over the device and PCIe link, and the
page-fault handler on top.  Policies that pre-execute get half the LLC
carved out as the pre-execute cache (Section 4.1).

Virtual time lives here: ``advance(dt)`` moves the clock and fires every
device event that came due, so DMA completions interleave with CPU
progress at the right instants.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.common.events import EventQueue
from repro.cpu.core import SimCPU
from repro.cpu.runahead import PreExecuteEngine
from repro.faults.injector import FaultInjector
from repro.kernel.context import ContextSwitchModel
from repro.kernel.fault import PageFaultHandler
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.preexec_cache import PreExecuteCache
from repro.mem.tlb import TLB
from repro.storage.device import ULLDevice
from repro.storage.dma import DMAController, DMARequest
from repro.storage.pcie import PCIeLink
from repro.vm.frames import FrameAllocator
from repro.vm.mm import MemoryManager
from repro.vm.replacement import ReplacementPolicy
from repro.vm.swap import SwapArea


class Machine:
    """One simulated platform instance."""

    def __init__(
        self,
        config: MachineConfig,
        replacement: ReplacementPolicy,
        *,
        with_preexec_cache: bool = False,
        telemetry=None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry
        self.now_ns = 0
        self.events = EventQueue()

        llc_config = config.llc.halved() if with_preexec_cache else config.llc
        self.hierarchy = MemoryHierarchy(llc_config, config.memory, config.l1)
        self.tlb = TLB(config.tlb)

        frames = FrameAllocator(config.memory.dram_frames, config.memory.page_size)
        swap_slots = max(1, config.device.capacity_bytes // config.memory.page_size)
        self.memory = MemoryManager(frames, SwapArea(swap_slots), replacement)
        self.memory.on_evict(self._on_page_evicted)

        # The injector exists only when faults are enabled; with it absent
        # every storage component takes its deterministic fast path, so a
        # fault-free machine is bit-identical to one built before the
        # fault layer existed.
        self.injector: Optional[FaultInjector] = None
        if config.faults.enabled:
            self.injector = FaultInjector(config.faults, telemetry=telemetry)
        self.device = ULLDevice(config.device, injector=self.injector)
        self.link = PCIeLink(config.pcie, injector=self.injector)
        self.dma = DMAController(
            self.device, self.link, self.events,
            telemetry=telemetry, injector=self.injector,
        )

        self.cpu = SimCPU(config, self.hierarchy, self.tlb, self.memory)
        self.fault_handler = PageFaultHandler(
            config, self.memory, self.dma, telemetry=telemetry
        )
        self.context_switch = ContextSwitchModel(config.scheduler, self.tlb, self.hierarchy)

        self.preexec_cache: Optional[PreExecuteCache] = None
        self.preexec_engine: Optional[PreExecuteEngine] = None
        if with_preexec_cache:
            self.preexec_cache = PreExecuteCache(config.llc.halved())
            self.preexec_engine = PreExecuteEngine(
                config,
                self.hierarchy,
                self.memory,
                self.preexec_cache,
                telemetry=telemetry,
            )

    # -- the clock ----------------------------------------------------------

    def advance(self, dt_ns: int) -> None:
        """Move the clock forward by *dt_ns*, firing due device events."""
        if dt_ns < 0:
            raise SimulationError(f"cannot advance clock by negative {dt_ns}")
        self.now_ns += dt_ns
        self.events.run_due(self.now_ns)

    def advance_to(self, t_ns: int) -> None:
        """Move the clock to absolute time *t_ns* (monotone)."""
        if t_ns < self.now_ns:
            raise SimulationError(f"clock would move backwards ({t_ns} < {self.now_ns})")
        self.advance(t_ns - self.now_ns)

    # -- wiring --------------------------------------------------------------

    def add_fault_observer(self, observer) -> None:
        """Watch every major fault's :class:`~repro.kernel.fault.FaultContext`.

        Convenience delegate to
        :meth:`~repro.kernel.fault.PageFaultHandler.add_observer`; the
        adaptive I/O-mode controller feeds its latency estimators here.
        """
        self.fault_handler.add_observer(observer)

    def _on_page_evicted(self, pid: int, vpn: int, frame: int) -> None:
        """Eviction side effects: TLB shootdown, LLC invalidation, and
        dirty write-back over DMA (occupying link + device bandwidth)."""
        self.tlb.shootdown(pid, vpn)
        base = self.memory.frames.frame_base_address(frame)
        self.hierarchy.invalidate_frame(base, self.memory.frames.page_size)
        if not self.config.memory.writeback_dirty:
            return
        pte = self.memory.mm_of(pid).pte_for(vpn)
        if pte is not None and pte.dirty:
            pte.dirty = False
            self.dma.write_page(
                self.now_ns,
                DMARequest(pid=pid, vpn=vpn, page_bytes=self.memory.frames.page_size),
            )

"""Machine assembly: every hardware and kernel component, plus the clock.

A :class:`Machine` wires the component models together the way Figure 1
draws them: CPU core over TLB/LLC/DRAM, the memory manager over the frame
pool and swap, the DMA controller over the device and PCIe link, and the
page-fault handler on top.  Policies that pre-execute get half the LLC
carved out as the pre-execute cache (Section 4.1).

Virtual time lives here: ``advance(dt)`` moves the clock and fires every
device event that came due, so DMA completions interleave with CPU
progress at the right instants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.common.events import EventQueue
from repro.cpu.core import SimCPU
from repro.cpu.runahead import PreExecuteEngine
from repro.faults.injector import FaultInjector
from repro.kernel.context import ContextSwitchModel
from repro.kernel.fault import PageFaultHandler
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.preexec_cache import PreExecuteCache
from repro.mem.tlb import TLB
from repro.storage.device import ULLDevice
from repro.storage.dma import DMAController, DMARequest
from repro.storage.pcie import PCIeLink
from repro.vm.frames import FrameAllocator
from repro.vm.mm import MemoryManager
from repro.vm.replacement import ReplacementPolicy
from repro.vm.swap import SwapArea


class Machine:
    """One simulated platform instance."""

    def __init__(
        self,
        config: MachineConfig,
        replacement: ReplacementPolicy,
        *,
        with_preexec_cache: bool = False,
        telemetry=None,
    ) -> None:
        self.config = config
        self.telemetry = telemetry
        self._ledger = getattr(telemetry, "ledger", None)
        self.now_ns = 0
        self.events = EventQueue()

        llc_config = config.llc.halved() if with_preexec_cache else config.llc
        self.hierarchy = MemoryHierarchy(llc_config, config.memory, config.l1)
        self.tlb = TLB(config.tlb)

        frames = FrameAllocator(config.memory.dram_frames, config.memory.page_size)
        self.injector: Optional[FaultInjector] = None
        self.tiers = None  # TierRegistry on tiered machines
        if config.tiers.enabled:
            # Heterogeneous storage: swap capacity is the sum over tiers,
            # the placement map rides the swap allocator's observers, and
            # a routing facade stands in for the single DMA controller.
            # Imported lazily so tier-disabled machines never touch the
            # tiering package.
            from repro.tiering import (
                MigrationEngine,
                PagePlacement,
                TieredDMAController,
                TierRegistry,
            )

            placement = PagePlacement(config.tiers, config.memory.page_size)
            swap = SwapArea(placement.total_slots)
            swap.on_allocate(placement.note_allocate)
            swap.on_free(placement.note_free)
            self.memory = MemoryManager(frames, swap, replacement)
            self.memory.on_evict(self._on_page_evicted)
            self.tiers = TierRegistry(
                config, self.events, self.memory, placement, telemetry=telemetry
            )
            # ``device``/``link`` alias the fast tier's stack so code
            # written against the single-device machine keeps working.
            self.device = self.tiers.tiers[0].device
            self.link = self.tiers.tiers[0].link
            self.injector = self.tiers.tiers[0].injector
            self.dma = TieredDMAController(self.tiers)
            if config.tiers.promote_threshold > 0:
                self.tiers.migration = MigrationEngine(
                    self.tiers, self.memory, config.tiers, telemetry=telemetry
                )
        else:
            swap_slots = max(1, config.device.capacity_bytes // config.memory.page_size)
            self.memory = MemoryManager(frames, SwapArea(swap_slots), replacement)
            self.memory.on_evict(self._on_page_evicted)

            # The injector exists only when faults are enabled; with it
            # absent every storage component takes its deterministic fast
            # path, so a fault-free machine is bit-identical to one built
            # before the fault layer existed.
            if config.faults.enabled:
                self.injector = FaultInjector(config.faults, telemetry=telemetry)
            self.device = ULLDevice(config.device, injector=self.injector)
            self.link = PCIeLink(config.pcie, injector=self.injector)
            self.dma = DMAController(
                self.device, self.link, self.events,
                telemetry=telemetry, injector=self.injector,
            )

        self.cpu = SimCPU(config, self.hierarchy, self.tlb, self.memory)
        self.fault_handler = PageFaultHandler(
            config, self.memory, self.dma, telemetry=telemetry
        )
        self.context_switch = ContextSwitchModel(config.scheduler, self.tlb, self.hierarchy)

        self.preexec_cache: Optional[PreExecuteCache] = None
        self.preexec_engine: Optional[PreExecuteEngine] = None
        if with_preexec_cache:
            self.preexec_cache = PreExecuteCache(config.llc.halved())
            self.preexec_engine = PreExecuteEngine(
                config,
                self.hierarchy,
                self.memory,
                self.preexec_cache,
                telemetry=telemetry,
            )

    # -- the clock ----------------------------------------------------------

    def advance(self, dt_ns: int) -> None:
        """Move the clock forward by *dt_ns*, firing due device events."""
        if dt_ns < 0:
            raise SimulationError(f"cannot advance clock by negative {dt_ns}")
        self.now_ns += dt_ns
        self.events.run_due(self.now_ns)

    def advance_to(self, t_ns: int) -> None:
        """Move the clock to absolute time *t_ns* (monotone)."""
        if t_ns < self.now_ns:
            raise SimulationError(f"clock would move backwards ({t_ns} < {self.now_ns})")
        self.advance(t_ns - self.now_ns)

    def advance_ctx(self, dt_ns: int) -> None:
        """Advance the clock across a context switch.

        On a single core this is plain :meth:`advance`; the SMP machine
        overrides it to charge the time to the per-core context-switch
        bucket instead of the busy bucket, keeping each core's time
        conservation law exact.
        """
        self.advance(dt_ns)

    # -- aggregate counters --------------------------------------------------

    def total_instructions_committed(self) -> int:
        """Instructions committed machine-wide (summed over cores)."""
        return self.cpu.instructions_committed

    def total_context_switches(self) -> int:
        """Context switches performed machine-wide (summed over cores)."""
        return self.context_switch.switches

    # -- wiring --------------------------------------------------------------

    def add_fault_observer(self, observer) -> None:
        """Watch every major fault's :class:`~repro.kernel.fault.FaultContext`.

        Convenience delegate to
        :meth:`~repro.kernel.fault.PageFaultHandler.add_observer`; the
        adaptive I/O-mode controller feeds its latency estimators here.
        """
        self.fault_handler.add_observer(observer)

    def _on_page_evicted(self, pid: int, vpn: int, frame: int) -> None:
        """Eviction side effects: TLB shootdown, LLC invalidation, and
        dirty write-back over DMA (occupying link + device bandwidth)."""
        self.tlb.shootdown(pid, vpn)
        self._invalidate_evicted_frame(pid, vpn, frame)

    def _invalidate_evicted_frame(self, pid: int, vpn: int, frame: int) -> None:
        """The TLB-independent half of an eviction: LLC invalidation and
        dirty write-back (shared by the single-core and SMP paths)."""
        base = self.memory.frames.frame_base_address(frame)
        self.hierarchy.invalidate_frame(base, self.memory.frames.page_size)
        if not self.config.memory.writeback_dirty:
            return
        pte = self.memory.mm_of(pid).pte_for(vpn)
        if pte is not None and pte.dirty:
            pte.dirty = False
            self.dma.write_page(
                self.now_ns,
                DMARequest(pid=pid, vpn=vpn, page_bytes=self.memory.frames.page_size),
            )


@dataclass
class CoreState:
    """One core's private components and time-accounting buckets.

    Each core owns the state that is per-CPU on a real SMP platform — a
    TLB, an execution engine, a context-switch model — and a private
    clock.  The five buckets partition the core's wall clock exactly:
    ``busy + idle + steal + ctx + shootdown == makespan`` after
    :meth:`SMPMachine.finalize` (the per-core conservation law the SMP
    integration suite asserts).
    """

    index: int
    tlb: TLB
    cpu: SimCPU
    context_switch: ContextSwitchModel
    now_ns: int = 0
    busy_ns: int = 0
    idle_ns: int = 0
    ctx_ns: int = 0
    steal_ns: int = 0
    shootdown_ns: int = 0
    pending_shootdown_ns: int = 0
    last_pid: Optional[int] = None


class SMPMachine(Machine):
    """N cores over one shared memory and storage subsystem.

    Core 0 adopts the components the base :class:`Machine` built; cores
    1..N-1 get their own TLB, :class:`SimCPU` and context-switch model,
    all sharing the LLC/DRAM hierarchy, memory manager, event queue and
    DMA path.  The simulator calls :meth:`activate` before operating on
    a core; the familiar ``machine.cpu`` / ``machine.tlb`` /
    ``machine.now_ns`` attributes always alias the active core's, so the
    single-core execution step runs unchanged on whichever core is live.

    Timekeeping is per-core: each core's clock advances only while the
    core is active, and the simulator interleaves cores lowest-clock
    first (docs/SMP.md documents the resulting bounded causality skew).
    """

    def __init__(
        self,
        config: MachineConfig,
        replacement: ReplacementPolicy,
        *,
        with_preexec_cache: bool = False,
        telemetry=None,
    ) -> None:
        super().__init__(
            config,
            replacement,
            with_preexec_cache=with_preexec_cache,
            telemetry=telemetry,
        )
        self.cores = [CoreState(0, self.tlb, self.cpu, self.context_switch)]
        for index in range(1, config.cores.count):
            tlb = TLB(config.tlb)
            self.cores.append(
                CoreState(
                    index,
                    tlb,
                    SimCPU(config, self.hierarchy, tlb, self.memory),
                    ContextSwitchModel(config.scheduler, tlb, self.hierarchy),
                )
            )
        self.active = 0
        self.shootdown_ipis = 0

    # -- core selection ------------------------------------------------------

    def activate(self, index: int) -> None:
        """Make core *index* the one the ``cpu``/``tlb``/``now_ns``
        aliases point at."""
        core = self.cores[index]
        self.active = index
        self.tlb = core.tlb
        self.cpu = core.cpu
        self.context_switch = core.context_switch
        self.now_ns = core.now_ns

    def _sync_active(self, dt_ns: int, bucket: str) -> None:
        core = self.cores[self.active]
        core.now_ns = self.now_ns
        setattr(core, bucket, getattr(core, bucket) + dt_ns)

    # -- per-core clocks -----------------------------------------------------

    def advance(self, dt_ns: int) -> None:
        """Advance the active core's clock, charging the busy bucket."""
        super().advance(dt_ns)
        self._sync_active(dt_ns, "busy_ns")

    def advance_ctx(self, dt_ns: int) -> None:
        """Advance the active core's clock across a context switch."""
        Machine.advance(self, dt_ns)
        self._sync_active(dt_ns, "ctx_ns")

    def advance_idle_to(self, t_ns: int) -> None:
        """Catch the active core's clock up to *t_ns*, charging the gap
        to its idle bucket (the core had nothing runnable before then)."""
        if t_ns <= self.now_ns:
            return
        gap = t_ns - self.now_ns
        Machine.advance(self, gap)
        self._sync_active(gap, "idle_ns")
        # SMP idle gaps stay plain ``idle`` in the ledger: by the time a
        # core catches up to a process's ready time, the completion that
        # readied it has already fired, so the single-core dma-wait /
        # demoted-wait refinement is not observable here.
        self._charge_ledger(None, "idle", gap)

    def charge_steal(self, dt_ns: int) -> None:
        """Charge migration overhead on the active (thief) core."""
        Machine.advance(self, dt_ns)
        self._sync_active(dt_ns, "steal_ns")
        # Migration is scheduling overhead; the ledger folds it into
        # ``ctx_switch`` (the per-core ``steal_ns`` bucket keeps the
        # finer split).
        self._charge_ledger(None, "ctx_switch", dt_ns)

    def drain_pending_shootdowns(self) -> None:
        """Pay IPI costs queued against the active core before it runs."""
        core = self.cores[self.active]
        if core.pending_shootdown_ns <= 0:
            return
        cost = core.pending_shootdown_ns
        core.pending_shootdown_ns = 0
        Machine.advance(self, cost)
        self._sync_active(cost, "shootdown_ns")
        self._charge_ledger(None, "tlb_shootdown", cost)

    def _charge_ledger(self, pid, category: str, ns: int) -> None:
        if self._ledger is not None and ns > 0:
            self._ledger.charge(self.active, pid, category, ns)

    def fire_next_event(self) -> None:
        """No core has runnable work: fire the earliest pending event
        batch without moving any core's clock (the processes it readies
        carry their own ``ready_since_ns``; dispatch clamps to it)."""
        t_ns = self.events.peek_time()
        if t_ns is None:
            raise SimulationError(
                "all cores idle with no pending events: simulation deadlocked"
            )
        self.events.run_due(t_ns)

    def finalize(self) -> int:
        """Drag every core's clock to the makespan (idle time) and return
        it.  Called once after the last process finishes."""
        makespan = max(core.now_ns for core in self.cores)
        for core in self.cores:
            if self._ledger is not None and makespan > core.now_ns:
                self._ledger.charge(
                    core.index, None, "idle", makespan - core.now_ns
                )
            core.idle_ns += makespan - core.now_ns
            core.now_ns = makespan
        self.now_ns = makespan
        return makespan

    # -- aggregate counters --------------------------------------------------

    def total_instructions_committed(self) -> int:
        return sum(core.cpu.instructions_committed for core in self.cores)

    def total_context_switches(self) -> int:
        return sum(core.context_switch.switches for core in self.cores)

    # -- eviction hook -------------------------------------------------------

    def _on_page_evicted(self, pid: int, vpn: int, frame: int) -> None:
        """SMP eviction: shoot the translation down on *every* core.

        Each remote core that actually held the entry costs one IPI
        round-trip (``cores.tlb_shootdown_ns``), queued against the core
        performing the eviction and paid before its next step — event
        callbacks must not move clocks directly.
        """
        evictor = self.cores[self.active]
        for core in self.cores:
            dropped = core.tlb.shootdown(pid, vpn)
            if dropped and core.index != self.active:
                evictor.pending_shootdown_ns += self.config.cores.tlb_shootdown_ns
                self.shootdown_ipis += 1
        self._invalidate_evicted_frame(pid, vpn, frame)

"""Optional simulation event log.

When attached to a :class:`~repro.sim.simulator.Simulation`, records the
scheduling- and fault-level events of a run (faults, switches,
prefetches, ITS steals, finishes) with virtual timestamps — the raw
material for debugging a policy or plotting a timeline.  Recording is
disabled by default; an unattached simulation pays a single ``None``
check per event site.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional


@dataclass(frozen=True)
class SimEvent:
    """One logged event.

    ``kind`` is a short tag (``major_fault``, ``minor_fault``,
    ``ctx_switch``, ``dispatch``, ``prefetch_issue``, ``prefetch_done``,
    ``steal``, ``sacrifice``, ``finish``); ``vpn`` is set for
    page-related events.
    """

    time_ns: int
    kind: str
    pid: Optional[int] = None
    vpn: Optional[int] = None


class EventLog:
    """Bounded in-memory event recorder.

    ``capacity`` caps memory use on long runs; when full, the oldest
    events are dropped and :attr:`dropped` counts them.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("event log capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._events: list[SimEvent] = []

    def record(
        self,
        time_ns: int,
        kind: str,
        pid: Optional[int] = None,
        vpn: Optional[int] = None,
    ) -> None:
        """Append one event, evicting the oldest beyond capacity."""
        self._events.append(SimEvent(time_ns=time_ns, kind=kind, pid=pid, vpn=vpn))
        if len(self._events) > self.capacity:
            overflow = len(self._events) - self.capacity
            del self._events[:overflow]
            self.dropped += overflow

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[SimEvent]:
        """All events with the given tag, in time order."""
        return [e for e in self._events if e.kind == kind]

    def of_pid(self, pid: int) -> list[SimEvent]:
        """All events attributed to *pid*, in time order."""
        return [e for e in self._events if e.pid == pid]

    def counts(self) -> dict[str, int]:
        """Events per kind."""
        out: dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def to_csv(self, path: str | Path) -> None:
        """Dump the log as ``time_ns,kind,pid,vpn`` CSV."""
        path = Path(path)
        with path.open("w", newline="", encoding="utf-8") as f:
            writer = csv.writer(f)
            writer.writerow(["time_ns", "kind", "pid", "vpn"])
            for event in self._events:
                writer.writerow(
                    [
                        event.time_ns,
                        event.kind,
                        "" if event.pid is None else event.pid,
                        "" if event.vpn is None else event.vpn,
                    ]
                )

"""Optional simulation event log.

When attached to a :class:`~repro.sim.simulator.Simulation`, records the
scheduling- and fault-level events of a run (faults, switches,
prefetches, ITS steals, finishes) with virtual timestamps — the raw
material for debugging a policy or plotting a timeline.  Recording is
disabled by default; an unattached simulation pays a single ``None``
check per event site.

.. note::
   Attaching a bare ``EventLog`` directly to a
   :class:`~repro.sim.simulator.Simulation` is deprecated in favour of
   attaching a :class:`~repro.telemetry.Telemetry` handle, which owns an
   event log (``telemetry.event_log``) and additionally provides span
   tracing, counters and latency histograms.  The direct path keeps
   working for existing callers and :mod:`repro.analysis.timeline`.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional


@dataclass(frozen=True)
class SimEvent:
    """One logged event.

    ``kind`` is a short tag (``major_fault``, ``minor_fault``,
    ``ctx_switch``, ``dispatch``, ``prefetch_issue``, ``prefetch_done``,
    ``steal``, ``sacrifice``, ``finish``); ``vpn`` is set for
    page-related events.
    """

    time_ns: int
    kind: str
    pid: Optional[int] = None
    vpn: Optional[int] = None


class EventLog:
    """Bounded in-memory event recorder.

    ``capacity`` caps memory use on long runs; when full, the oldest
    events are dropped and :attr:`dropped` counts them.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("event log capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._events: list[SimEvent] = []
        self._head = 0  # index of the oldest event once the ring is full

    def record(
        self,
        time_ns: int,
        kind: str,
        pid: Optional[int] = None,
        vpn: Optional[int] = None,
    ) -> None:
        """Append one event, overwriting the oldest beyond capacity.

        A true ring buffer: once full, each new event lands where the
        oldest one sat (O(1), no list shifting) and ``dropped`` grows.
        """
        event = SimEvent(time_ns=time_ns, kind=kind, pid=pid, vpn=vpn)
        if len(self._events) < self.capacity:
            self._events.append(event)
        else:
            self._events[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimEvent]:
        if self._head == 0:
            return iter(list(self._events))
        return iter(self._events[self._head :] + self._events[: self._head])

    def of_kind(self, kind: str) -> list[SimEvent]:
        """All events with the given tag, in time order."""
        return [e for e in self if e.kind == kind]

    def of_pid(self, pid: int) -> list[SimEvent]:
        """All events attributed to *pid*, in time order."""
        return [e for e in self if e.pid == pid]

    def counts(self) -> dict[str, int]:
        """Events per kind."""
        out: dict[str, int] = {}
        for event in self:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def to_csv(self, path: str | Path) -> None:
        """Dump the log as ``time_ns,kind,pid,vpn`` CSV.

        The first line is a ``# dropped=N`` comment recording how many
        oldest events the ring buffer overwrote, so a reader knows the
        file is a suffix of the run rather than the whole of it.
        """
        path = Path(path)
        with path.open("w", newline="", encoding="utf-8") as f:
            f.write(f"# dropped={self.dropped}\n")
            writer = csv.writer(f)
            writer.writerow(["time_ns", "kind", "pid", "vpn"])
            for event in self:
                writer.writerow(
                    [
                        event.time_ns,
                        event.kind,
                        "" if event.pid is None else event.pid,
                        "" if event.vpn is None else event.vpn,
                    ]
                )

"""Process control blocks.

A simulated process is a trace of instructions plus the scheduling state
the mini kernel needs: priority (Linux RT convention — larger value means
more important), the program counter into the trace, the register file,
and per-process statistics used by the evaluation (finish time, fault
counts, stall breakdown).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.isa import Instruction
from repro.cpu.registers import RegisterFile


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


@dataclass
class ProcessStats:
    """Per-process counters for the paper's metrics."""

    finish_time_ns: Optional[int] = None
    cpu_time_ns: int = 0
    memory_stall_ns: int = 0
    storage_wait_ns: int = 0
    major_faults: int = 0
    minor_faults: int = 0
    context_switches: int = 0
    sync_faults: int = 0
    async_faults: int = 0

    @property
    def idle_contribution_ns(self) -> int:
        """This process's share of the machine's idle time (memory stalls
        plus synchronous storage waits charged while it ran)."""
        return self.memory_stall_ns + self.storage_wait_ns


@dataclass
class Process:
    """One traced workload instance under the mini kernel."""

    pid: int
    name: str
    priority: int
    trace: list[Instruction]
    data_intensive: bool = False
    state: ProcessState = ProcessState.READY
    pc: int = 0
    slice_remaining_ns: int = 0
    resume_pending: bool = False
    ready_since_ns: int = 0
    """Simulated time at which the process last became READY.  Under SMP
    each core runs its own clock, so a core dispatching this process must
    first catch its clock up to this point (the process cannot run before
    the event that readied it)."""
    registers: RegisterFile = field(default_factory=RegisterFile)
    stats: ProcessStats = field(default_factory=ProcessStats)

    @property
    def finished(self) -> bool:
        """True once every trace instruction has committed."""
        return self.pc >= len(self.trace)

    @property
    def current_instruction(self) -> Instruction:
        """The next instruction to commit."""
        return self.trace[self.pc]

    def advance(self) -> None:
        """Commit the current instruction."""
        self.pc += 1
        self.registers.pc = self.pc

    def remaining_instructions(self) -> int:
        """Instructions left to commit."""
        return len(self.trace) - self.pc

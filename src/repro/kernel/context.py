"""Context-switch cost and pollution model.

A context switch costs a flat ``context_switch_ns`` (7 us measured on the
paper's i7-7800X) *and* has the side effects the paper's background
section blames for the killer-microsecond problem: the TLB is flushed and
part of the outgoing process's cache footprint is displaced by the
incoming process ("Frequently performing context switching may cause
frequent CPU cache misses and TLB shootdown").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SchedulerConfig
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.tlb import TLB


@dataclass
class ContextSwitchModel:
    """Applies the direct and indirect costs of a context switch."""

    config: SchedulerConfig
    tlb: TLB
    hierarchy: MemoryHierarchy
    switches: int = 0
    lines_polluted: int = 0

    def perform(self, outgoing_pid: int | None) -> int:
        """Execute one switch; returns its direct cost in nanoseconds.

        The indirect costs (TLB flush, cache pollution against the
        outgoing process) are applied to the shared structures, where
        they surface later as extra misses.
        """
        self.switches += 1
        if self.tlb.config.flush_on_switch:
            self.tlb.flush()
        if outgoing_pid is not None and self.config.switch_pollution_fraction > 0:
            self.lines_polluted += self.hierarchy.pollute_on_switch(
                outgoing_pid, self.config.switch_pollution_fraction
            )
        return self.config.context_switch_ns

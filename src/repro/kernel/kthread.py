"""Kernel-thread abstraction for the ITS design.

The ITS threads (self-improving, self-sacrificing) run *in kernel space*
during otherwise-idle CPU time; Section 3.2 argues this keeps activation
to hundreds of nanoseconds because no mode switch or full context
movement is needed.  :class:`KernelThread` captures that cost model plus
activation bookkeeping; the actual policy bodies live in
:mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass

@dataclass
class KernelThread:
    """A named kernel thread with an activation cost.

    ``entry_cost_ns`` models the page-fault-handler -> ITS-thread
    transition (kernel-level, so hundreds of nanoseconds rather than the
    several microseconds a user-level design would pay).
    """

    name: str
    entry_cost_ns: int
    activations: int = 0
    busy_ns: int = 0
    telemetry: object = None
    """Optional :class:`~repro.telemetry.Telemetry` handle; when set,
    each activation feeds a per-thread budget histogram."""

    def activate(self, now_ns: int, budget_ns: int) -> tuple[int, int]:
        """Account one activation starting at *now_ns* with *budget_ns*
        of stolen time available.

        Returns ``(work_start_ns, work_budget_ns)``: the entry cost is
        paid out of the stolen window, so the useful budget shrinks by
        it.  A window smaller than the entry cost yields a zero budget —
        the thread does not run ("running for a maximum of several
        microseconds to avoid impeding process progress").
        """
        self.activations += 1
        start = now_ns + self.entry_cost_ns
        budget = max(0, budget_ns - self.entry_cost_ns)
        self.busy_ns += budget
        if self.telemetry is not None:
            self.telemetry.counter(f"kthread.{self.name}.activations").inc()
            self.telemetry.histogram(f"kthread.{self.name}.budget_ns").observe(budget)
            causal = getattr(self.telemetry, "causal", None)
            if causal is not None and causal.parent is not None:
                causal.add(
                    "kthread_entry", now_ns, parent=causal.parent,
                    thread=self.name, budget_ns=budget,
                )
        return start, budget

"""SMP scheduling: per-core run queues, placement, and work stealing.

:class:`SMPScheduler` is a facade over N per-core
:class:`~repro.kernel.scheduler.RoundRobinScheduler` queues.  It keeps
the exact single-queue semantics the paper's policies were written
against — ``current``/``peek_next``/``dispatch``/... operate on the
*active* core's queue, selected by the simulator before each step — and
adds the three things a multi-core kernel needs on top:

* **placement** — a new process is admitted to one core's queue, chosen
  by the configured policy (``round_robin`` by pid, ``least_loaded`` by
  shortest ready queue) or by a caller-installed hook
  (:meth:`set_placement`), the affinity seam for future experiments;
* **fault affinity** — a process that blocks on I/O stays owned by the
  core it faulted on; the DMA completion routes the unblock back to
  that core's queue (:attr:`core_of`), like a per-CPU wait queue;
* **work stealing** — an idle core takes the *tail* of the most loaded
  core's ready queue (:meth:`try_steal`), paying the migration cost
  modelled in :class:`~repro.common.config.CoreConfig`.

Time is deliberately absent from this module: queue surgery happens
here, clocks and cost accounting stay in the simulator (docs/SMP.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.config import CoreConfig, SchedulerConfig
from repro.common.errors import SimulationError
from repro.kernel.process import Process
from repro.kernel.scheduler import RoundRobinScheduler, SchedulerStats

PlacementHook = Callable[[Process, "SMPScheduler"], int]


@dataclass
class StealStats:
    """Work-stealing activity counters."""

    attempts: int = 0
    steals: int = 0
    migration_ns: int = 0


class SMPScheduler:
    """Per-core round-robin queues with work stealing.

    *clock* is a zero-argument callable returning the active core's
    current simulated time; it stamps :attr:`Process.ready_since_ns`
    whenever a process re-enters a ready queue, so that another core
    picking the process up later cannot run it before the event that
    readied it.
    """

    def __init__(
        self,
        config: SchedulerConfig,
        cores: CoreConfig,
        clock: Callable[[], int],
        *,
        telemetry=None,
    ) -> None:
        self.config = config
        self.cores = cores
        self.queues = [RoundRobinScheduler(config) for _ in range(cores.count)]
        self.core_of: dict[int, int] = {}
        self.active = 0
        self.steal_stats = StealStats()
        self._clock = clock
        self._causal = getattr(telemetry, "causal", None)
        self._placement: Optional[PlacementHook] = None

    # -- facade over the active core's queue ----------------------------------

    @property
    def _q(self) -> RoundRobinScheduler:
        return self.queues[self.active]

    @property
    def current(self) -> Optional[Process]:
        """The process running on the active core."""
        return self._q.current

    def peek_next(self) -> Optional[Process]:
        """Head of the active core's ready queue."""
        return self._q.peek_next()

    def ready_count(self) -> int:
        """Ready processes on the active core's queue.

        Deliberately per-core: the ITS selection policy and the adaptive
        controller reason about what *this* CPU would run next, exactly
        as they do on a single core.
        """
        return self._q.ready_count()

    def blocked_count(self) -> int:
        """Blocked processes across all cores."""
        return sum(q.blocked_count() for q in self.queues)

    def has_work(self) -> bool:
        """True while any core has current, ready, or blocked work."""
        return any(q.has_work() for q in self.queues)

    def core_runnable(self, index: int) -> bool:
        """True if core *index* could execute right now (a process holds
        it or is waiting on its queue)."""
        q = self.queues[index]
        return q.current is not None or q.ready_count() > 0

    # -- admission -------------------------------------------------------------

    def set_placement(self, hook: Optional[PlacementHook]) -> None:
        """Install an affinity hook: ``hook(process, sched) -> core``.
        Overrides the configured placement policy; ``None`` restores it."""
        self._placement = hook

    def place(self, process: Process) -> int:
        """Pick the core that should admit *process*."""
        if self._placement is not None:
            index = self._placement(process, self)
            if not 0 <= index < len(self.queues):
                raise SimulationError(
                    f"placement hook returned core {index} of {len(self.queues)}"
                )
            return index
        if self.cores.placement == "least_loaded":
            return min(
                range(len(self.queues)), key=lambda i: (self.queues[i].ready_count(), i)
            )
        return process.pid % len(self.queues)

    def add(self, process: Process) -> None:
        """Admit a new READY process on the core chosen by placement."""
        index = self.place(process)
        process.ready_since_ns = self._clock()
        self.core_of[process.pid] = index
        self.queues[index].add(process)

    # -- transitions on the active core ---------------------------------------

    def dispatch(self) -> Optional[Process]:
        """Dispatch the active core's queue head (see
        :meth:`RoundRobinScheduler.dispatch`)."""
        return self._q.dispatch()

    def preempt_current(self) -> Process:
        """Slice expired on the active core: requeue at its tail."""
        process = self._q.preempt_current()
        process.ready_since_ns = self._clock()
        return process

    def yield_current(self) -> Process:
        """Voluntary yield on the active core."""
        process = self._q.yield_current()
        process.ready_since_ns = self._clock()
        return process

    def block_current(self) -> Process:
        """The active core's process blocks on I/O.  It stays owned by
        this core: the completion will unblock it here."""
        return self._q.block_current()

    def unblock(
        self,
        process: Process,
        *,
        resume: bool = False,
        ready_ns: Optional[int] = None,
    ) -> None:
        """Route an I/O completion back to the core the process faulted
        on, regardless of which core's event processing fired it."""
        index = self.core_of.get(process.pid)
        if index is None:
            raise SimulationError(f"unblocking pid {process.pid} which no core owns")
        self.queues[index].unblock(process, resume=resume, ready_ns=ready_ns)

    def resume_preempts_current(self) -> bool:
        """Resume-preemption check on the active core."""
        return self._q.resume_preempts_current()

    def preempt_for_resume(self) -> Process:
        """Resume-preemption swap on the active core."""
        displaced = self._q.preempt_for_resume()
        displaced.ready_since_ns = self._clock()
        return displaced

    def finish_current(self, now_ns: int) -> Process:
        """The active core's process finished; drop its core ownership."""
        process = self._q.finish_current(now_ns)
        self.core_of.pop(process.pid, None)
        return process

    # -- work stealing ---------------------------------------------------------

    def steal_victim(self, thief: int) -> Optional[int]:
        """The core *thief* should steal from, or ``None``.

        The victim is the core with the longest ready queue (ties to the
        lowest id) that can spare a process: it must keep at least one
        runnable process behind — its running process, or the head of
        its queue if the core itself is between dispatches.
        """
        best: Optional[int] = None
        best_len = 0
        for index, q in enumerate(self.queues):
            if index == thief:
                continue
            spare = q.ready_count() >= (1 if q.current is not None else 2)
            if spare and q.ready_count() > best_len:
                best, best_len = index, q.ready_count()
        return best

    def try_steal(self, thief: int) -> Optional[Process]:
        """Steal one process onto core *thief*'s queue.

        Takes the tail of the victim's queue (least disturbance to its
        round-robin order; never a resume-pending process) and re-admits
        it on the thief.  Returns the migrated process, or ``None`` if
        no victim can spare one.  The caller charges the migration cost
        and clamps the thief's clock to the process's ready time.
        """
        if not self.cores.work_steal:
            return None
        self.steal_stats.attempts += 1
        victim = self.steal_victim(thief)
        if victim is None:
            return None
        process = self.queues[victim].steal_tail()
        if process is None:
            return None
        self.core_of[process.pid] = thief
        self.queues[thief].add(process)
        self.steal_stats.steals += 1
        if self._causal is not None:
            # Link the migration to whatever last touched the process:
            # the unblock that readied it, or its latest fault.
            parent = self._causal.peek_unblock(process.pid)
            if parent is None:
                parent = self._causal.fault_of(process.pid)
            self._causal.add(
                "migrate", self._clock(),
                pid=process.pid, parent=parent,
                src=victim, dst=thief,
            )
        return process

    # -- reporting -------------------------------------------------------------

    @property
    def stats(self) -> SchedulerStats:
        """Aggregate scheduling counters summed across cores."""
        total = SchedulerStats()
        for q in self.queues:
            total.dispatches += q.stats.dispatches
            total.preemptions += q.stats.preemptions
            total.voluntary_switches += q.stats.voluntary_switches
            total.blocks += q.stats.blocks
            total.unblocks += q.stats.unblocks
        return total

    def publish_telemetry(self, registry, prefix: str = "sched.") -> None:
        """Publish aggregate ``sched.*`` gauges (same names the
        single-core scheduler uses), per-core ``sched.core{i}.*``
        breakdowns, and the ``sched.steal.*`` counters."""
        for index, q in enumerate(self.queues):
            q.publish_telemetry(registry, prefix=f"{prefix}core{index}.")
        total = self.stats
        registry.gauge(f"{prefix}dispatches").set(total.dispatches)
        registry.gauge(f"{prefix}preemptions").set(total.preemptions)
        registry.gauge(f"{prefix}voluntary_switches").set(total.voluntary_switches)
        registry.gauge(f"{prefix}blocks").set(total.blocks)
        registry.gauge(f"{prefix}unblocks").set(total.unblocks)
        registry.gauge(f"{prefix}steal.attempts").set(self.steal_stats.attempts)
        registry.gauge(f"{prefix}steal.count").set(self.steal_stats.steals)
        registry.gauge(f"{prefix}steal.migration_ns").set(self.steal_stats.migration_ns)

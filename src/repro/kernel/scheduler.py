"""SCHED_RR: the round-robin scheduler of the mini kernel.

Processes share one round-robin ready queue; a process's *priority*
determines its time-slice length via the NICE-style mapping in
:class:`repro.common.config.SchedulerConfig` (800 ms for the most
important level down to 5 ms for the least).  This is the paper's setup:
all six processes of a batch interleave — which is what makes them
"share and contend the memory resources" — while high-priority processes
hold the CPU much longer per turn.

The ITS priority-aware thread selection policy compares the running
process's priority against the *next-to-be-run* process
(:meth:`RoundRobinScheduler.peek_next`); the scheduler itself never
reorders anything ("our policy does not change ... the process-execution
orders maintained by the process scheduler").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.common.config import SchedulerConfig
from repro.common.errors import SimulationError
from repro.kernel.process import Process, ProcessState


@dataclass
class SchedulerStats:
    """Scheduling activity counters."""

    dispatches: int = 0
    preemptions: int = 0
    voluntary_switches: int = 0
    blocks: int = 0
    unblocks: int = 0


class RoundRobinScheduler:
    """Single-queue round-robin with priority-scaled time slices."""

    def __init__(self, config: SchedulerConfig) -> None:
        self.config = config
        self.stats = SchedulerStats()
        self._ready: deque[Process] = deque()
        self._current: Optional[Process] = None
        self._blocked: set[int] = set()

    # -- queue inspection -----------------------------------------------------

    @property
    def current(self) -> Optional[Process]:
        """The process currently holding the CPU."""
        return self._current

    def peek_next(self) -> Optional[Process]:
        """The next-to-be-run process (head of the ready queue)."""
        return self._ready[0] if self._ready else None

    def ready_count(self) -> int:
        """Processes waiting in the ready queue."""
        return len(self._ready)

    def blocked_count(self) -> int:
        """Processes blocked on I/O."""
        return len(self._blocked)

    def has_work(self) -> bool:
        """True while any process is current, ready, or blocked."""
        return self._current is not None or bool(self._ready) or bool(self._blocked)

    # -- transitions -------------------------------------------------------------

    def add(self, process: Process) -> None:
        """Admit a new READY process at the tail of the queue."""
        if process.state is not ProcessState.READY:
            raise SimulationError(f"admitting pid {process.pid} in state {process.state}")
        self._ready.append(process)

    def dispatch(self) -> Optional[Process]:
        """Pop the queue head, grant a time slice, mark it RUNNING.

        A process resuming an interrupted turn (see
        :meth:`unblock` with ``resume=True``) keeps its residual slice;
        everyone else gets a fresh one.  Returns ``None`` when the ready
        queue is empty (the CPU idles until an I/O completion unblocks
        someone).
        """
        if self._current is not None:
            raise SimulationError("dispatch while a process still holds the CPU")
        if not self._ready:
            return None
        process = self._ready.popleft()
        process.state = ProcessState.RUNNING
        if not (process.resume_pending and process.slice_remaining_ns > 0):
            process.slice_remaining_ns = self.config.time_slice_ns(process.priority)
        process.resume_pending = False
        self._current = process
        self.stats.dispatches += 1
        return process

    def preempt_current(self) -> Process:
        """Slice expired: requeue the running process at the tail."""
        process = self._take_current()
        process.state = ProcessState.READY
        self._ready.append(process)
        self.stats.preemptions += 1
        return process

    def yield_current(self) -> Process:
        """Voluntary yield (self-sacrificing path): requeue at the tail
        with whatever slice remains forfeited."""
        process = self._take_current()
        process.state = ProcessState.READY
        self._ready.append(process)
        self.stats.voluntary_switches += 1
        return process

    def block_current(self) -> Process:
        """The running process blocks on I/O (asynchronous mode)."""
        process = self._take_current()
        process.state = ProcessState.BLOCKED
        self._blocked.add(process.pid)
        self.stats.blocks += 1
        return process

    def unblock(
        self,
        process: Process,
        *,
        resume: bool = False,
        ready_ns: Optional[int] = None,
    ) -> None:
        """I/O completed: move a BLOCKED process back to the ready queue.

        ``resume=True`` is the self-sacrificing resume path: the kernel
        forced the process off the CPU mid-slice, so it re-enters at the
        queue *head* with its residual slice — it gave way during the
        I/O, but its turn is not forfeited (Section 3.3 argues the
        sacrifice must not inflate low-priority finish times).  The
        default (``resume=False``) is the ordinary asynchronous path:
        tail of the queue, fresh slice on dispatch.

        ``ready_ns``, when given, records the exact simulated time the
        completion fired.  Under SMP a core other than the one that took
        the fault may dispatch the process, and its clock must not run
        the process before this point.
        """
        if process.pid not in self._blocked:
            raise SimulationError(f"unblocking pid {process.pid} which is not blocked")
        self._blocked.discard(process.pid)
        process.state = ProcessState.READY
        if ready_ns is not None:
            process.ready_since_ns = ready_ns
        if resume:
            process.resume_pending = True
            self._ready.appendleft(process)
        else:
            self._ready.append(process)
        self.stats.unblocks += 1

    def resume_preempts_current(self) -> bool:
        """True if the queue head is a resuming (sacrifice-unblocked)
        process with strictly higher priority than the running one.

        The self-sacrificing thread's contract is to give way to
        *higher*-priority executions only; RT semantics let the resumed
        process preempt a strictly less important current process.
        """
        if self._current is None or not self._ready:
            return False
        head = self._ready[0]
        return head.resume_pending and head.priority > self._current.priority

    def preempt_for_resume(self) -> Process:
        """Swap the resuming queue head in for the current process.

        The displaced process keeps its residual slice and re-enters
        just behind the resumer (it loses no turn, only the CPU for the
        moment).  Returns the displaced process.
        """
        if not self.resume_preempts_current():
            raise SimulationError("preempt_for_resume without a qualifying head")
        displaced = self._take_current()
        displaced.state = ProcessState.READY
        displaced.resume_pending = True
        resumer = self._ready.popleft()
        self._ready.appendleft(displaced)
        resumer.state = ProcessState.RUNNING
        if not (resumer.resume_pending and resumer.slice_remaining_ns > 0):
            resumer.slice_remaining_ns = self.config.time_slice_ns(resumer.priority)
        resumer.resume_pending = False
        self._current = resumer
        self.stats.preemptions += 1
        self.stats.dispatches += 1
        return displaced

    def finish_current(self, now_ns: int) -> Process:
        """The running process committed its last instruction."""
        process = self._take_current()
        process.state = ProcessState.FINISHED
        process.stats.finish_time_ns = now_ns
        return process

    def steal_tail(self) -> Optional[Process]:
        """Pop and return the *tail* of the ready queue, or ``None``.

        Work stealing takes from the cold end: the tail process waited
        through the whole queue already and would wait longest again, so
        migrating it disturbs the victim's round-robin order least.
        Resume-pending processes are never stolen — their head position
        encodes the self-sacrificing contract — so callers must check
        :attr:`Process.resume_pending` before calling.
        """
        if not self._ready:
            return None
        process = self._ready.pop()
        if process.resume_pending:
            # Put it back: a resumer's queue position is part of the
            # sacrifice contract and must not migrate.
            self._ready.append(process)
            return None
        return process

    def _take_current(self) -> Process:
        if self._current is None:
            raise SimulationError("no process holds the CPU")
        process = self._current
        self._current = None
        return process

    def publish_telemetry(self, registry, prefix: str = "sched.") -> None:
        """Publish the scheduling counters as ``{prefix}*`` gauges.

        Called once at the end of a run; the dispatch/preempt hot paths
        themselves stay uninstrumented.  Registration is idempotent:
        gauges are get-or-create and ``set`` overwrites, so a scheduler
        rebuilt inside one :class:`~repro.telemetry.Telemetry` handle
        (the sweep resume path) republishes under the same names without
        raising — the latest scheduler's counters win.  SMP publishes
        each core's queue under its own ``sched.core{i}.`` prefix.
        """
        registry.gauge(f"{prefix}dispatches").set(self.stats.dispatches)
        registry.gauge(f"{prefix}preemptions").set(self.stats.preemptions)
        registry.gauge(f"{prefix}voluntary_switches").set(self.stats.voluntary_switches)
        registry.gauge(f"{prefix}blocks").set(self.stats.blocks)
        registry.gauge(f"{prefix}unblocks").set(self.stats.unblocks)

"""The page-fault handler.

Reproduces the Figure 1 flow: the MMU raises the exception, the CPU
enters kernel mode, the handler classifies the fault, and for a major
fault marks the DMA to move the page from the ULL device into DRAM.
What happens *while* that DMA runs — busy-wait, context switch, or ITS
stealing — is the I/O policy's decision; the handler only provides the
mechanics and the cost accounting.

Timing and error contract: ``begin_major_fault`` charges exactly
``fault_handler_ns`` of software time, then issues the DMA read at
``handler_done_ns``.  The returned ``FaultContext.io_done_ns`` is the
*final* completion time — if fault injection made the read retry or
take the fallback path, those delays are already folded in, and the
handler records the read as retried (``fault.retried`` counter,
``retried`` field on the context).  The handler itself never fails:
every major fault eventually installs its page; policies see failure
only as a longer-than-estimated window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.config import MachineConfig
from repro.storage.dma import DMAController, DMARequest
from repro.vm.mm import MemoryManager


@dataclass(frozen=True)
class FaultContext:
    """Everything a policy needs to know about one major fault."""

    pid: int
    vpn: int
    now_ns: int
    handler_done_ns: int
    io_done_ns: int
    retried: bool = False
    tier: int = 0
    """Index of the storage tier that served the swap-in (always 0 on a
    single-device machine)."""


class PageFaultHandler:
    """Major-fault servicing: handler overhead + DMA swap-in."""

    def __init__(
        self,
        config: MachineConfig,
        memory: MemoryManager,
        dma: DMAController,
        *,
        telemetry=None,
    ) -> None:
        self.config = config
        self.memory = memory
        self.dma = dma
        self.telemetry = telemetry
        self.major_faults = 0
        self.handler_time_ns = 0
        self._observers: list[Callable[[FaultContext], None]] = []

    def add_observer(self, observer: Callable[[FaultContext], None]) -> None:
        """Register a callback invoked with every major fault's context.

        Observers see the :class:`FaultContext` as soon as the DMA read
        is issued — the same realised completion time the servicing
        policy sees, never the injector's ground-truth distribution.
        The adaptive I/O-mode controller feeds its online latency
        estimators from this hook.
        """
        self._observers.append(observer)

    def begin_major_fault(
        self,
        pid: int,
        vpn: int,
        now_ns: int,
        on_complete: Optional[Callable[[DMARequest, int], None]] = None,
    ) -> FaultContext:
        """Service a major fault starting at *now_ns*.

        Charges the software handler cost, then issues the DMA page read.
        Returns the :class:`FaultContext` with both the handler-exit time
        and the I/O completion time; *on_complete* fires as an event when
        the page lands in DRAM.
        """
        self.major_faults += 1
        self.handler_time_ns += self.config.fault_handler_ns
        handler_done = now_ns + self.config.fault_handler_ns
        request = DMARequest(
            pid=pid, vpn=vpn, page_bytes=self.memory.frames.page_size, prefetch=False
        )
        # Resolve the backing tier before issuing: a promotion triggered
        # by this very read may re-place the page, and the context must
        # name the tier that actually served it.
        tier = self.dma.tier_of(pid, vpn)
        causal = self.telemetry.causal if self.telemetry is not None else None
        if causal is not None:
            # The fault root; the DMA controller's issue/retry/complete
            # nodes attach underneath via the open scope.
            causal.open_fault(pid, vpn, now_ns)
        try:
            io_done = self.dma.read_page(handler_done, request, on_complete)
        finally:
            if causal is not None:
                causal.pop()
        retried = self.dma.last_read_attempts > 1
        if retried and self.telemetry is not None:
            self.telemetry.counter("fault.retried").inc()
        if self.telemetry is not None:
            self.telemetry.record_span(
                "fault.handler", now_ns, handler_done,
                track="cpu", pid=pid, args={"vpn": vpn},
            )
            self.telemetry.histogram("fault.window_ns").observe(
                io_done - handler_done
            )
            self.telemetry.counter("fault.major").inc()
        context = FaultContext(
            pid=pid,
            vpn=vpn,
            now_ns=now_ns,
            handler_done_ns=handler_done,
            io_done_ns=io_done,
            retried=retried,
            tier=tier,
        )
        for observer in self._observers:
            observer(context)
        return context

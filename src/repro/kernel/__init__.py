"""Mini Linux-style kernel: processes, SCHED_RR, context switches,
page-fault handling, kernel threads."""

from repro.kernel.process import Process, ProcessState, ProcessStats
from repro.kernel.scheduler import RoundRobinScheduler, SchedulerStats
from repro.kernel.smp import SMPScheduler, StealStats
from repro.kernel.context import ContextSwitchModel
from repro.kernel.fault import FaultContext, PageFaultHandler
from repro.kernel.kthread import KernelThread

__all__ = [
    "Process",
    "ProcessState",
    "ProcessStats",
    "RoundRobinScheduler",
    "SchedulerStats",
    "SMPScheduler",
    "StealStats",
    "ContextSwitchModel",
    "FaultContext",
    "PageFaultHandler",
    "KernelThread",
]

"""repro: a full reproduction of "How to Steal CPU Idle Time When
Synchronous I/O Mode Becomes Promising" (Wu, Chang, Yang, Kuo — DAC
2024).

The package implements the paper's in-house trace-based simulator — a
simulated CPU (LLC, TLB, register file with INV bits, pre-execute
engine), a mini Linux-style kernel (4-level page tables, swap, SCHED_RR,
page-fault handler), and an ULL storage substrate (Z-NAND-class device,
PCIe link, DMA) — plus the proposed Idle-Time-Stealing (ITS) design and
the four baseline I/O policies it is evaluated against.

Quickstart::

    from repro import MachineConfig, Simulation, build_batch
    from repro import ITSPolicy, SyncIOPolicy

    config = MachineConfig()
    batch = build_batch("1_Data_Intensive", seed=7)
    result = Simulation(config, batch, ITSPolicy(), batch_name="demo").run()
    print(result.total_idle_ns, result.major_faults)
"""

from repro.adaptive import AdaptiveController, AdaptivePolicy
from repro.common import (
    ENGINE_NAMES,
    AdaptiveConfig,
    CacheConfig,
    ConfigError,
    CoreConfig,
    DeviceConfig,
    DeterministicRNG,
    FaultConfig,
    ITSConfig,
    MachineConfig,
    MemoryConfig,
    PCIeConfig,
    ReproError,
    SchedulerConfig,
    ServingConfig,
    SimulationError,
    TierConfig,
    TierSpec,
    TIER_PLACEMENTS,
    TLBConfig,
    TraceError,
    with_adaptive,
    with_cores,
    with_engine,
    with_serving,
    with_tiers,
)
from repro.engine import Engine, FastSimulation, build_simulation
from repro.faults import (
    FAULT_PROFILES,
    FaultInjector,
    with_fault_profile,
    with_tail_model,
)
from repro.baselines import (
    AsyncIOPolicy,
    IOPolicy,
    SyncIOPolicy,
    SyncPrefetchPolicy,
    SyncRunaheadPolicy,
)
from repro.core import ITSPolicy
from repro.sim import (
    PAPER_BATCHES,
    BatchSpec,
    EventLog,
    Machine,
    SimEvent,
    Simulation,
    SimulationResult,
    WorkloadInstance,
    batch_names,
    build_batch,
)
from repro.serving import Request, RequestRecord, ServingSummary, SLO
from repro.telemetry import Telemetry
from repro.tiering import TIER_PRESETS, TierSummary, TierUsage, with_tier_presets
from repro.trace import WORKLOADS, build_workload, workload_names
from repro.vm import VMA, AddressSpace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "MachineConfig",
    "CacheConfig",
    "TLBConfig",
    "DeviceConfig",
    "PCIeConfig",
    "MemoryConfig",
    "SchedulerConfig",
    "ITSConfig",
    "FaultConfig",
    "AdaptiveConfig",
    "with_adaptive",
    "CoreConfig",
    "with_cores",
    "ServingConfig",
    "with_serving",
    "TierConfig",
    "TierSpec",
    "TIER_PLACEMENTS",
    "with_tiers",
    "ENGINE_NAMES",
    "with_engine",
    # execution engines
    "Engine",
    "FastSimulation",
    "build_simulation",
    # faults
    "FAULT_PROFILES",
    "FaultInjector",
    "with_fault_profile",
    "with_tail_model",
    # errors
    "ReproError",
    "ConfigError",
    "TraceError",
    "SimulationError",
    # policies
    "IOPolicy",
    "AsyncIOPolicy",
    "SyncIOPolicy",
    "SyncRunaheadPolicy",
    "SyncPrefetchPolicy",
    "ITSPolicy",
    "AdaptivePolicy",
    "AdaptiveController",
    # simulation
    "Machine",
    "Simulation",
    "EventLog",
    "SimEvent",
    "SimulationResult",
    "WorkloadInstance",
    "BatchSpec",
    "PAPER_BATCHES",
    "batch_names",
    "build_batch",
    # serving
    "Request",
    "RequestRecord",
    "ServingSummary",
    "SLO",
    # tiering
    "TIER_PRESETS",
    "TierSummary",
    "TierUsage",
    "with_tier_presets",
    # telemetry
    "Telemetry",
    # traces
    "WORKLOADS",
    "build_workload",
    "workload_names",
    "DeterministicRNG",
    "VMA",
    "AddressSpace",
]

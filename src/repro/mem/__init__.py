"""Memory hierarchy models: LLC, TLB, store buffer, pre-execute cache, DRAM."""

from repro.mem.cache import CacheStats, SetAssociativeCache
from repro.mem.tlb import TLB, TLBStats
from repro.mem.store_buffer import StoreBuffer, StoreEntry
from repro.mem.preexec_cache import PreExecuteCache
from repro.mem.dram import DRAMModel
from repro.mem.hierarchy import AccessResult, MemoryHierarchy

__all__ = [
    "CacheStats",
    "SetAssociativeCache",
    "TLB",
    "TLBStats",
    "StoreBuffer",
    "StoreEntry",
    "PreExecuteCache",
    "DRAMModel",
    "AccessResult",
    "MemoryHierarchy",
]

"""A set-associative cache with LRU replacement.

The paper's simulated CPU has a 16-way, 8 MiB last-level cache (LLC) with
64-byte lines; this module provides the generic structure used for the LLC
(and, with per-byte INV extensions in :mod:`repro.mem.preexec_cache`, the
pre-execute cache).

The cache is physically indexed and tagged: keys are physical byte
addresses.  No data payloads are stored — the simulator tracks hit/miss
behaviour and ownership, which is all the paper's metrics need.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.common.config import CacheConfig
from repro.common.errors import AddressError


@dataclass
class CacheStats:
    """Hit/miss counters, split by demand vs. pre-execute accesses.

    ``demand_misses`` is the paper's "CPU cache miss" count (Figure 4c):
    misses suffered by committed instructions.  Warm-up fills performed by
    the pre-execute engine are tracked separately so they are never
    confused with demand traffic.
    """

    demand_hits: int = 0
    demand_misses: int = 0
    preexec_hits: int = 0
    preexec_misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def demand_accesses(self) -> int:
        """Total demand lookups."""
        return self.demand_hits + self.demand_misses

    @property
    def demand_miss_rate(self) -> float:
        """Demand miss ratio in [0, 1]; 0.0 when there were no accesses."""
        total = self.demand_accesses
        return self.demand_misses / total if total else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two stat records."""
        return CacheStats(
            demand_hits=self.demand_hits + other.demand_hits,
            demand_misses=self.demand_misses + other.demand_misses,
            preexec_hits=self.preexec_hits + other.preexec_hits,
            preexec_misses=self.preexec_misses + other.preexec_misses,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
        )


@dataclass
class _Line:
    """One resident cache line."""

    tag: int
    owner: Optional[int] = None
    dirty: bool = False


class SetAssociativeCache:
    """Physically-tagged set-associative cache with true-LRU replacement.

    Each line records its ``owner`` (the pid that installed it) so the
    context-switch pollution model and per-process statistics can reason
    about whose data is resident.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # Each set is an OrderedDict tag -> _Line; MRU at the end.
        self._sets: list[OrderedDict[int, _Line]] = [
            OrderedDict() for __ in range(config.num_sets)
        ]
        self._line_bits = config.line_size.bit_length() - 1
        self._set_mask = config.num_sets - 1

    # -- address helpers ------------------------------------------------

    def line_address(self, addr: int) -> int:
        """Round *addr* down to its cache-line address."""
        if addr < 0:
            raise AddressError(f"negative address {addr:#x}")
        return addr >> self._line_bits << self._line_bits

    def _index_tag(self, addr: int) -> tuple[int, int]:
        line = addr >> self._line_bits
        return line & self._set_mask, line >> (self._set_mask.bit_length())

    # -- lookups ---------------------------------------------------------

    def contains(self, addr: int) -> bool:
        """True if the line holding *addr* is resident (no LRU update)."""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    def access(
        self,
        addr: int,
        *,
        is_write: bool = False,
        owner: Optional[int] = None,
        preexec: bool = False,
    ) -> bool:
        """Look up *addr*; fill on miss.  Returns ``True`` on a hit.

        ``preexec=True`` accounts the access to the pre-execute engine's
        counters instead of the demand counters.  A hit refreshes LRU; a
        miss installs the line (evicting the set's LRU victim if full).
        """
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        line = cache_set.get(tag)
        if line is not None:
            cache_set.move_to_end(tag)
            if is_write:
                line.dirty = True
            self._count(hit=True, preexec=preexec)
            return True
        self._fill(index, tag, owner=owner, dirty=is_write)
        self._count(hit=False, preexec=preexec)
        return False

    def touch(self, addr: int, *, owner: Optional[int] = None) -> None:
        """Install the line holding *addr* without recording a lookup.

        Used by warm-up paths (e.g. valid pre-execute loads moving data
        into the cache) where the paper's model fills the cache as a side
        effect rather than as a demand access.
        """
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return
        self._fill(index, tag, owner=owner, dirty=False)

    # -- invalidation ----------------------------------------------------

    def invalidate_range(self, start: int, length: int) -> int:
        """Invalidate every line overlapping ``[start, start+length)``.

        Returns the number of lines dropped.  Called when a physical page
        is repurposed by the frame allocator.
        """
        if length <= 0:
            return 0
        if start < 0:
            raise AddressError(f"negative address {start:#x}")
        dropped = 0
        bits = self._line_bits
        set_mask = self._set_mask
        tag_shift = set_mask.bit_length()
        sets = self._sets
        # Iterate line numbers directly; a page-sized release walks 64
        # lines, so the per-line arithmetic is kept free of method calls.
        for line in range(start >> bits, ((start + length - 1) >> bits) + 1):
            if sets[line & set_mask].pop(line >> tag_shift, None) is not None:
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def evict_owner_fraction(self, owner: int, fraction: float) -> int:
        """Evict up to *fraction* of *owner*'s resident lines (LRU-first).

        Models context-switch pollution: when a process is switched out,
        the incoming process displaces part of its footprint.  Returns the
        number of lines evicted.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        owned: list[tuple[int, int]] = []
        for index, cache_set in enumerate(self._sets):
            for tag, line in cache_set.items():
                if line.owner == owner:
                    owned.append((index, tag))
        target = int(len(owned) * fraction)
        for index, tag in owned[:target]:
            del self._sets[index][tag]
        self.stats.evictions += target
        return target

    def flush(self) -> int:
        """Drop every line; returns the number dropped."""
        dropped = self.resident_lines()
        for cache_set in self._sets:
            cache_set.clear()
        self.stats.invalidations += dropped
        return dropped

    # -- introspection ----------------------------------------------------

    def publish_telemetry(self, registry, prefix: str) -> None:
        """Publish the hit/miss counters as ``<prefix>.*`` gauges.

        The per-access path stays uninstrumented — a run with telemetry
        attached publishes these once, at the end.
        """
        stats = self.stats
        registry.gauge(f"{prefix}.demand_hits").set(stats.demand_hits)
        registry.gauge(f"{prefix}.demand_misses").set(stats.demand_misses)
        registry.gauge(f"{prefix}.demand_miss_rate").set(stats.demand_miss_rate)
        registry.gauge(f"{prefix}.preexec_hits").set(stats.preexec_hits)
        registry.gauge(f"{prefix}.preexec_misses").set(stats.preexec_misses)
        registry.gauge(f"{prefix}.evictions").set(stats.evictions)
        registry.gauge(f"{prefix}.invalidations").set(stats.invalidations)

    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)

    def resident_lines_of(self, owner: int) -> int:
        """Number of resident lines installed by *owner*."""
        return sum(
            1 for cache_set in self._sets for line in cache_set.values() if line.owner == owner
        )

    def iter_lines(self) -> Iterator[tuple[int, _Line]]:
        """Yield ``(set_index, line)`` for every resident line."""
        for index, cache_set in enumerate(self._sets):
            for line in cache_set.values():
                yield index, line

    # -- internals ---------------------------------------------------------

    def _fill(self, index: int, tag: int, *, owner: Optional[int], dirty: bool) -> None:
        cache_set = self._sets[index]
        if len(cache_set) >= self.config.ways:
            cache_set.popitem(last=False)
            self.stats.evictions += 1
        cache_set[tag] = _Line(tag=tag, owner=owner, dirty=dirty)

    def _count(self, *, hit: bool, preexec: bool) -> None:
        if preexec:
            if hit:
                self.stats.preexec_hits += 1
            else:
                self.stats.preexec_misses += 1
        elif hit:
            self.stats.demand_hits += 1
        else:
            self.stats.demand_misses += 1

"""The composed CPU-side memory hierarchy: (optional L1 +) LLC over DRAM.

For every demand access the simulator asks the hierarchy for a latency.
A hit costs the hit latency of the level that served it; a miss adds the
DRAM access — and that DRAM wait is exactly the "CPU busy waiting for
the response of memory" component of the paper's idle-time metric, so
the result carries a ``stall_ns`` the metrics collector can attribute.

The paper's simulator models the LLC only; an optional L1 level is
available as a fidelity extension (runahead "populates upper-level
(e.g., L1 and L2) caches") and is disabled by default so the calibrated
figures are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import CacheConfig, MemoryConfig
from repro.mem.cache import SetAssociativeCache
from repro.mem.dram import DRAMModel


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy access.

    ``latency_ns`` is the full time the access took; ``stall_ns`` is the
    portion spent waiting on DRAM (zero on a cache hit), which feeds the
    idle-time accounting.
    """

    hit: bool
    latency_ns: int
    stall_ns: int


class MemoryHierarchy:
    """(L1 +) LLC backed by DRAM, with pre-execute-aware accounting."""

    def __init__(
        self,
        llc_config: CacheConfig,
        mem_config: MemoryConfig,
        l1_config: Optional[CacheConfig] = None,
    ) -> None:
        self.llc = SetAssociativeCache(llc_config)
        self.l1 = SetAssociativeCache(l1_config) if l1_config is not None else None
        self.dram = DRAMModel(mem_config)

    def access(
        self,
        paddr: int,
        *,
        is_write: bool = False,
        owner: Optional[int] = None,
        preexec: bool = False,
    ) -> AccessResult:
        """Perform a demand (or pre-execute) access to physical *paddr*."""
        if self.l1 is not None:
            if self.l1.access(paddr, is_write=is_write, owner=owner, preexec=preexec):
                return AccessResult(
                    hit=True, latency_ns=self.l1.config.hit_latency_ns, stall_ns=0
                )
            l1_fill_ns = self.l1.config.hit_latency_ns
        else:
            l1_fill_ns = 0
        hit = self.llc.access(paddr, is_write=is_write, owner=owner, preexec=preexec)
        if hit:
            return AccessResult(
                hit=True,
                latency_ns=l1_fill_ns + self.llc.config.hit_latency_ns,
                stall_ns=0,
            )
        dram_ns = (
            self.dram.write_latency_ns(self.llc.config.line_size)
            if is_write
            else self.dram.read_latency_ns(self.llc.config.line_size)
        )
        latency = l1_fill_ns + self.llc.config.hit_latency_ns + dram_ns
        return AccessResult(hit=False, latency_ns=latency, stall_ns=dram_ns)

    def warm(self, paddr: int, *, owner: Optional[int] = None) -> None:
        """Install the line for *paddr* without demand accounting.

        The pre-execute engine uses this to model "the data is moved to
        the CPU cache" side effects of valid pre-execute loads
        (Figure 3b step 4); with an L1 configured, the upper level is
        populated too, as in the runahead literature.
        """
        if self.l1 is not None:
            self.l1.touch(paddr, owner=owner)
        self.llc.touch(paddr, owner=owner)

    def invalidate_frame(self, frame_base: int, frame_size: int) -> int:
        """Drop every cache line belonging to an evicted physical frame."""
        dropped = self.llc.invalidate_range(frame_base, frame_size)
        if self.l1 is not None:
            dropped += self.l1.invalidate_range(frame_base, frame_size)
        return dropped

    def pollute_on_switch(self, outgoing_owner: int, fraction: float) -> int:
        """Apply context-switch pollution against *outgoing_owner*.

        The small L1 is flushed outright on a switch; the LLC loses the
        configured fraction of the outgoing process's lines.
        """
        polluted = self.llc.evict_owner_fraction(outgoing_owner, fraction)
        if self.l1 is not None:
            polluted += self.l1.flush()
        return polluted

"""Translation look-aside buffer model.

The TLB caches (pid, virtual page number) -> physical frame translations.
A context switch flushes it (the paper's motivation cites TLB shootdown as
one of the hidden costs of frequent context switching), and each flush
forces subsequent accesses through the simulated page-table walk.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.common.config import TLBConfig


@dataclass
class TLBStats:
    """TLB hit/miss/flush counters."""

    hits: int = 0
    misses: int = 0
    flushes: int = 0
    shootdowns: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss ratio in [0, 1]; 0.0 when there were no accesses."""
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """Fully-associative LRU TLB keyed by (pid, vpn)."""

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self.stats = TLBStats()
        self._entries: OrderedDict[tuple[int, int], int] = OrderedDict()

    def lookup(self, pid: int, vpn: int) -> Optional[int]:
        """Return the cached frame for (pid, vpn), or ``None`` on a miss."""
        key = (pid, vpn)
        frame = self._entries.get(key)
        if frame is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return frame

    def insert(self, pid: int, vpn: int, frame: int) -> None:
        """Install a translation, evicting the LRU entry if full."""
        key = (pid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = frame
            return
        if len(self._entries) >= self.config.entries:
            self._entries.popitem(last=False)
        self._entries[key] = frame

    def shootdown(self, pid: int, vpn: int) -> bool:
        """Invalidate one translation (page unmapped or remapped).

        Returns ``True`` if an entry was actually dropped.
        """
        dropped = self._entries.pop((pid, vpn), None) is not None
        if dropped:
            self.stats.shootdowns += 1
        return dropped

    def flush(self) -> int:
        """Drop all translations (context switch).  Returns count dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.flushes += 1
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    def publish_telemetry(self, registry, prefix: str = "tlb") -> None:
        """Publish the hit/miss/flush counters as ``<prefix>.*`` gauges
        (end-of-run; the lookup hot path stays uninstrumented)."""
        registry.gauge(f"{prefix}.hits").set(self.stats.hits)
        registry.gauge(f"{prefix}.misses").set(self.stats.misses)
        registry.gauge(f"{prefix}.miss_rate").set(self.stats.miss_rate)
        registry.gauge(f"{prefix}.flushes").set(self.stats.flushes)
        registry.gauge(f"{prefix}.shootdowns").set(self.stats.shootdowns)

"""Store buffer model for the pre-execute engine.

During pre-execution, valid store results are written to the store buffer
(never to the cache or memory — Section 3.4.2: "pre-execute store
operations do not write or modify any data in the CPU cache or memory").
Retired entries drain into the pre-execute cache, carrying their INV
status with them, so later pre-execute loads can be checked against them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass(frozen=True)
class StoreEntry:
    """One buffered store: an address range plus its INV status."""

    address: int
    size: int
    invalid: bool

    def overlaps(self, address: int, size: int) -> bool:
        """True if this entry intersects ``[address, address + size)``."""
        return self.address < address + size and address < self.address + self.size


class StoreBuffer:
    """Bounded FIFO of pending stores.

    When the buffer is full, the oldest entry *retires*: it is returned to
    the caller so the pre-execute engine can transfer it (and its INV
    bits) into the pre-execute cache, mirroring the paper's retired-store
    path (Figure 3a, step 3).
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError("store buffer capacity must be positive")
        self.capacity = capacity
        self._entries: deque[StoreEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True if a push would force a retirement."""
        return len(self._entries) >= self.capacity

    def push(self, address: int, size: int, *, invalid: bool) -> Optional[StoreEntry]:
        """Buffer a store; returns the retired entry if one was displaced."""
        retired = None
        if self.full:
            retired = self._entries.popleft()
        self._entries.append(StoreEntry(address=address, size=size, invalid=invalid))
        return retired

    def lookup(self, address: int, size: int) -> Optional[StoreEntry]:
        """Youngest entry overlapping the range, or ``None``.

        Pre-execute loads forward from the youngest matching store, the
        same way real store-to-load forwarding picks the most recent
        producer.
        """
        for entry in reversed(self._entries):
            if entry.overlaps(address, size):
                return entry
        return None

    def drain(self) -> Iterable[StoreEntry]:
        """Remove and yield every entry, oldest first.

        Called when pre-execution terminates: remaining buffered stores
        move to the pre-execute cache before state recovery.
        """
        while self._entries:
            yield self._entries.popleft()

    def clear(self) -> None:
        """Discard all entries without retiring them."""
        self._entries.clear()

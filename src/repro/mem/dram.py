"""DRAM timing model.

The paper models DRAM by its access latency (50 ns, citing an NVDIMM
study); capacity lives in :class:`repro.vm.frames.FrameAllocator`.  This
model adds simple bandwidth accounting so that analysis code can report
how much of the idle time was memory-side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MemoryConfig


@dataclass
class DRAMModel:
    """Latency model plus cumulative traffic counters."""

    config: MemoryConfig
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def read_latency_ns(self, n_bytes: int = 64) -> int:
        """Latency of a read of *n_bytes* (line fill by default)."""
        self.reads += 1
        self.bytes_read += n_bytes
        return self.config.dram_latency_ns

    def write_latency_ns(self, n_bytes: int = 64) -> int:
        """Latency of a write of *n_bytes*."""
        self.writes += 1
        self.bytes_written += n_bytes
        return self.config.dram_latency_ns

    @property
    def total_accesses(self) -> int:
        """Reads plus writes."""
        return self.reads + self.writes

"""The pre-execute cache: a cache with one INV bit per byte.

Section 3.4.2: "Within each CPU, we introduce a pre-execute cache,
associating an 'INV' bit with each byte.  This cache stores both data
values and their associated INV statuses linked to retired store
instructions from the store buffer."  Half of the LLC capacity is carved
out for it under Sync_Runahead and ITS.

Only the pre-execute engine may read or write this cache, and it is wiped
when pre-execution ends (its contents are speculative by construction).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.common.config import CacheConfig


class PreExecuteCache:
    """Line-granular cache whose lines carry a per-byte INV bitmap.

    Structurally a set-associative cache like the LLC, but lookups return
    validity information instead of mere presence: a pre-execute load that
    hits a line must check the INV bits of exactly the bytes it reads.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: list[OrderedDict[int, list[bool]]] = [
            OrderedDict() for __ in range(config.num_sets)
        ]
        self._line_bits = config.line_size.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self.writes = 0
        self.hits = 0
        self.misses = 0

    def _index_tag(self, addr: int) -> tuple[int, int]:
        line = addr >> self._line_bits
        return line & self._set_mask, line >> (self._set_mask.bit_length())

    def _line_offset(self, addr: int) -> int:
        return addr & (self.config.line_size - 1)

    def write(self, address: int, size: int, *, invalid: bool) -> None:
        """Record *size* bytes at *address* with the given INV status.

        Allocates lines as needed (evicting LRU victims), and sets or
        clears the INV bit of each written byte — Figure 3a steps 0/3.
        """
        self.writes += 1
        remaining = size
        addr = address
        while remaining > 0:
            index, tag = self._index_tag(addr)
            offset = self._line_offset(addr)
            span = min(remaining, self.config.line_size - offset)
            line = self._get_or_allocate(index, tag)
            for i in range(offset, offset + span):
                line[i] = invalid
            addr += span
            remaining -= span

    def lookup(self, address: int, size: int) -> Optional[bool]:
        """Check *size* bytes at *address*.

        Returns ``None`` if any byte is absent (pre-execute cache miss),
        ``True`` if all bytes are present and valid, ``False`` if present
        but at least one byte is marked INV (the dependent load must be
        invalidated — Figure 3b step 2).
        """
        remaining = size
        addr = address
        all_valid = True
        while remaining > 0:
            index, tag = self._index_tag(addr)
            offset = self._line_offset(addr)
            span = min(remaining, self.config.line_size - offset)
            line = self._sets[index].get(tag)
            if line is None:
                self.misses += 1
                return None
            self._sets[index].move_to_end(tag)
            if any(line[offset : offset + span]):
                all_valid = False
            addr += span
            remaining -= span
        self.hits += 1
        return all_valid

    def clear(self) -> None:
        """Discard all speculative contents (end of a pre-execute episode)."""
        for cache_set in self._sets:
            cache_set.clear()

    def resident_lines(self) -> int:
        """Number of lines currently allocated."""
        return sum(len(s) for s in self._sets)

    def _get_or_allocate(self, index: int, tag: int) -> list[bool]:
        cache_set = self._sets[index]
        line = cache_set.get(tag)
        if line is not None:
            cache_set.move_to_end(tag)
            return line
        if len(cache_set) >= self.config.ways:
            cache_set.popitem(last=False)
        line = [False] * self.config.line_size
        cache_set[tag] = line
        return line

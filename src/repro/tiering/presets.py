"""Named storage-tier presets.

The three presets span the latency regimes the paper's argument turns
on: a Z-NAND-class ULL device where sync-spin/ITS stealing pays off, a
conventional NVMe SSD where it clearly does not ("Faster than Flash"
measures roughly 3 us vs 80 us reads), and a remote far-memory swap
target in between — slow enough that two context switches plus the
demotion penalty beat spinning, which is exactly the regime boundary
``repro tiers`` tabulates.

Preset names are case-insensitive everywhere they are accepted
(``--tiers ULL,NVMe`` works); the canonical names are the dict keys.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.common.config import (
    DeviceConfig,
    MachineConfig,
    PCIeConfig,
    TierSpec,
    with_tiers,
)
from repro.common.errors import ConfigError
from repro.common.units import GIB, US

TIER_PRESETS: dict = {
    "ull": TierSpec(
        name="ull",
        # The default single-device machine: Samsung Z-NAND-class reads
        # over a PCIe 5.x x4 link.
        device=DeviceConfig(access_latency_ns=3 * US, channels=8, capacity_bytes=4 * GIB),
        pcie=PCIeConfig(lanes=4, bandwidth_per_lane_bytes_per_sec=3.983e9),
    ),
    "nvme": TierSpec(
        name="nvme",
        # Conventional TLC NVMe: ~80 us reads, more internal channels,
        # a PCIe 4.0 x4 link.
        device=DeviceConfig(access_latency_ns=80 * US, channels=32, capacity_bytes=16 * GIB),
        pcie=PCIeConfig(lanes=4, bandwidth_per_lane_bytes_per_sec=1.969e9),
    ),
    "far_memory": TierSpec(
        name="far_memory",
        # Remote swap over a 100 Gb fabric, modelled as one fat lane:
        # tens of microseconds end-to-end through the software stack.
        device=DeviceConfig(access_latency_ns=40 * US, channels=4, capacity_bytes=32 * GIB),
        pcie=PCIeConfig(lanes=1, bandwidth_per_lane_bytes_per_sec=12.5e9),
    ),
}
"""Registry of named tier presets, keyed by their canonical CLI name."""

_PRESET_BY_LOWER = {name.lower(): name for name in TIER_PRESETS}


def get_tier_preset(name: str) -> TierSpec:
    """Look up a preset case-insensitively, raising :class:`ConfigError`
    with the known names if it does not exist."""
    canonical = _PRESET_BY_LOWER.get(name.lower())
    if canonical is None:
        known = ", ".join(sorted(TIER_PRESETS))
        raise ConfigError(f"unknown tier preset {name!r} (known: {known})")
    return TIER_PRESETS[canonical]


def resolve_tier_specs(tiers: Iterable) -> tuple:
    """Normalise a mixed iterable of preset names and :class:`TierSpec`
    instances into a TierSpec tuple (order preserved)."""
    specs = []
    for tier in tiers:
        if isinstance(tier, TierSpec):
            specs.append(tier)
        else:
            specs.append(get_tier_preset(tier))
    return tuple(specs)


def with_tier_presets(
    config: MachineConfig, tiers: Iterable, **overrides: Any
) -> MachineConfig:
    """Return *config* with a tier block built from preset names.

    *tiers* may mix case-insensitive preset names and explicit
    :class:`TierSpec` instances; keyword overrides set the remaining
    :class:`~repro.common.config.TierConfig` fields (``placement``,
    ``promote_threshold``, ...).  ``enabled`` is forced on.
    """
    return with_tiers(config, resolve_tier_specs(tiers), **overrides)

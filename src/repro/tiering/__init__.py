"""Heterogeneous storage tiers.

Wraps N single-device storage stacks (:mod:`repro.storage`) behind one
DMA-controller surface, maps every swap slot to a tier through a
placement policy, migrates pages between tiers on heat thresholds, and
feeds the backing tier of each fault to the adaptive controller so
I/O-mode selection becomes per-device.  See ``docs/TIERING.md``.
"""

from repro.tiering.migration import MigrationEngine
from repro.tiering.placement import PagePlacement
from repro.tiering.presets import (
    TIER_PRESETS,
    get_tier_preset,
    resolve_tier_specs,
    with_tier_presets,
)
from repro.tiering.registry import DeviceTier, TieredDMAController, TierRegistry
from repro.tiering.summary import TierSummary, TierUsage

__all__ = [
    "DeviceTier",
    "MigrationEngine",
    "PagePlacement",
    "TIER_PRESETS",
    "TieredDMAController",
    "TierRegistry",
    "TierSummary",
    "TierUsage",
    "get_tier_preset",
    "resolve_tier_specs",
    "with_tier_presets",
]

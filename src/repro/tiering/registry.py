"""The device-tier registry and the tier-routing DMA facade.

:class:`TierRegistry` instantiates one full storage stack per
configured tier — device (its own channel set), PCIe link, optional
fault injector, and DMA controller — all sharing the machine's event
queue.  :class:`TieredDMAController` presents the single-controller
surface the rest of the simulator already speaks
(:class:`~repro.storage.dma.DMAController`'s), routing each request by
the faulting page's swap-slot tier and aggregating the per-tier
counters, so the fault handler, prefetcher and eviction write-back path
run unchanged on a heterogeneous machine.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.common.events import EventQueue
from repro.faults.injector import FaultInjector
from repro.faults.profiles import get_fault_profile
from repro.storage.device import ULLDevice
from repro.storage.dma import DMAController, DMARequest
from repro.storage.pcie import PCIeLink
from repro.tiering.placement import PagePlacement
from repro.tiering.summary import TierSummary, TierUsage


@dataclass
class DeviceTier:
    """One tier's hardware stack plus its run-time tallies."""

    index: int
    spec: object  # TierSpec
    device: ULLDevice
    link: PCIeLink
    injector: Optional[FaultInjector]
    dma: DMAController
    demand_reads: int = 0
    prefetch_reads: int = 0
    writebacks: int = 0
    read_wait_ns: int = 0
    """Summed completion latency of reads routed to this tier — the
    per-device decomposition of the ledger's ``dma_wait`` category."""
    migrations_in: int = 0
    migrations_out: int = 0
    decisions: dict = field(
        default_factory=lambda: {"sync": 0, "steal": 0, "async": 0}
    )


class TierRegistry:
    """All configured tiers, their placement map, and per-tier tallies."""

    def __init__(
        self,
        config: MachineConfig,
        events: EventQueue,
        memory,
        placement: PagePlacement,
        *,
        telemetry=None,
    ) -> None:
        self.config = config
        self.memory = memory
        self.placement = placement
        self.telemetry = telemetry
        self.migration = None  # installed by the machine when enabled
        self.tiers: list[DeviceTier] = []
        for index, spec in enumerate(config.tiers.tiers):
            faults = (
                get_fault_profile(spec.fault_profile)
                if spec.fault_profile
                else config.faults
            )
            injector = None
            if faults.enabled:
                # Distinct per-tier seeds: two tiers sharing a profile
                # must not replay the same latency/outcome sequence.
                injector = FaultInjector(
                    dataclasses.replace(faults, seed=faults.seed + index),
                    telemetry=telemetry,
                )
            device = ULLDevice(spec.device, injector=injector)
            link = PCIeLink(spec.pcie, injector=injector)
            dma = DMAController(
                device, link, events, telemetry=telemetry, injector=injector
            )
            self.tiers.append(
                DeviceTier(
                    index=index,
                    spec=spec,
                    device=device,
                    link=link,
                    injector=injector,
                    dma=dma,
                )
            )

    def __len__(self) -> int:
        return len(self.tiers)

    def tier_of(self, pid: int, vpn: int) -> int:
        """Tier backing (pid, vpn): the tier of its swap slot."""
        pte = self.memory.mm_of(pid).pte_for(vpn)
        if pte is None or pte.swap_slot is None:
            raise SimulationError(
                f"(pid={pid}, vpn={vpn:#x}) has no swap slot to route by"
            )
        return self.placement.tier_of_slot(pte.swap_slot)

    def name_of(self, index: int) -> str:
        """Canonical name of tier *index*."""
        return self.tiers[index].spec.name

    def note_decision(self, index: int, mode: str) -> None:
        """Record an adaptive mode decision against the backing tier."""
        self.tiers[index].decisions[mode] = self.tiers[index].decisions.get(mode, 0) + 1

    # -- reporting ------------------------------------------------------------

    def summary(self) -> TierSummary:
        """Freeze the per-tier tallies into a result-side record."""
        migration = self.migration
        return TierSummary(
            placement=self.config.tiers.placement,
            promotions=migration.promotions if migration else 0,
            demotions=migration.demotions if migration else 0,
            migration_ns=migration.migration_ns if migration else 0,
            tiers=[
                TierUsage(
                    name=tier.spec.name,
                    demand_reads=tier.demand_reads,
                    prefetch_reads=tier.prefetch_reads,
                    writebacks=tier.writebacks,
                    retries=tier.dma.retries,
                    retried_ns=tier.device.stats.retried_ns,
                    migrations_in=tier.migrations_in,
                    migrations_out=tier.migrations_out,
                    decisions=dict(tier.decisions),
                )
                for tier in self.tiers
            ],
        )

    def publish_telemetry(self, registry) -> None:
        """End-of-run ``tier.<name>.*`` gauges: per-device traffic, the
        ``dma_wait`` ledger category split by device, and the retried-op
        latency bucket."""
        for tier in self.tiers:
            prefix = f"tier.{tier.spec.name}."
            registry.gauge(f"{prefix}demand_reads").set(tier.demand_reads)
            registry.gauge(f"{prefix}prefetch_reads").set(tier.prefetch_reads)
            registry.gauge(f"{prefix}writebacks").set(tier.writebacks)
            registry.gauge(f"{prefix}read_wait_ns").set(tier.read_wait_ns)
            registry.gauge(f"{prefix}retries").set(tier.dma.retries)
            registry.gauge(f"{prefix}retried_ns").set(tier.device.stats.retried_ns)
            registry.gauge(f"{prefix}used_slots").set(
                self.placement.used[tier.index]
            )
            for mode, count in tier.decisions.items():
                registry.gauge(f"{prefix}decisions.{mode}").set(count)
        if self.migration is not None:
            registry.gauge("tier.promotions").set(self.migration.promotions)
            registry.gauge("tier.demotions").set(self.migration.demotions)
            registry.gauge("tier.migration_ns").set(self.migration.migration_ns)


class TieredDMAController:
    """Routes the :class:`~repro.storage.dma.DMAController` surface by
    the requested page's tier.

    Counter attributes (``inflight``, ``completed``, ...) aggregate over
    the per-tier controllers, so simulator code that reads
    ``machine.dma.inflight`` or publishes ``dma.*`` gauges is oblivious
    to tiering.
    """

    def __init__(self, registry: TierRegistry) -> None:
        self.registry = registry
        self.last_read_attempts = 1

    # -- routing -------------------------------------------------------------

    def tier_of(self, pid: int, vpn: int) -> int:
        """Tier backing (pid, vpn) (see :meth:`TierRegistry.tier_of`)."""
        return self.registry.tier_of(pid, vpn)

    def read_page(
        self,
        now_ns: int,
        request: DMARequest,
        on_complete: Optional[Callable[[DMARequest, int], None]] = None,
    ) -> int:
        """Issue the read on the backing tier's controller; demand reads
        additionally feed the migration engine's per-page heat count."""
        index = self.registry.tier_of(request.pid, request.vpn)
        tier = self.registry.tiers[index]
        done = tier.dma.read_page(now_ns, request, on_complete)
        self.last_read_attempts = tier.dma.last_read_attempts
        if request.prefetch:
            tier.prefetch_reads += 1
        else:
            tier.demand_reads += 1
        tier.read_wait_ns += done - now_ns
        if not request.prefetch and self.registry.migration is not None:
            self.registry.migration.on_demand_read(
                request.pid, request.vpn, index, now_ns
            )
        return done

    def write_page(
        self,
        now_ns: int,
        request: DMARequest,
        on_complete: Optional[Callable[[DMARequest, int], None]] = None,
    ) -> int:
        """Issue the write-back on the backing tier's controller."""
        index = self.registry.tier_of(request.pid, request.vpn)
        tier = self.registry.tiers[index]
        done = tier.dma.write_page(now_ns, request, on_complete)
        tier.writebacks += 1
        return done

    def estimate_read_latency(self, now_ns: int) -> int:
        """Best-case read estimate across tiers (the fastest device a
        policy could be planning against); tier-specific planning goes
        through :meth:`estimate_tier_read_latency`."""
        return min(
            tier.dma.estimate_read_latency(now_ns) for tier in self.registry.tiers
        )

    def estimate_tier_read_latency(self, now_ns: int, index: int) -> int:
        """Read estimate for a specific tier."""
        return self.registry.tiers[index].dma.estimate_read_latency(now_ns)

    # -- aggregated counters ---------------------------------------------------

    @property
    def inflight(self) -> int:
        return sum(tier.dma.inflight for tier in self.registry.tiers)

    @property
    def completed(self) -> int:
        return sum(tier.dma.completed for tier in self.registry.tiers)

    @property
    def prefetches_issued(self) -> int:
        return sum(tier.dma.prefetches_issued for tier in self.registry.tiers)

    @property
    def writebacks_issued(self) -> int:
        return sum(tier.dma.writebacks_issued for tier in self.registry.tiers)

    @property
    def retries(self) -> int:
        return sum(tier.dma.retries for tier in self.registry.tiers)

    @property
    def fallbacks(self) -> int:
        return sum(tier.dma.fallbacks for tier in self.registry.tiers)

"""Page placement: which tier backs each swap slot.

The placement policy decides a page's tier once, at the instant its
swap slot is allocated (process registration or first eviction); the
slot-to-tier map then stays stable until the slot is freed or the
migration engine re-places the page.  Policies:

* ``pid_hash`` — every page of a process lands on ``pid % n`` (whole
  processes are tier-homogeneous, the cleanest setting for comparing
  per-tier mode selection);
* ``round_robin`` — allocations stripe across tiers, interleaving every
  footprint over all devices;
* ``hot_cold`` — every page starts on the slowest (last) tier and only
  promotion moves it up, so the fast tier's population is exactly the
  pages that proved hot.

Per-tier capacity (``device.capacity_bytes`` in pages) is enforced with
deterministic spill: if the chosen tier is full the page takes the next
tier with space, scanning from the choice toward the slow end and then
wrapping to the fast end.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import TierConfig
from repro.common.errors import SimulationError


class PagePlacement:
    """Slot-to-tier routing map plus the static placement policy."""

    def __init__(self, config: TierConfig, page_size: int) -> None:
        self.config = config
        self.n_tiers = len(config.tiers)
        self.capacity_slots = [
            max(1, spec.device.capacity_bytes // page_size) for spec in config.tiers
        ]
        self.used = [0] * self.n_tiers
        self._slot_tier: dict[int, int] = {}
        self._pins: dict[tuple[int, int], int] = {}
        self._rr_next = 0

    @property
    def total_slots(self) -> int:
        """Combined swap capacity across all tiers, in slots."""
        return sum(self.capacity_slots)

    # -- routing -------------------------------------------------------------

    def tier_of_slot(self, slot: int) -> int:
        """Tier backing *slot* (it must be allocated)."""
        tier = self._slot_tier.get(slot)
        if tier is None:
            raise SimulationError(f"swap slot {slot} is not mapped to a tier")
        return tier

    def slots_on(self, tier: int) -> list[int]:
        """Allocated slots backed by *tier*, in deterministic order."""
        return sorted(s for s, t in self._slot_tier.items() if t == tier)

    def pin(self, pid: int, vpn: int, tier: int) -> None:
        """Force (pid, vpn)'s next allocations onto *tier* (migration)."""
        self._pins[(pid, vpn)] = tier

    def pinned_tier(self, pid: int, vpn: int) -> Optional[int]:
        """The migration pin of (pid, vpn), if any."""
        return self._pins.get((pid, vpn))

    # -- SwapArea observers ---------------------------------------------------

    def note_allocate(self, slot: int, pid: int, vpn: int) -> None:
        """SwapArea allocation hook: place the page and record the slot."""
        tier = self._choose(pid, vpn)
        self._slot_tier[slot] = tier
        self.used[tier] += 1

    def note_free(self, slot: int) -> None:
        """SwapArea release hook: forget the slot's tier."""
        tier = self._slot_tier.pop(slot, None)
        if tier is not None:
            self.used[tier] -= 1

    # -- the policy -----------------------------------------------------------

    def _choose(self, pid: int, vpn: int) -> int:
        pinned = self._pins.get((pid, vpn))
        if pinned is not None:
            preferred = pinned
        elif self.config.placement == "pid_hash":
            preferred = pid % self.n_tiers
        elif self.config.placement == "round_robin":
            preferred = self._rr_next % self.n_tiers
            self._rr_next += 1
        else:  # hot_cold: start cold, rely on promotion
            preferred = self.n_tiers - 1
        return self._first_with_space(preferred)

    def _first_with_space(self, preferred: int) -> int:
        for offset in range(self.n_tiers):
            tier = (preferred + offset) % self.n_tiers
            if self.used[tier] < self.capacity_slots[tier]:
                return tier
        raise SimulationError(
            "every storage tier is full; size the tier capacities to the footprint"
        )

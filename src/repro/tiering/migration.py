"""Threshold-based page promotion and demotion between tiers.

Every demand fault bumps the faulting page's heat count; once it
crosses ``TierConfig.promote_threshold`` on a non-fast tier, the page's
swap copy is promoted one tier toward index 0.  The copy is charged
through the real device and link models on *both* sides — a flash read
and outbound transfer on the source, an inbound transfer and flash
program on the destination — so migrations compete with demand traffic
for channels and link time instead of happening for free.

When a promotion would push the destination past
``demote_watermark * capacity``, the coldest page there (lowest heat
count, deterministic ``(pid, vpn)`` tie-break) is first demoted one
tier toward the slow end, making room without ever spilling hot pages
via the placement layer's capacity fallback.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import TierConfig


class MigrationEngine:
    """Tracks page heat and executes promotion/demotion copies."""

    def __init__(
        self,
        registry,
        memory,
        config: TierConfig,
        *,
        telemetry=None,
    ) -> None:
        self.registry = registry
        self.memory = memory
        self.config = config
        self.telemetry = telemetry
        self.fault_counts: dict[tuple[int, int], int] = {}
        self.promotions = 0
        self.demotions = 0
        self.migration_ns = 0

    def heat_of(self, pid: int, vpn: int) -> int:
        """Demand-fault count of (pid, vpn) since its last migration."""
        return self.fault_counts.get((pid, vpn), 0)

    def on_demand_read(self, pid: int, vpn: int, tier_index: int, now_ns: int) -> None:
        """Account one demand fault; promote once the threshold is hit."""
        if self.config.promote_threshold <= 0:
            return
        key = (pid, vpn)
        count = self.fault_counts.get(key, 0) + 1
        self.fault_counts[key] = count
        if tier_index == 0 or count < self.config.promote_threshold:
            return
        self.fault_counts[key] = 0
        self._migrate(pid, vpn, tier_index, tier_index - 1, now_ns, promotion=True)

    # -- the copy -------------------------------------------------------------

    def _migrate(
        self,
        pid: int,
        vpn: int,
        src_index: int,
        dst_index: int,
        now_ns: int,
        *,
        promotion: bool,
    ) -> None:
        registry = self.registry
        placement = registry.placement
        if promotion:
            capacity = placement.capacity_slots[dst_index]
            if placement.used[dst_index] + 1 > self.config.demote_watermark * capacity:
                victim = self._coldest_on(dst_index, exclude=(pid, vpn))
                if victim is not None:
                    self._migrate(
                        victim[0], victim[1], dst_index, dst_index + 1,
                        now_ns, promotion=False,
                    )
        src = registry.tiers[src_index]
        dst = registry.tiers[dst_index]
        page_bytes = self.memory.frames.page_size
        # Device-to-device copy through both hardware models.
        __, flash_done = src.device.submit_read(now_ns)
        __, out_done = src.link.schedule_transfer(flash_done, page_bytes)
        __, in_done = dst.link.schedule_transfer(out_done, page_bytes)
        __, done = dst.device.submit_write(in_done)
        self.migration_ns += done - now_ns
        # Re-place the swap copy: pin so the fresh allocation lands on
        # the destination, then swap slots under the page's feet.
        placement.pin(pid, vpn, dst_index)
        pte = self.memory.mm_of(pid).pte_for(vpn)
        if pte is not None and pte.swap_slot is not None:
            self.memory.swap.free(pte.swap_slot)
            pte.swap_slot = self.memory.swap.allocate(pid, vpn)
        src.migrations_out += 1
        dst.migrations_in += 1
        kind = "promote" if promotion else "demote"
        if promotion:
            self.promotions += 1
        else:
            self.demotions += 1
        if self.telemetry is not None:
            self.telemetry.record_span(
                "tier.migrate", now_ns, done,
                track="dma", pid=pid,
                args={
                    "vpn": vpn, "kind": kind,
                    "from": src.spec.name, "to": dst.spec.name,
                },
            )
            self.telemetry.counter(f"tier.migrate.{kind}").inc()
            self.telemetry.histogram("tier.migrate_ns").observe(done - now_ns)
            causal = self.telemetry.causal
            if causal is not None:
                causal.add(
                    "tier_migrate", now_ns,
                    pid=pid, vpn=vpn, parent=causal.parent,
                    kind=kind, src=src.spec.name, dst=dst.spec.name,
                )

    def _coldest_on(
        self, tier_index: int, exclude: tuple[int, int]
    ) -> Optional[tuple[int, int]]:
        """The least-hot (pid, vpn) whose swap slot lives on *tier_index*."""
        best: Optional[tuple[int, int]] = None
        best_heat = None
        for slot in self.registry.placement.slots_on(tier_index):
            owner = self.memory.swap.owner_of(slot)
            if owner is None or owner == exclude:
                continue
            heat = self.fault_counts.get(owner, 0)
            if best_heat is None or (heat, owner) < (best_heat, best):
                best, best_heat = owner, heat
        return best

"""Result-side tier records.

:class:`TierSummary` rides on
:class:`~repro.sim.metrics.SimulationResult` exactly like the serving
summary does: ``None`` on tier-disabled runs and omitted from the
stored encoding entirely, so legacy payloads and tier-disabled cache
entries stay byte-identical (see :mod:`repro.analysis.store`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TierUsage:
    """What one tier saw over a run."""

    name: str
    demand_reads: int = 0
    prefetch_reads: int = 0
    writebacks: int = 0
    retries: int = 0
    retried_ns: int = 0
    """Device busy time booked on retry re-submissions (the
    ``DeviceStats.retried_ns`` bucket), kept apart from first-attempt
    latency so tail tables do not conflate the two."""
    migrations_in: int = 0
    migrations_out: int = 0
    decisions: dict = field(
        default_factory=lambda: {"sync": 0, "steal": 0, "async": 0}
    )
    """Adaptive mode decisions taken for faults this tier backed."""

    @property
    def total_decisions(self) -> int:
        """All adaptive decisions on this tier's faults."""
        return sum(self.decisions.values())

    def decision_fraction(self, *modes: str) -> float:
        """Fraction of this tier's decisions in the given modes
        (0.0 when no decision was taken on this tier)."""
        total = self.total_decisions
        if total == 0:
            return 0.0
        return sum(self.decisions.get(m, 0) for m in modes) / total


@dataclass(frozen=True)
class TierSummary:
    """Per-tier accounting of one tiered run."""

    placement: str
    promotions: int = 0
    demotions: int = 0
    migration_ns: int = 0
    """Total device-to-device copy latency charged by migrations."""
    tiers: list = field(default_factory=list)
    """One :class:`TierUsage` per configured tier, in tier order."""

    def usage_of(self, name: str) -> TierUsage:
        """The :class:`TierUsage` of the named tier."""
        for usage in self.tiers:
            if usage.name == name:
                return usage
        raise KeyError(f"no tier named {name!r} in this summary")

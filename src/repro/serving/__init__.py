"""Open-loop serving layer: arrivals, request lifecycle, SLOs, admission.

See docs/SERVING.md for the full story.  The subpackage is deliberately
dependency-light: only :mod:`repro.serving.schedule` touches the
simulator (lazily), so the simulator itself can import the request and
admission types without a cycle.
"""

from repro.serving.admission import (
    ADMISSION_POLICIES,
    AdmissionPolicy,
    AdmissionView,
    Decision,
    build_admission,
)
from repro.serving.arrivals import build_arrivals
from repro.serving.request import Request, RequestRecord, ServingSummary
from repro.serving.schedule import build_request_load
from repro.serving.slo import SLO, latency_percentiles, nearest_rank

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "AdmissionView",
    "Decision",
    "build_admission",
    "build_arrivals",
    "Request",
    "RequestRecord",
    "ServingSummary",
    "build_request_load",
    "SLO",
    "latency_percentiles",
    "nearest_rank",
]

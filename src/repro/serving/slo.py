"""Latency-percentile and SLO-attainment arithmetic.

All percentile math is nearest-rank over integer-nanosecond latencies:
deterministic, interpolation-free, and therefore safe to compare
bit-for-bit across reruns, worker counts and platforms (the same
discipline the sweep cache applies to simulation output).

SLO semantics (docs/SERVING.md): an SLO is a latency *target* plus a
*percentile*.  Attainment is the fraction of all arrived requests whose
arrival-to-finish latency is at or under the target; a request that was
shed (dropped) never finished and always counts against attainment.
The SLO is met when attainment reaches the percentile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.common.errors import ConfigError


def nearest_rank(sorted_values: Sequence[int], percentile: float) -> int:
    """The nearest-rank percentile of an ascending, non-empty sequence.

    ``percentile`` lies in (0, 1]; rank ``ceil(p * n)`` (1-based), so
    ``nearest_rank(v, 1.0)`` is the maximum and every returned value is
    an actually observed sample.
    """
    if not sorted_values:
        raise ConfigError("percentile of an empty sample")
    if not 0.0 < percentile <= 1.0:
        raise ConfigError(f"percentile {percentile} outside (0, 1]")
    n = len(sorted_values)
    rank = min(n, max(1, math.ceil(percentile * n)))
    return sorted_values[rank - 1]


def latency_percentiles(latencies_ns: Sequence[int]) -> dict[str, Optional[int]]:
    """The headline p50/p95/p99 triple (``None`` on an empty sample)."""
    ordered = sorted(latencies_ns)
    if not ordered:
        return {"p50": None, "p95": None, "p99": None}
    return {
        "p50": nearest_rank(ordered, 0.50),
        "p95": nearest_rank(ordered, 0.95),
        "p99": nearest_rank(ordered, 0.99),
    }


@dataclass(frozen=True)
class SLO:
    """A latency target paired with the percentile that must meet it."""

    target_ns: int
    percentile: float = 0.99

    def __post_init__(self) -> None:
        if self.target_ns <= 0:
            raise ConfigError("SLO target must be positive")
        if not 0.0 < self.percentile <= 1.0:
            raise ConfigError("SLO percentile must lie in (0, 1]")

    def attainment(self, latencies_ns: Sequence[int], shed: int = 0) -> float:
        """Fraction of requests within the target.

        *latencies_ns* are the completed requests' latencies; *shed*
        counts requests that never completed (dropped by admission) and
        therefore missed by definition.  An empty load attains trivially.
        """
        total = len(latencies_ns) + shed
        if total == 0:
            return 1.0
        within = sum(1 for lat in latencies_ns if lat <= self.target_ns)
        return within / total

    def met(self, latencies_ns: Sequence[int], shed: int = 0) -> bool:
        """Whether attainment reaches the percentile."""
        return self.attainment(latencies_ns, shed) >= self.percentile

    def violations(self, latencies_ns: Sequence[int], shed: int = 0) -> int:
        """Requests over the target plus every shed request."""
        return sum(1 for lat in latencies_ns if lat > self.target_ns) + shed

"""Turn a serving config into a concrete request schedule.

The builder is the serving analogue of :func:`repro.sim.batch.build_batch`:
policy-independent (so policy comparisons are paired on identical
arrivals, workloads and priorities) and deterministic in
``(ServingConfig, batch, seed, scale)``.

Stream layout: the serving seed is mixed with the cell seed into one
base RNG, which is forked per concern —

* fork 1: arrival timestamps;
* fork 2: per-request workload mix (uniform over the batch members);
* fork 3: per-request priority;
* fork 10+i: the trace build of the batch's i-th workload template.

Per-request draws are consumed in arrival order, so raising the offered
rate only *appends* requests — request *i* keeps its workload, priority
and trace at every rate, which is what makes latency-vs-load curves
comparisons of the same traffic at different compression, not different
traffic.

Each request reuses its template's trace and mapped footprint (requests
of one type are identical jobs, as in a real serving fleet); variation
across requests comes from the mix, priorities and arrival spacing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRNG
from repro.serving.arrivals import build_arrivals
from repro.serving.request import Request

if TYPE_CHECKING:
    from repro.sim.simulator import WorkloadInstance


def build_request_load(
    config: MachineConfig,
    batch_name: str,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> tuple[list["WorkloadInstance"], list[Request]]:
    """Build the paired (workloads, requests) lists for an open-loop run.

    ``workloads[i]`` is the process request ``i`` spawns (pid == rid ==
    index, the invariant the simulator's arrival events rely on).
    Raises :class:`ConfigError` when the schedule is empty — an open-loop
    run with no arrivals has no latency story to tell (lower the rate
    floor or lengthen the duration instead).
    """
    # Imported here: this module is reachable from the simulator via the
    # serving package, so a top-level import would be circular.
    from repro.sim.batch import PAPER_BATCHES
    from repro.sim.simulator import WorkloadInstance
    from repro.trace.workloads import WORKLOADS, build_workload

    serving = config.serving
    if not serving.enabled:
        raise ConfigError("build_request_load needs an enabled serving block")
    spec = PAPER_BATCHES.get(batch_name)
    if spec is None:
        raise ConfigError(
            f"unknown batch {batch_name!r}; known: {', '.join(PAPER_BATCHES)}"
        )

    base = DeterministicRNG(serving.seed).fork(seed)
    arrivals = build_arrivals(serving, base.fork(1))
    if not arrivals:
        raise ConfigError(
            f"arrival schedule is empty ({serving.arrival} at "
            f"{serving.rate_per_s:g} req/s over {serving.duration_ms:g} ms); "
            "raise --rate or --duration"
        )
    mix_rng = base.fork(2)
    prio_rng = base.fork(3)
    builds = {
        name: build_workload(name, base.fork(10 + index), scale)
        for index, name in enumerate(spec.workloads)
    }
    levels = config.scheduler.priority_levels
    slo_target_ns = serving.slo_target_ns

    workloads: list[WorkloadInstance] = []
    requests: list[Request] = []
    for rid, arrival_ns in enumerate(arrivals):
        name = mix_rng.choice(spec.workloads)
        priority = prio_rng.randint(0, levels - 1)
        build = builds[name]
        workloads.append(
            WorkloadInstance(
                name=f"{name}#{rid}",
                trace=build.trace,
                priority=priority,
                data_intensive=WORKLOADS[name].data_intensive,
                mapped_vpns=build.mapped_vpns,
            )
        )
        requests.append(
            Request(
                rid=rid,
                workload=name,
                priority=priority,
                arrival_ns=arrival_ns,
                deadline_ns=arrival_ns + slo_target_ns,
            )
        )
    return workloads, requests

"""The request lifecycle and the per-run serving summary.

A :class:`Request` is the open-loop unit of work: one trace-driven
process spawned into the simulation at its arrival time, carrying a
deadline and a priority.  Its lifecycle (docs/SERVING.md)::

    pending --admit--> admitted --finish--> completed
       |  ^
       |  +--defer (re-attempts admission defer_ns later)
       +--drop----> dropped          (shed; never enters the run queue)
       +--demote--> admitted         (enters at the floor priority)

Timestamps recorded along the way:

* ``arrival_ns``  — the request entered the system (schedule time);
* ``enqueue_ns``  — admission succeeded and the process joined the run
  queue (later than arrival after deferrals);
* ``start_ns``    — first dispatch onto a CPU;
* ``finish_ns``   — last instruction committed.

Latency is always ``finish - arrival``: queueing caused by deferral or
load is the user-visible part of the story, not an excusable offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.config import ServingConfig
from repro.serving.slo import SLO, nearest_rank

OUTCOME_PENDING = "pending"
OUTCOME_ADMITTED = "admitted"
OUTCOME_COMPLETED = "completed"
OUTCOME_DROPPED = "dropped"


@dataclass
class Request:
    """One in-flight request (mutable; the simulator stamps it)."""

    rid: int
    """Request id; equals the pid of the process it spawns."""
    workload: str
    """Workload template drawn for this request (batch-mix member)."""
    priority: int
    """Scheduler priority drawn for this request."""
    arrival_ns: int
    deadline_ns: int
    """``arrival_ns + slo_target_ns``; misses are classified in
    ``repro path``."""

    enqueue_ns: Optional[int] = None
    start_ns: Optional[int] = None
    finish_ns: Optional[int] = None
    outcome: str = OUTCOME_PENDING
    deferrals: int = 0
    demoted: bool = False

    @property
    def latency_ns(self) -> Optional[int]:
        """Arrival-to-finish latency (``None`` until completed)."""
        if self.finish_ns is None:
            return None
        return self.finish_ns - self.arrival_ns

    @property
    def deadline_missed(self) -> bool:
        """Dropped, or completed after the deadline."""
        if self.outcome == OUTCOME_DROPPED:
            return True
        return self.finish_ns is not None and self.finish_ns > self.deadline_ns

    def to_record(self) -> "RequestRecord":
        """Freeze into the result-encoding form."""
        return RequestRecord(
            rid=self.rid,
            workload=self.workload,
            priority=self.priority,
            arrival_ns=self.arrival_ns,
            deadline_ns=self.deadline_ns,
            enqueue_ns=self.enqueue_ns,
            start_ns=self.start_ns,
            finish_ns=self.finish_ns,
            outcome=self.outcome,
            deferrals=self.deferrals,
            demoted=self.demoted,
        )


@dataclass(frozen=True)
class RequestRecord:
    """Immutable per-request outcome, serialised with the result."""

    rid: int
    workload: str
    priority: int
    arrival_ns: int
    deadline_ns: int
    enqueue_ns: Optional[int]
    start_ns: Optional[int]
    finish_ns: Optional[int]
    outcome: str
    deferrals: int
    demoted: bool

    @property
    def latency_ns(self) -> Optional[int]:
        if self.finish_ns is None:
            return None
        return self.finish_ns - self.arrival_ns

    @property
    def queue_wait_ns(self) -> Optional[int]:
        """Arrival to first dispatch (load-induced waiting)."""
        if self.start_ns is None:
            return None
        return self.start_ns - self.arrival_ns

    @property
    def service_ns(self) -> Optional[int]:
        """First dispatch to finish (execution incl. faults/preemption)."""
        if self.start_ns is None or self.finish_ns is None:
            return None
        return self.finish_ns - self.start_ns

    @property
    def deadline_missed(self) -> bool:
        if self.outcome == OUTCOME_DROPPED:
            return True
        return self.finish_ns is not None and self.finish_ns > self.deadline_ns


@dataclass
class ServingSummary:
    """Everything one open-loop run produced, request-side.

    Attached to :class:`~repro.sim.metrics.SimulationResult` as the
    ``serving`` field (``None`` on closed-loop runs so the stored
    encoding of legacy results stays byte-identical).
    """

    arrival: str
    rate_per_s: float
    duration_ns: int
    slo_target_ns: int
    slo_percentile: float
    requests: list[RequestRecord] = field(default_factory=list)

    @classmethod
    def from_config(
        cls, serving: ServingConfig, requests: list[RequestRecord]
    ) -> "ServingSummary":
        return cls(
            arrival=serving.arrival,
            rate_per_s=serving.rate_per_s,
            duration_ns=serving.duration_ns,
            slo_target_ns=serving.slo_target_ns,
            slo_percentile=serving.slo_percentile,
            requests=requests,
        )

    # -- request census -------------------------------------------------------

    @property
    def arrivals(self) -> int:
        return len(self.requests)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.requests if r.outcome == OUTCOME_COMPLETED)

    @property
    def dropped(self) -> int:
        return sum(1 for r in self.requests if r.outcome == OUTCOME_DROPPED)

    @property
    def demoted(self) -> int:
        return sum(1 for r in self.requests if r.demoted)

    @property
    def deferrals(self) -> int:
        """Total defer events (one request may defer repeatedly)."""
        return sum(r.deferrals for r in self.requests)

    # -- latency --------------------------------------------------------------

    def latencies_ns(self) -> list[int]:
        """Sorted arrival-to-finish latencies of completed requests."""
        return sorted(
            r.latency_ns for r in self.requests if r.latency_ns is not None
        )

    def percentile_ns(self, percentile: float) -> Optional[int]:
        """Nearest-rank latency percentile (``None`` with no completions)."""
        ordered = self.latencies_ns()
        if not ordered:
            return None
        return nearest_rank(ordered, percentile)

    @property
    def p50_ns(self) -> Optional[int]:
        return self.percentile_ns(0.50)

    @property
    def p95_ns(self) -> Optional[int]:
        return self.percentile_ns(0.95)

    @property
    def p99_ns(self) -> Optional[int]:
        return self.percentile_ns(0.99)

    @property
    def mean_latency_ns(self) -> Optional[float]:
        ordered = self.latencies_ns()
        if not ordered:
            return None
        return sum(ordered) / len(ordered)

    # -- SLO ------------------------------------------------------------------

    @property
    def slo(self) -> SLO:
        return SLO(target_ns=self.slo_target_ns, percentile=self.slo_percentile)

    @property
    def attainment(self) -> float:
        """Fraction of all arrivals finished within the target (drops
        count against)."""
        return self.slo.attainment(self.latencies_ns(), shed=self.dropped)

    @property
    def slo_met(self) -> bool:
        return self.slo.met(self.latencies_ns(), shed=self.dropped)

    @property
    def slo_violations(self) -> int:
        return self.slo.violations(self.latencies_ns(), shed=self.dropped)

    @property
    def deadline_misses(self) -> int:
        """Same census as :attr:`slo_violations`, via per-request flags."""
        return sum(1 for r in self.requests if r.deadline_missed)

"""Deterministic arrival processes for the open-loop serving layer.

Every generator turns a :class:`~repro.common.config.ServingConfig` and a
:class:`~repro.common.rng.DeterministicRNG` into a sorted list of arrival
timestamps (integer nanoseconds) inside ``[0, duration_ns)``.  The draws
are pure functions of the RNG stream, so the same config and seed always
replay the same schedule — the property every sweep-cache key and pinned
digest in this repo leans on.

Catalogue (docs/SERVING.md):

* ``poisson``  — homogeneous Poisson process: i.i.d. exponential
  inter-arrival gaps at ``rate_per_s``.
* ``mmpp``     — 2-state Markov-modulated Poisson process: a quiet state
  at the base rate and a burst state at ``burst_multiplier`` times it,
  with exponential dwell times.  Exponential memorylessness makes
  restarting the gap draw at each state switch exact, not an
  approximation.
* ``diurnal``  — sinusoidal rate schedule, sampled by thinning a
  homogeneous process at the peak rate.
* ``trace``    — verbatim replay of explicit timestamps.
"""

from __future__ import annotations

import math

from repro.common.config import ServingConfig
from repro.common.rng import DeterministicRNG

__all__ = ["build_arrivals", "poisson_arrivals", "mmpp_arrivals", "diurnal_arrivals", "trace_arrivals"]


def _exp_gap_ns(rng: DeterministicRNG, rate_per_ns: float) -> float:
    """One exponential inter-arrival gap via inverse-CDF sampling.

    ``DeterministicRNG`` deliberately exposes no ``expovariate``; deriving
    the draw from ``random()`` keeps the stream layout explicit.  With a
    fixed seed the uniform sequence is rate-independent, so scaling the
    rate scales every gap exactly — offered-load sweeps reuse the same
    schedule shape, compressed.
    """
    u = rng.random()
    return -math.log(1.0 - u) / rate_per_ns


def poisson_arrivals(
    rng: DeterministicRNG, rate_per_s: float, duration_ns: int
) -> list[int]:
    """Homogeneous Poisson arrivals at *rate_per_s* over the window."""
    rate_per_ns = rate_per_s / 1e9
    out: list[int] = []
    t = 0.0
    while True:
        t += _exp_gap_ns(rng, rate_per_ns)
        if t >= duration_ns:
            return out
        out.append(int(t))


def mmpp_arrivals(
    rng: DeterministicRNG,
    rate_per_s: float,
    burst_multiplier: float,
    mean_dwell_ns: float,
    mean_burst_ns: float,
    duration_ns: int,
) -> list[int]:
    """2-state MMPP: quiet at the base rate, bursts at a multiple of it."""
    quiet_rate = rate_per_s / 1e9
    burst_rate = quiet_rate * burst_multiplier
    out: list[int] = []
    t = 0.0
    in_burst = False
    switch_at = t + _exp_gap_ns(rng, 1.0 / mean_dwell_ns)
    while t < duration_ns:
        rate = burst_rate if in_burst else quiet_rate
        gap = _exp_gap_ns(rng, rate)
        if t + gap >= switch_at:
            # The state flips before the next arrival would land; thanks
            # to memorylessness the pending gap is simply re-drawn at the
            # new state's rate from the switch instant.
            t = switch_at
            in_burst = not in_burst
            mean = mean_burst_ns if in_burst else mean_dwell_ns
            switch_at = t + _exp_gap_ns(rng, 1.0 / mean)
            continue
        t += gap
        if t >= duration_ns:
            break
        out.append(int(t))
    return out


def diurnal_arrivals(
    rng: DeterministicRNG,
    rate_per_s: float,
    amplitude: float,
    period_ns: int,
    duration_ns: int,
) -> list[int]:
    """Sinusoidal rate schedule sampled by thinning.

    The instantaneous rate is ``rate * (1 + amplitude * sin(2*pi*t/T))``
    — above the mid-line for the first half-cycle, below it for the
    second, like daily traffic around a datacentre's peak.  Candidates
    are generated at the peak rate and accepted with probability
    ``lambda(t) / peak`` (Lewis-Shedler thinning), which preserves both
    determinism and the exact inhomogeneous-Poisson law.
    """
    peak_per_ns = rate_per_s * (1.0 + amplitude) / 1e9
    out: list[int] = []
    t = 0.0
    while True:
        t += _exp_gap_ns(rng, peak_per_ns)
        if t >= duration_ns:
            return out
        lam = rate_per_s * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period_ns))
        if rng.random() < lam / (rate_per_s * (1.0 + amplitude)):
            out.append(int(t))


def trace_arrivals(arrivals_ns: tuple, duration_ns: int) -> list[int]:
    """Replay explicit timestamps, clipped to the arrival window."""
    return [int(t) for t in arrivals_ns if 0 <= t < duration_ns]


def build_arrivals(serving: ServingConfig, rng: DeterministicRNG) -> list[int]:
    """Dispatch on ``serving.arrival`` and return the full schedule."""
    duration_ns = serving.duration_ns
    if serving.arrival == "poisson":
        return poisson_arrivals(rng, serving.rate_per_s, duration_ns)
    if serving.arrival == "mmpp":
        return mmpp_arrivals(
            rng,
            serving.rate_per_s,
            serving.burst_multiplier,
            serving.mean_dwell_ms * 1e6,
            serving.mean_burst_ms * 1e6,
            duration_ns,
        )
    if serving.arrival == "diurnal":
        return diurnal_arrivals(
            rng,
            serving.rate_per_s,
            serving.amplitude,
            serving.period_ns,
            duration_ns,
        )
    # ServingConfig validation restricts the field to the four names.
    return trace_arrivals(serving.arrivals_ns, duration_ns)

"""Admission / load-shedding policies for the open-loop serving layer.

At every (re-)arrival the simulator asks the configured policy what to
do with the request given a snapshot of system load.  Four verdicts:

* ``ADMIT``  — enter the run queue now, at the request's own priority;
* ``DROP``   — shed permanently (the request never runs and counts as
  an SLO violation);
* ``DEFER``  — retry admission ``defer_ns`` later, keeping the original
  arrival stamp (latency keeps accruing while deferred);
* ``DEMOTE`` — admit now but at the scheduler's floor priority, keeping
  interactive traffic ahead of the shed-candidate.

Policies are deliberately tiny and deterministic; observers (the
adaptive controller, tests, telemetry) can subscribe to every decision
via :meth:`AdmissionPolicy.subscribe`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.common.config import ServingConfig
from repro.common.errors import ConfigError
from repro.serving.request import Request


class Decision(enum.Enum):
    """Verdict of one admission consultation."""

    ADMIT = "admit"
    DROP = "drop"
    DEFER = "defer"
    DEMOTE = "demote"


@dataclass(frozen=True)
class AdmissionView:
    """Load snapshot the policy decides on.

    ``in_system`` counts admitted-but-unfinished requests (queued,
    running or blocked on I/O) — the open-loop analogue of queue depth.
    """

    now_ns: int
    in_system: int


Observer = Callable[[Request, AdmissionView, Decision], None]


class AdmissionPolicy:
    """Base policy: admit everything; subclasses override :meth:`judge`."""

    name = "admit_all"

    def __init__(self, queue_cap: int = 0) -> None:
        self.queue_cap = queue_cap
        self._observers: List[Observer] = []

    def subscribe(self, observer: Observer) -> None:
        """Register a callback fired after every decision."""
        self._observers.append(observer)

    def decide(self, request: Request, view: AdmissionView) -> Decision:
        """Judge the request and notify observers."""
        decision = self.judge(request, view)
        for observer in self._observers:
            observer(request, view, decision)
        return decision

    def judge(self, request: Request, view: AdmissionView) -> Decision:
        """The verdict itself (no observer side effects)."""
        return Decision.ADMIT

    @property
    def saturated_label(self) -> str:
        """Human label of the over-cap action (tables, docs)."""
        return self.name


class DropWhenFull(AdmissionPolicy):
    """Shed arrivals outright while the system is at capacity."""

    name = "drop"

    def judge(self, request: Request, view: AdmissionView) -> Decision:
        """Shed at the cap, admit below it."""
        if view.in_system >= self.queue_cap:
            return Decision.DROP
        return Decision.ADMIT


class DeferWhenFull(AdmissionPolicy):
    """Push back: over-cap arrivals retry a little later."""

    name = "defer"

    def judge(self, request: Request, view: AdmissionView) -> Decision:
        """Defer at the cap, admit below it."""
        if view.in_system >= self.queue_cap:
            return Decision.DEFER
        return Decision.ADMIT


class DemoteWhenFull(AdmissionPolicy):
    """Admit over-cap arrivals at the scheduler's floor priority."""

    name = "demote"

    def judge(self, request: Request, view: AdmissionView) -> Decision:
        """Demote at the cap, admit below it."""
        if view.in_system >= self.queue_cap:
            return Decision.DEMOTE
        return Decision.ADMIT


ADMISSION_POLICIES: Dict[str, type[AdmissionPolicy]] = {
    "admit_all": AdmissionPolicy,
    "drop": DropWhenFull,
    "defer": DeferWhenFull,
    "demote": DemoteWhenFull,
}
"""Every admission policy, keyed by the ``ServingConfig.admission`` name."""


def build_admission(serving: ServingConfig) -> AdmissionPolicy:
    """Instantiate the policy named by *serving* (validated upstream)."""
    cls = ADMISSION_POLICIES.get(serving.admission)
    if cls is None:
        raise ConfigError(
            f"unknown admission policy {serving.admission!r}; "
            f"known: {', '.join(ADMISSION_POLICIES)}"
        )
    return cls(queue_cap=serving.queue_cap)

"""The trace instruction model.

Traces are sequences of these instructions.  Registers are small integers
``[0, NUM_REGISTERS)``; the simulator tracks no data values, only INV
(validity) status, which is all the fault-aware pre-execute policy needs
(Section 3.4.2's rules are purely about validity propagation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union


@dataclass(frozen=True)
class Compute:
    """A register-only ALU operation: ``dst = f(srcs)``, taking *cycles*."""

    dst: int
    srcs: tuple[int, ...] = ()
    cycles: int = 1

    @property
    def kind(self) -> str:
        """Instruction kind tag."""
        return "compute"


@dataclass(frozen=True)
class Load:
    """A memory load: ``dst = mem[vaddr]``.

    ``addr_reg`` optionally names the register producing the address; if
    that register is INV during pre-execution, the load's address is
    bogus and the load must be skipped.
    """

    dst: int
    vaddr: int
    size: int = 8
    addr_reg: Optional[int] = None

    @property
    def kind(self) -> str:
        """Instruction kind tag."""
        return "load"


@dataclass(frozen=True)
class Store:
    """A memory store: ``mem[vaddr] = src``."""

    src: int
    vaddr: int
    size: int = 8
    addr_reg: Optional[int] = None

    @property
    def kind(self) -> str:
        """Instruction kind tag."""
        return "store"


@dataclass(frozen=True)
class Branch:
    """A conditional branch on *srcs*; ``taken`` records trace outcome.

    Branches cost one cycle.  During pre-execution a branch whose sources
    are INV follows the traced outcome (the engine plays the role of the
    branch predictor, which in runahead designs is trained well enough to
    follow the committed path most of the time).
    """

    srcs: tuple[int, ...] = ()
    taken: bool = False

    @property
    def kind(self) -> str:
        """Instruction kind tag."""
        return "branch"


Instruction = Union[Compute, Load, Store, Branch]
"""Any trace instruction."""


def is_memory_op(instr: Instruction) -> bool:
    """True for loads and stores."""
    return isinstance(instr, (Load, Store))


def registers_read(instr: Instruction) -> Sequence[int]:
    """Registers whose values the instruction consumes."""
    if isinstance(instr, Compute):
        return instr.srcs
    if isinstance(instr, Load):
        return (instr.addr_reg,) if instr.addr_reg is not None else ()
    if isinstance(instr, Store):
        base = [instr.src]
        if instr.addr_reg is not None:
            base.append(instr.addr_reg)
        return tuple(base)
    if isinstance(instr, Branch):
        return instr.srcs
    raise TypeError(f"unknown instruction {instr!r}")


def register_written(instr: Instruction) -> Optional[int]:
    """Destination register, or ``None`` for stores and branches."""
    if isinstance(instr, (Compute, Load)):
        return instr.dst
    return None

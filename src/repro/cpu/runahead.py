"""The pre-execute (runahead) engine.

Implements the fault-aware pre-execute policy's instruction semantics
(Section 3.4.2, Figure 3).  The same engine serves two users:

* the **Sync_Runahead** baseline, which opens a short episode on every
  demand LLC miss (footnote 4: "traditional runahead execution runs the
  pre-execution during handling cache misses");
* the **ITS self-improving thread**, which opens a long episode during a
  major page fault's synchronous busy-wait.

An episode checkpoints the register file, speculatively walks the
instruction stream under INV-propagation rules, warms the LLC with valid
loads/stores, confines speculative store data to the store buffer and
pre-execute cache, and finally restores the checkpoint and wipes all
speculative state.  Memory-level parallelism is modelled by charging each
pre-executed instruction a fixed small cost while letting the cache fills
it triggers overlap with the stall being hidden (the standard runahead
idealisation: fills complete by the time the core resumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import MachineConfig
from repro.cpu.isa import Branch, Compute, Instruction, Load, Store
from repro.cpu.registers import RegisterFile
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.preexec_cache import PreExecuteCache
from repro.mem.store_buffer import StoreBuffer
from repro.telemetry.registry import DEFAULT_COUNT_BOUNDS
from repro.vm.mm import MemoryManager


@dataclass
class PreExecuteStats:
    """Counters accumulated across pre-execute episodes."""

    episodes: int = 0
    instructions: int = 0
    skipped_invalid: int = 0
    lines_warmed: int = 0
    faults_discovered: int = 0
    store_buffer_retirements: int = 0

    def merged(self, other: "PreExecuteStats") -> "PreExecuteStats":
        """Element-wise sum."""
        return PreExecuteStats(
            episodes=self.episodes + other.episodes,
            instructions=self.instructions + other.instructions,
            skipped_invalid=self.skipped_invalid + other.skipped_invalid,
            lines_warmed=self.lines_warmed + other.lines_warmed,
            faults_discovered=self.faults_discovered + other.faults_discovered,
            store_buffer_retirements=self.store_buffer_retirements
            + other.store_buffer_retirements,
        )


class PreExecuteEngine:
    """Runs pre-execute episodes against a process's upcoming trace."""

    def __init__(
        self,
        config: MachineConfig,
        hierarchy: MemoryHierarchy,
        memory: MemoryManager,
        preexec_cache: PreExecuteCache,
        store_buffer_capacity: int = 32,
        *,
        telemetry=None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.memory = memory
        self.preexec_cache = preexec_cache
        self.store_buffer = StoreBuffer(store_buffer_capacity)
        self.stats = PreExecuteStats()
        self.telemetry = telemetry
        self._dirty_inv_ptes: list[tuple[int, int]] = []

    def run_episode(
        self,
        pid: int,
        registers: RegisterFile,
        trace: list[Instruction],
        start_index: int,
        budget_ns: int,
        *,
        faulting_reg: Optional[int] = None,
    ) -> tuple[PreExecuteStats, list[int]]:
        """Pre-execute from ``trace[start_index]`` within *budget_ns*.

        ``faulting_reg`` is the destination of the instruction whose data
        triggered the episode — "the initial invalid data is what triggers
        the page fault" — so it enters the episode marked INV.

        Returns ``(episode_stats, discovered_fault_vpns)``; the second
        element lists non-resident pages the speculative stream touched,
        which the ITS prefetcher may exploit.  All architectural state is
        restored before returning.
        """
        if budget_ns <= 0 or start_index >= len(trace):
            return PreExecuteStats(), []

        shadow = registers.checkpoint()
        if faulting_reg is not None:
            registers.set_invalid(faulting_reg, True)

        episode = PreExecuteStats(episodes=1)
        discovered: list[int] = []
        spent = 0
        index = start_index
        per_instr = self.config.its.preexec_instr_ns
        limit = start_index + self.config.its.preexec_max_instructions
        while index < len(trace) and index < limit and spent + per_instr <= budget_ns:
            spent += per_instr
            self._step(pid, registers, trace[index], episode, discovered)
            index += 1

        self._end_episode(registers, shadow, episode)
        self.stats = self.stats.merged(episode)
        if self.telemetry is not None:
            tel = self.telemetry
            tel.histogram(
                "runahead.instructions", DEFAULT_COUNT_BOUNDS
            ).observe(episode.instructions)
            tel.histogram(
                "runahead.skipped_inv", DEFAULT_COUNT_BOUNDS
            ).observe(episode.skipped_invalid)
            tel.counter("runahead.episodes").inc()
            tel.counter("runahead.lines_warmed").inc(episode.lines_warmed)
            tel.counter("runahead.faults_discovered").inc(episode.faults_discovered)
        return episode, discovered

    # -- per-instruction semantics -------------------------------------------

    def _step(
        self,
        pid: int,
        regs: RegisterFile,
        instr: Instruction,
        episode: PreExecuteStats,
        discovered: list[int],
    ) -> None:
        episode.instructions += 1
        if isinstance(instr, Compute):
            regs.set_invalid(instr.dst, regs.any_invalid(instr.srcs))
            if regs.is_invalid(instr.dst):
                episode.skipped_invalid += 1
            return
        if isinstance(instr, Branch):
            # INV-source branches follow the traced outcome (predictor).
            regs.record_branch(instr.taken)
            return
        if isinstance(instr, Load):
            self._preexec_load(pid, regs, instr, episode, discovered)
            return
        if isinstance(instr, Store):
            self._preexec_store(pid, regs, instr, episode, discovered)
            return
        raise TypeError(f"unknown instruction {instr!r}")

    def _preexec_load(
        self,
        pid: int,
        regs: RegisterFile,
        instr: Load,
        episode: PreExecuteStats,
        discovered: list[int],
    ) -> None:
        if instr.addr_reg is not None and regs.is_invalid(instr.addr_reg):
            # Bogus address: skip the access, poison the destination.
            regs.set_invalid(instr.dst, True)
            episode.skipped_invalid += 1
            return

        # Figure 3b step 1: youngest overlapping store-buffer entry wins.
        buffered = self.store_buffer.lookup(instr.vaddr, instr.size)
        if buffered is not None:
            regs.set_invalid(instr.dst, buffered.invalid)
            if buffered.invalid:
                episode.skipped_invalid += 1
            return

        # Step 2: the pre-execute cache, with per-byte INV checking.
        cached = self.preexec_cache.lookup(instr.vaddr, instr.size)
        if cached is not None:
            regs.set_invalid(instr.dst, not cached)
            if not cached:
                episode.skipped_invalid += 1
            return

        # Step 0: data still on the storage device -> invalid.
        pte = self.memory.mm_of(pid).pte_for(self.memory.vpn_of(instr.vaddr))
        if pte is None or not pte.present:
            regs.set_invalid(instr.dst, True)
            episode.skipped_invalid += 1
            episode.faults_discovered += 1
            discovered.append(self.memory.vpn_of(instr.vaddr))
            return

        paddr = self._paddr(pte.frame, instr.vaddr)  # type: ignore[arg-type]
        if self.hierarchy.llc.contains(paddr):
            # Step 3: present in the main cache -> consult the PTE INV bit.
            self.hierarchy.llc.access(paddr, owner=pid, preexec=True)
            regs.set_invalid(instr.dst, pte.inv)
            if pte.inv:
                episode.skipped_invalid += 1
            return

        # Step 4: only in memory -> valid; move the line into the cache.
        self.hierarchy.llc.access(paddr, owner=pid, preexec=True)
        episode.lines_warmed += 1
        regs.set_invalid(instr.dst, False)

    def _preexec_store(
        self,
        pid: int,
        regs: RegisterFile,
        instr: Store,
        episode: PreExecuteStats,
        discovered: list[int],
    ) -> None:
        if instr.addr_reg is not None and regs.is_invalid(instr.addr_reg):
            episode.skipped_invalid += 1
            return

        pte = self.memory.mm_of(pid).pte_for(self.memory.vpn_of(instr.vaddr))
        if pte is None or not pte.present:
            # Figure 3a step 0: data on the storage device -> invalid
            # store; allocate a pre-execute cache line with INV bytes and
            # set the PTE INV bit.
            self.preexec_cache.write(instr.vaddr, instr.size, invalid=True)
            if pte is not None and not pte.inv:
                pte.inv = True
                self._dirty_inv_ptes.append((pid, self.memory.vpn_of(instr.vaddr)))
            episode.skipped_invalid += 1
            episode.faults_discovered += 1
            discovered.append(self.memory.vpn_of(instr.vaddr))
            return

        invalid = regs.is_invalid(instr.src)
        # Step 1: the result enters the store buffer with its INV status.
        retired = self.store_buffer.push(instr.vaddr, instr.size, invalid=invalid)
        if retired is not None:
            # Step 3: retirement transfers data + INV bits to the
            # pre-execute cache.
            self.preexec_cache.write(retired.address, retired.size, invalid=retired.invalid)
            episode.store_buffer_retirements += 1
        # Step 2: data in memory but not in the cache -> fetch query.
        paddr = self._paddr(pte.frame, instr.vaddr)  # type: ignore[arg-type]
        if not self.hierarchy.llc.contains(paddr):
            self.hierarchy.llc.access(paddr, owner=pid, preexec=True)
            episode.lines_warmed += 1
        if invalid and not pte.inv:
            pte.inv = True
            self._dirty_inv_ptes.append((pid, self.memory.vpn_of(instr.vaddr)))
        if invalid:
            episode.skipped_invalid += 1

    # -- episode teardown ------------------------------------------------------

    def _end_episode(
        self,
        regs: RegisterFile,
        shadow,  # ShadowRegisterFile
        episode: PreExecuteStats,
    ) -> None:
        # Drain remaining buffered stores into the pre-execute cache, then
        # wipe all speculative state: the pre-execute cache contents, the
        # PTE INV bits set this episode, and the register file.
        for entry in self.store_buffer.drain():
            self.preexec_cache.write(entry.address, entry.size, invalid=entry.invalid)
            episode.store_buffer_retirements += 1
        self.preexec_cache.clear()
        for pid, vpn in self._dirty_inv_ptes:
            pte = self.memory.mm_of(pid).pte_for(vpn)
            if pte is not None:
                pte.inv = False
        self._dirty_inv_ptes.clear()
        regs.restore(shadow)

    def _paddr(self, frame: int, vaddr: int) -> int:
        page_size = self.memory.frames.page_size
        return frame * page_size + (vaddr & (page_size - 1))

"""Simulated CPU: instruction model, register file with INV bits, core,
and the pre-execute (runahead) engine."""

from repro.cpu.isa import Branch, Compute, Instruction, Load, Store
from repro.cpu.registers import NUM_REGISTERS, RegisterFile, ShadowRegisterFile
from repro.cpu.core import SimCPU, StepOutcome, StepResult
from repro.cpu.runahead import PreExecuteEngine, PreExecuteStats

__all__ = [
    "Branch",
    "Compute",
    "Instruction",
    "Load",
    "Store",
    "NUM_REGISTERS",
    "RegisterFile",
    "ShadowRegisterFile",
    "SimCPU",
    "StepOutcome",
    "StepResult",
    "PreExecuteEngine",
    "PreExecuteStats",
]

"""The simulated CPU core: committed (non-speculative) execution.

The core executes one trace instruction at a time against the TLB, page
table, LLC and DRAM, and reports how long it took and how much of that
was memory stall.  A touch of a swapped-out page stops the core with a
``MAJOR_FAULT`` outcome — what happens next (sync busy-wait, async
context switch, ITS stealing) is the installed I/O policy's decision, so
it lives in the simulator, not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.common.config import MachineConfig
from repro.cpu.isa import Branch, Compute, Instruction, Load, Store
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.tlb import TLB
from repro.vm.mm import FaultKind, MemoryManager


class StepOutcome(enum.Enum):
    """What happened when the core tried to execute an instruction."""

    COMPLETED = "completed"
    MAJOR_FAULT = "major_fault"


@dataclass(frozen=True)
class StepResult:
    """Timing breakdown of one execution attempt.

    ``time_ns`` is wall time consumed (zero for a MAJOR_FAULT: the fault
    cost is charged by the fault path); ``stall_ns`` is the memory-wait
    portion of ``time_ns``, which feeds the idle-time metric.
    ``fault_vpn`` is set only on MAJOR_FAULT.
    """

    outcome: StepOutcome
    time_ns: int
    stall_ns: int
    minor_fault: bool = False
    fault_vpn: Optional[int] = None


class SimCPU:
    """Committed-mode execution engine shared by every I/O policy."""

    def __init__(
        self,
        config: MachineConfig,
        hierarchy: MemoryHierarchy,
        tlb: TLB,
        memory: MemoryManager,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.tlb = tlb
        self.memory = memory
        self.instructions_committed = 0
        self._page_shift = memory.page_shift

    def execute(self, pid: int, instr: Instruction) -> StepResult:
        """Attempt to execute *instr* for process *pid*."""
        if isinstance(instr, Compute):
            self.instructions_committed += 1
            return StepResult(
                outcome=StepOutcome.COMPLETED,
                time_ns=instr.cycles * self.config.compute_ns_per_instr,
                stall_ns=0,
            )
        if isinstance(instr, Branch):
            self.instructions_committed += 1
            return StepResult(
                outcome=StepOutcome.COMPLETED,
                time_ns=self.config.compute_ns_per_instr,
                stall_ns=0,
            )
        if isinstance(instr, (Load, Store)):
            return self._execute_memory_op(pid, instr)
        raise TypeError(f"unknown instruction {instr!r}")

    def _execute_memory_op(self, pid: int, instr: Load | Store) -> StepResult:
        vpn = instr.vaddr >> self._page_shift
        time_ns = 0

        # Address translation: TLB first, then the simulated table walk.
        frame = self.tlb.lookup(pid, vpn)
        if frame is not None:
            time_ns += self.tlb.config.hit_latency_ns
            touch = self.memory.classify_touch(pid, vpn)
            if touch.kind is FaultKind.MAJOR:
                # The translation went stale (page evicted under us);
                # shoot it down and fall through to the fault path.
                self.tlb.shootdown(pid, vpn)
                return StepResult(
                    outcome=StepOutcome.MAJOR_FAULT, time_ns=0, stall_ns=0, fault_vpn=vpn
                )
        else:
            time_ns += self.tlb.config.miss_walk_latency_ns
            touch = self.memory.classify_touch(pid, vpn)
            if touch.kind is FaultKind.MAJOR:
                return StepResult(
                    outcome=StepOutcome.MAJOR_FAULT, time_ns=0, stall_ns=0, fault_vpn=vpn
                )
            frame = touch.frame

        minor = touch.kind is FaultKind.MINOR
        if minor:
            time_ns += self.config.fault_handler_ns
        self.tlb.insert(pid, vpn, touch.frame)  # type: ignore[arg-type]

        is_write = isinstance(instr, Store)
        if is_write and touch.pte is not None:
            touch.pte.dirty = True
        paddr = self._physical_address(touch.frame, instr.vaddr)  # type: ignore[arg-type]
        access = self.hierarchy.access(
            paddr, is_write=is_write, owner=pid, preexec=False
        )
        time_ns += access.latency_ns
        self.instructions_committed += 1
        return StepResult(
            outcome=StepOutcome.COMPLETED,
            time_ns=time_ns,
            stall_ns=access.stall_ns,
            minor_fault=minor,
        )

    def _physical_address(self, frame: int, vaddr: int) -> int:
        page_size = self.memory.frames.page_size
        return frame * page_size + (vaddr & (page_size - 1))

"""Register file with per-register INV bits, and its shadow copy.

Section 3.4.2 expands the register file with an "INV" bit per register so
invalidity cascades through dependent instructions; Section 3.4.3's
state-recovery policy checkpoints the architectural state (PC, SP, branch
history, return-address stack) to a shadow register file on ITS entry and
restores it before ITS ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

NUM_REGISTERS = 16
"""Architectural general-purpose registers in the trace ISA."""


@dataclass
class ShadowRegisterFile:
    """A checkpoint of the architectural state."""

    inv_bits: tuple[bool, ...]
    pc: int
    sp: int
    branch_history: int
    return_stack: tuple[int, ...]


class RegisterFile:
    """Architectural registers tracked by validity only.

    ``pc``/``sp``/``branch_history``/``return_stack`` exist so the
    state-recovery policy has real state to checkpoint and restore; the
    simulator advances ``pc`` as the committed instruction index.
    """

    def __init__(self, num_registers: int = NUM_REGISTERS) -> None:
        if num_registers <= 0:
            raise ValueError("need at least one register")
        self.num_registers = num_registers
        self._inv = [False] * num_registers
        self.pc = 0
        self.sp = 0
        self.branch_history = 0
        self.return_stack: list[int] = []

    # -- INV bits -----------------------------------------------------------

    def is_invalid(self, reg: int) -> bool:
        """INV status of one register."""
        return self._inv[reg]

    def any_invalid(self, regs: Iterable[int]) -> bool:
        """True if any of *regs* is marked INV."""
        return any(self._inv[r] for r in regs)

    def set_invalid(self, reg: int, invalid: bool = True) -> None:
        """Set or clear one register's INV bit."""
        self._inv[reg] = invalid

    def invalid_count(self) -> int:
        """How many registers are currently INV."""
        return sum(self._inv)

    def clear_all_invalid(self) -> None:
        """Clear every INV bit (normal-mode registers are always valid)."""
        for i in range(self.num_registers):
            self._inv[i] = False

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self) -> ShadowRegisterFile:
        """Copy the architectural state into a shadow register file."""
        return ShadowRegisterFile(
            inv_bits=tuple(self._inv),
            pc=self.pc,
            sp=self.sp,
            branch_history=self.branch_history,
            return_stack=tuple(self.return_stack),
        )

    def restore(self, shadow: ShadowRegisterFile) -> None:
        """Restore the state captured by :meth:`checkpoint`."""
        self._inv = list(shadow.inv_bits)
        self.pc = shadow.pc
        self.sp = shadow.sp
        self.branch_history = shadow.branch_history
        self.return_stack = list(shadow.return_stack)

    def record_branch(self, taken: bool) -> None:
        """Shift the branch outcome into the history register."""
        self.branch_history = ((self.branch_history << 1) | int(taken)) & 0xFFFF

"""Command-line interface.

Subcommands::

    repro run          one simulation (batch x policy x seed)
    repro trace        run instrumented; export a Perfetto-loadable trace
    repro stats        run instrumented; print the telemetry stats report
    repro ledger       run one cell; print the time-attribution ledger
    repro path         run one cell; print the causal critical-path report
    repro bench        wall-clock perf suite with baseline regression check
    repro figures      regenerate the paper's Figure 4 / Figure 5 series
    repro observation  the Section 2.2 motivation experiment
    repro crossover    sync-vs-async sweep over device latency
    repro tails        crossover shift under fault/tail-latency profiles
    repro adaptive     adaptive mode selection vs static policies
    repro cores        SMP core-count scaling per policy
    repro serve        open-loop serving: arrivals, latency SLOs, admission
    repro tiers        heterogeneous storage: per-tier adaptive mode selection
    repro workloads    list workloads and batches
    repro compare      diff two saved result files
    repro cache        result-cache statistics / clearing
    repro sweep        distributed grids: init / run / status / resume

``--policy`` accepts names case-insensitively (``--policy adaptive``
selects the ``Adaptive`` controller), as does ``--tiers``
(``--tiers ULL,NVMe`` works).  Every sim verb accepts
``--tiers``/``--placement`` to put the simulated machine on
heterogeneous storage (see docs/TIERING.md).

Grid-shaped commands (``figures``, ``crossover``, ``report``) accept
``--workers N`` (process-pool fan-out), ``--cache-dir`` and
``--no-cache`` — see docs/RUNNING.md for the full execution story,
including the ``repro sweep`` work-queue backend for multi-process /
multi-host grids.

Also usable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro import __version__
from repro.analysis.charts import render_bar_chart
from repro.analysis.experiments import (
    DEFAULT_ADAPTIVE_PROFILES,
    DEFAULT_CORE_COUNTS,
    DEFAULT_STATIC_POLICIES,
    DEFAULT_TAIL_PROFILES,
    POLICY_FACTORIES,
    run_adaptive_comparison,
    run_batch_policy,
    run_core_scaling,
    run_figure4,
    run_figure5,
    run_observation,
    run_tail_sensitivity,
)
from repro.analysis.store import load_results, save_results
from repro.analysis.report import write_report
from repro.analysis.sweeps import find_crossover, sweep_device_latency
from repro.analysis.tables import render_result_summary, render_series_table
from repro.common.config import (
    ADMISSION_POLICIES,
    ARRIVAL_PROCESSES,
    ENGINE_NAMES,
    TIER_PLACEMENTS,
    MachineConfig,
    with_cores,
    with_engine,
    with_serving,
)
from repro.common.errors import ConfigError, ReproError
from repro.common.units import format_time_ns
from repro.faults.profiles import (
    FAULT_PROFILES,
    TAIL_MODELS,
    with_fault_profile,
    with_tail_model,
)
from repro.sim.batch import PAPER_BATCHES, batch_names
from repro.sim.eventlog import EventLog
from repro.trace.workloads import EXTRA_WORKLOADS, WORKLOADS


def _machine_config(
    args: argparse.Namespace, *, apply_tiers: bool = True
) -> MachineConfig:
    config = MachineConfig.paper() if getattr(args, "paper", False) else MachineConfig()
    profile = getattr(args, "fault_profile", None)
    if profile:
        config = with_fault_profile(config, profile)
    tail_model = getattr(args, "tail_model", None)
    if tail_model:
        config = with_tail_model(config, tail_model)
    cores = getattr(args, "cores", None)
    if cores is not None:
        config = with_cores(config, cores)
    engine = getattr(args, "engine", None)
    if engine is not None and engine != "reference":
        config = with_engine(config, engine)
    if apply_tiers:
        tiers = getattr(args, "tiers", None)
        placement = getattr(args, "placement", None)
        if tiers:
            from repro.tiering import with_tier_presets

            # hot_cold needs migration to ever populate the fast tier;
            # the sim verbs have no threshold flag, so default it on
            # (the tiers verb exposes --promote-threshold properly).
            overrides = {"promote_threshold": 4} if placement == "hot_cold" else {}
            config = with_tier_presets(
                config, tiers, placement=placement or "pid_hash", **overrides
            )
        elif placement:
            raise ConfigError("--placement requires --tiers")
    return config


def _core_count(text: str) -> int:
    """``--cores`` converter: a positive integer, rejected cleanly."""
    try:
        count = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid core count {text!r}")
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"a machine needs at least one core, got {count}"
        )
    return count


def _positive_float(text: str) -> float:
    """Converter for flags that only make sense strictly positive
    (``--scale``, ``--rate``, ``--slo-ms``, ...): rejected with a clean
    one-line usage error instead of a downstream traceback."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid number {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value:g}")
    return value


def _positive_int(text: str) -> int:
    """Converter for strictly positive integer flags (``--workers``,
    ``--repeats``, ``--queue-cap``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {value}")
    return value


def _parse_seeds(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(s) for s in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad seed list {text!r}") from exc


_POLICY_BY_LOWER = {name.lower(): name for name in POLICY_FACTORIES}


def _policy_name(text: str) -> str:
    """Case-insensitive ``--policy`` converter (``adaptive`` -> ``Adaptive``)."""
    return _POLICY_BY_LOWER.get(text.lower(), text)


def _tier_list(text: str) -> tuple[str, ...]:
    """``--tiers`` converter: a comma-separated, case-insensitive list of
    tier preset names, canonicalised (``ULL,NVMe`` -> ``("ull", "nvme")``)
    and rejected with a clean one-line usage error when unknown."""
    from repro.tiering import get_tier_preset

    names = [part.strip() for part in text.split(",") if part.strip()]
    if not names:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated list of tier presets"
        )
    canonical = []
    for name in names:
        try:
            canonical.append(get_tier_preset(name).name)
        except ConfigError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from exc
    return tuple(canonical)


def _non_negative_int(text: str) -> int:
    """Converter for integer flags where zero means "off"
    (``--promote-threshold``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return value


def _non_negative_float(text: str) -> float:
    """Converter for float flags where zero is meaningful
    (``--backoff-s``: 0 retries immediately)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid number {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value:g}")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=_positive_float, default=1.0, help="trace length multiplier"
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the full-scale Section 4.1 platform instead of the scaled default",
    )
    parser.add_argument(
        "--fault-profile",
        choices=sorted(FAULT_PROFILES),
        default=None,
        help="enable fault injection with a named profile (see docs/FAULTS.md)",
    )
    parser.add_argument(
        "--tail-model",
        choices=list(TAIL_MODELS),
        default=None,
        help="override the active fault profile's read-latency tail model",
    )
    parser.add_argument(
        "--cores",
        type=_core_count,
        default=None,
        help="simulate an SMP machine with this many cores (see docs/SMP.md)",
    )
    parser.add_argument(
        "--engine",
        choices=list(ENGINE_NAMES),
        default=None,
        help="execution engine: the reference step loop (default) or the "
        "bit-identical vectorized fast path (see docs/ENGINES.md)",
    )
    parser.add_argument(
        "--tiers",
        type=_tier_list,
        default=None,
        metavar="TIER[,TIER...]",
        help="back the machine with heterogeneous storage tiers "
        "(presets: ull, nvme, far_memory; see docs/TIERING.md)",
    )
    parser.add_argument(
        "--placement",
        choices=list(TIER_PLACEMENTS),
        default=None,
        help="page-placement policy across --tiers (default: pid_hash)",
    )


def _add_serving(parser: argparse.ArgumentParser, *, sweep: bool) -> None:
    """Serving-layer flags (``repro serve``; ``repro path --serve``).

    ``sweep=True`` makes ``--rate`` accept several offered loads (the
    serve verb sweeps them); ``sweep=False`` keeps it a single value.
    """
    parser.add_argument(
        "--arrival",
        choices=list(ARRIVAL_PROCESSES),
        default="poisson",
        help="arrival process (see docs/SERVING.md)",
    )
    if sweep:
        parser.add_argument(
            "--rate", type=_positive_float, nargs="+", default=[500.0, 2000.0, 4000.0],
            metavar="REQ_PER_S", help="offered load(s) in requests/second",
        )
    else:
        parser.add_argument(
            "--rate", type=_positive_float, default=2000.0,
            metavar="REQ_PER_S", help="offered load in requests/second",
        )
    parser.add_argument(
        "--slo-ms", type=_positive_float, default=2.0,
        help="latency SLO target in milliseconds (arrival to finish)",
    )
    parser.add_argument(
        "--slo-percentile", type=float, default=0.99,
        help="fraction of requests that must meet the target (0..1)",
    )
    parser.add_argument(
        "--duration", type=_positive_float, default=40.0,
        help="open-loop window in milliseconds of simulated time",
    )
    parser.add_argument(
        "--admission",
        choices=list(ADMISSION_POLICIES),
        default="admit_all",
        help="load-shedding hook applied at admission",
    )
    parser.add_argument(
        "--queue-cap", type=_positive_int, default=None,
        help="in-system request cap for drop/defer/demote admission",
    )
    parser.add_argument(
        "--arrival-trace", metavar="FILE", default=None,
        help="timestamp file for --arrival trace (ns; JSON array or one per line)",
    )


def _load_arrival_trace(path: str) -> tuple[int, ...]:
    """Read replayed arrival timestamps: a JSON array, or whitespace-
    separated integers (ns since window start)."""
    from pathlib import Path

    try:
        text = Path(path).read_text(encoding="utf-8").strip()
    except OSError as exc:
        raise ConfigError(f"cannot read arrival trace {path}: {exc}") from exc
    if not text:
        raise ConfigError(f"arrival trace {path} is empty")
    try:
        if text.startswith("["):
            values = json.loads(text)
        else:
            values = text.split()
        return tuple(int(v) for v in values)
    except (ValueError, TypeError) as exc:
        raise ConfigError(
            f"arrival trace {path} must hold integer nanosecond timestamps: {exc}"
        ) from exc


def _serving_overrides(args: argparse.Namespace, *, rate: float) -> dict:
    """Cross-validate the serving flags and build ``with_serving``
    overrides (ConfigError -> one-line usage error via ``main``)."""
    if args.arrival == "trace" and not args.arrival_trace:
        raise ConfigError("--arrival trace requires --arrival-trace FILE")
    if args.arrival != "trace" and args.arrival_trace:
        raise ConfigError("--arrival-trace only applies with --arrival trace")
    overrides = dict(
        arrival=args.arrival,
        rate_per_s=rate,
        duration_ms=args.duration,
        slo_ms=args.slo_ms,
        slo_percentile=args.slo_percentile,
        admission=args.admission,
    )
    if args.queue_cap is not None:
        overrides["queue_cap"] = args.queue_cap
    if args.arrival_trace:
        overrides["arrivals_ns"] = _load_arrival_trace(args.arrival_trace)
    return overrides


def _add_exec(parser: argparse.ArgumentParser) -> None:
    """Execution-engine flags shared by the grid-shaped commands."""
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="simulate cells on a process pool of this size (1 = in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-its)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache for this run",
    )


def _make_exec(args: argparse.Namespace):
    """Build the (cache, telemetry, progress) trio from the exec flags."""
    from repro.analysis.runner import ResultCache
    from repro.telemetry import Telemetry

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    telemetry = Telemetry(events=False)

    def progress(done: int, total: int, cell, cached: bool) -> None:
        tag = "cache" if cached else "ran"
        print(f"  [{done}/{total}] {cell.describe()} ({tag})", file=sys.stderr)

    return cache, telemetry, progress


def _print_exec_summary(args: argparse.Namespace, cache, telemetry) -> None:
    """One stderr line: cells run vs served from cache."""
    hits = telemetry.counter("runner.cache.hit").value
    misses = telemetry.counter("runner.cache.miss").value
    if cache is None:
        print(f"cells: {misses} simulated (cache disabled)", file=sys.stderr)
    else:
        print(
            f"cells: {hits} cache hits, {misses} simulated "
            f"(workers={args.workers}, cache {cache.root})",
            file=sys.stderr,
        )


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: simulate one (batch, policy, seed) cell."""
    config = _machine_config(args)
    telemetry = None
    if getattr(args, "trace_out", None):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    event_log = EventLog() if args.events else None
    result = run_batch_policy(
        config,
        args.batch,
        args.policy,
        seed=args.seed,
        scale=args.scale,
        event_log=event_log,
        telemetry=telemetry,
    )
    print(render_result_summary(result))
    if args.save:
        save_results(args.save, [result])
        print(f"saved to {args.save}")
    if args.events and event_log is not None:
        event_log.to_csv(args.events)
        counts = ", ".join(f"{k}={v}" for k, v in sorted(event_log.counts().items()))
        print(f"event log ({len(event_log)} events: {counts}) written to {args.events}")
    if telemetry is not None:
        from repro.telemetry import export_chrome_trace

        export_chrome_trace(telemetry, args.trace_out)
        print(
            f"trace ({len(telemetry.tracer)} spans) written to {args.trace_out} "
            "(open in ui.perfetto.dev or chrome://tracing)"
        )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: run one cell instrumented and export the trace."""
    from repro.telemetry import Telemetry, export_chrome_trace, export_jsonl

    config = _machine_config(args)
    telemetry = Telemetry()
    result = run_batch_policy(
        config,
        args.batch,
        args.policy,
        seed=args.seed,
        scale=args.scale,
        telemetry=telemetry,
    )
    print(render_result_summary(result))
    if args.format == "jsonl":
        export_jsonl(telemetry, args.out)
    else:
        export_chrome_trace(telemetry, args.out)
    dropped = telemetry.tracer.dropped
    note = f", {dropped} dropped" if dropped else ""
    print(f"trace ({len(telemetry.tracer)} spans{note}) written to {args.out}")
    if telemetry.event_log is not None and telemetry.event_log.dropped:
        print(
            f"event log overflowed: {telemetry.event_log.dropped} events dropped "
            "(oldest first; raise event_capacity to keep them)"
        )
    if args.format == "chrome":
        print("open in ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: run one cell instrumented and print the report."""
    from repro.telemetry import Telemetry, render_stats_report

    config = _machine_config(args)
    telemetry = Telemetry(events=False)
    run_batch_policy(
        config,
        args.batch,
        args.policy,
        seed=args.seed,
        scale=args.scale,
        telemetry=telemetry,
    )
    title = f"{args.policy} on {args.batch} (seed {args.seed}, scale {args.scale})"
    print(render_stats_report(telemetry, title=title))
    return 0


def cmd_ledger(args: argparse.Namespace) -> int:
    """``repro ledger``: run one cell and print the time-attribution
    ledger (docs/OBSERVABILITY.md)."""
    from repro.telemetry import Telemetry

    config = _machine_config(args)
    telemetry = Telemetry(events=False, ledger=True)
    result = run_batch_policy(
        config,
        args.batch,
        args.policy,
        seed=args.seed,
        scale=args.scale,
        telemetry=telemetry,
    )
    ledger = telemetry.ledger
    assert ledger is not None
    cores = config.cores.count
    title = f"{args.policy} on {args.batch} (seed {args.seed}, scale {args.scale})"
    print(f"time-attribution ledger: {title}")
    print(ledger.render(result.makespan_ns, cores))
    print(
        f"conservation: {ledger.total_ns():,} ns attributed == "
        f"{result.makespan_ns:,} ns makespan x {cores} core(s)"
    )
    return 0


def cmd_path(args: argparse.Namespace) -> int:
    """``repro path``: run one cell with causal tracing and print the
    per-process critical-path report."""
    from repro.telemetry import Telemetry, render_path_report

    config = _machine_config(args)
    if args.serve:
        config = with_serving(config, **_serving_overrides(args, rate=args.rate))
    telemetry = Telemetry(events=False, causal=True)
    result = run_batch_policy(
        config,
        args.batch,
        args.policy,
        seed=args.seed,
        scale=args.scale,
        telemetry=telemetry,
    )
    graph = telemetry.causal
    assert graph is not None
    title = f"{args.policy} on {args.batch} (seed {args.seed}, scale {args.scale})"
    print(f"causal critical-path report: {title}")
    print(render_path_report(graph, result))
    if result.serving is not None:
        print()
        print(_render_deadline_misses(result.serving))
    return 0


def _render_deadline_misses(summary) -> str:
    """Classify each SLO deadline miss: shed at admission, queued (wait
    for a CPU dominated), or service (execution dominated)."""
    misses = [r for r in summary.requests if r.deadline_missed]
    lines = [
        f"deadline misses: {len(misses)} of {summary.arrivals} requests "
        f"(SLO {format_time_ns(summary.slo_target_ns)})"
    ]
    if not misses:
        return lines[0]

    def classify(r) -> str:
        if r.finish_ns is None:
            return "shed"
        return "queued" if (r.queue_wait_ns or 0) >= (r.service_ns or 0) else "service"

    census: dict[str, int] = {}
    for r in misses:
        census[classify(r)] = census.get(classify(r), 0) + 1
    lines.append(
        "  by cause: "
        + ", ".join(f"{k}={census[k]}" for k in ("shed", "queued", "service") if k in census)
        + "  (queued: waiting for a CPU; service: execution incl. faults)"
    )
    completed = [r for r in misses if r.finish_ns is not None]
    worst = sorted(completed, key=lambda r: r.latency_ns, reverse=True)[:10]
    if worst:
        lines.append("  worst completed misses (latency = queue wait + service):")
        for r in worst:
            lines.append(
                f"    rid={r.rid:<4d} {r.workload:<12s} [{classify(r):7s}] "
                f"latency={format_time_ns(r.latency_ns)} = "
                f"wait {format_time_ns(r.queue_wait_ns)} + "
                f"service {format_time_ns(r.service_ns)}"
                + (f"  ({r.deferrals} deferrals)" if r.deferrals else "")
            )
    return "\n".join(lines)


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: wall-clock perf suite with baseline regression
    check (docs/OBSERVABILITY.md)."""
    import datetime
    from pathlib import Path

    from repro.analysis.perf import (
        BASELINE_PATH,
        compare_bench,
        load_baseline,
        render_bench_report,
        run_bench,
        write_bench_json,
    )

    report = run_bench(
        repeats=args.repeats,
        scale=args.scale,
        progress=lambda line: print(line, file=sys.stderr),
    )
    baseline_path = Path(args.baseline) if args.baseline else BASELINE_PATH

    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(render_bench_report(report, None))
        print(f"baseline updated: {baseline_path}")
        return 0

    comparison = None
    if baseline_path.exists() or args.check:
        baseline = load_baseline(baseline_path)
        comparison = compare_bench(
            report,
            baseline,
            warn_threshold=args.threshold,
            hard_threshold=args.hard_threshold,
        )

    stamp = datetime.datetime.now().strftime("%Y%m%d_%H%M%S")
    out_dir = Path(args.out) if args.out else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    written = write_bench_json(report, out_dir, stamp=stamp)
    print(render_bench_report(report, comparison))
    print(f"bench report written to {written}")
    if comparison is not None and args.check:
        if comparison.failed:
            print(
                f"bench check FAILED ({', '.join(comparison.failed_names)}): "
                f"worst slowdown {comparison.worst_ratio:.2f}x "
                f"(hard-fail at {args.hard_threshold:.1f}x; new/missing "
                "cases also fail — refresh with --update-baseline)",
                file=sys.stderr,
            )
            return 1
        if comparison.warned:
            print(
                f"bench check: warnings only (worst {comparison.worst_ratio:.2f}x; "
                f"hard-fail at {args.hard_threshold:.1f}x)"
            )
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """``repro figures``: regenerate the Figure 4 / 5 series."""
    config = _machine_config(args)
    wanted = args.figure

    def emit(key: str, series) -> None:
        shown = series.normalized_to("ITS") if args.normalize else series
        print(render_bar_chart(shown) if args.chart else render_series_table(shown))
        print()
        if args.save_csv:
            from pathlib import Path

            out_dir = Path(args.save_csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            target = out_dir / f"fig{key}.csv"
            shown.to_csv(target)
            print(f"saved {target}")

    cache, telemetry, progress = _make_exec(args)
    exec_kwargs = dict(
        workers=args.workers, cache=cache, telemetry=telemetry, progress=progress
    )
    if wanted in ("4a", "4b", "4c", "all"):
        fig4 = run_figure4(config, seeds=args.seeds, scale=args.scale, **exec_kwargs)
        panels = {
            "4a": fig4.idle_time,
            "4b": fig4.page_faults,
            "4c": fig4.cache_misses,
        }
        for key, series in panels.items():
            if wanted in (key, "all"):
                emit(key, series)
    if wanted in ("5a", "5b", "all"):
        fig5 = run_figure5(config, seeds=args.seeds, scale=args.scale, **exec_kwargs)
        panels = {"5a": fig5.top_half, "5b": fig5.bottom_half}
        for key, series in panels.items():
            if wanted in (key, "all"):
                emit(key, series)
    _print_exec_summary(args, cache, telemetry)
    return 0


def cmd_observation(args: argparse.Namespace) -> int:
    """``repro observation``: the Section 2.2 experiment."""
    config = _machine_config(args)
    data = run_observation(
        config, process_counts=tuple(args.counts), scale=args.scale
    )
    print("Sec 2.2: CPU idle time under Sync vs number of processes")
    print("processes  idle          idle/makespan  normalized-to-first")
    for count, idle, frac, norm in zip(
        data.process_counts, data.idle_ns, data.idle_fraction, data.normalized_idle
    ):
        print(
            f"{count:9d}  {format_time_ns(idle):>12s}  {frac:13.1%}  {norm:19.2f}"
        )
    return 0


def cmd_crossover(args: argparse.Namespace) -> int:
    """``repro crossover``: Sync-vs-Async device-latency sweep."""
    config = _machine_config(args)
    cache, telemetry, progress = _make_exec(args)
    rows = sweep_device_latency(
        args.latencies,
        policies=("Sync", "Async"),
        batch=args.batch,
        seed=args.seed,
        scale=args.scale,
        base=config,
        workers=args.workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
    )
    _print_exec_summary(args, cache, telemetry)
    print("device latency sweep: Sync vs Async makespan")
    print(f"{'latency(us)':>11s}  {'Sync':>10s}  {'Async':>10s}  winner")
    for row in rows:
        print(
            f"{row.value:11g}  "
            f"{format_time_ns(row.results['Sync'].makespan_ns):>10s}  "
            f"{format_time_ns(row.results['Async'].makespan_ns):>10s}  "
            f"{row.winner_by_makespan()}"
        )
    crossover = find_crossover(rows, "Sync", "Async")
    if crossover is not None:
        print(f"crossover: Async takes over around {crossover:g} us")
    return 0


def cmd_tails(args: argparse.Namespace) -> int:
    """``repro tails``: tail-sensitivity sweep across fault profiles."""
    config = _machine_config(args)
    cache, telemetry, progress = _make_exec(args)
    rows = run_tail_sensitivity(
        config,
        profiles=tuple(args.profiles),
        latencies_us=args.latencies,
        batch=args.batch,
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
    )
    _print_exec_summary(args, cache, telemetry)
    print("tail sensitivity: Sync-vs-Async crossover under fault profiles")
    print(f"{'profile':>16s}  {'crossover(us)':>13s}  {'Sync wins':>9s}  of")
    for row in rows:
        cross = f"{row.crossover_us:g}" if row.crossover_us is not None else "none"
        print(
            f"{row.profile:>16s}  {cross:>13s}  {row.sync_wins:>9d}  {len(row.points)}"
        )
    baseline = next((r for r in rows if r.profile == "none"), None)
    if baseline is not None and baseline.crossover_us is not None:
        for row in rows:
            if row.profile == "none" or row.crossover_us is None:
                continue
            shift = row.crossover_us - baseline.crossover_us
            print(f"  {row.profile}: crossover shifts {shift:+g} us vs none")
    return 0


def cmd_adaptive(args: argparse.Namespace) -> int:
    """``repro adaptive``: adaptive controller vs static policies."""
    config = _machine_config(args)
    cache, telemetry, progress = _make_exec(args)
    rows = run_adaptive_comparison(
        config,
        profiles=tuple(args.profiles),
        latencies_us=args.latencies,
        static_policies=tuple(args.static_policies),
        batch=args.batch,
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
    )
    _print_exec_summary(args, cache, telemetry)
    policies = tuple(args.static_policies) + ("Adaptive",)
    print("adaptive I/O-mode selection vs static policies (makespan)")
    header = f"{'profile':>16s} {'lat(us)':>8s}"
    for name in policies:
        header += f"  {name:>10s}"
    header += "  best-static  gap"
    print(header)
    for row in rows:
        line = f"{row.profile:>16s} {row.latency_us:>8g}"
        for name in policies:
            line += f"  {format_time_ns(row.makespan_ns[name]):>10s}"
        line += f"  {row.best_static:>11s}  {row.adaptive_gap:+.1%}"
        print(line)
    worst = max(rows, key=lambda r: r.adaptive_gap)
    print(
        f"worst adaptive gap: {worst.adaptive_gap:+.1%} vs {worst.best_static} "
        f"({worst.profile} @ {worst.latency_us:g} us)"
    )
    return 0


def cmd_cores(args: argparse.Namespace) -> int:
    """``repro cores``: SMP core-count scaling per policy."""
    config = _machine_config(args)
    cache, telemetry, progress = _make_exec(args)
    rows = run_core_scaling(
        config,
        core_counts=tuple(args.counts),
        policies=tuple(args.policies),
        batch=args.batch,
        profile=None,  # _machine_config already applied --fault-profile
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
    )
    _print_exec_summary(args, cache, telemetry)
    policies = tuple(args.policies)
    print("SMP core scaling (makespan, speedup vs 1 core)")
    header = f"{'cores':>5s}"
    for name in policies:
        header += f"  {name:>10s} {'speedup':>8s}"
    print(header)
    for row in rows:
        line = f"{row.cores:>5d}"
        for name in policies:
            line += (
                f"  {format_time_ns(row.makespan_ns[name]):>10s}"
                f" {row.speedup[name]:>7.2f}x"
            )
        print(line)
    multi = [r for r in rows if r.cores > 1]
    if multi:
        best_row = max(multi, key=lambda r: max(r.speedup.values()))
        best_policy = max(best_row.speedup, key=best_row.speedup.__getitem__)
        print(
            f"best speedup: {best_row.speedup[best_policy]:.2f}x "
            f"({best_policy} @ {best_row.cores} cores)"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: open-loop serving sweep — latency percentiles
    and SLO attainment per (policy, offered rate)."""
    from repro.analysis.serving import run_serving_sweep, serving_headline
    from repro.analysis.tables import render_serving_table

    config = _machine_config(args)
    rates = tuple(dict.fromkeys(args.rate))
    overrides = _serving_overrides(args, rate=rates[0])
    if args.arrival == "trace" and len(rates) > 1:
        print(
            "note: --arrival trace replays fixed timestamps; "
            "sweeping --rate has no effect, using one point",
            file=sys.stderr,
        )
        rates = rates[:1]
    base = with_serving(config, **overrides)
    cache, telemetry, progress = _make_exec(args)
    rows = run_serving_sweep(
        base,
        rates=rates,
        policies=tuple(args.policies),
        batch=args.batch,
        seed=args.seed,
        scale=args.scale,
        workers=args.workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
    )
    _print_exec_summary(args, cache, telemetry)
    print(
        f"open-loop serving: {args.arrival} arrivals, "
        f"SLO p{args.slo_percentile * 100:g} <= {args.slo_ms:g} ms, "
        f"window {args.duration:g} ms "
        f"({args.batch}, seed {args.seed}, scale {args.scale:g}, "
        f"admission {args.admission})"
    )
    print()
    print(render_serving_table(rows))
    head = serving_headline(rows)
    if head is not None:
        heaviest = max(rows)
        if head.slo_met:
            print(
                f"\nheadline: {head.policy} holds the SLO at {heaviest:g} req/s "
                f"(p99 {format_time_ns(head.p99_ns)})"
            )
        else:
            print(
                f"\nheadline: no policy meets the SLO at {heaviest:g} req/s; "
                f"{head.policy} attains most ({head.attainment:.1%})"
            )
    return 0


def cmd_tiers(args: argparse.Namespace) -> int:
    """``repro tiers``: heterogeneous-storage sweep — the adaptive
    controller's per-device decision mix under each placement policy."""
    from repro.analysis.tiering import (
        DEFAULT_TIER_NAMES,
        format_tier_table,
        run_tier_sweep,
    )

    config = _machine_config(args, apply_tiers=False)
    tiers = args.tiers or DEFAULT_TIER_NAMES
    placements = (args.placement,) if args.placement else tuple(TIER_PLACEMENTS)
    cache, telemetry, progress = _make_exec(args)
    rows = run_tier_sweep(
        config,
        tiers=tiers,
        placements=placements,
        batch=args.batch,
        seed=args.seed,
        scale=args.scale,
        promote_threshold=args.promote_threshold,
        demote_watermark=args.demote_watermark,
        workers=args.workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
    )
    _print_exec_summary(args, cache, telemetry)
    print(
        f"tiered storage: adaptive I/O-mode selection per backing device "
        f"({args.batch}, seed {args.seed}, scale {args.scale:g}, "
        f"tiers {','.join(tiers)})"
    )
    print()
    table = format_tier_table(rows)
    print(table)
    lead = [row for row in rows if row.placement == placements[0]]
    parts = []
    for row in lead:
        if row.sync_steal_fraction >= row.async_fraction:
            parts.append(f"{row.tier} -> sync/steal ({row.sync_steal_fraction:.1%})")
        else:
            parts.append(f"{row.tier} -> async ({row.async_fraction:.1%})")
    if parts:
        print(f"\nheadline ({placements[0]}): " + ", ".join(parts))
    if args.save:
        from pathlib import Path

        Path(args.save).write_text(table + "\n", encoding="utf-8")
        print(f"table saved to {args.save}")
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    """``repro workloads``: list workloads, batches and policies."""
    print("workloads:")
    for spec in WORKLOADS.values():
        tag = "data-intensive" if spec.data_intensive else "general-purpose"
        print(f"  {spec.name:<13s} {tag:<15s} {spec.description}")
    for spec in EXTRA_WORKLOADS.values():
        tag = "data-intensive" if spec.data_intensive else "general-purpose"
        print(f"  {spec.name:<13s} {tag:<15s} {spec.description} [extension]")
    print()
    print("batches:")
    for name in batch_names():
        spec = PAPER_BATCHES[name]
        print(f"  {name:<18s} {', '.join(spec.workloads)}")
    print()
    print(f"policies: {', '.join(POLICY_FACTORIES)}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``repro report``: write the full reproduction report."""
    config = _machine_config(args)
    cache = None
    if not args.no_cache:
        from repro.analysis.runner import ResultCache

        cache = ResultCache(args.cache_dir)
    path = write_report(
        args.out,
        config,
        seeds=args.seeds,
        scale=args.scale,
        workers=args.workers,
        cache=cache,
    )
    print(f"report written to {path}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache``: stats for / clearing of the result cache."""
    from repro.analysis.runner import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        print(cache.stats().render())
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.root}")
    return 0


def _sweep_options(args: argparse.Namespace):
    """Build :class:`~repro.analysis.worker.QueueOptions` from the
    ``sweep run`` / ``sweep resume`` flags."""
    from repro.analysis.worker import QueueOptions

    return QueueOptions(
        lease_s=args.lease_s,
        max_retries=args.max_retries,
        backoff_s=args.backoff_s,
        poll_s=args.poll_s,
        max_cells=getattr(args, "max_cells", None),
        worker_id=getattr(args, "worker_id", None),
    )


def _sweep_spawn_workers(args: argparse.Namespace, count: int) -> int:
    """Launch *count* single-worker ``repro sweep run`` subprocesses
    against the same manifest and wait for all of them; returns the
    worst child exit code."""
    import os
    import subprocess
    from pathlib import Path

    import repro

    argv = [
        sys.executable, "-m", "repro", "sweep", "run",
        "--manifest", args.manifest,
        "--workers", "1",
        "--lease-s", str(args.lease_s),
        "--max-retries", str(args.max_retries),
        "--backoff-s", str(args.backoff_s),
        "--poll-s", str(args.poll_s),
    ]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if getattr(args, "max_cells", None) is not None:
        argv += ["--max-cells", str(args.max_cells)]
    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    procs = [subprocess.Popen(argv, env=env) for _ in range(count)]
    print(
        f"launched {count} workers (pids {', '.join(str(p.pid) for p in procs)})",
        file=sys.stderr,
    )
    return max(proc.wait() for proc in procs)


def _render_sweep_summary(summary, telemetry) -> str:
    """One stderr line describing what a worker pass actually did."""
    hits = telemetry.counter("runner.cache.hit").value
    return (
        f"worker {summary.worker_id}: {summary.executed} executed, "
        f"{summary.reclaimed} stale reclaimed, {summary.retries} retries, "
        f"{summary.failed} failed, {hits} cache hits"
    )


def cmd_sweep_init(args: argparse.Namespace) -> int:
    """``repro sweep init``: build and save a cell-grid manifest."""
    from itertools import product
    from pathlib import Path

    from repro.analysis.manifest import SweepManifest
    from repro.analysis.runner import ResultCache, SweepCell

    config = _machine_config(args)
    cells = [
        SweepCell(config=config, batch=batch, policy=policy, seed=seed, scale=args.scale)
        for batch, policy, seed in product(args.batches, args.policies, args.seeds)
    ]
    cache = ResultCache(args.cache_dir)
    manifest = SweepManifest(
        name=args.name or Path(args.manifest).stem,
        cache_dir=str(cache.root),
        cells=cells,
    )
    path = manifest.save(args.manifest)
    print(
        f"manifest {manifest.name!r}: {len(manifest)} cells "
        f"({len(args.batches)} batches x {len(args.policies)} policies x "
        f"{len(args.seeds)} seeds, scale {args.scale:g})"
    )
    print(f"cache: {cache.root}")
    print(f"written to {path}")
    return 0


def cmd_sweep_run(args: argparse.Namespace) -> int:
    """``repro sweep run``: work a manifest until drained (one worker
    in-process, or ``--workers N`` real subprocesses)."""
    from repro.analysis.manifest import SweepManifest
    from repro.analysis.worker import run_manifest_worker
    from repro.telemetry import Telemetry

    manifest = SweepManifest.load(args.manifest)
    if args.workers > 1:
        code = _sweep_spawn_workers(args, args.workers)
        cache = manifest.resolve_cache(args.cache_dir)
        print(_sweep_status_text(manifest, cache, args.lease_s))
        return code
    telemetry = Telemetry(events=False)
    summary = run_manifest_worker(
        manifest,
        cache=manifest.resolve_cache(args.cache_dir),
        options=_sweep_options(args),
        telemetry=telemetry,
        log=lambda line: print(line, file=sys.stderr),
    )
    print(_render_sweep_summary(summary, telemetry), file=sys.stderr)
    assert summary.progress is not None
    print(summary.progress.render())
    return 1 if summary.progress.failed else 0


def _sweep_status_text(manifest, cache, lease_s: float) -> str:
    """The ``sweep status`` report: progress, cache occupancy, claims,
    and failure records for one manifest."""
    from repro.analysis.claims import ClaimStore
    from repro.analysis.manifest import FailureLog, scan_progress

    claims = ClaimStore(manifest.claims_root(cache), lease_s=lease_s)
    failures = FailureLog(manifest.failures_root(cache))
    progress = scan_progress(manifest, cache, claims, failures)
    lines = [progress.render()]
    stats = cache.stats()
    lines.append(
        f"cache: {progress.done}/{progress.total} manifest cells cached "
        f"({stats.entries} entries total in {cache.root})"
    )
    live = [c for c in claims.claims() if c.key in set(manifest.keys)]
    for claim in live:
        state = "STALE" if claim.stale else "live"
        lines.append(
            f"claim [{state}] {claim.key[:12]}... held by {claim.worker} "
            f"(age {claim.age_s:.1f}s, lease {lease_s:g}s)"
        )
    failed_keys = failures.keys() & set(manifest.keys)
    for key in sorted(failed_keys):
        record = failures.get(key) or {}
        lines.append(
            f"failed {key[:12]}... {record.get('cell', '?')} "
            f"after {record.get('attempts', '?')} attempts: "
            f"{record.get('error', '?')}"
        )
    return "\n".join(lines)


def cmd_sweep_status(args: argparse.Namespace) -> int:
    """``repro sweep status``: render manifest progress, cache
    occupancy, live/stale claims, and failure records."""
    from repro.analysis.manifest import SweepManifest

    manifest = SweepManifest.load(args.manifest)
    cache = manifest.resolve_cache(args.cache_dir)
    print(_sweep_status_text(manifest, cache, args.lease_s))
    return 0


def cmd_sweep_resume(args: argparse.Namespace) -> int:
    """``repro sweep resume``: clear failure records, reclaim stale
    claims, and run the grid to completion."""
    from repro.analysis.manifest import FailureLog, SweepManifest

    manifest = SweepManifest.load(args.manifest)
    cache = manifest.resolve_cache(args.cache_dir)
    failures = FailureLog(manifest.failures_root(cache))
    cleared = failures.clear(manifest.keys)
    if cleared:
        print(f"cleared {cleared} failure records for retry", file=sys.stderr)
    return cmd_sweep_run(args)


def cmd_trace_stats(args: argparse.Namespace) -> int:
    """``repro trace-stats``: summarise a trace or lackey capture."""
    from pathlib import Path

    from repro.trace.lackey import parse_lackey
    from repro.trace.record import summarize
    from repro.trace.tracefile import load_trace

    path = Path(args.path)
    if args.lackey:
        with path.open("r", encoding="utf-8") as f:
            trace = parse_lackey(f, max_instructions=args.max_instructions)
    else:
        trace = load_trace(path)
        if args.max_instructions is not None:
            trace = trace[: args.max_instructions]
    summary = summarize(trace)
    print(f"trace: {path}")
    print(f"  instructions    {summary.instructions}")
    print(f"  loads           {summary.loads}")
    print(f"  stores          {summary.stores}")
    print(f"  computes        {summary.computes}")
    print(f"  branches        {summary.branches}")
    print(f"  memory ratio    {summary.memory_ratio:.1%}")
    print(f"  footprint pages {summary.footprint_pages}")
    print(f"  unique lines    {summary.unique_lines}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """``repro compare``: diff two saved result files."""
    left = load_results(args.left)
    right = load_results(args.right)
    if len(left) != 1 or len(right) != 1:
        print("compare expects files holding exactly one result each", file=sys.stderr)
        return 2
    a, b = left[0], right[0]
    print(f"{'metric':24s} {a.policy + '/' + a.batch:>20s} {b.policy + '/' + b.batch:>20s}")
    rows = [
        ("makespan", a.makespan_ns, b.makespan_ns, True),
        ("total idle", a.total_idle_ns, b.total_idle_ns, True),
        ("major faults", a.major_faults, b.major_faults, False),
        ("minor faults", a.minor_faults, b.minor_faults, False),
        ("cache misses", a.demand_cache_misses, b.demand_cache_misses, False),
        ("context switches", a.context_switches, b.context_switches, False),
    ]
    for name, va, vb, is_time in rows:
        fa = format_time_ns(va) if is_time else str(va)
        fb = format_time_ns(vb) if is_time else str(vb)
        print(f"{name:24s} {fa:>20s} {fb:>20s}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ITS (Idle-Time-Stealing) trace-based simulator — DAC 2024 reproduction",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("--batch", choices=batch_names(), default="1_Data_Intensive")
    run_p.add_argument("--policy", type=_policy_name, choices=list(POLICY_FACTORIES), default="ITS")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--save", help="write the result to a JSON file")
    run_p.add_argument("--events", help="write a CSV event log of the run")
    run_p.add_argument(
        "--trace-out", help="also capture telemetry and write a Chrome/Perfetto trace"
    )
    _add_common(run_p)
    run_p.set_defaults(func=cmd_run)

    trace_p = sub.add_parser("trace", help="run instrumented and export a trace")
    trace_p.add_argument("--batch", choices=batch_names(), default="1_Data_Intensive")
    trace_p.add_argument("--policy", type=_policy_name, choices=list(POLICY_FACTORIES), default="ITS")
    trace_p.add_argument("--seed", type=int, default=1)
    trace_p.add_argument("--out", default="repro.trace.json", help="trace output path")
    trace_p.add_argument(
        "--format",
        choices=["chrome", "jsonl"],
        default="chrome",
        help="chrome: Perfetto-loadable JSON; jsonl: one span per line",
    )
    _add_common(trace_p)
    trace_p.set_defaults(func=cmd_trace)

    stats_p2 = sub.add_parser(
        "stats", help="run instrumented and print the telemetry report"
    )
    stats_p2.add_argument("--batch", choices=batch_names(), default="1_Data_Intensive")
    stats_p2.add_argument("--policy", type=_policy_name, choices=list(POLICY_FACTORIES), default="ITS")
    stats_p2.add_argument("--seed", type=int, default=1)
    _add_common(stats_p2)
    stats_p2.set_defaults(func=cmd_stats)

    ledger_p = sub.add_parser(
        "ledger", help="run one cell and print the time-attribution ledger"
    )
    ledger_p.add_argument("--batch", choices=batch_names(), default="1_Data_Intensive")
    ledger_p.add_argument("--policy", type=_policy_name, choices=list(POLICY_FACTORIES), default="ITS")
    ledger_p.add_argument("--seed", type=int, default=1)
    _add_common(ledger_p)
    ledger_p.set_defaults(func=cmd_ledger)

    path_p = sub.add_parser(
        "path", help="run one cell and print the causal critical-path report"
    )
    path_p.add_argument("--batch", choices=batch_names(), default="1_Data_Intensive")
    path_p.add_argument("--policy", type=_policy_name, choices=list(POLICY_FACTORIES), default="ITS")
    path_p.add_argument("--seed", type=int, default=1)
    path_p.add_argument(
        "--serve",
        action="store_true",
        help="run open-loop and classify SLO deadline misses (queued vs service)",
    )
    _add_serving(path_p, sweep=False)
    _add_common(path_p)
    path_p.set_defaults(func=cmd_path)

    bench_p = sub.add_parser(
        "bench", help="wall-clock perf suite with baseline regression check"
    )
    bench_p.add_argument(
        "--repeats", type=_positive_int, default=3, help="timings per case (min is kept)"
    )
    bench_p.add_argument(
        "--scale", type=_positive_float, default=0.1, help="trace length multiplier"
    )
    bench_p.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON to compare against (default: benchmarks/baseline_bench.json)",
    )
    bench_p.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="warn when a case is this many times slower than baseline",
    )
    bench_p.add_argument(
        "--hard-threshold",
        type=float,
        default=2.0,
        help="with --check, exit non-zero at this slowdown",
    )
    bench_p.add_argument(
        "--check",
        action="store_true",
        help="compare against the baseline and fail on a hard regression",
    )
    bench_p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the committed baseline from this run",
    )
    bench_p.add_argument(
        "--out", default=None, help="directory for BENCH_<stamp>.json (default: .)"
    )
    bench_p.set_defaults(func=cmd_bench)

    fig_p = sub.add_parser("figures", help="regenerate paper figures")
    fig_p.add_argument(
        "--figure", choices=["4a", "4b", "4c", "5a", "5b", "all"], default="all"
    )
    fig_p.add_argument("--seeds", type=_parse_seeds, default=(1, 2, 3))
    fig_p.add_argument("--normalize", action="store_true", help="normalise to ITS")
    fig_p.add_argument("--chart", action="store_true", help="ASCII bars instead of a table")
    fig_p.add_argument("--save-csv", help="also write each panel as CSV into this directory")
    _add_common(fig_p)
    _add_exec(fig_p)
    fig_p.set_defaults(func=cmd_figures)

    obs_p = sub.add_parser("observation", help="Section 2.2 experiment")
    obs_p.add_argument("--counts", type=int, nargs="+", default=[2, 3, 4, 5])
    _add_common(obs_p)
    obs_p.set_defaults(func=cmd_observation)

    cross_p = sub.add_parser("crossover", help="sync-vs-async latency sweep")
    cross_p.add_argument(
        "--latencies", type=_positive_float, nargs="+", default=[1, 3, 7, 15, 30, 60, 100],
        help="device latencies in microseconds",
    )
    cross_p.add_argument("--batch", choices=batch_names(), default="1_Data_Intensive")
    cross_p.add_argument("--seed", type=int, default=1)
    _add_common(cross_p)
    _add_exec(cross_p)
    cross_p.set_defaults(func=cmd_crossover)

    tails_p = sub.add_parser(
        "tails", help="crossover shift under fault/tail-latency profiles"
    )
    tails_p.add_argument(
        "--latencies", type=_positive_float, nargs="+", default=[1, 3, 7, 15, 30, 60, 100],
        help="device latencies in microseconds",
    )
    tails_p.add_argument(
        "--profiles", nargs="+", choices=sorted(FAULT_PROFILES),
        default=list(DEFAULT_TAIL_PROFILES),
        help="fault profiles to compare (always include 'none' for the baseline)",
    )
    tails_p.add_argument("--batch", choices=batch_names(), default="1_Data_Intensive")
    tails_p.add_argument("--seed", type=int, default=1)
    _add_common(tails_p)
    _add_exec(tails_p)
    tails_p.set_defaults(func=cmd_tails)

    adapt_p = sub.add_parser(
        "adaptive", help="adaptive mode selection vs static policies"
    )
    adapt_p.add_argument(
        "--latencies", type=_positive_float, nargs="+", default=[1, 3, 7, 15, 30, 60, 100],
        help="device latencies in microseconds",
    )
    adapt_p.add_argument(
        "--profiles", nargs="+", choices=sorted(FAULT_PROFILES),
        default=list(DEFAULT_ADAPTIVE_PROFILES),
        help="fault profiles to sweep under",
    )
    adapt_p.add_argument(
        "--static-policies", nargs="+", type=_policy_name,
        choices=[p for p in POLICY_FACTORIES if p != "Adaptive"],
        default=list(DEFAULT_STATIC_POLICIES),
        help="fixed-mode policies the controller is measured against",
    )
    adapt_p.add_argument("--batch", choices=batch_names(), default="1_Data_Intensive")
    adapt_p.add_argument("--seed", type=int, default=1)
    _add_common(adapt_p)
    _add_exec(adapt_p)
    adapt_p.set_defaults(func=cmd_adaptive)

    cores_p = sub.add_parser("cores", help="SMP core-count scaling per policy")
    cores_p.add_argument(
        "--counts", type=_core_count, nargs="+", default=list(DEFAULT_CORE_COUNTS),
        help="core counts to sweep (must include 1, the speedup baseline)",
    )
    cores_p.add_argument(
        "--policies", nargs="+", type=_policy_name,
        choices=list(POLICY_FACTORIES),
        default=["Sync", "Async", "ITS"],
        help="policies to scale across cores",
    )
    cores_p.add_argument("--batch", choices=batch_names(), default="1_Data_Intensive")
    cores_p.add_argument("--seed", type=int, default=1)
    _add_common(cores_p)
    _add_exec(cores_p)
    cores_p.set_defaults(func=cmd_cores)

    serve_p = sub.add_parser(
        "serve", help="open-loop serving: arrivals, latency SLOs, admission"
    )
    serve_p.add_argument("--batch", choices=batch_names(), default="1_Data_Intensive")
    serve_p.add_argument(
        "--policies", nargs="+", type=_policy_name,
        choices=list(POLICY_FACTORIES),
        default=list(POLICY_FACTORIES),
        help="policies to serve under (default: all, incl. Adaptive)",
    )
    serve_p.add_argument("--seed", type=int, default=1)
    _add_serving(serve_p, sweep=True)
    _add_common(serve_p)
    _add_exec(serve_p)
    serve_p.set_defaults(func=cmd_serve, scale=0.1)

    tiers_p = sub.add_parser(
        "tiers", help="heterogeneous storage: per-tier adaptive mode selection"
    )
    tiers_p.add_argument("--batch", choices=batch_names(), default="2_Data_Intensive")
    tiers_p.add_argument("--seed", type=int, default=1)
    tiers_p.add_argument(
        "--promote-threshold", type=_non_negative_int, default=0,
        help="promote a page after this many faults on a slower tier "
        "(0 disables migration; hot_cold defaults to 4)",
    )
    tiers_p.add_argument(
        "--demote-watermark", type=_positive_float, default=1.0,
        help="occupancy fraction above which promotion demotes a cold victim",
    )
    tiers_p.add_argument(
        "--save", metavar="FILE", default=None,
        help="also write the table to FILE (CI artifact)",
    )
    _add_common(tiers_p)
    _add_exec(tiers_p)
    tiers_p.set_defaults(func=cmd_tiers, scale=0.2)

    wl_p = sub.add_parser("workloads", help="list workloads, batches, policies")
    wl_p.set_defaults(func=cmd_workloads)

    report_p = sub.add_parser("report", help="write a full reproduction report")
    report_p.add_argument("--out", default="REPORT.md", help="output Markdown path")
    report_p.add_argument("--seeds", type=_parse_seeds, default=(1, 2, 3))
    _add_common(report_p)
    _add_exec(report_p)
    report_p.set_defaults(func=cmd_report)

    cache_p = sub.add_parser("cache", help="result-cache stats / clear")
    cache_p.add_argument("action", choices=["stats", "clear"])
    cache_p.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-its)",
    )
    cache_p.set_defaults(func=cmd_cache)

    sweep_p = sub.add_parser(
        "sweep", help="distributed cell grids: init / run / status / resume"
    )
    sweep_sub = sweep_p.add_subparsers(dest="sweep_command", required=True)

    def _add_sweep_shared(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--manifest", default="sweep_manifest.json",
            help="manifest JSON path (written by 'sweep init')",
        )
        p.add_argument(
            "--cache-dir", default=None,
            help="override the cache directory recorded in the manifest",
        )
        p.add_argument(
            "--lease-s", type=_positive_float, default=30.0,
            help="heartbeat silence after which a worker's claim is stale",
        )

    def _add_sweep_worker(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=_positive_int, default=1,
            help="worker subprocesses to launch (1 = work in-process)",
        )
        p.add_argument(
            "--max-retries", type=_non_negative_int, default=2,
            help="re-executions after a cell's first failure",
        )
        p.add_argument(
            "--backoff-s", type=_non_negative_float, default=0.25,
            help="first retry delay; doubles per attempt",
        )
        p.add_argument(
            "--poll-s", type=_positive_float, default=0.5,
            help="idle wait between scans while peers hold live claims",
        )
        p.add_argument(
            "--max-cells", type=_positive_int, default=None,
            help="stop this worker after executing this many cells",
        )
        p.add_argument(
            "--worker-id", default=None,
            help="claim-file identity (default: host-pid-nonce)",
        )

    sweep_init_p = sweep_sub.add_parser(
        "init", help="build and save a cell-grid manifest"
    )
    sweep_init_p.add_argument(
        "--name", default=None, help="sweep name (default: manifest file stem)"
    )
    sweep_init_p.add_argument(
        "--batches", nargs="+", choices=batch_names(),
        default=["1_Data_Intensive"], help="batches in the grid",
    )
    sweep_init_p.add_argument(
        "--policies", nargs="+", type=_policy_name,
        choices=list(POLICY_FACTORIES),
        default=["Sync", "Async", "ITS"], help="policies in the grid",
    )
    sweep_init_p.add_argument(
        "--seeds", type=_parse_seeds, default=(1, 2, 3),
        help="comma-separated seeds in the grid",
    )
    sweep_init_p.add_argument(
        "--manifest", default="sweep_manifest.json",
        help="manifest JSON path to write",
    )
    sweep_init_p.add_argument(
        "--cache-dir", default=None,
        help="cache directory recorded in the manifest "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro-its)",
    )
    _add_common(sweep_init_p)
    sweep_init_p.set_defaults(func=cmd_sweep_init)

    sweep_run_p = sweep_sub.add_parser(
        "run", help="launch a worker (or N subprocesses) against a manifest"
    )
    _add_sweep_shared(sweep_run_p)
    _add_sweep_worker(sweep_run_p)
    sweep_run_p.set_defaults(func=cmd_sweep_run)

    sweep_status_p = sweep_sub.add_parser(
        "status", help="render manifest progress, claims, and failures"
    )
    _add_sweep_shared(sweep_status_p)
    sweep_status_p.set_defaults(func=cmd_sweep_status)

    sweep_resume_p = sweep_sub.add_parser(
        "resume", help="clear failure records and run the grid to completion"
    )
    _add_sweep_shared(sweep_resume_p)
    _add_sweep_worker(sweep_resume_p)
    sweep_resume_p.set_defaults(func=cmd_sweep_resume)

    stats_p = sub.add_parser("trace-stats", help="summarise a trace file")
    stats_p.add_argument("path", help="trace file (or lackey capture with --lackey)")
    stats_p.add_argument(
        "--lackey", action="store_true", help="parse as Valgrind lackey output"
    )
    stats_p.add_argument(
        "--max-instructions", type=int, default=None, help="replay-prefix bound"
    )
    stats_p.set_defaults(func=cmd_trace_stats)

    cmp_p = sub.add_parser("compare", help="diff two saved results")
    cmp_p.add_argument("left")
    cmp_p.add_argument("right")
    cmp_p.set_defaults(func=cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

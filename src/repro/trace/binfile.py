"""A compact binary trace format.

The text format (:mod:`repro.trace.tracefile`) is human-readable but
bulky — a real Valgrind capture of a few hundred million records needs
something denser.  This format packs each instruction into a fixed
12-byte little-endian record:

``<B kind> <B reg> <B aux> <B size> <Q value>``

| kind | reg | aux | size | value |
|---|---|---|---|---|
| 0 compute | dst | source count | cycles (≤255) | sources, 8 bits each |
| 1 load | dst | addr_reg + 1 (0 = none) | access size | vaddr |
| 2 store | src | addr_reg + 1 (0 = none) | access size | vaddr |
| 3 branch | source count | taken flag | 0 | sources, 8 bits each |

A 16-byte header carries a magic, a format version and the record
count.  Round-trips every field of the trace ISA.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable

from repro.common.errors import TraceError
from repro.cpu.isa import Branch, Compute, Instruction, Load, Store

MAGIC = b"ITSTRACE"
VERSION = 1
_HEADER = struct.Struct("<8sII")
_RECORD = struct.Struct("<BBBBQ")

_KIND_COMPUTE, _KIND_LOAD, _KIND_STORE, _KIND_BRANCH = 0, 1, 2, 3
_MAX_PACKED_SRCS = 8


def _pack_srcs(srcs: tuple[int, ...]) -> int:
    if len(srcs) > _MAX_PACKED_SRCS:
        raise TraceError(f"cannot pack {len(srcs)} source registers (max {_MAX_PACKED_SRCS})")
    value = 0
    for i, reg in enumerate(srcs):
        if not 0 <= reg < 256:
            raise TraceError(f"register {reg} out of byte range")
        value |= reg << (8 * i)
    return value


def _unpack_srcs(value: int, count: int) -> tuple[int, ...]:
    return tuple((value >> (8 * i)) & 0xFF for i in range(count))


def _encode(instr: Instruction) -> bytes:
    if isinstance(instr, Compute):
        return _RECORD.pack(
            _KIND_COMPUTE, instr.dst, len(instr.srcs), min(instr.cycles, 255),
            _pack_srcs(instr.srcs),
        )
    if isinstance(instr, Load):
        aux = 0 if instr.addr_reg is None else instr.addr_reg + 1
        return _RECORD.pack(_KIND_LOAD, instr.dst, aux, instr.size, instr.vaddr)
    if isinstance(instr, Store):
        aux = 0 if instr.addr_reg is None else instr.addr_reg + 1
        return _RECORD.pack(_KIND_STORE, instr.src, aux, instr.size, instr.vaddr)
    if isinstance(instr, Branch):
        return _RECORD.pack(
            _KIND_BRANCH, len(instr.srcs), int(instr.taken), 0, _pack_srcs(instr.srcs)
        )
    raise TraceError(f"cannot serialise {instr!r}")


def _decode(record: bytes) -> Instruction:
    kind, reg, aux, size, value = _RECORD.unpack(record)
    if kind == _KIND_COMPUTE:
        return Compute(dst=reg, srcs=_unpack_srcs(value, aux), cycles=size)
    if kind == _KIND_LOAD:
        return Load(
            dst=reg, vaddr=value, size=size, addr_reg=None if aux == 0 else aux - 1
        )
    if kind == _KIND_STORE:
        return Store(
            src=reg, vaddr=value, size=size, addr_reg=None if aux == 0 else aux - 1
        )
    if kind == _KIND_BRANCH:
        return Branch(srcs=_unpack_srcs(value, reg), taken=bool(aux))
    raise TraceError(f"unknown record kind {kind}")


def save_trace_binary(path: str | Path, trace: Iterable[Instruction]) -> int:
    """Write *trace* in binary form; returns the byte size written."""
    path = Path(path)
    records = [_encode(instr) for instr in trace]
    with path.open("wb") as f:
        f.write(_HEADER.pack(MAGIC, VERSION, len(records)))
        for record in records:
            f.write(record)
    return _HEADER.size + len(records) * _RECORD.size


def load_trace_binary(path: str | Path) -> list[Instruction]:
    """Read a trace written by :func:`save_trace_binary`."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise TraceError(f"{path} is too short to be a binary trace")
    magic, version, count = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise TraceError(f"{path} is not a binary trace (bad magic)")
    if version != VERSION:
        raise TraceError(f"unsupported binary trace version {version}")
    expected = _HEADER.size + count * _RECORD.size
    if len(data) != expected:
        raise TraceError(
            f"{path} truncated: {len(data)} bytes, expected {expected}"
        )
    trace = []
    offset = _HEADER.size
    for __ in range(count):
        trace.append(_decode(data[offset : offset + _RECORD.size]))
        offset += _RECORD.size
    return trace

"""Trace capture and synthesis.

The paper drives its simulator with Valgrind-captured virtual-address
traces of nine workloads.  This package provides (a) synthetic generators
with per-workload locality signatures, (b) a parser for real Valgrind
``lackey`` output so captured traces can be dropped in, and (c) a simple
trace file format.
"""

from repro.trace.record import TraceSummary, summarize, footprint_vpns
from repro.trace.synthetic import (
    TraceBuilder,
    sequential_scan,
    strided_scan,
    working_set_loop,
    zipf_accesses,
    random_walk_graph,
    frontier_sweep,
)
from repro.trace.workloads import (
    EXTRA_WORKLOADS,
    WORKLOADS,
    WorkloadBuild,
    WorkloadSpec,
    build_workload,
    workload_names,
)
from repro.trace.lackey import parse_lackey
from repro.trace.tracefile import load_trace, save_trace
from repro.trace.binfile import load_trace_binary, save_trace_binary

__all__ = [
    "TraceSummary",
    "summarize",
    "footprint_vpns",
    "TraceBuilder",
    "sequential_scan",
    "strided_scan",
    "working_set_loop",
    "zipf_accesses",
    "random_walk_graph",
    "frontier_sweep",
    "WORKLOADS",
    "EXTRA_WORKLOADS",
    "WorkloadBuild",
    "WorkloadSpec",
    "build_workload",
    "workload_names",
    "parse_lackey",
    "load_trace",
    "save_trace",
    "load_trace_binary",
    "save_trace_binary",
]

"""Trace inspection helpers.

A trace is simply ``list[Instruction]`` (see :mod:`repro.cpu.isa`); these
helpers compute the aggregate properties the simulator needs up front —
most importantly the memory footprint (the set of virtual pages touched),
which sizes the swap area and registers the process's address space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import Instruction, Load, Store


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate shape of one trace."""

    instructions: int
    loads: int
    stores: int
    computes: int
    branches: int
    footprint_pages: int
    unique_lines: int

    @property
    def memory_ops(self) -> int:
        """Loads plus stores."""
        return self.loads + self.stores

    @property
    def memory_ratio(self) -> float:
        """Fraction of instructions that touch memory."""
        return self.memory_ops / self.instructions if self.instructions else 0.0


def footprint_vpns(trace: list[Instruction], page_size: int = 4096) -> set[int]:
    """The set of virtual page numbers the trace touches.

    ``page_size`` selects the page granularity (2 MiB for huge-page
    experiments); the default matches the x86-64 base page.
    """
    shift = page_size.bit_length() - 1
    vpns: set[int] = set()
    for instr in trace:
        if isinstance(instr, (Load, Store)):
            vpns.add(instr.vaddr >> shift)
            if instr.size > 1:
                vpns.add((instr.vaddr + instr.size - 1) >> shift)
    return vpns


def summarize(trace: list[Instruction], line_size: int = 64) -> TraceSummary:
    """Compute a :class:`TraceSummary` for *trace*."""
    loads = stores = computes = branches = 0
    lines: set[int] = set()
    for instr in trace:
        kind = instr.kind
        if kind == "load":
            loads += 1
        elif kind == "store":
            stores += 1
        elif kind == "compute":
            computes += 1
        elif kind == "branch":
            branches += 1
        if isinstance(instr, (Load, Store)):
            lines.add(instr.vaddr // line_size)
    return TraceSummary(
        instructions=len(trace),
        loads=loads,
        stores=stores,
        computes=computes,
        branches=branches,
        footprint_pages=len(footprint_vpns(trace)),
        unique_lines=len(lines),
    )

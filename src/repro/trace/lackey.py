"""Parser for Valgrind ``lackey`` memory traces.

The paper's front end "adopts the dynamic binary instruction tools,
Valgrind, to capture the accessed virtual addresses".  Lackey's
``--trace-mem=yes`` output has one record per line::

    I  0023C790,2   # instruction fetch
     L 04E2C790,8   # data load
     S 04E2C794,4   # data store
     M 0421D7F0,8   # modify (load + store)

This parser converts such a stream into the trace ISA: instruction
fetches become single-cycle computes (their address stream is not
simulated), loads/stores map directly, and a modify becomes a load
followed by a store to the same address.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.errors import TraceError
from repro.cpu.isa import Compute, Instruction, Load, Store
from repro.cpu.registers import NUM_REGISTERS


def parse_lackey(lines: Iterable[str], *, max_instructions: int | None = None) -> list[Instruction]:
    """Parse lackey ``--trace-mem`` lines into a trace.

    Unrecognised lines (lackey prints headers and summaries too) are
    skipped silently; malformed *record* lines raise :class:`TraceError`.
    """
    trace: list[Instruction] = []
    reg = 0

    def next_reg() -> int:
        nonlocal reg
        reg = (reg + 1) % NUM_REGISTERS
        return reg

    for raw in lines:
        if max_instructions is not None and len(trace) >= max_instructions:
            break
        line = raw.rstrip("\n")
        if not line:
            continue
        marker = line[:2].strip()
        if marker not in {"I", "L", "S", "M"}:
            continue
        body = line[2:].strip()
        try:
            addr_text, size_text = body.split(",", 1)
            addr = int(addr_text, 16)
            size = int(size_text.strip())
        except ValueError as exc:
            raise TraceError(f"malformed lackey record: {line!r}") from exc
        if size <= 0:
            raise TraceError(f"non-positive access size in record: {line!r}")
        if marker == "I":
            trace.append(Compute(dst=next_reg(), srcs=(), cycles=1))
        elif marker == "L":
            trace.append(Load(dst=next_reg(), vaddr=addr, size=size))
        elif marker == "S":
            trace.append(Store(src=reg, vaddr=addr, size=size))
        else:  # M: modify = load then store
            dst = next_reg()
            trace.append(Load(dst=dst, vaddr=addr, size=size))
            trace.append(Store(src=dst, vaddr=addr, size=size))
    return trace

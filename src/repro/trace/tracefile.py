"""A plain-text trace file format.

One instruction per line, whitespace-separated::

    C <dst> <cycles> <src>*        # compute
    L <dst> <vaddr-hex> <size> [<addr_reg>]
    S <src> <vaddr-hex> <size> [<addr_reg>]
    B <taken:0|1> <src>*

Lines starting with ``#`` are comments.  The format round-trips every
field of the trace ISA, so captured or synthesised traces can be stored
and replayed byte-identically.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.common.errors import TraceError
from repro.cpu.isa import Branch, Compute, Instruction, Load, Store


def _format(instr: Instruction) -> str:
    if isinstance(instr, Compute):
        return " ".join(["C", str(instr.dst), str(instr.cycles), *map(str, instr.srcs)])
    if isinstance(instr, Load):
        parts = ["L", str(instr.dst), f"{instr.vaddr:x}", str(instr.size)]
        if instr.addr_reg is not None:
            parts.append(str(instr.addr_reg))
        return " ".join(parts)
    if isinstance(instr, Store):
        parts = ["S", str(instr.src), f"{instr.vaddr:x}", str(instr.size)]
        if instr.addr_reg is not None:
            parts.append(str(instr.addr_reg))
        return " ".join(parts)
    if isinstance(instr, Branch):
        return " ".join(["B", "1" if instr.taken else "0", *map(str, instr.srcs)])
    raise TraceError(f"cannot serialise {instr!r}")


def _parse(line: str, lineno: int) -> Instruction:
    fields = line.split()
    kind = fields[0]
    try:
        if kind == "C":
            return Compute(
                dst=int(fields[1]),
                cycles=int(fields[2]),
                srcs=tuple(int(f) for f in fields[3:]),
            )
        if kind == "L":
            return Load(
                dst=int(fields[1]),
                vaddr=int(fields[2], 16),
                size=int(fields[3]),
                addr_reg=int(fields[4]) if len(fields) > 4 else None,
            )
        if kind == "S":
            return Store(
                src=int(fields[1]),
                vaddr=int(fields[2], 16),
                size=int(fields[3]),
                addr_reg=int(fields[4]) if len(fields) > 4 else None,
            )
        if kind == "B":
            return Branch(
                taken=fields[1] == "1",
                srcs=tuple(int(f) for f in fields[2:]),
            )
    except (ValueError, IndexError) as exc:
        raise TraceError(f"malformed trace line {lineno}: {line!r}") from exc
    raise TraceError(f"unknown instruction kind {kind!r} on line {lineno}")


def save_trace(path: str | Path, trace: Iterable[Instruction], *, header: str = "") -> None:
    """Write *trace* to *path*; *header* becomes a leading comment."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as f:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        for instr in trace:
            f.write(_format(instr) + "\n")


def load_trace(path: str | Path) -> list[Instruction]:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    trace: list[Instruction] = []
    with path.open("r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            trace.append(_parse(line, lineno))
    return trace

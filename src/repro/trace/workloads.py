"""The nine paper workloads as parameterised synthetic traces.

Section 4.1 evaluates six general-purpose processes (Caffe inference,
SPEC Wrf/Blender/Xz/DeepSjeng, GraphChi community detection) and three
data-intensive processes (Graph500 single-shortest-path, GraphChi random
walk and page rank).  Real traces came from Valgrind; here each workload
is a synthetic trace whose locality signature matches the workload class
(see :mod:`repro.trace.synthetic` for the signatures and DESIGN.md for
the substitution argument).

``scale`` multiplies trace length (passes/iterations/visits), leaving the
footprint untouched, so memory pressure is configured independently of
runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import TraceError
from repro.common.rng import DeterministicRNG
from repro.cpu.isa import Instruction
from repro.trace.synthetic import (
    TraceBuilder,
    frontier_sweep,
    random_walk_graph,
    sequential_scan,
    strided_scan,
    working_set_loop,
    zipf_accesses,
)
from repro.vm.address import PAGE_SHIFT

_PAGE = 1 << PAGE_SHIFT


@dataclass(frozen=True)
class WorkloadBuild:
    """A built workload: the trace plus its mapped address space.

    ``mapped_vpns`` is the workload's whole mapped region (its memory
    footprint in the paper's sense), which can exceed the pages the
    trace actually touches — graph applications map the full vertex and
    edge arrays even though a particular run visits only part of them.
    The gap is what gives prefetchers a real accuracy problem: a
    VA-adjacent candidate page is *mapped* but may never be used.
    """

    trace: list[Instruction]
    mapped_vpns: frozenset[int]


def _span_vpns(base_va: int, pages: int) -> frozenset[int]:
    """VPNs of the *pages*-page region starting at *base_va*."""
    first = base_va >> PAGE_SHIFT
    return frozenset(range(first, first + pages))


@dataclass(frozen=True)
class WorkloadSpec:
    """One named workload: its class and trace builder."""

    name: str
    data_intensive: bool
    description: str
    build: Callable[[DeterministicRNG, float], WorkloadBuild]


def _caffe(rng: DeterministicRNG, scale: float) -> WorkloadBuild:
    # Layer-by-layer inference: streaming sweeps over weights/activations.
    trace = sequential_scan(
        rng, pages=80, passes=max(1, round(3 * scale)), lines_per_page=8, region=0
    )
    return WorkloadBuild(trace, _span_vpns(0x4000_0000, 80))


def _wrf(rng: DeterministicRNG, scale: float) -> WorkloadBuild:
    # Weather stencil: strided sweeps over the grid.
    trace = strided_scan(
        rng,
        pages=100,
        stride_pages=2,
        passes=max(1, round(2 * scale)),
        lines_per_page=6,
        region=1,
    )
    return WorkloadBuild(trace, _span_vpns(0x4000_0000 * 2, 100))


def _blender(rng: DeterministicRNG, scale: float) -> WorkloadBuild:
    # Render loop over scene data: a hot working set revisited.
    trace = working_set_loop(
        rng, pages=60, iterations=max(1, round(6 * scale)), lines_per_page=4, region=2
    )
    return WorkloadBuild(trace, _span_vpns(0x4000_0000 * 3, 60))


def _xz(rng: DeterministicRNG, scale: float) -> WorkloadBuild:
    # Compression: stream the input, keep a small hot dictionary.
    builder = TraceBuilder(rng)
    dict_base = 0x4000_0000 * 4
    input_base = dict_base + 32 * _PAGE
    for __ in range(max(1, round(2 * scale))):
        for p in range(120):
            builder.visit_page(input_base + p * _PAGE, 6)
            if p % 4 == 0:
                builder.visit_page(dict_base + (p % 20) * _PAGE, 3)
    return WorkloadBuild(builder.instructions, _span_vpns(dict_base, 32 + 120))


def _deepsjeng(rng: DeterministicRNG, scale: float) -> WorkloadBuild:
    # Chess search: small, heavily reused tables.
    trace = working_set_loop(
        rng, pages=40, iterations=max(1, round(10 * scale)), lines_per_page=4, region=4
    )
    return WorkloadBuild(trace, _span_vpns(0x4000_0000 * 5, 40))


def _community(rng: DeterministicRNG, scale: float) -> WorkloadBuild:
    # GraphChi community detection: skewed vertex popularity over a
    # mapped vertex array larger than any single run's touch set.
    trace = zipf_accesses(
        rng, pages=200, accesses=max(1, round(1200 * scale)), alpha=0.9, region=5
    )
    return WorkloadBuild(trace, _span_vpns(0x4000_0000 * 6, 200))


def _random_walk(rng: DeterministicRNG, scale: float) -> WorkloadBuild:
    # GraphChi random walk: pointer-chase vertex hops interleaved with
    # GraphChi's sequential shard-interval streaming, over a mapped
    # graph larger than any single run's touch set.
    trace = random_walk_graph(
        rng,
        pages=800,
        hops=max(1, round(700 * scale)),
        adjacency_lines=3,
        shard_pages=12,
        shard_every=16,
        region=6,
    )
    return WorkloadBuild(trace, _span_vpns(0x4000_0000 * 7, 800))


def _pagerank(rng: DeterministicRNG, scale: float) -> WorkloadBuild:
    # GraphChi page rank: sequential shard sweeps plus skewed rank reads.
    builder = TraceBuilder(rng)
    base = 0x4000_0000 * 8
    rank_base = base + 300 * _PAGE
    for __ in range(max(1, round(2 * scale))):
        for p in range(300):
            builder.visit_page(base + p * _PAGE, 4)
            if p % 6 == 0:
                hot = rng.zipf(100, 0.9)
                builder.visit_page(rank_base + hot * _PAGE, 2, pointer_fraction=0.3)
    return WorkloadBuild(builder.instructions, _span_vpns(base, 300 + 100))


def _graph500(rng: DeterministicRNG, scale: float) -> WorkloadBuild:
    # Graph500 SSSP: frontier scans alternating with random probes into
    # a property array mapped well beyond what one traversal touches.
    trace = frontier_sweep(
        rng,
        frontier_pages=50,
        graph_pages=650,
        rounds=max(1, round(4 * scale)),
        probes_per_round=220,
        region=9,
    )
    return WorkloadBuild(trace, _span_vpns(0x4000_0000 * 10, 50 + 650))


def _llm_inference(rng: DeterministicRNG, scale: float) -> WorkloadBuild:
    # Beyond the paper's nine: autoregressive LLM decoding, the intro's
    # headline data-intensive motivation.  Each decoded token streams
    # the weight shards sequentially (prefetch-friendly, dominates the
    # footprint) and re-reads a KV-cache working set that grows by one
    # page per token (reuse grows over the run).
    builder = TraceBuilder(rng)
    base = 0x4000_0000 * 12
    weight_pages = 240
    kv_base = base + weight_pages * _PAGE
    max_tokens = max(1, round(24 * scale))
    for token in range(max_tokens):
        for p in range(0, weight_pages, 3):  # strided shard sweep
            builder.visit_page(base + p * _PAGE, 3)
        kv_pages = token + 1
        builder.visit_page(kv_base + token * _PAGE, 4, store_every=1)  # append
        for kv in range(kv_pages):  # attention re-reads the whole cache
            builder.visit_page(kv_base + kv * _PAGE, 2)
    return WorkloadBuild(
        builder.instructions, _span_vpns(base, weight_pages + max_tokens)
    )


WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec("caffe", False, "Caffenet inference over 160 images", _caffe),
        WorkloadSpec("wrf", False, "SPEC CPU2006 Wrf weather stencil", _wrf),
        WorkloadSpec("blender", False, "SPEC CPU2017 Blender render loop", _blender),
        WorkloadSpec("xz", False, "SPEC CPU2017 Xz compression", _xz),
        WorkloadSpec("deepsjeng", False, "SPEC CPU2017 DeepSjeng chess search", _deepsjeng),
        WorkloadSpec("community", False, "GraphChi community detection", _community),
        WorkloadSpec("random_walk", True, "GraphChi random walk", _random_walk),
        WorkloadSpec("pagerank", True, "GraphChi page rank", _pagerank),
        WorkloadSpec("graph500", True, "Graph500 single shortest path", _graph500),
    )
}
"""All nine paper workloads, keyed by name."""

EXTRA_WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            "llm_inference",
            True,
            "Autoregressive LLM decoding (weights streaming + KV cache)",
            _llm_inference,
        ),
    )
}
"""Extension workloads beyond the paper's evaluation set (the intro's
motivating applications).  Not part of the paper batches."""


def workload_names(*, include_extras: bool = False) -> list[str]:
    """Workload names in a stable order (paper's nine by default)."""
    names = list(WORKLOADS)
    if include_extras:
        names.extend(EXTRA_WORKLOADS)
    return names


def build_workload(name: str, rng: DeterministicRNG, scale: float = 1.0) -> WorkloadBuild:
    """Build the trace (and mapped region) for workload *name*."""
    spec = WORKLOADS.get(name) or EXTRA_WORKLOADS.get(name)
    if spec is None:
        known = ", ".join([*WORKLOADS, *EXTRA_WORKLOADS])
        raise TraceError(f"unknown workload {name!r}; known: {known}")
    if scale <= 0:
        raise TraceError("scale must be positive")
    return spec.build(rng, scale)

"""Synthetic trace generators with controlled locality signatures.

Each generator models one access-pattern family observed across the
paper's nine workloads:

* :func:`sequential_scan` — streaming over a region in VA order (Caffe
  layer sweeps, Xz input streaming): the best case for the
  virtual-address-based prefetcher.
* :func:`strided_scan` — fixed page stride (Wrf stencils).
* :func:`working_set_loop` — repeated passes over a hot set (DeepSjeng
  search tables, Blender scene data): high cache reuse, faults only on
  the first pass or after eviction.
* :func:`zipf_accesses` — skewed random pages (GraphChi community
  detection): some hot pages, a long unpredictable tail.
* :func:`random_walk_graph` — pointer-chase hops with short sequential
  adjacency bursts (GraphChi random walk): prefetch-hostile.
* :func:`frontier_sweep` — alternating sequential frontier scans and
  random neighbour probes (Graph500 SSSP).

All generators emit register-dependency chains so the INV-propagation
rules of the pre-execute policy have realistic structure: loads feed
computes, some addresses come from registers (``addr_reg``), and stores
write computed values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import TraceError
from repro.common.rng import DeterministicRNG
from repro.cpu.isa import Branch, Compute, Instruction, Load, Store
from repro.cpu.registers import NUM_REGISTERS
from repro.vm.address import PAGE_SHIFT

_PAGE = 1 << PAGE_SHIFT


@dataclass
class TraceBuilder:
    """Incrementally builds an instruction trace with realistic register
    pressure: destinations rotate through the register file and memory
    ops consume recently produced values."""

    rng: DeterministicRNG
    instructions: list[Instruction] = field(default_factory=list)
    _next_reg: int = 0
    _last_load_dst: int = 0

    def _fresh_reg(self) -> int:
        reg = self._next_reg
        self._next_reg = (self._next_reg + 1) % NUM_REGISTERS
        return reg

    def load(self, vaddr: int, size: int = 8, *, pointer: bool = False) -> int:
        """Emit a load; with ``pointer=True`` its address depends on the
        previous load's destination (pointer-chase edge)."""
        dst = self._fresh_reg()
        addr_reg = self._last_load_dst if pointer else None
        self.instructions.append(Load(dst=dst, vaddr=vaddr, size=size, addr_reg=addr_reg))
        self._last_load_dst = dst
        return dst

    def store(self, vaddr: int, src: int, size: int = 8) -> None:
        """Emit a store of register *src*."""
        self.instructions.append(Store(src=src, vaddr=vaddr, size=size))

    def compute(self, srcs: tuple[int, ...] = (), cycles: int = 1) -> int:
        """Emit an ALU op consuming *srcs*; returns its destination."""
        dst = self._fresh_reg()
        self.instructions.append(Compute(dst=dst, srcs=srcs, cycles=cycles))
        return dst

    def branch(self, srcs: tuple[int, ...] = (), taken: bool = True) -> None:
        """Emit a conditional branch."""
        self.instructions.append(Branch(srcs=srcs, taken=taken))

    def compute_burst(self, count: int, feed: int) -> int:
        """Emit *count* dependent ALU ops rooted at register *feed*."""
        reg = feed
        for __ in range(count):
            reg = self.compute(srcs=(reg,))
        return reg

    def visit_page(
        self,
        page_va: int,
        lines: int,
        *,
        compute_per_access: int = 2,
        store_every: int = 4,
        line_size: int = 64,
        pointer_fraction: float = 0.0,
    ) -> None:
        """Touch *lines* distinct cache lines of one page.

        Each access is a load followed by a short dependent compute
        burst; every ``store_every``-th access writes the computed value
        back.  ``pointer_fraction`` of the loads take their address from
        the previous load (pointer chasing).
        """
        if lines <= 0:
            raise TraceError("visit_page needs at least one line")
        lines_in_page = _PAGE // line_size
        for i in range(lines):
            offset = (i * 7 % lines_in_page) * line_size  # scatter within the page
            pointer = self.rng.random() < pointer_fraction
            dst = self.load(page_va + offset, pointer=pointer)
            value = self.compute_burst(compute_per_access, dst)
            if store_every and i % store_every == store_every - 1:
                self.store(page_va + offset + 8, value)
            if i % 8 == 7:
                self.branch(srcs=(value,), taken=self.rng.random() < 0.9)


def _base_va(region_index: int) -> int:
    # Separate regions by 1 GiB so workloads never alias.
    return 0x4000_0000 * (region_index + 1)


def sequential_scan(
    rng: DeterministicRNG,
    *,
    pages: int,
    passes: int = 1,
    lines_per_page: int = 8,
    region: int = 0,
) -> list[Instruction]:
    """Stream over *pages* in ascending VA order, *passes* times."""
    builder = TraceBuilder(rng)
    base = _base_va(region)
    for __ in range(passes):
        for p in range(pages):
            builder.visit_page(base + p * _PAGE, lines_per_page)
    return builder.instructions


def strided_scan(
    rng: DeterministicRNG,
    *,
    pages: int,
    stride_pages: int = 2,
    passes: int = 1,
    lines_per_page: int = 6,
    region: int = 0,
) -> list[Instruction]:
    """Visit pages with a fixed stride, wrapping phase by phase (stencil
    sweeps): ``0, s, 2s, ..., 1, s+1, ...``."""
    if stride_pages <= 0:
        raise TraceError("stride must be positive")
    builder = TraceBuilder(rng)
    base = _base_va(region)
    for __ in range(passes):
        for phase in range(stride_pages):
            for p in range(phase, pages, stride_pages):
                builder.visit_page(base + p * _PAGE, lines_per_page)
    return builder.instructions


def working_set_loop(
    rng: DeterministicRNG,
    *,
    pages: int,
    iterations: int,
    lines_per_page: int = 4,
    region: int = 0,
) -> list[Instruction]:
    """Loop repeatedly over a hot working set of *pages*."""
    builder = TraceBuilder(rng)
    base = _base_va(region)
    order = list(range(pages))
    for __ in range(iterations):
        rng.shuffle(order)
        for p in order:
            builder.visit_page(base + p * _PAGE, lines_per_page)
    return builder.instructions


def zipf_accesses(
    rng: DeterministicRNG,
    *,
    pages: int,
    accesses: int,
    alpha: float = 0.8,
    lines_per_visit: int = 3,
    region: int = 0,
) -> list[Instruction]:
    """Visit pages sampled from a Zipf law (skewed graph-vertex access)."""
    builder = TraceBuilder(rng)
    base = _base_va(region)
    # A fixed random permutation decouples popularity from VA order, so
    # the hot pages are NOT VA-adjacent (defeats naive prefetching).
    perm = list(range(pages))
    rng.shuffle(perm)
    for __ in range(accesses):
        p = perm[rng.zipf(pages, alpha)]
        builder.visit_page(base + p * _PAGE, lines_per_visit, pointer_fraction=0.2)
    return builder.instructions


def random_walk_graph(
    rng: DeterministicRNG,
    *,
    pages: int,
    hops: int,
    adjacency_lines: int = 3,
    shard_pages: int = 0,
    shard_every: int = 0,
    region: int = 0,
) -> list[Instruction]:
    """Pointer-chase hops across uniformly random pages.

    Each hop reads a short sequential burst (the adjacency list of the
    current vertex) and then jumps to a random next page whose address
    came from the loaded data — the canonical prefetch-hostile pattern.

    GraphChi-style out-of-core execution additionally streams shard
    intervals *sequentially* between vertex updates; with
    ``shard_every > 0``, every that many hops the walk streams
    ``shard_pages`` consecutive pages from a rotating shard window (this
    is what keeps page-level prefetching partially effective on real
    GraphChi workloads).
    """
    builder = TraceBuilder(rng)
    base = _base_va(region)
    current = rng.randint(0, pages - 1)
    shard_cursor = 0
    for hop in range(hops):
        builder.visit_page(
            base + current * _PAGE, adjacency_lines, pointer_fraction=0.6
        )
        current = rng.randint(0, pages - 1)
        if shard_every and shard_pages and hop % shard_every == shard_every - 1:
            for offset in range(shard_pages):
                page = (shard_cursor + offset) % pages
                builder.visit_page(base + page * _PAGE, 2)
            shard_cursor = (shard_cursor + shard_pages) % pages
    return builder.instructions


def frontier_sweep(
    rng: DeterministicRNG,
    *,
    frontier_pages: int,
    graph_pages: int,
    rounds: int,
    probes_per_round: int,
    region: int = 0,
) -> list[Instruction]:
    """BFS/SSSP shape: sequential scan of a frontier array, then random
    probes into the graph's property pages."""
    builder = TraceBuilder(rng)
    base = _base_va(region)
    graph_base = base + frontier_pages * _PAGE
    for __ in range(rounds):
        for p in range(frontier_pages):
            builder.visit_page(base + p * _PAGE, 4)
        for __probe in range(probes_per_round):
            p = rng.randint(0, graph_pages - 1)
            builder.visit_page(graph_base + p * _PAGE, 2, pointer_fraction=0.4)
    return builder.instructions

"""Atomic cell claiming for distributed sweep workers.

Many independent worker processes — possibly on several hosts sharing
one cache directory over a network filesystem — coordinate *without a
server* through claim files keyed by a cell's content-addressed cache
key:

* **Acquisition** is ``open(path, O_CREAT | O_EXCL)``: the filesystem
  arbitrates, exactly one worker wins, everyone else sees ``EEXIST``.
* **Liveness** is an mtime lease: the owner touches its claim file
  (``os.utime``) at least every :attr:`ClaimStore.heartbeat_s` while it
  works, and a claim whose mtime is older than
  :attr:`ClaimStore.lease_s` is *stale* — its owner was killed (or its
  host died) and the cell must be reclaimed, not lost.
* **Stale takeover** is atomic: the stealer first ``rename``\\ s the
  stale claim file to a uniquely-named tombstone — POSIX rename
  guarantees exactly one of any number of concurrent stealers succeeds
  — and only the rename winner re-creates the claim with ``O_EXCL``.
  A heartbeat that lands *after* the rename touches the tombstone (or
  fails), never resurrects the claim.

The lease must comfortably exceed the heartbeat interval (the default
ratio is 6x) so a healthy-but-slow worker is never robbed; see
docs/RUNNING.md for the full protocol.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro.common.errors import ConfigError

DEFAULT_LEASE_S = 30.0
"""Seconds of heartbeat silence after which a claim is stale."""

HEARTBEAT_RATIO = 6.0
"""Default ``lease_s / heartbeat_s`` safety factor."""


def default_worker_id() -> str:
    """A globally unique worker identity: ``host-pid-nonce``."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class ClaimInfo:
    """Decoded contents of one claim file (diagnostics, ``sweep status``)."""

    key: str
    worker: str
    pid: int
    host: str
    acquired_at: float
    age_s: float
    stale: bool


class ClaimStore:
    """Claim files for one shared cache directory.

    ``root`` is the claims directory itself (conventionally
    ``<cache>/claims``).  All methods are safe to call concurrently from
    any number of processes on any number of hosts sharing ``root``.

    ``clock`` is injectable for tests; claim mtimes are written from it
    on acquire and heartbeat so simulated time and staleness agree.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        worker_id: Optional[str] = None,
        lease_s: float = DEFAULT_LEASE_S,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if lease_s <= 0:
            raise ConfigError(f"lease_s must be positive, got {lease_s}")
        self.root = Path(root)
        self.worker_id = worker_id or default_worker_id()
        self.lease_s = lease_s
        self.heartbeat_s = lease_s / HEARTBEAT_RATIO
        self._clock = clock
        self._owned: set[str] = set()
        self._steal_nonce = 0

    # -- paths ---------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Claim-file path for a cell cache key."""
        return self.root / f"{key}.claim"

    # -- the protocol --------------------------------------------------------

    def acquire(self, key: str) -> bool:
        """Try to claim *key*; return ``True`` iff this worker now owns it.

        A live foreign claim loses the race; a *stale* one is taken
        over atomically (rename-to-tombstone, then a fresh ``O_EXCL``
        create — so concurrent stealers still elect exactly one owner).
        Returns ``"stale"``-aware ownership only; the caller decides
        what owning the cell means.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if self._try_create(key):
            return True
        path = self.path_for(key)
        try:
            age = self._clock() - path.stat().st_mtime
        except OSError:
            # Claim vanished between EEXIST and stat (owner released or
            # a stealer won): contend again from scratch.
            return self._try_create(key)
        if age <= self.lease_s:
            return False
        # Stale: rename wins for exactly one stealer.
        self._steal_nonce += 1
        tombstone = path.with_name(
            f"{path.name}.stale.{os.getpid()}.{self._steal_nonce}"
        )
        try:
            path.rename(tombstone)
        except OSError:
            return False  # another stealer got there first
        tombstone.unlink(missing_ok=True)
        return self._try_create(key)

    def _try_create(self, key: str) -> bool:
        path = self.path_for(key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        now = self._clock()
        payload = {
            "key": key,
            "worker": self.worker_id,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_at": now,
        }
        try:
            os.write(fd, json.dumps(payload).encode("utf-8"))
        finally:
            os.close(fd)
        os.utime(path, times=(now, now))
        self._owned.add(key)
        return True

    def heartbeat(self, key: str) -> None:
        """Refresh the lease on a claim this worker owns.

        A heartbeat on a claim that was stolen (the worker stalled past
        its lease) is a no-op — it must not resurrect the claim — so
        ownership is re-checked by content first.
        """
        if key not in self._owned:
            return
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if data.get("worker") != self.worker_id:
                self._owned.discard(key)
                return
            now = self._clock()
            os.utime(path, times=(now, now))
        except (OSError, ValueError):
            self._owned.discard(key)

    def release(self, key: str) -> None:
        """Drop this worker's claim on *key* (idempotent)."""
        if key not in self._owned:
            return
        self._owned.discard(key)
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if data.get("worker") == self.worker_id:
            path.unlink(missing_ok=True)

    def owns(self, key: str) -> bool:
        """Whether this instance believes it owns *key*."""
        return key in self._owned

    # -- inspection ----------------------------------------------------------

    def info(self, key: str) -> Optional[ClaimInfo]:
        """Decode one claim file; ``None`` if absent or unreadable."""
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            age = self._clock() - path.stat().st_mtime
        except (OSError, ValueError):
            return None
        return ClaimInfo(
            key=str(data.get("key", key)),
            worker=str(data.get("worker", "?")),
            pid=int(data.get("pid", 0)),
            host=str(data.get("host", "?")),
            acquired_at=float(data.get("acquired_at", 0.0)),
            age_s=age,
            stale=age > self.lease_s,
        )

    def claims(self) -> list[ClaimInfo]:
        """Every decodable claim under the root, sorted by key."""
        if not self.root.is_dir():
            return []
        out = []
        for path in sorted(self.root.glob("*.claim")):
            info = self.info(path.name[: -len(".claim")])
            if info is not None:
                out.append(info)
        return out

    def stale_keys(self) -> list[str]:
        """Keys whose claims have outlived the lease."""
        return [c.key for c in self.claims() if c.stale]

"""Aggregation and normalisation of simulation results.

The paper reports each metric normalised to the ITS design; these
helpers average raw :class:`~repro.sim.metrics.SimulationResult` records
across seeds and produce the normalised series that the figures plot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.common.errors import ConfigError
from repro.sim.metrics import SimulationResult


class MetricKind(enum.Enum):
    """The metrics the paper's figures report."""

    IDLE_TIME = "idle_time"
    PAGE_FAULTS = "page_faults"
    CACHE_MISSES = "cache_misses"
    FINISH_TOP_HALF = "finish_top_half"
    FINISH_BOTTOM_HALF = "finish_bottom_half"


def _extract(result: SimulationResult, kind: MetricKind) -> float:
    if kind is MetricKind.IDLE_TIME:
        return float(result.total_idle_ns)
    if kind is MetricKind.PAGE_FAULTS:
        return float(result.major_faults)
    if kind is MetricKind.CACHE_MISSES:
        return float(result.demand_cache_misses)
    if kind is MetricKind.FINISH_TOP_HALF:
        return result.mean_finish_top_half_ns()
    if kind is MetricKind.FINISH_BOTTOM_HALF:
        return result.mean_finish_bottom_half_ns()
    raise ConfigError(f"unknown metric {kind!r}")


@dataclass
class PolicyAverages:
    """Per-policy seed-averaged values of one metric."""

    metric: MetricKind
    values: dict[str, float] = field(default_factory=dict)

    def normalized_to(self, reference: str) -> dict[str, float]:
        """Values divided by *reference*'s value (the paper normalises
        to ITS)."""
        if reference not in self.values:
            raise ConfigError(f"reference policy {reference!r} missing from averages")
        base = self.values[reference]
        if base == 0:
            raise ConfigError(f"reference policy {reference!r} has zero {self.metric.value}")
        return {name: value / base for name, value in self.values.items()}


def average_results(
    results: Mapping[str, Sequence[SimulationResult]], metric: MetricKind
) -> PolicyAverages:
    """Average *metric* across each policy's seed runs."""
    averages = PolicyAverages(metric=metric)
    for policy, runs in results.items():
        if not runs:
            raise ConfigError(f"policy {policy!r} has no runs to average")
        averages.values[policy] = sum(_extract(r, metric) for r in runs) / len(runs)
    return averages


@dataclass
class FigureSeries:
    """One figure's data: x-axis labels and per-policy y-values.

    This is the exact structure the paper's bar groups encode: for each
    batch (x) a bar per policy (series).
    """

    title: str
    metric: MetricKind
    x_labels: list[str]
    series: dict[str, list[float]]

    def normalized_to(self, reference: str) -> "FigureSeries":
        """Divide every series point-wise by *reference*'s value at the
        same x position."""
        if reference not in self.series:
            raise ConfigError(f"reference series {reference!r} missing")
        base = self.series[reference]
        if any(v == 0 for v in base):
            raise ConfigError(f"reference series {reference!r} contains zeros")
        return FigureSeries(
            title=f"{self.title} (normalized to {reference})",
            metric=self.metric,
            x_labels=list(self.x_labels),
            series={
                name: [v / b for v, b in zip(values, base)]
                for name, values in self.series.items()
            },
        )

    def policy_names(self) -> list[str]:
        """Series names in insertion order."""
        return list(self.series)

    def to_csv(self, path) -> None:
        """Write the series as CSV: one row per policy, one column per
        x label (plus the title as a comment line)."""
        import csv
        from pathlib import Path

        path = Path(path)
        with path.open("w", newline="", encoding="utf-8") as f:
            f.write(f"# {self.title}\n")
            writer = csv.writer(f)
            writer.writerow(["policy", *self.x_labels])
            for name, values in self.series.items():
                writer.writerow([name, *values])

    @classmethod
    def from_csv(cls, path, *, metric: "MetricKind", title: str = "") -> "FigureSeries":
        """Read a series written by :meth:`to_csv`."""
        import csv
        from pathlib import Path

        path = Path(path)
        with path.open("r", encoding="utf-8") as f:
            first = f.readline()
            loaded_title = first[2:].strip() if first.startswith("#") else ""
            if not first.startswith("#"):
                f.seek(0)
            reader = csv.reader(f)
            header = next(reader)
            x_labels = header[1:]
            series = {
                row[0]: [float(v) for v in row[1:]] for row in reader if row
            }
        return cls(
            title=title or loaded_title,
            metric=metric,
            x_labels=x_labels,
            series=series,
        )


def normalize_series(series: FigureSeries, reference: str = "ITS") -> FigureSeries:
    """Convenience wrapper over :meth:`FigureSeries.normalized_to`."""
    return series.normalized_to(reference)

"""Resource utilisation of a finished simulation.

Breaks the run down by resource: how the CPU's time divided between
useful execution, idle (the paper's metric) and kernel overhead, and how
busy the storage device and the PCIe link were.  Operates on a finished
:class:`~repro.sim.simulator.Simulation` (the machine holds the
device/link counters that the result record does not carry).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SimulationError
from repro.common.units import format_time_ns


@dataclass(frozen=True)
class UtilizationReport:
    """Fractions of the makespan each resource was occupied."""

    makespan_ns: int
    cpu_useful_frac: float
    cpu_idle_frac: float
    cpu_overhead_frac: float
    device_util: float
    link_util: float
    device_busy_ns: int
    link_busy_ns: int


def utilization(sim) -> UtilizationReport:
    """Compute the utilisation breakdown of a finished simulation."""
    makespan = sim.machine.now_ns
    if makespan <= 0:
        raise SimulationError("simulation has not run yet")
    idle = sim.metrics.idle
    overhead = idle.handler_overhead_ns
    useful = makespan - idle.total_idle_ns - overhead
    device_busy = sim.machine.device.stats.busy_ns
    link_busy = sim.machine.link.busy_ns
    channels = sim.machine.device.config.channels
    return UtilizationReport(
        makespan_ns=makespan,
        cpu_useful_frac=useful / makespan,
        cpu_idle_frac=idle.total_idle_ns / makespan,
        cpu_overhead_frac=overhead / makespan,
        # The device has `channels` independent servers; utilisation is
        # per-channel-normalised so 100% means all channels saturated.
        device_util=min(1.0, device_busy / (makespan * channels)),
        link_util=min(1.0, link_busy / makespan),
        device_busy_ns=device_busy,
        link_busy_ns=link_busy,
    )


def render_utilization(report: UtilizationReport) -> str:
    """Human-readable utilisation table."""
    return "\n".join(
        [
            f"makespan           {format_time_ns(report.makespan_ns)}",
            f"CPU useful         {report.cpu_useful_frac:6.1%}",
            f"CPU idle           {report.cpu_idle_frac:6.1%}",
            f"CPU kernel overhead{report.cpu_overhead_frac:7.1%}",
            f"device busy        {report.device_util:6.1%}"
            f" ({format_time_ns(report.device_busy_ns)})",
            f"PCIe link busy     {report.link_util:6.1%}"
            f" ({format_time_ns(report.link_busy_ns)})",
        ]
    )

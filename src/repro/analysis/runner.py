"""Parallel experiment execution with content-addressed result caching.

Every figure in the paper is a grid of *independent* simulation cells —
one (config, batch, policy, seed, scale) tuple per cell — so the engine
here does two things and nothing else:

* **Fan out.**  :func:`run_cells` executes a batch of cells on a
  pluggable backend (``executor=``): ``"inline"`` runs them serially
  in-process with zero multiprocessing machinery, ``"pool"`` fans them
  out on a ``concurrent.futures.ProcessPoolExecutor`` (platforms where
  a pool cannot be created fall back to inline, so callers never have
  to care), and ``"queue"`` joins the distributed work-queue of
  :mod:`repro.analysis.worker` — many processes, potentially on many
  hosts sharing the cache directory, atomically claiming cells via
  ``O_CREAT|O_EXCL`` claim files with stale-lease reclamation.  The
  default picks inline or pool from ``workers=``.
* **Never simulate the same cell twice.**  Each cell has a
  *content-addressed* cache key — a SHA-256 over the canonical JSON of
  ``MachineConfig.to_dict()`` plus the batch/policy/seed/scale and the
  result-store ``FORMAT_VERSION`` — and a :class:`ResultCache` maps that
  key to a :class:`~repro.sim.metrics.SimulationResult` JSON blob on
  disk (the same versioned encoding as :mod:`repro.analysis.store`).
  Hits skip simulation entirely, which also makes interrupted grid runs
  resumable: completed cells are served from cache on the next run.

Determinism is preserved at any worker count: a cell's result depends
only on its key inputs (per-cell RNG seeding, no state shared between
cells), results are returned in input order, and workers exchange the
same versioned JSON encoding the cache stores — so ``workers=1``,
``workers=8`` and a fully cached run are bit-for-bit identical.

Telemetry: pass a :class:`~repro.telemetry.Telemetry` handle to count
``runner.cache.hit`` / ``runner.cache.miss`` / ``runner.cells.executed``
and observe per-cell worker wall time (``runner.cell_wall_ns``) in the
*parent* process.  Simulation-internal telemetry is not collected across
process boundaries — attach telemetry to a single
:func:`~repro.analysis.experiments.run_batch_policy` call for that.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.analysis.store import FORMAT_VERSION, result_from_dict, result_to_dict
from repro.common.config import MachineConfig
from repro.common.errors import ConfigError, ReproError
from repro.sim.metrics import SimulationResult

CACHE_ENV_VAR = "REPRO_CACHE_DIR"
"""Environment variable overriding the default cache directory."""

EXECUTOR_NAMES = ("inline", "pool", "queue")
"""Pluggable sweep backends: in-process serial, local process pool,
and the distributed work-queue over a shared cache directory (see
:mod:`repro.analysis.worker` and docs/RUNNING.md)."""

ProgressFn = Callable[[int, int, "SweepCell", bool], None]
"""``progress(done, total, cell, cached)`` — invoked as cells complete."""


class CellExecutionError(ReproError):
    """One or more cells failed while the rest of the grid completed.

    Raised *after* every runnable cell has finished, so progress
    accounting stays consistent: ``completed`` cells were recorded (and
    cached) normally, and every failure names its cell via
    :meth:`SweepCell.describe`.  The first underlying exception is
    chained as ``__cause__``.
    """

    def __init__(
        self,
        failures: Sequence[tuple["SweepCell", str]],
        *,
        completed: int,
        total: int,
    ) -> None:
        self.failures = list(failures)
        self.completed = completed
        self.total = total
        shown = "; ".join(
            f"{cell.describe()}: {error}" for cell, error in self.failures[:5]
        )
        if len(self.failures) > 5:
            shown += f"; ... {len(self.failures) - 5} more"
        super().__init__(
            f"{len(self.failures)} of {total} cells failed "
            f"({completed} completed): {shown}"
        )


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation cell of an experiment grid."""

    config: MachineConfig
    batch: str
    policy: str
    seed: int = 1
    scale: float = 1.0

    def key_payload(self) -> dict:
        """The exact inputs the cache key is derived from."""
        return {
            "format": FORMAT_VERSION,
            "config": self.config.to_dict(),
            "batch": self.batch,
            "policy": self.policy,
            "seed": self.seed,
            "scale": self.scale,
        }

    def describe(self) -> str:
        """Short human-readable label (progress lines, error messages)."""
        return f"{self.policy} on {self.batch} seed={self.seed} scale={self.scale:g}"


def stable_hash(payload: dict) -> str:
    """SHA-256 of the canonical JSON encoding of *payload*.

    Canonical = sorted keys, no whitespace — so the digest is invariant
    to dict insertion order at every nesting level.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cache_key(cell: SweepCell) -> str:
    """Content-addressed key of one cell (see :func:`stable_hash`)."""
    return stable_hash(cell.key_payload())


def default_cache_dir() -> Path:
    """Cache root used when none is given.

    ``$REPRO_CACHE_DIR`` if set, else ``$XDG_CACHE_HOME/repro-its``,
    else ``~/.cache/repro-its``.
    """
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-its"


@dataclass
class CacheStats:
    """Point-in-time view of a cache directory plus cumulative traffic."""

    root: str
    entries: int
    size_bytes: int
    hits: int
    misses: int
    puts: int

    def render(self) -> str:
        """Multi-line report for ``repro cache stats``."""
        return "\n".join(
            [
                f"cache dir:  {self.root}",
                f"entries:    {self.entries}",
                f"size:       {self.size_bytes} bytes",
                f"hits:       {self.hits} (cumulative)",
                f"misses:     {self.misses} (cumulative)",
                f"puts:       {self.puts} (cumulative)",
            ]
        )


class ResultCache:
    """Content-addressed, directory-backed store of simulation results.

    One JSON file per cell under ``<root>/<key[:2]>/<key>.json`` holding
    the :func:`~repro.analysis.store.result_to_dict` payload plus the
    cell's key inputs (for human inspection).  Corrupted or truncated
    entries are treated as misses and deleted, so a killed writer can
    never poison future runs.  Writes go through a temp file + rename,
    which keeps concurrent writers safe on POSIX.

    Invalidation is purely key-based: any change to the config dict, the
    batch/policy/seed/scale, or a ``FORMAT_VERSION`` bump in
    :mod:`repro.analysis.store` yields a different key, and the stale
    entries are simply never addressed again (``clear()`` reclaims the
    space).
    """

    _STATS_FILE = "stats.json"

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # -- key/value ----------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Entry path for *key* (two-level fan-out keeps dirs small)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        """Return the cached result for *key*, or ``None`` on a miss.

        A corrupted entry (invalid JSON, wrong format version, missing
        fields) is deleted and reported as a miss.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = result_from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, ConfigError):
            # Unreadable or malformed: drop the entry so it cannot
            # shadow a good re-run, then report a miss.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult, cell: Optional[SweepCell] = None) -> None:
        """Store *result* under *key* (atomic temp-file + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"result": result_to_dict(result)}
        if cell is not None:
            payload["cell"] = cell.key_payload()
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        tmp.replace(path)
        self.puts += 1

    # -- maintenance --------------------------------------------------------

    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [
            p
            for p in self.root.glob("??/*.json")
            if ".tmp." not in p.name
        ]

    def stats(self) -> CacheStats:
        """Scan the directory and merge with persisted traffic counts."""
        files = self._entry_files()
        persisted = self._load_persisted_stats()
        return CacheStats(
            root=str(self.root),
            entries=len(files),
            size_bytes=sum(p.stat().st_size for p in files),
            hits=persisted.get("hits", 0) + self.hits,
            misses=persisted.get("misses", 0) + self.misses,
            puts=persisted.get("puts", 0) + self.puts,
        )

    def clear(self) -> int:
        """Delete every entry (and the traffic counts); return the count."""
        files = self._entry_files()
        for path in files:
            path.unlink(missing_ok=True)
        (self.root / self._STATS_FILE).unlink(missing_ok=True)
        return len(files)

    def _load_persisted_stats(self) -> dict:
        try:
            data = json.loads(
                (self.root / self._STATS_FILE).read_text(encoding="utf-8")
            )
            return data if isinstance(data, dict) else {}
        except (OSError, ValueError):
            return {}

    @contextlib.contextmanager
    def _stats_lock(self, timeout_s: float = 5.0, stale_s: float = 10.0):
        """Cross-process mutex around the read-merge-write of stats.json.

        An ``O_CREAT|O_EXCL`` lock file, the same primitive the claim
        protocol uses: the filesystem elects exactly one holder.  A lock
        older than *stale_s* (a killed flusher) is broken; if the lock
        cannot be won within *timeout_s* the flush proceeds unlocked —
        traffic counters are best-effort diagnostics and must never
        deadlock a sweep.
        """
        lock = self.root / f"{self._STATS_FILE}.lock"
        deadline = time.monotonic() + timeout_s
        acquired = False
        while True:
            try:
                os.close(os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                acquired = True
                break
            except FileExistsError:
                try:
                    if time.time() - lock.stat().st_mtime > stale_s:
                        lock.unlink(missing_ok=True)
                        continue
                except OSError:
                    continue  # holder released between open and stat
                if time.monotonic() > deadline:
                    break
                time.sleep(0.002)
        try:
            yield
        finally:
            if acquired:
                lock.unlink(missing_ok=True)

    def flush_stats(self) -> None:
        """Fold this instance's hit/miss/put counts into ``stats.json``.

        Called by :func:`run_cells` after each batch so ``repro cache
        stats`` can report cumulative traffic across processes.  The
        read-merge-write runs under a cross-process lock file: parallel
        workers flushing together each fold their deltas in, instead of
        the last writer clobbering everyone else's counts.
        """
        if not (self.hits or self.misses or self.puts):
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with self._stats_lock():
            persisted = self._load_persisted_stats()
            merged = {
                "hits": persisted.get("hits", 0) + self.hits,
                "misses": persisted.get("misses", 0) + self.misses,
                "puts": persisted.get("puts", 0) + self.puts,
            }
            tmp = self.root / f"{self._STATS_FILE}.tmp.{os.getpid()}"
            tmp.write_text(json.dumps(merged), encoding="utf-8")
            tmp.replace(self.root / self._STATS_FILE)
        self.hits = self.misses = self.puts = 0


def as_cache(
    cache: Union[ResultCache, str, Path, None]
) -> Optional[ResultCache]:
    """Coerce a cache argument: ``None`` stays ``None`` (caching off),
    a path becomes a :class:`ResultCache` rooted there."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _execute_cell(payload: dict) -> tuple[dict, int]:
    """Worker entry point: simulate one cell from JSON-safe inputs.

    Takes and returns plain dicts (the store's versioned encoding) so
    the same function serves fork- and spawn-based pools; also used
    directly by the serial fallback.
    """
    # Imported here, not at module scope: keeps the runner importable
    # fast and avoids a circular import (experiments -> runner).
    from repro.analysis.experiments import run_batch_policy

    start = time.perf_counter_ns()
    result = run_batch_policy(
        MachineConfig.from_dict(payload["config"]),
        payload["batch"],
        payload["policy"],
        seed=payload["seed"],
        scale=payload["scale"],
    )
    return result_to_dict(result), time.perf_counter_ns() - start


def _cell_payload(cell: SweepCell) -> dict:
    return {
        "config": cell.config.to_dict(),
        "batch": cell.batch,
        "policy": cell.policy,
        "seed": cell.seed,
        "scale": cell.scale,
    }


def run_cells(
    cells: Sequence[SweepCell],
    *,
    workers: int = 1,
    cache: Union[ResultCache, str, Path, None] = None,
    telemetry=None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[str] = None,
    queue_options=None,
) -> list[SimulationResult]:
    """Execute *cells*, returning their results **in input order**.

    *executor* selects the backend (``None`` picks by *workers*):

    * ``"inline"`` — this process, serially (the ``workers=1`` default);
    * ``"pool"`` — a local ``ProcessPoolExecutor`` of *workers*
      processes (the ``workers > 1`` default; platforms where a pool
      cannot start fall back to inline);
    * ``"queue"`` — the distributed work-queue: cooperate with any
      number of concurrent worker processes (even on other hosts)
      sharing *cache*, claiming cells atomically and reclaiming a
      killed worker's stale claims.  Requires *cache*; *queue_options*
      is a :class:`~repro.analysis.worker.QueueOptions`.

    With *cache* set, cells whose key is already stored are never
    simulated, and every fresh result is stored on completion — so an
    interrupted run resumes where it left off.

    A cell that raises does not poison the grid: every other cell still
    runs (and caches, and reports progress), then all failures surface
    together as one :class:`CellExecutionError` naming each cell.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if executor is None:
        executor = "inline" if workers == 1 else "pool"
    if executor not in EXECUTOR_NAMES:
        raise ConfigError(
            f"unknown executor {executor!r}; expected one of {EXECUTOR_NAMES}"
        )
    cache = as_cache(cache)
    if executor == "queue":
        if cache is None:
            raise ConfigError(
                "the queue executor coordinates through the result cache; "
                "pass cache= (a shared directory) or use another executor"
            )
        from repro.analysis.worker import run_queue

        return run_queue(
            cells,
            cache=cache,
            options=queue_options,
            telemetry=telemetry,
            progress=progress,
        )
    total = len(cells)
    results: list[Optional[SimulationResult]] = [None] * total
    done = 0

    def record(index: int, result: SimulationResult, cached: bool, wall_ns: int) -> None:
        nonlocal done
        results[index] = result
        done += 1
        if telemetry is not None:
            telemetry.counter(
                "runner.cache.hit" if cached else "runner.cache.miss"
            ).inc()
            if not cached:
                telemetry.counter("runner.cells.executed").inc()
                telemetry.histogram("runner.cell_wall_ns").observe(wall_ns)
        if progress is not None:
            progress(done, total, cells[index], cached)

    pending: list[int] = []
    for i, cell in enumerate(cells):
        hit = cache.get(cache_key(cell)) if cache is not None else None
        if hit is not None:
            record(i, hit, True, 0)
        else:
            pending.append(i)

    failures: list[tuple[SweepCell, str]] = []
    first_error: Optional[BaseException] = None
    if pending:
        outcomes = _execute_pending(
            [(i, _cell_payload(cells[i])) for i in pending],
            workers if executor == "pool" else 1,
        )
        for i, outcome in outcomes:
            if isinstance(outcome, BaseException):
                failures.append((cells[i], repr(outcome)))
                if first_error is None:
                    first_error = outcome
                continue
            result_dict, wall_ns = outcome
            result = result_from_dict(result_dict)
            if cache is not None:
                cache.put(cache_key(cells[i]), result, cells[i])
            record(i, result, False, wall_ns)

    if cache is not None:
        cache.flush_stats()
    if telemetry is not None:
        telemetry.counter("runner.cells.total").inc(total)
    if failures:
        raise CellExecutionError(
            failures, completed=done, total=total
        ) from first_error
    return results  # type: ignore[return-value]  # every slot is filled


def _execute_pending(
    indexed: list[tuple[int, dict]], workers: int
) -> list[tuple[int, Union[tuple[dict, int], BaseException]]]:
    """Run the uncached cells, serially or on a process pool.

    Per-cell exceptions are *captured* in the outcome list, never
    raised: one failing cell must not abort (or skew the progress
    accounting of) its siblings.
    """

    def capture(fn, payload) -> Union[tuple[dict, int], BaseException]:
        try:
            return fn(payload)
        except Exception as exc:  # noqa: BLE001 — cell isolation is the point
            return exc

    if workers == 1 or len(indexed) == 1:
        return [(i, capture(_execute_cell, payload)) for i, payload in indexed]
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(indexed))) as pool:
            futures = [(i, pool.submit(_execute_cell, payload)) for i, payload in indexed]
            outcomes: list[tuple[int, Union[tuple[dict, int], BaseException]]] = []
            for i, future in futures:
                try:
                    outcomes.append((i, future.result()))
                except Exception as exc:  # noqa: BLE001 — cell isolation
                    outcomes.append((i, exc))
            return outcomes
    except (OSError, ImportError, NotImplementedError, PermissionError):
        # Platforms without working multiprocessing (restricted
        # sandboxes, missing /dev/shm, no fork): same cells, same
        # order, same results — just in this process.
        return [(i, capture(_execute_cell, payload)) for i, payload in indexed]


def run_grid(
    config: MachineConfig,
    *,
    batches: Sequence[str],
    policies: Sequence[str],
    seeds: Sequence[int],
    scale: float = 1.0,
    workers: int = 1,
    cache: Union[ResultCache, str, Path, None] = None,
    telemetry=None,
    progress: Optional[ProgressFn] = None,
    executor: Optional[str] = None,
    queue_options=None,
) -> dict[str, dict[str, list[SimulationResult]]]:
    """The figure-grid convenience: ``grid[batch][policy] -> per-seed list``.

    Shared by :mod:`repro.analysis.experiments` (Figures 4/5) and the
    benchmark harness's ``benchmarks/_shared.py`` so both get the same
    parallelism and cache behaviour.
    """
    cells = [
        SweepCell(config=config, batch=batch, policy=policy, seed=seed, scale=scale)
        for batch in batches
        for seed in seeds
        for policy in policies
    ]
    flat = run_cells(
        cells,
        workers=workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
        executor=executor,
        queue_options=queue_options,
    )
    grid: dict[str, dict[str, list[SimulationResult]]] = {
        batch: {policy: [] for policy in policies} for batch in batches
    }
    for cell, result in zip(cells, flat):
        grid[cell.batch][cell.policy].append(result)
    return grid

"""Parameter sweeps: one knob varied, everything else held.

The paper's premise lives on two axes (device latency vs context-switch
cost) and its motivation on a third (page size).  These helpers run a
batch across one axis for a set of policies and return structured rows,
shared by the ablation benches, the CLI ``crossover`` command, and the
examples.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.analysis.experiments import POLICY_FACTORIES
from repro.analysis.runner import SweepCell, run_cells
from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.common.units import KIB, US
from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class SweepRow:
    """One sweep point: the knob value and the per-policy results."""

    value: float
    results: Mapping[str, SimulationResult]

    def winner_by_makespan(self) -> str:
        """Policy with the smallest makespan at this point."""
        return min(self.results, key=lambda name: self.results[name].makespan_ns)

    def winner_by_idle(self) -> str:
        """Policy with the least CPU idle time at this point."""
        return min(self.results, key=lambda name: self.results[name].total_idle_ns)


def sweep(
    transform: Callable[[MachineConfig, float], MachineConfig],
    values: Sequence[float],
    *,
    policies: Sequence[str] = ("Sync", "Async"),
    batch: str = "1_Data_Intensive",
    seed: int = 1,
    scale: float = 0.5,
    base: Optional[MachineConfig] = None,
    workers: int = 1,
    cache=None,
    telemetry=None,
    progress=None,
    executor=None,
) -> list[SweepRow]:
    """Run *batch* under *policies* for every knob value.

    ``transform(config, value)`` returns the config for one sweep point.
    The value x policy grid is a batch of independent cells, executed by
    :func:`repro.analysis.runner.run_cells`: ``workers > 1`` fans them
    out across processes, *cache* (a
    :class:`~repro.analysis.runner.ResultCache` or a directory path)
    serves previously simulated cells from disk, and results are
    identical at any worker count.
    """
    if not values:
        raise ConfigError("sweep needs at least one value")
    unknown = [p for p in policies if p not in POLICY_FACTORIES]
    if unknown:
        raise ConfigError(f"unknown policies in sweep: {unknown}")
    base = base or MachineConfig()
    cells = [
        SweepCell(
            config=transform(base, value),
            batch=batch,
            policy=policy,
            seed=seed,
            scale=scale,
        )
        for value in values
        for policy in policies
    ]
    flat = run_cells(
        cells,
        workers=workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
        executor=executor,
    )
    rows = []
    for v_index, value in enumerate(values):
        offset = v_index * len(policies)
        results = {
            policy: flat[offset + p_index]
            for p_index, policy in enumerate(policies)
        }
        rows.append(SweepRow(value=value, results=results))
    return rows


def _with_device_latency(config: MachineConfig, latency_us: float) -> MachineConfig:
    return dataclasses.replace(
        config,
        device=dataclasses.replace(
            config.device, access_latency_ns=round(latency_us * US)
        ),
    )


def _with_switch_cost(config: MachineConfig, cost_us: float) -> MachineConfig:
    return dataclasses.replace(
        config,
        scheduler=dataclasses.replace(
            config.scheduler, context_switch_ns=round(cost_us * US)
        ),
    )


def _with_dram_frames(config: MachineConfig, frames: float) -> MachineConfig:
    return dataclasses.replace(
        config,
        memory=dataclasses.replace(config.memory, dram_frames=int(frames)),
    )


def _with_page_size(config: MachineConfig, page_kib: float) -> MachineConfig:
    page_size = round(page_kib * KIB)
    frames = max(16, config.memory.dram_bytes // page_size)
    return dataclasses.replace(
        config,
        memory=dataclasses.replace(
            config.memory, page_size=page_size, dram_frames=frames
        ),
    )


def sweep_device_latency(latencies_us: Sequence[float], **kwargs) -> list[SweepRow]:
    """Sweep the ULL device's access latency (microseconds)."""
    return sweep(_with_device_latency, latencies_us, **kwargs)


def sweep_context_switch_cost(costs_us: Sequence[float], **kwargs) -> list[SweepRow]:
    """Sweep the context-switch cost (microseconds)."""
    return sweep(_with_switch_cost, costs_us, **kwargs)


def sweep_page_size(pages_kib: Sequence[float], **kwargs) -> list[SweepRow]:
    """Sweep the page size (KiB), holding DRAM bytes constant."""
    return sweep(_with_page_size, pages_kib, **kwargs)


def _with_core_count(config: MachineConfig, count: float) -> MachineConfig:
    from repro.common.config import with_cores

    return with_cores(config, int(count))


def sweep_dram_frames(frames: Sequence[int], **kwargs) -> list[SweepRow]:
    """Sweep the DRAM frame count (memory pressure axis)."""
    return sweep(_with_dram_frames, frames, **kwargs)


def sweep_cores(counts: Sequence[int], **kwargs) -> list[SweepRow]:
    """Sweep the SMP core count.

    Note ``counts=[1]`` produces a config whose explicit default
    ``cores`` block hashes identically to no block at all
    (:meth:`~repro.common.config.MachineConfig.to_dict` omits it), so a
    core-scaling sweep shares its single-core cells with every
    historical sweep in the cache.
    """
    return sweep(_with_core_count, counts, **kwargs)


def find_crossover(rows: Sequence[SweepRow], a: str, b: str) -> Optional[float]:
    """First sweep value where the makespan winner flips from *a* to *b*.

    Returns ``None`` if no flip occurs over the swept range.
    """
    previous_a_wins: Optional[bool] = None
    for row in rows:
        if a not in row.results or b not in row.results:
            raise ConfigError(f"sweep rows lack policies {a!r}/{b!r}")
        a_wins = row.results[a].makespan_ns < row.results[b].makespan_ns
        if previous_a_wins is True and not a_wins:
            return row.value
        previous_a_wins = a_wins
    return None

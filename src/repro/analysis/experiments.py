"""Experiment runners: one per paper artefact.

Every runner is deterministic in its ``seeds`` argument and averages
across them, since the paper's priority assignment is random and single
assignments can flip which process is the makespan laggard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.adaptive import AdaptivePolicy
from repro.analysis.results import (
    FigureSeries,
    MetricKind,
    average_results,
)
from repro.baselines import (
    AsyncIOPolicy,
    IOPolicy,
    SyncIOPolicy,
    SyncPrefetchPolicy,
    SyncRunaheadPolicy,
)
from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRNG
from repro.core import ITSPolicy
from repro.engine import build_simulation
from repro.sim.batch import batch_names, build_batch
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import WorkloadInstance
from repro.trace.workloads import build_workload

POLICY_FACTORIES: dict[str, Callable[[], IOPolicy]] = {
    "Async": AsyncIOPolicy,
    "Sync": SyncIOPolicy,
    "Sync_Runahead": SyncRunaheadPolicy,
    "Sync_Prefetch": SyncPrefetchPolicy,
    "ITS": ITSPolicy,
    "Adaptive": AdaptivePolicy,
}
"""Every runnable policy: the paper's five designs in legend order, plus
the adaptive I/O-mode controller (:mod:`repro.adaptive`)."""

PAPER_POLICIES = ("Async", "Sync", "Sync_Runahead", "Sync_Prefetch", "ITS")
"""The five designs the paper evaluates, in legend order.  The figure
runners default to these so regenerated figures match the paper; pass
``policies=tuple(POLICY_FACTORIES)`` to overlay Adaptive as well."""

DEFAULT_SEEDS = (1, 2, 3)
"""Priority-assignment seeds averaged by default."""


def run_batch_policy(
    config: MachineConfig,
    batch_name: str,
    policy_name: str,
    *,
    seed: int = 1,
    scale: float = 1.0,
    cores: Optional[int] = None,
    event_log=None,
    telemetry=None,
) -> SimulationResult:
    """Run one (batch, policy, seed) cell and return its raw result.

    Pass a :class:`~repro.telemetry.Telemetry` handle as *telemetry* to
    collect spans and metrics from the run (its embedded event log is
    used when *event_log* is not given).  ``cores`` overrides the
    config's SMP core count.
    """
    import dataclasses

    factory = POLICY_FACTORIES.get(policy_name)
    if factory is None:
        raise ConfigError(
            f"unknown policy {policy_name!r}; known: {', '.join(POLICY_FACTORIES)}"
        )
    if cores is not None:
        config = dataclasses.replace(
            config, cores=dataclasses.replace(config.cores, count=cores)
        )
    if config.serving.enabled:
        # Open-loop serving cell: the batch is a workload *mix* that
        # requests draw from, not a fixed six-process roster.
        from repro.serving.schedule import build_request_load

        workloads, requests = build_request_load(
            config, batch_name, seed=seed, scale=scale
        )
        return build_simulation(
            config,
            workloads,
            factory(),
            batch_name=batch_name,
            event_log=event_log,
            telemetry=telemetry,
            requests=requests,
        ).run()
    workloads = build_batch(batch_name, seed=seed, scale=scale, config=config)
    return build_simulation(
        config,
        workloads,
        factory(),
        batch_name=batch_name,
        event_log=event_log,
        telemetry=telemetry,
    ).run()


def _run_grid(
    config: MachineConfig,
    seeds: Sequence[int],
    scale: float,
    policies: Sequence[str],
    batches: Sequence[str],
    *,
    workers: int = 1,
    cache=None,
    telemetry=None,
    progress=None,
    executor=None,
) -> dict[str, dict[str, list[SimulationResult]]]:
    """results[batch][policy] = list of per-seed results.

    Delegates to :func:`repro.analysis.runner.run_grid`, so the figure
    grids inherit process-pool parallelism and the content-addressed
    result cache.
    """
    from repro.analysis.runner import run_grid

    return run_grid(
        config,
        batches=batches,
        policies=policies,
        seeds=seeds,
        scale=scale,
        workers=workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
        executor=executor,
    )


def _series_from_grid(
    grid: Mapping[str, Mapping[str, Sequence[SimulationResult]]],
    metric: MetricKind,
    title: str,
    policies: Sequence[str],
) -> FigureSeries:
    batches = list(grid)
    series: dict[str, list[float]] = {policy: [] for policy in policies}
    for batch in batches:
        averages = average_results(grid[batch], metric)
        for policy in policies:
            series[policy].append(averages.values[policy])
    return FigureSeries(title=title, metric=metric, x_labels=batches, series=series)


@dataclass
class Figure4Data:
    """Figures 4a-4c: idle time, page faults, cache misses per batch."""

    idle_time: FigureSeries
    page_faults: FigureSeries
    cache_misses: FigureSeries

    def normalized_idle(self, reference: str = "ITS") -> FigureSeries:
        """Figure 4a's y-axis: idle time normalised to ITS."""
        return self.idle_time.normalized_to(reference)


@dataclass
class Figure5Data:
    """Figures 5a-5b: average finish time of top/bottom half."""

    top_half: FigureSeries
    bottom_half: FigureSeries

    def normalized(self, reference: str = "ITS") -> tuple[FigureSeries, FigureSeries]:
        """Both panels normalised to ITS."""
        return (
            self.top_half.normalized_to(reference),
            self.bottom_half.normalized_to(reference),
        )


@dataclass
class ObservationData:
    """Section 2.2: idle time vs number of co-running processes."""

    process_counts: list[int]
    idle_ns: list[float]
    idle_fraction: list[float]
    normalized_idle: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.normalized_idle and self.idle_ns:
            base = self.idle_ns[0]
            self.normalized_idle = [v / base for v in self.idle_ns]


def run_figure4(
    config: Optional[MachineConfig] = None,
    *,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    scale: float = 1.0,
    policies: Sequence[str] = PAPER_POLICIES,
    batches: Optional[Sequence[str]] = None,
    workers: int = 1,
    cache=None,
    telemetry=None,
    progress=None,
    executor=None,
) -> Figure4Data:
    """Regenerate Figure 4 (all three panels).

    ``workers``/``cache`` are forwarded to the sweep engine (see
    :mod:`repro.analysis.runner`); results are identical at any worker
    count.
    """
    config = config or MachineConfig()
    batches = list(batches) if batches is not None else batch_names()
    grid = _run_grid(
        config, seeds, scale, policies, batches,
        workers=workers, cache=cache, telemetry=telemetry, progress=progress,
        executor=executor,
    )
    return Figure4Data(
        idle_time=_series_from_grid(
            grid, MetricKind.IDLE_TIME, "Fig 4a: total CPU idle time (ns)", policies
        ),
        page_faults=_series_from_grid(
            grid, MetricKind.PAGE_FAULTS, "Fig 4b: number of major page faults", policies
        ),
        cache_misses=_series_from_grid(
            grid, MetricKind.CACHE_MISSES, "Fig 4c: number of CPU cache misses", policies
        ),
    )


def run_figure5(
    config: Optional[MachineConfig] = None,
    *,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    scale: float = 1.0,
    policies: Sequence[str] = PAPER_POLICIES,
    batches: Optional[Sequence[str]] = None,
    workers: int = 1,
    cache=None,
    telemetry=None,
    progress=None,
    executor=None,
) -> Figure5Data:
    """Regenerate Figure 5 (both panels).

    ``workers``/``cache`` are forwarded to the sweep engine (see
    :mod:`repro.analysis.runner`); results are identical at any worker
    count.
    """
    config = config or MachineConfig()
    batches = list(batches) if batches is not None else batch_names()
    grid = _run_grid(
        config, seeds, scale, policies, batches,
        workers=workers, cache=cache, telemetry=telemetry, progress=progress,
        executor=executor,
    )
    return Figure5Data(
        top_half=_series_from_grid(
            grid,
            MetricKind.FINISH_TOP_HALF,
            "Fig 5a: avg finish time, top 50% priority (ns)",
            policies,
        ),
        bottom_half=_series_from_grid(
            grid,
            MetricKind.FINISH_BOTTOM_HALF,
            "Fig 5b: avg finish time, bottom 50% priority (ns)",
            policies,
        ),
    )


@dataclass(frozen=True)
class TailSensitivityRow:
    """One fault profile's crossover picture over the latency sweep.

    ``crossover_us`` is the first swept device latency (µs) at which the
    makespan winner flips from the first to the second swept policy
    (``None`` when it never flips); ``sync_wins`` counts sweep points the
    first policy wins; ``points`` keeps the underlying
    :class:`~repro.analysis.sweeps.SweepRow` list for deeper inspection.
    """

    profile: str
    crossover_us: Optional[float]
    sync_wins: int
    points: list


DEFAULT_TAIL_PROFILES = ("none", "tail_lognormal", "tail_bimodal", "tail_p999")
"""Fault profiles compared by the tail-sensitivity experiment."""


def run_tail_sensitivity(
    config: Optional[MachineConfig] = None,
    *,
    profiles: Sequence[str] = DEFAULT_TAIL_PROFILES,
    latencies_us: Sequence[float] = (1, 3, 7, 15, 30, 60, 100),
    policies: Sequence[str] = ("Sync", "Async"),
    batch: str = "1_Data_Intensive",
    seed: int = 1,
    scale: float = 0.5,
    workers: int = 1,
    cache=None,
    telemetry=None,
    progress=None,
    executor=None,
) -> list[TailSensitivityRow]:
    """How the sync/async crossover shifts under read-tail variability.

    The paper's crossover argument assumes every read takes the nominal
    device latency; this experiment re-runs the device-latency sweep
    under each named fault profile (see
    :data:`repro.faults.profiles.FAULT_PROFILES`) and reports where the
    makespan winner flips.  Heavy P99.9 tails make the busy-wait bet
    worse at a given *nominal* latency, so the crossover moves toward
    faster devices — quantifying how much idealised-device conclusions
    overstate the synchronous mode's window.

    Cells are cached per (config, batch, policy, seed, scale) like any
    sweep; distinct fault profiles hash to distinct cache keys.
    """
    from repro.analysis.sweeps import find_crossover, sweep_device_latency
    from repro.faults.profiles import with_fault_profile

    if len(policies) < 2:
        raise ConfigError("tail sensitivity compares at least two policies")
    config = config or MachineConfig()
    rows: list[TailSensitivityRow] = []
    for profile in profiles:
        base = with_fault_profile(config, profile)
        points = sweep_device_latency(
            latencies_us,
            policies=policies,
            batch=batch,
            seed=seed,
            scale=scale,
            base=base,
            workers=workers,
            cache=cache,
            telemetry=telemetry,
            progress=progress,
            executor=executor,
        )
        first, second = policies[0], policies[1]
        crossover = find_crossover(points, first, second)
        sync_wins = sum(
            1
            for point in points
            if point.results[first].makespan_ns < point.results[second].makespan_ns
        )
        rows.append(
            TailSensitivityRow(
                profile=profile,
                crossover_us=crossover,
                sync_wins=sync_wins,
                points=points,
            )
        )
    return rows


@dataclass(frozen=True)
class AdaptiveComparisonRow:
    """One (fault profile, device latency) point of the adaptive study.

    ``makespan_ns`` / ``mean_finish_ns`` map every compared policy
    (statics plus ``"Adaptive"``) to its batch makespan and mean
    process-finish time; ``best_static`` names the static policy with
    the smallest makespan at this point, and ``adaptive_gap`` is the
    adaptive makespan's relative distance from it (negative when
    adaptive beats every static policy).
    """

    profile: str
    latency_us: float
    makespan_ns: Mapping[str, int]
    mean_finish_ns: Mapping[str, float]
    best_static: str
    adaptive_gap: float


DEFAULT_ADAPTIVE_PROFILES = ("none", "tail_lognormal", "tail_bimodal")
"""Fault profiles swept by :func:`run_adaptive_comparison`."""

DEFAULT_STATIC_POLICIES = ("Sync", "Async", "ITS")
"""Fixed-mode policies the adaptive controller is measured against."""


def _mean_finish_ns(result: SimulationResult) -> float:
    """Mean finish time across all processes of one run."""
    records = result.processes
    return sum(r.finish_time_ns for r in records) / len(records)


def run_adaptive_comparison(
    config: Optional[MachineConfig] = None,
    *,
    profiles: Sequence[str] = DEFAULT_ADAPTIVE_PROFILES,
    latencies_us: Sequence[float] = (1, 3, 7, 15, 30, 60, 100),
    static_policies: Sequence[str] = DEFAULT_STATIC_POLICIES,
    batch: str = "1_Data_Intensive",
    seed: int = 1,
    scale: float = 0.5,
    workers: int = 1,
    cache=None,
    telemetry=None,
    progress=None,
    executor=None,
) -> list[AdaptiveComparisonRow]:
    """Adaptive mode selection vs every static policy, across tails.

    For each fault profile, sweeps the nominal device latency and runs
    the static policies plus ``Adaptive`` at every point.  The question
    the grid answers: does online estimation recover (close to) the best
    static choice without being told the device's latency distribution?
    Under the idealised ``none`` profile the adaptive controller should
    track the best static policy within a few percent at every latency;
    under heavy tails it should beat at least the statics caught on the
    wrong side of the sync/async trade.

    The machine config is *not* modified for the adaptive cells beyond
    the fault profile — :class:`~repro.adaptive.AdaptivePolicy` reads
    ``config.adaptive`` whether or not the block is enabled, so the
    static cells keep their historical cache keys.
    """
    from repro.analysis.sweeps import sweep_device_latency
    from repro.faults.profiles import with_fault_profile

    if "Adaptive" in static_policies:
        raise ConfigError("static_policies must not include 'Adaptive'")
    if not static_policies:
        raise ConfigError("adaptive comparison needs at least one static policy")
    config = config or MachineConfig()
    policies = tuple(static_policies) + ("Adaptive",)
    rows: list[AdaptiveComparisonRow] = []
    for profile in profiles:
        base = with_fault_profile(config, profile)
        points = sweep_device_latency(
            latencies_us,
            policies=policies,
            batch=batch,
            seed=seed,
            scale=scale,
            base=base,
            workers=workers,
            cache=cache,
            telemetry=telemetry,
            progress=progress,
            executor=executor,
        )
        for point in points:
            makespans = {
                name: point.results[name].makespan_ns for name in policies
            }
            best_static = min(static_policies, key=makespans.__getitem__)
            gap = (
                makespans["Adaptive"] - makespans[best_static]
            ) / makespans[best_static]
            rows.append(
                AdaptiveComparisonRow(
                    profile=profile,
                    latency_us=point.value,
                    makespan_ns=makespans,
                    mean_finish_ns={
                        name: _mean_finish_ns(point.results[name])
                        for name in policies
                    },
                    best_static=best_static,
                    adaptive_gap=gap,
                )
            )
    return rows


@dataclass(frozen=True)
class CoreScalingRow:
    """One core count of the SMP scaling study.

    ``makespan_ns`` maps every policy to its batch makespan at this core
    count; ``speedup`` maps it to ``makespan(cores=1) / makespan(here)``
    (1.0 for the single-core row by construction).
    """

    cores: int
    makespan_ns: Mapping[str, int]
    mean_finish_ns: Mapping[str, float]
    speedup: Mapping[str, float]


DEFAULT_CORE_COUNTS = (1, 2, 4)
"""Core counts swept by :func:`run_core_scaling`."""


def run_core_scaling(
    config: Optional[MachineConfig] = None,
    *,
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    policies: Sequence[str] = ("Sync", "Async", "ITS"),
    batch: str = "1_Data_Intensive",
    profile: Optional[str] = None,
    seed: int = 1,
    scale: float = 0.5,
    workers: int = 1,
    cache=None,
    telemetry=None,
    progress=None,
    executor=None,
) -> list[CoreScalingRow]:
    """How does each I/O policy scale with cores on one batch?

    Sweeps the SMP core count and reports per-policy makespans plus the
    speedup over the single-core run (docs/SMP.md).  ``profile``
    optionally applies a fault profile first — fault-heavy batches are
    where cross-core pickup of sacrificed processes pays off.  Requires
    ``1 in core_counts`` (the speedup baseline).
    """
    from repro.analysis.sweeps import sweep_cores
    from repro.faults.profiles import with_fault_profile

    if 1 not in core_counts:
        raise ConfigError("core scaling needs the cores=1 baseline in core_counts")
    if sorted(set(core_counts)) != sorted(core_counts):
        raise ConfigError("core_counts must be distinct")
    config = config or MachineConfig()
    if profile is not None:
        config = with_fault_profile(config, profile)
    points = sweep_cores(
        tuple(core_counts),
        policies=tuple(policies),
        batch=batch,
        seed=seed,
        scale=scale,
        base=config,
        workers=workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
        executor=executor,
    )
    baseline = {
        name: result.makespan_ns
        for point in points
        if point.value == 1
        for name, result in point.results.items()
    }
    rows: list[CoreScalingRow] = []
    for point in points:
        makespans = {name: r.makespan_ns for name, r in point.results.items()}
        rows.append(
            CoreScalingRow(
                cores=int(point.value),
                makespan_ns=makespans,
                mean_finish_ns={
                    name: _mean_finish_ns(r) for name, r in point.results.items()
                },
                speedup={
                    name: baseline[name] / makespans[name] for name in makespans
                },
            )
        )
    return rows


OBSERVATION_WORKLOADS = ("wrf", "blender", "pagerank", "random_walk", "graph500")
"""Section 2.2's five representative processes: Wrf, Blender, page rank,
random walk, and single shortest path."""


def run_observation(
    config: Optional[MachineConfig] = None,
    *,
    process_counts: Sequence[int] = (2, 3, 4, 5),
    seed: int = 1,
    scale: float = 1.0,
) -> ObservationData:
    """Regenerate the Section 2.2 motivation experiment.

    Runs the first *k* of the five representative processes under the
    synchronous I/O mode and reports total idle time, the idle fraction
    of the makespan (the paper observes >22 %), and idle normalised to
    the 2-process run (the paper's normalisation).
    """
    config = config or MachineConfig()
    if min(process_counts) < 1 or max(process_counts) > len(OBSERVATION_WORKLOADS):
        raise ConfigError(
            f"process counts must lie in [1, {len(OBSERVATION_WORKLOADS)}]"
        )
    rng = DeterministicRNG(seed)
    levels = config.scheduler.priority_levels
    priorities = rng.sample(range(levels), len(OBSERVATION_WORKLOADS))
    builds = [
        build_workload(name, rng.fork(i + 1), scale)
        for i, name in enumerate(OBSERVATION_WORKLOADS)
    ]
    idle_ns: list[float] = []
    idle_fraction: list[float] = []
    for count in process_counts:
        workloads = [
            WorkloadInstance(
                name=OBSERVATION_WORKLOADS[i],
                trace=builds[i].trace,
                priority=priorities[i],
                mapped_vpns=builds[i].mapped_vpns,
            )
            for i in range(count)
        ]
        result = build_simulation(
            config, workloads, SyncIOPolicy(), batch_name=f"observation_{count}"
        ).run()
        idle_ns.append(float(result.total_idle_ns))
        idle_fraction.append(result.total_idle_ns / result.makespan_ns)
    return ObservationData(
        process_counts=list(process_counts),
        idle_ns=idle_ns,
        idle_fraction=idle_fraction,
    )

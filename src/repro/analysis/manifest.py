"""Sweep manifests: the durable description of a cell grid.

A manifest is the *immutable* half of a distributed sweep: the full
list of cells (as JSON payloads that round-trip through
:class:`~repro.common.config.MachineConfig`), each with its
content-addressed cache key, plus the shared cache directory the
workers coordinate through.  It is written once by ``repro sweep init``
(atomic temp-file + rename) and only ever *read* by workers — all
mutable coordination state lives next to the cache instead:

* ``<cache>/claims/``     — in-flight cells (:mod:`repro.analysis.claims`);
* ``<cache>/failures/``   — cells whose retries were exhausted, one
  JSON record per cell key (no contention: a cell has at most one
  owner, so at most one writer);
* ``<cache>/sweeps/<name>.progress.json`` — the grid-level progress
  checkpoint (total/done/claimed/stale/failed/pending), re-derived
  from the durable state and atomically replaced by whichever worker
  finished a cell last.  It is a *snapshot for humans and dashboards*;
  correctness never depends on it.

Because ``done`` means "the cell's key is in the content-addressed
cache", a manifest survives any kill/restart sequence: progress is
exactly the set of cached keys, and resuming is just running workers
again.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.claims import ClaimStore
from repro.analysis.runner import ResultCache, SweepCell, cache_key
from repro.common.config import MachineConfig
from repro.common.errors import ConfigError

MANIFEST_VERSION = 1
"""Bumped on any incompatible change to the manifest encoding."""


def _atomic_write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    tmp.replace(path)


class SweepManifest:
    """An ordered cell grid plus the cache directory workers share."""

    def __init__(
        self,
        *,
        name: str,
        cache_dir: Union[str, Path],
        cells: Sequence[SweepCell],
    ) -> None:
        if not cells:
            raise ConfigError("a sweep manifest needs at least one cell")
        self.name = name
        self.cache_dir = str(cache_dir)
        self.cells = list(cells)
        self.keys = [cache_key(cell) for cell in self.cells]
        if len(set(self.keys)) != len(self.keys):
            raise ConfigError("manifest cells must be unique (duplicate cache key)")

    def __len__(self) -> int:
        return len(self.cells)

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON-safe manifest encoding (see :meth:`save`)."""
        return {
            "manifest_version": MANIFEST_VERSION,
            "name": self.name,
            "cache_dir": self.cache_dir,
            "cells": [
                {
                    "key": key,
                    "config": cell.config.to_dict(),
                    "batch": cell.batch,
                    "policy": cell.policy,
                    "seed": cell.seed,
                    "scale": cell.scale,
                }
                for key, cell in zip(self.keys, self.cells)
            ],
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Atomically write the manifest JSON; returns the path."""
        path = Path(path)
        _atomic_write_json(path, self.to_dict())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepManifest":
        """Load and re-verify a manifest.

        Every stored cell key is recomputed from the cell's inputs; a
        mismatch means the code's key derivation moved under the
        manifest (e.g. a ``FORMAT_VERSION`` bump) and the sweep must be
        re-initialised rather than silently mixing incompatible cells.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ConfigError(f"manifest not found: {path}") from None
        except (OSError, ValueError) as exc:
            raise ConfigError(f"unreadable manifest {path}: {exc}") from exc
        if not isinstance(data, dict) or "cells" not in data:
            raise ConfigError(f"malformed manifest {path}")
        if data.get("manifest_version") != MANIFEST_VERSION:
            raise ConfigError(
                f"manifest {path} has version {data.get('manifest_version')}, "
                f"this code reads version {MANIFEST_VERSION} — re-run "
                "'repro sweep init'"
            )
        cells = []
        for entry in data["cells"]:
            cell = SweepCell(
                config=MachineConfig.from_dict(entry["config"]),
                batch=entry["batch"],
                policy=entry["policy"],
                seed=entry["seed"],
                scale=entry["scale"],
            )
            if cache_key(cell) != entry["key"]:
                raise ConfigError(
                    f"manifest {path} is stale: cell '{cell.describe()}' now "
                    f"hashes to a different key (result format or config "
                    "encoding changed) — re-run 'repro sweep init'"
                )
            cells.append(cell)
        manifest = cls(
            name=data.get("name", path.stem),
            cache_dir=data.get("cache_dir", ""),
            cells=cells,
        )
        return manifest

    # -- coordination paths --------------------------------------------------

    def resolve_cache(self, override: Union[str, Path, None] = None) -> ResultCache:
        """The shared cache, honouring an explicit override."""
        root = override or self.cache_dir
        if not root:
            raise ConfigError(
                f"manifest {self.name!r} records no cache_dir; pass --cache-dir"
            )
        return ResultCache(root)

    def claims_root(self, cache: ResultCache) -> Path:
        """Where this sweep's claim files live (shared across workers)."""
        return cache.root / "claims"

    def failures_root(self, cache: ResultCache) -> Path:
        """Where durable per-cell failure records live."""
        return cache.root / "failures"

    def progress_path(self, cache: ResultCache) -> Path:
        """The atomically-replaced grid progress checkpoint."""
        return cache.root / "sweeps" / f"{self.name}.progress.json"


class FailureLog:
    """Per-cell failure records under ``<cache>/failures``.

    A record is written only by the (single) worker whose claim covered
    the cell when retries ran out, so writes never contend; the write
    itself is still atomic so a kill mid-write cannot leave junk that
    other workers misread.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Failure-record path for a cell cache key."""
        return self.root / f"{key}.json"

    def record(
        self, key: str, *, label: str, attempts: int, error: str, worker: str
    ) -> None:
        """Durably record that *key* exhausted its retries."""
        _atomic_write_json(
            self.path_for(key),
            {
                "key": key,
                "cell": label,
                "attempts": attempts,
                "error": error,
                "worker": worker,
                "recorded_at": time.time(),
            },
        )

    def get(self, key: str) -> Optional[dict]:
        """The failure record for *key*, or ``None``."""
        try:
            data = json.loads(self.path_for(key).read_text(encoding="utf-8"))
            return data if isinstance(data, dict) else None
        except (OSError, ValueError):
            return None

    def keys(self) -> set[str]:
        """Cache keys of every recorded failure."""
        if not self.root.is_dir():
            return set()
        return {p.stem for p in self.root.glob("*.json") if ".tmp." not in p.name}

    def clear(self, keys: Optional[Sequence[str]] = None) -> int:
        """Forget failure records (all, or just *keys*); returns the count."""
        wanted = set(keys) if keys is not None else None
        removed = 0
        for key in sorted(self.keys()):
            if wanted is not None and key not in wanted:
                continue
            self.path_for(key).unlink(missing_ok=True)
            removed += 1
        return removed


@dataclass(frozen=True)
class SweepProgress:
    """One grid-level checkpoint: where every cell currently stands."""

    name: str
    total: int
    done: int
    claimed: int
    stale: int
    failed: int

    @property
    def pending(self) -> int:
        """Cells nobody has finished, claimed, or given up on."""
        return self.total - self.done - self.claimed - self.stale - self.failed

    @property
    def complete(self) -> bool:
        return self.done == self.total

    def to_dict(self) -> dict:
        """JSON-safe encoding for the checkpoint file."""
        return {
            "name": self.name,
            "total": self.total,
            "done": self.done,
            "claimed": self.claimed,
            "stale": self.stale,
            "failed": self.failed,
            "pending": self.pending,
        }

    def render(self) -> str:
        """One line for progress callbacks and ``sweep status``."""
        return (
            f"{self.name}: {self.done}/{self.total} done, "
            f"{self.claimed} claimed, {self.stale} stale, "
            f"{self.failed} failed, {self.pending} pending"
        )


def scan_progress_keys(
    name: str,
    keys: Sequence[str],
    cache: ResultCache,
    claims: ClaimStore,
    failures: FailureLog,
) -> SweepProgress:
    """Derive the checkpoint from durable state (cache, claims, failures).

    ``done`` beats every other state: a cached cell counts as done even
    if a stale claim or an old failure record is still lying around.
    """
    done = claimed = stale = failed = 0
    failed_keys = failures.keys()
    for key in keys:
        if cache.path_for(key).exists():
            done += 1
        elif (info := claims.info(key)) is not None:
            if info.stale:
                stale += 1
            else:
                claimed += 1
        elif key in failed_keys:
            failed += 1
    return SweepProgress(
        name=name,
        total=len(keys),
        done=done,
        claimed=claimed,
        stale=stale,
        failed=failed,
    )


def scan_progress(
    manifest: SweepManifest,
    cache: ResultCache,
    claims: ClaimStore,
    failures: FailureLog,
) -> SweepProgress:
    """:func:`scan_progress_keys` over a whole manifest."""
    return scan_progress_keys(
        manifest.name, manifest.keys, cache, claims, failures
    )


def write_progress(path: Union[str, Path], progress: SweepProgress) -> None:
    """Atomically replace the progress checkpoint file."""
    payload = progress.to_dict()
    payload["written_at"] = time.time()
    _atomic_write_json(Path(path), payload)

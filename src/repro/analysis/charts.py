"""ASCII bar charts for figure series.

Terminal-friendly rendering of the paper's grouped-bar figures (no
plotting dependency needed).  Each x label (batch) becomes a group with
one horizontal bar per policy; values can be rendered raw or normalised.
"""

from __future__ import annotations

from repro.analysis.results import FigureSeries

_BAR = "█"
_HALF = "▌"


def render_bar_chart(
    series: FigureSeries,
    *,
    width: int = 48,
    precision: int = 2,
) -> str:
    """Render *series* as grouped horizontal ASCII bars.

    The longest bar spans *width* characters; each row shows the policy,
    the bar, and the numeric value.
    """
    if width < 4:
        raise ValueError("chart width must be at least 4 characters")
    all_values = [v for values in series.series.values() for v in values]
    peak = max(all_values) if all_values else 1.0
    if peak <= 0:
        peak = 1.0
    name_width = max(len(name) for name in series.series) if series.series else 6

    lines = [series.title]
    for i, label in enumerate(series.x_labels):
        lines.append(f"{label}:")
        for name, values in series.series.items():
            value = values[i]
            filled = value / peak * width
            bar = _BAR * int(filled)
            if filled - int(filled) >= 0.5:
                bar += _HALF
            lines.append(f"  {name:<{name_width}}  {bar:<{width}} {value:.{precision}f}")
    return "\n".join(lines)


def render_sparkline(values: list[float]) -> str:
    """One-line sparkline (eight levels) for a numeric sequence."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return blocks[0] * len(values)
    return "".join(
        blocks[min(7, int((v - low) / span * 7.999))] for v in values
    )

"""ASCII timelines over the event log.

Renders when things happened across a run's makespan: one fixed-width
strip per event kind (or per process), bucketed over virtual time.  The
`examples/event_timeline.py` walkthrough is built on these.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.common.errors import SimulationError
from repro.sim.eventlog import EventLog, SimEvent


def bucket_events(
    events: Iterable[SimEvent],
    makespan_ns: int,
    buckets: int = 60,
) -> list[int]:
    """Histogram of event counts over *buckets* equal time slices."""
    if makespan_ns <= 0:
        raise SimulationError("makespan must be positive")
    if buckets <= 0:
        raise SimulationError("need at least one bucket")
    counts = [0] * buckets
    for event in events:
        index = min(buckets - 1, event.time_ns * buckets // makespan_ns)
        counts[index] += 1
    return counts


def render_strip(
    events: Iterable[SimEvent],
    makespan_ns: int,
    *,
    buckets: int = 60,
    symbol: str = "*",
) -> str:
    """A one-line occupancy strip: *symbol* where any event landed."""
    counts = bucket_events(events, makespan_ns, buckets)
    return "".join(symbol if c else " " for c in counts)


def render_density(
    events: Iterable[SimEvent],
    makespan_ns: int,
    *,
    buckets: int = 60,
) -> str:
    """A one-line density strip using eight block levels."""
    counts = bucket_events(events, makespan_ns, buckets)
    peak = max(counts) if counts else 0
    if peak == 0:
        return " " * buckets
    blocks = " ▁▂▃▄▅▆▇█"
    return "".join(blocks[min(8, round(c / peak * 8))] for c in counts)


def render_timeline(
    log: EventLog,
    makespan_ns: int,
    *,
    kinds: Optional[Sequence[str]] = None,
    buckets: int = 60,
    density: bool = False,
) -> str:
    """Multi-row timeline, one labelled strip per event kind.

    ``kinds`` defaults to every kind present in the log, in first-seen
    order.  ``density=True`` uses block levels instead of occupancy
    marks.  A :class:`~repro.telemetry.Telemetry` handle is accepted in
    place of *log* (its embedded event log is used).
    """
    event_log = getattr(log, "event_log", None)
    if event_log is not None:
        log = event_log
    if kinds is None:
        seen: list[str] = []
        for event in log:
            if event.kind not in seen:
                seen.append(event.kind)
        kinds = seen
    label_width = max((len(k) for k in kinds), default=4)
    render = render_density if density else render_strip
    lines = []
    for kind in kinds:
        strip = render(log.of_kind(kind), makespan_ns, buckets=buckets)
        lines.append(f"{kind:<{label_width}} |{strip}|")
    return "\n".join(lines)

"""Result aggregation, normalisation, and experiment runners.

One runner per paper artefact: :func:`run_figure4` (Figures 4a-4c),
:func:`run_figure5` (Figures 5a-5b), and :func:`run_observation` (the
Section 2.2 motivation experiment).  The benchmark harness under
``benchmarks/`` is a thin wrapper around these.
"""

from repro.analysis.results import (
    FigureSeries,
    MetricKind,
    PolicyAverages,
    average_results,
    normalize_series,
)
from repro.analysis.tables import (
    render_series_table,
    render_serving_table,
    render_result_summary,
)
from repro.analysis.serving import (
    ServingRow,
    row_from_result,
    run_serving_sweep,
    serving_headline,
)
from repro.analysis.charts import render_bar_chart, render_sparkline
from repro.analysis.store import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.analysis.stats import (
    MetricSummary,
    orderings_stable,
    summarize_metric,
    summarize_policies,
)
from repro.analysis.utilization import (
    UtilizationReport,
    render_utilization,
    utilization,
)
from repro.analysis.sweeps import (
    SweepRow,
    find_crossover,
    sweep,
    sweep_context_switch_cost,
    sweep_device_latency,
    sweep_dram_frames,
    sweep_page_size,
)
from repro.analysis.report import generate_report, write_report
from repro.analysis.runner import (
    EXECUTOR_NAMES,
    CacheStats,
    CellExecutionError,
    ResultCache,
    SweepCell,
    cache_key,
    default_cache_dir,
    run_cells,
    run_grid,
    stable_hash,
)
from repro.analysis.claims import (
    DEFAULT_LEASE_S,
    ClaimInfo,
    ClaimStore,
    default_worker_id,
)
from repro.analysis.manifest import (
    FailureLog,
    SweepManifest,
    SweepProgress,
    scan_progress,
    write_progress,
)
from repro.analysis.worker import (
    QueueOptions,
    QueueWorker,
    WorkerSummary,
    run_manifest_worker,
    run_queue,
)
from repro.analysis.timeline import (
    bucket_events,
    render_density,
    render_strip,
    render_timeline,
)
from repro.analysis.validate import (
    ClaimCheck,
    render_claims,
    validate_figure4,
    validate_figure5,
    validate_observation,
)
from repro.analysis.experiments import (
    DEFAULT_ADAPTIVE_PROFILES,
    DEFAULT_STATIC_POLICIES,
    DEFAULT_TAIL_PROFILES,
    PAPER_POLICIES,
    POLICY_FACTORIES,
    AdaptiveComparisonRow,
    Figure4Data,
    Figure5Data,
    ObservationData,
    TailSensitivityRow,
    run_adaptive_comparison,
    run_batch_policy,
    run_figure4,
    run_figure5,
    run_observation,
    run_tail_sensitivity,
)

__all__ = [
    "FigureSeries",
    "MetricKind",
    "PolicyAverages",
    "average_results",
    "normalize_series",
    "render_series_table",
    "render_serving_table",
    "render_result_summary",
    "ServingRow",
    "row_from_result",
    "run_serving_sweep",
    "serving_headline",
    "render_bar_chart",
    "render_sparkline",
    "save_results",
    "load_results",
    "result_to_dict",
    "result_from_dict",
    "MetricSummary",
    "summarize_metric",
    "summarize_policies",
    "orderings_stable",
    "UtilizationReport",
    "utilization",
    "render_utilization",
    "SweepRow",
    "sweep",
    "sweep_device_latency",
    "sweep_context_switch_cost",
    "sweep_page_size",
    "sweep_dram_frames",
    "find_crossover",
    "generate_report",
    "write_report",
    "EXECUTOR_NAMES",
    "CacheStats",
    "CellExecutionError",
    "ResultCache",
    "SweepCell",
    "cache_key",
    "default_cache_dir",
    "run_cells",
    "run_grid",
    "stable_hash",
    "DEFAULT_LEASE_S",
    "ClaimInfo",
    "ClaimStore",
    "default_worker_id",
    "FailureLog",
    "SweepManifest",
    "SweepProgress",
    "scan_progress",
    "write_progress",
    "QueueOptions",
    "QueueWorker",
    "WorkerSummary",
    "run_manifest_worker",
    "run_queue",
    "bucket_events",
    "render_strip",
    "render_density",
    "render_timeline",
    "ClaimCheck",
    "validate_figure4",
    "validate_figure5",
    "validate_observation",
    "render_claims",
    "POLICY_FACTORIES",
    "Figure4Data",
    "Figure5Data",
    "ObservationData",
    "run_batch_policy",
    "run_figure4",
    "run_figure5",
    "run_observation",
    "PAPER_POLICIES",
    "DEFAULT_TAIL_PROFILES",
    "TailSensitivityRow",
    "run_tail_sensitivity",
    "DEFAULT_ADAPTIVE_PROFILES",
    "DEFAULT_STATIC_POLICIES",
    "AdaptiveComparisonRow",
    "run_adaptive_comparison",
]

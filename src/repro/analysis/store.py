"""JSON persistence for simulation results.

Lets the CLI (and downstream users) save runs and compare them later
without re-simulating.  The format is a stable, versioned, plain-JSON
encoding of :class:`~repro.sim.metrics.SimulationResult`.

This encoding is also the storage format of the content-addressed
result cache (:class:`repro.analysis.runner.ResultCache`): each cache
entry holds one :func:`result_to_dict` payload, and ``FORMAT_VERSION``
is folded into every cache key, so bumping it invalidates *both* saved
result files and every cached sweep cell at once — old entries simply
stop being addressed (``repro cache clear`` reclaims the space).  The
benches under ``benchmarks/`` discover that cache via ``--cache-dir``,
``$REPRO_CACHE_DIR``, or the ``~/.cache/repro-its`` default — see the
``benchmarks/_shared.py`` docstring and docs/RUNNING.md.

When adding a field to :class:`SimulationResult`: a field with a
default that old payloads can omit is backward-compatible; anything
else requires a ``FORMAT_VERSION`` bump.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable

from repro.common.errors import ConfigError
from repro.sim.metrics import IdleBreakdown, ProcessRecord, SimulationResult

FORMAT_VERSION = 1
"""Bumped on any incompatible schema change."""


def result_to_dict(result: SimulationResult) -> dict:
    """Encode a result as a JSON-compatible dict.

    The ``serving`` field is omitted while ``None`` (closed-loop runs),
    so every payload written before the serving layer existed — and
    every closed-loop payload written after — is byte-identical; old
    readers never see the key and new readers default it.  The ``tiers``
    field follows the same rule for single-device runs.
    """
    payload = dataclasses.asdict(result)
    if payload.get("serving") is None:
        del payload["serving"]
    if payload.get("tiers") is None:
        del payload["tiers"]
    payload["_format"] = FORMAT_VERSION
    return payload


def _serving_from_dict(data: dict | None):
    """Decode the optional serving summary (``None`` when absent)."""
    if data is None:
        return None
    from repro.serving.request import RequestRecord, ServingSummary

    try:
        return ServingSummary(
            arrival=data["arrival"],
            rate_per_s=data["rate_per_s"],
            duration_ns=data["duration_ns"],
            slo_target_ns=data["slo_target_ns"],
            slo_percentile=data["slo_percentile"],
            requests=[RequestRecord(**r) for r in data["requests"]],
        )
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed serving payload: {exc}") from exc


def _tiers_from_dict(data: dict | None):
    """Decode the optional tier summary (``None`` when absent)."""
    if data is None:
        return None
    from repro.tiering.summary import TierSummary, TierUsage

    try:
        return TierSummary(
            placement=data["placement"],
            promotions=data["promotions"],
            demotions=data["demotions"],
            migration_ns=data["migration_ns"],
            tiers=[TierUsage(**t) for t in data["tiers"]],
        )
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed tiers payload: {exc}") from exc


def result_from_dict(data: dict) -> SimulationResult:
    """Decode a dict produced by :func:`result_to_dict`."""
    version = data.get("_format")
    if version != FORMAT_VERSION:
        raise ConfigError(
            f"unsupported result format {version!r} (expected {FORMAT_VERSION})"
        )
    try:
        return SimulationResult(
            policy=data["policy"],
            batch=data["batch"],
            makespan_ns=data["makespan_ns"],
            idle=IdleBreakdown(**data["idle"]),
            processes=[ProcessRecord(**p) for p in data["processes"]],
            demand_cache_misses=data["demand_cache_misses"],
            demand_cache_accesses=data["demand_cache_accesses"],
            major_faults=data["major_faults"],
            minor_faults=data["minor_faults"],
            context_switches=data["context_switches"],
            prefetch_issued=data["prefetch_issued"],
            prefetch_hits=data["prefetch_hits"],
            preexec_instructions=data["preexec_instructions"],
            preexec_lines_warmed=data["preexec_lines_warmed"],
            instructions_committed=data["instructions_committed"],
            serving=_serving_from_dict(data.get("serving")),
            tiers=_tiers_from_dict(data.get("tiers")),
        )
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed result payload: {exc}") from exc


def save_results(path: str | Path, results: Iterable[SimulationResult]) -> None:
    """Write one or more results to a JSON file."""
    path = Path(path)
    payload = [result_to_dict(r) for r in results]
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_results(path: str | Path) -> list[SimulationResult]:
    """Read results written by :func:`save_results`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, list):
        raise ConfigError(f"{path} does not contain a result list")
    return [result_from_dict(item) for item in payload]

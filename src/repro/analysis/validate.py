"""Programmatic verification of the paper's claims.

Each claim from the paper's evaluation is encoded as a check over the
regenerated figure data; the report and the benches use these to state
PASS/FAIL explicitly instead of burying the comparison in prose.  The
one expected failure (Fig 5b vs Sync_Prefetch, see EXPERIMENTS.md) is
marked ``expected_deviation`` so a report can distinguish "broken" from
"documented".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.experiments import Figure4Data, Figure5Data, ObservationData
from repro.analysis.results import FigureSeries


@dataclass(frozen=True)
class ClaimCheck:
    """One verified claim."""

    claim_id: str
    description: str
    passed: bool
    details: str = ""
    expected_deviation: bool = False

    @property
    def status(self) -> str:
        """PASS / DEVIATION (documented) / FAIL."""
        if self.passed:
            return "PASS"
        return "DEVIATION" if self.expected_deviation else "FAIL"


def _per_batch(series: FigureSeries):
    for i, batch in enumerate(series.x_labels):
        yield batch, {name: values[i] for name, values in series.series.items()}


def _ordering_claim(
    claim_id: str,
    description: str,
    series: FigureSeries,
    ordering: Sequence[str],
    *,
    tolerance: float = 1.0,
    expected_deviation: bool = False,
) -> ClaimCheck:
    """Check ``ordering[0] <= ordering[1] <= ...`` in every batch.

    ``tolerance`` relaxes each comparison to ``a <= tolerance * b``.
    """
    failures = []
    for batch, values in _per_batch(series):
        for better, worse in zip(ordering, ordering[1:]):
            if not values[better] <= tolerance * values[worse]:
                failures.append(
                    f"{batch}: {better}={values[better]:.3g} !<= "
                    f"{tolerance:g}x {worse}={values[worse]:.3g}"
                )
    return ClaimCheck(
        claim_id=claim_id,
        description=description,
        passed=not failures,
        details="; ".join(failures),
        expected_deviation=expected_deviation,
    )


def validate_figure4(fig4: Figure4Data) -> list[ClaimCheck]:
    """The Figure 4 claims (idle time, faults, misses)."""
    checks = [
        _ordering_claim(
            "fig4a-ordering",
            "Idle time: ITS < Sync_Prefetch < Sync_Runahead < Sync < Async",
            fig4.idle_time,
            ("ITS", "Sync_Prefetch", "Sync_Runahead", "Sync", "Async"),
        ),
        _ordering_claim(
            "fig4b-its-lowest",
            "Page faults: ITS lowest (within 15% of the best)",
            fig4.page_faults,
            ("ITS",),
        ),
        _ordering_claim(
            "fig4c-runahead-best",
            "Cache misses: Sync_Runahead < ITS and Async worst",
            fig4.cache_misses,
            ("Sync_Runahead", "ITS", "Async"),
        ),
    ]
    # Fig 4b needs a floor comparison rather than a chain.
    failures = []
    for batch, values in _per_batch(fig4.page_faults):
        floor = min(values.values())
        if values["ITS"] > 1.15 * floor:
            failures.append(f"{batch}: ITS={values['ITS']:.0f} floor={floor:.0f}")
    checks[1] = ClaimCheck(
        claim_id="fig4b-its-lowest",
        description="Page faults: ITS lowest (within 15% of the best)",
        passed=not failures,
        details="; ".join(failures),
    )
    # ITS vs Sync savings bands.
    for claim_id, description, better, worse, factor in (
        ("fig4a-vs-async", "Idle: ITS saves >=50% vs Async", "ITS", "Async", 0.5),
        ("fig4a-vs-sync", "Idle: ITS saves >=15% vs Sync", "ITS", "Sync", 0.85),
    ):
        checks.append(
            _ordering_claim(
                claim_id, description, fig4.idle_time, (better, worse), tolerance=factor
            )
        )
    return checks


def validate_figure5(fig5: Figure5Data) -> list[ClaimCheck]:
    """The Figure 5 claims (finish times by priority half)."""
    return [
        _ordering_claim(
            "fig5a-its-best",
            "Top-50% finish: ITS < Sync_Prefetch < Sync < Async",
            fig5.top_half,
            ("ITS", "Sync_Prefetch", "Sync", "Async"),
        ),
        _ordering_claim(
            "fig5b-vs-async-sync",
            "Bottom-50% finish: ITS <= Sync (5% tol.) and < Async",
            fig5.bottom_half,
            ("ITS", "Sync", "Async"),
            tolerance=1.05,
        ),
        _ordering_claim(
            "fig5b-vs-prefetch",
            "Bottom-50% finish: ITS < Sync_Prefetch (paper claim; known "
            "deviation at scaled slice lengths — see EXPERIMENTS.md)",
            fig5.bottom_half,
            ("ITS", "Sync_Prefetch"),
            expected_deviation=True,
        ),
    ]


def validate_observation(obs: ObservationData) -> list[ClaimCheck]:
    """The Section 2.2 claims."""
    grows = obs.normalized_idle == sorted(obs.normalized_idle)
    share = all(frac > 0.22 for frac in obs.idle_fraction)
    return [
        ClaimCheck(
            claim_id="sec2.2-share",
            description="More than 22% of CPU time is idle under Sync",
            passed=share,
            details=", ".join(f"{f:.1%}" for f in obs.idle_fraction),
        ),
        ClaimCheck(
            claim_id="sec2.2-growth",
            description="Idle time grows with the number of processes",
            passed=grows,
            details=", ".join(f"{v:.2f}" for v in obs.normalized_idle),
        ),
    ]


def render_claims(checks: Sequence[ClaimCheck]) -> str:
    """Aligned text table of claim outcomes."""
    lines = []
    for check in checks:
        line = f"[{check.status:9s}] {check.claim_id:18s} {check.description}"
        if check.details and not check.passed:
            line += f"  ({check.details})"
        lines.append(line)
    return "\n".join(lines)

"""One-shot reproduction report.

Runs every paper experiment (Section 2.2 observation, Figures 4a-4c,
Figures 5a-5b) on the given seeds/scale and renders a self-contained
Markdown report with raw and ITS-normalised tables — the artefact a
reviewer would ask for.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.experiments import (
    DEFAULT_SEEDS,
    run_figure4,
    run_figure5,
    run_observation,
)
from repro.analysis.results import FigureSeries
from repro.common.config import MachineConfig
from repro.common.units import format_time_ns


def _markdown_table(series: FigureSeries, *, precision: int = 2) -> str:
    header = "| policy | " + " | ".join(series.x_labels) + " |"
    rule = "|---|" + "---|" * len(series.x_labels)
    rows = [
        "| " + name + " | " + " | ".join(f"{v:.{precision}f}" for v in values) + " |"
        for name, values in series.series.items()
    ]
    return "\n".join([header, rule, *rows])


def generate_report(
    config: Optional[MachineConfig] = None,
    *,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    scale: float = 1.0,
    workers: int = 1,
    cache=None,
) -> str:
    """Run all experiments and return the report as Markdown text.

    ``workers``/``cache`` are forwarded to the figure grids (see
    :mod:`repro.analysis.runner`); Figures 4 and 5 share one grid, so
    with a cache the second ``run_figure*`` call is entirely hits.
    """
    config = config or MachineConfig()
    out = io.StringIO()
    write = out.write

    write("# ITS reproduction report\n\n")
    write(
        f"Machine: LLC {config.llc.size_bytes // 1024} KiB/{config.llc.ways}-way, "
        f"DRAM {config.memory.dram_frames} frames x {config.memory.page_size} B, "
        f"device {format_time_ns(config.device.access_latency_ns)}, "
        f"switch {format_time_ns(config.scheduler.context_switch_ns)}.\n\n"
    )
    write(f"Seeds: {tuple(seeds)}; trace scale: {scale}.\n\n")

    obs = run_observation(config, scale=scale, seed=seeds[0])
    write("## Section 2.2 observation\n\n")
    write("| processes | idle | idle/makespan | normalised |\n|---|---|---|---|\n")
    for count, idle, frac, norm in zip(
        obs.process_counts, obs.idle_ns, obs.idle_fraction, obs.normalized_idle
    ):
        write(f"| {count} | {format_time_ns(idle)} | {frac:.1%} | {norm:.2f} |\n")
    write("\n")

    fig4 = run_figure4(config, seeds=seeds, scale=scale, workers=workers, cache=cache)
    fig5 = run_figure5(config, seeds=seeds, scale=scale, workers=workers, cache=cache)

    from repro.analysis.validate import (
        render_claims,
        validate_figure4,
        validate_figure5,
        validate_observation,
    )

    checks = [
        *validate_observation(obs),
        *validate_figure4(fig4),
        *validate_figure5(fig5),
    ]
    write("## Claim verification\n\n```\n")
    write(render_claims(checks))
    write("\n```\n\n")

    panels = [
        ("Figure 4a — total CPU idle time", fig4.idle_time),
        ("Figure 4b — major page faults", fig4.page_faults),
        ("Figure 4c — CPU cache misses", fig4.cache_misses),
        ("Figure 5a — top-50% priority finish time", fig5.top_half),
        ("Figure 5b — bottom-50% priority finish time", fig5.bottom_half),
    ]
    for title, series in panels:
        write(f"## {title}\n\n")
        write("Normalised to ITS:\n\n")
        write(_markdown_table(series.normalized_to("ITS")))
        write("\n\nRaw values:\n\n")
        write(_markdown_table(series, precision=0))
        write("\n\n")

    write(_fault_latency_section(config, seed=seeds[0], scale=scale))

    write(_serving_section(config, seed=seeds[0], workers=workers, cache=cache))

    write(
        "---\nSee EXPERIMENTS.md for paper-vs-measured discussion and the "
        "documented deviations.\n"
    )
    return out.getvalue()


def _fault_latency_section(
    config: MachineConfig,
    *,
    seed: int,
    scale: float,
    batch: str = "2_Data_Intensive",
) -> str:
    """Per-policy major-fault service-latency percentiles.

    Re-runs one representative batch per policy with telemetry attached
    and tabulates the ``fault.service_ns`` histogram — the paper's core
    claim restated as a latency distribution rather than a makespan bar.
    """
    from repro.analysis.experiments import POLICY_FACTORIES, run_batch_policy
    from repro.telemetry import Telemetry

    out = io.StringIO()
    out.write(f"## Major-fault service latency ({batch}, seed {seed})\n\n")
    out.write(
        "Per-policy `fault.service_ns` distribution (handler entry to "
        "page installed, virtual ns):\n\n"
    )
    out.write("| policy | faults | p50 | p95 | p99 | mean |\n|---|---|---|---|---|---|\n")
    for policy in POLICY_FACTORIES:
        telemetry = Telemetry(events=False)
        run_batch_policy(
            config, batch, policy, seed=seed, scale=scale, telemetry=telemetry
        )
        snap = telemetry.histogram("fault.service_ns").snapshot()
        if snap["count"] == 0:
            out.write(f"| {policy} | 0 | - | - | - | - |\n")
            continue
        out.write(
            f"| {policy} | {snap['count']} | {snap['p50']:.0f} | "
            f"{snap['p95']:.0f} | {snap['p99']:.0f} | {snap['mean']:.0f} |\n"
        )
    out.write("\n")
    return out.getvalue()


def _serving_section(
    config: MachineConfig,
    *,
    seed: int,
    workers: int = 1,
    cache=None,
    rates: Sequence[float] = (500.0, 2000.0),
    batch: str = "1_Data_Intensive",
    serving_scale: float = 0.1,
) -> str:
    """Open-loop latency under Poisson load (the serving layer's view).

    Unlike the figure sections this one runs at a fixed small trace
    scale: the point is the *relative* latency/attainment shape across
    policies and offered rates, and a fixed scale keeps report time
    bounded.  ``repro serve`` exposes the full parameter space.
    """
    from repro.analysis.serving import run_serving_sweep
    from repro.common.config import with_serving

    serving = config.serving if config.serving.enabled else None
    slo_ms = serving.slo_ms if serving else 2.0
    base = config if serving else with_serving(config, slo_ms=slo_ms)

    rows = run_serving_sweep(
        base,
        rates=rates,
        batch=batch,
        seed=seed,
        scale=serving_scale,
        workers=workers,
        cache=cache,
    )
    out = io.StringIO()
    out.write(f"## Open-loop serving latency ({batch}, seed {seed})\n\n")
    out.write(
        f"Poisson arrivals, trace scale {serving_scale}, SLO p99 <= "
        f"{slo_ms:g} ms.  Request latency is arrival to finish "
        "(queueing included); attainment counts drops against the SLO.\n\n"
    )
    for rate in sorted(rows):
        out.write(f"### {rate:g} req/s\n\n")
        out.write(
            "| policy | arrivals | completed | p50 | p95 | p99 | attainment | SLO |\n"
            "|---|---|---|---|---|---|---|---|\n"
        )
        for row in rows[rate]:
            fmt = lambda v: format_time_ns(v) if v is not None else "-"
            out.write(
                f"| {row.policy} | {row.arrivals} | {row.completed} | "
                f"{fmt(row.p50_ns)} | {fmt(row.p95_ns)} | {fmt(row.p99_ns)} | "
                f"{row.attainment:.3f} | {'met' if row.slo_met else 'MISS'} |\n"
            )
        out.write("\n")
    return out.getvalue()


def write_report(
    path: str | Path,
    config: Optional[MachineConfig] = None,
    *,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    scale: float = 1.0,
    workers: int = 1,
    cache=None,
) -> Path:
    """Generate the report and write it to *path*; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        generate_report(config, seeds=seeds, scale=scale, workers=workers, cache=cache),
        encoding="utf-8",
    )
    return path

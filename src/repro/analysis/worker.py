"""The work-queue sweep backend: claim, simulate, checkpoint, repeat.

This is the executor behind ``executor="queue"`` in
:func:`repro.analysis.runner.run_cells` and the ``repro sweep run`` /
``repro sweep resume`` CLI verbs.  Any number of worker processes — on
one box or on several hosts sharing the cache directory — run the same
loop against the same cell list:

1. **Scan** the cells in a per-worker rotation (cheap contention
   avoidance; correctness never depends on it).
2. **Skip** cells that are already cached (done) or carry a failure
   record (retries exhausted elsewhere).
3. **Claim** the first remaining cell via the ``O_CREAT|O_EXCL``
   protocol in :mod:`repro.analysis.claims` — stale claims (a killed
   worker's leftovers) are atomically taken over and counted as
   ``runner.stale_reclaimed``.
4. **Simulate** under a heartbeat (a daemon thread touches the claim
   every ``lease/6`` seconds so a healthy worker is never robbed), with
   **bounded retries and exponential backoff** on failure; exhausted
   cells get a durable failure record instead of poisoning the grid.
5. **Publish**: the result goes into the content-addressed cache, the
   claim is released, and the grid-level progress checkpoint is
   atomically rewritten.

Because ``done`` is defined as "key present in the cache", any
kill/restart sequence converges to the same result set as a serial run,
bit for bit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import time

from repro.analysis.claims import DEFAULT_LEASE_S, ClaimStore
from repro.analysis.manifest import (
    FailureLog,
    SweepManifest,
    SweepProgress,
    scan_progress_keys,
    write_progress,
)
from repro.analysis.runner import (
    CellExecutionError,
    ProgressFn,
    ResultCache,
    SweepCell,
    _execute_cell,
    _cell_payload,
    cache_key,
)
from repro.common.errors import ConfigError
from repro.sim.metrics import SimulationResult

LogFn = Callable[[str], None]


@dataclass(frozen=True)
class QueueOptions:
    """Tunables of one queue worker (CLI flags map 1:1 onto these)."""

    lease_s: float = DEFAULT_LEASE_S
    """Heartbeat silence after which another worker may steal a claim."""

    max_retries: int = 2
    """Re-executions after a cell's first failure (3 attempts total)."""

    backoff_s: float = 0.25
    """First retry delay; doubles per attempt (0.25, 0.5, 1.0, ...)."""

    poll_s: float = 0.5
    """Idle wait between scans while other workers hold live claims."""

    max_cells: Optional[int] = None
    """Stop after executing this many cells (None = run until drained)."""

    worker_id: Optional[str] = None
    """Stable identity for claim files (default: host-pid-nonce)."""

    def __post_init__(self) -> None:
        if self.lease_s <= 0:
            raise ConfigError(f"lease_s must be positive, got {self.lease_s}")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ConfigError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.poll_s <= 0:
            raise ConfigError(f"poll_s must be positive, got {self.poll_s}")
        if self.max_cells is not None and self.max_cells < 1:
            raise ConfigError(f"max_cells must be >= 1, got {self.max_cells}")


@dataclass
class WorkerSummary:
    """What one worker pass over the grid actually did."""

    worker_id: str
    executed: int = 0
    reclaimed: int = 0
    failed: int = 0
    retries: int = 0
    progress: Optional[SweepProgress] = None
    failures: list[dict] = field(default_factory=list)
    executed_keys: set[str] = field(default_factory=set)


class _Heartbeat:
    """Daemon thread touching one claim while its cell simulates."""

    def __init__(self, claims: ClaimStore, key: str) -> None:
        self._claims = claims
        self._key = key
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._claims.heartbeat_s):
            self._claims.heartbeat(self._key)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


class QueueWorker:
    """One worker process's view of a shared cell grid."""

    def __init__(
        self,
        cells: Sequence[SweepCell],
        *,
        cache: ResultCache,
        options: Optional[QueueOptions] = None,
        telemetry=None,
        log: Optional[LogFn] = None,
        name: str = "sweep",
        checkpoint: bool = True,
        execute: Callable[[dict], tuple[dict, int]] = _execute_cell,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.cells = list(cells)
        self.keys = [cache_key(cell) for cell in self.cells]
        self.cache = cache
        self.options = options or QueueOptions()
        self.telemetry = telemetry
        self.log = log
        self.name = name
        self.checkpoint = checkpoint
        self._execute = execute
        self._sleep = sleep
        self.claims = ClaimStore(
            cache.root / "claims",
            worker_id=self.options.worker_id,
            lease_s=self.options.lease_s,
        )
        self.failures = FailureLog(cache.root / "failures")
        self.summary = WorkerSummary(worker_id=self.claims.worker_id)

    # -- telemetry/log helpers ----------------------------------------------

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(f"[{self.claims.worker_id}] {message}")

    # -- grid state ----------------------------------------------------------

    def scan(self) -> SweepProgress:
        """Current grid progress derived from durable state."""
        return scan_progress_keys(
            self.name, self.keys, self.cache, self.claims, self.failures
        )

    def _write_checkpoint(self, progress: SweepProgress) -> None:
        if self.checkpoint:
            write_progress(
                self.cache.root / "sweeps" / f"{self.name}.progress.json", progress
            )

    def resolved(self, progress: SweepProgress) -> bool:
        """No work left: every cell is either cached or failed-durable."""
        return progress.done + progress.failed >= progress.total

    # -- the loop ------------------------------------------------------------

    def run(self) -> WorkerSummary:
        """Work the grid until drained (or ``max_cells`` executed).

        Returns this worker's :class:`WorkerSummary`; the final grid
        state is in ``summary.progress``.  Never raises on cell
        failures — those become durable failure records for the caller
        (or ``repro sweep status``) to inspect.
        """
        rotation = self._rotation()
        while True:
            claimed_any = False
            for index in rotation:
                if (
                    self.options.max_cells is not None
                    and self.summary.executed >= self.options.max_cells
                ):
                    break
                if self._try_cell(index):
                    claimed_any = True
            progress = self.scan()
            self._write_checkpoint(progress)
            if self.resolved(progress):
                break
            if (
                self.options.max_cells is not None
                and self.summary.executed >= self.options.max_cells
            ):
                break
            if not claimed_any:
                # Everything left is claimed by live peers (or waiting
                # out a lease) — idle briefly, then rescan: a peer may
                # finish, die (stale -> reclaimable), or fail-durable.
                self._sleep(self.options.poll_s)
        self.summary.progress = self.scan()
        self._write_checkpoint(self.summary.progress)
        return self.summary

    def _rotation(self) -> list[int]:
        """Cell order for this worker: rotated by worker identity so
        concurrent workers start their scans in different places."""
        if not self.cells:
            return []
        offset = hash(self.claims.worker_id) % len(self.cells)
        return list(range(offset, len(self.cells))) + list(range(offset))

    def _try_cell(self, index: int) -> bool:
        """Claim and execute one cell if available; True if claimed."""
        key = self.keys[index]
        cell = self.cells[index]
        if self.cache.path_for(key).exists():
            return False
        if self.failures.get(key) is not None:
            return False
        info = self.claims.info(key)
        was_stale = info is not None and info.stale
        if not self.claims.acquire(key):
            if self.telemetry is not None:
                self.telemetry.counter("runner.claim.contended").inc()
            return False
        if self.telemetry is not None:
            self.telemetry.counter("runner.claim.acquired").inc()
        if was_stale:
            self.summary.reclaimed += 1
            if self.telemetry is not None:
                self.telemetry.counter("runner.stale_reclaimed").inc()
            self._say(f"reclaimed stale claim ({info.worker}) on {cell.describe()}")
        try:
            # A peer may have finished the cell between our existence
            # check and the claim (or we stole a stale claim whose
            # owner died *after* publishing): re-check before paying.
            if self.cache.path_for(key).exists():
                return True
            self._execute_claimed(index, key, cell)
        finally:
            self.claims.release(key)
            if self.telemetry is not None:
                self.telemetry.counter("runner.claim.released").inc()
        return True

    def _execute_claimed(self, index: int, key: str, cell: SweepCell) -> None:
        payload = _cell_payload(cell)
        attempts = self.options.max_retries + 1
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            try:
                with _Heartbeat(self.claims, key):
                    result_dict, wall_ns = self._execute(payload)
            except Exception as exc:  # noqa: BLE001 — cell isolation is the point
                last_error = exc
                self.summary.retries += 1
                if self.telemetry is not None:
                    self.telemetry.counter("runner.retry.attempts").inc()
                self._say(
                    f"attempt {attempt + 1}/{attempts} failed for "
                    f"{cell.describe()}: {exc!r}"
                )
                if attempt + 1 < attempts:
                    self._sleep(self.options.backoff_s * (2**attempt))
                    self.claims.heartbeat(key)
                continue
            from repro.analysis.store import result_from_dict

            result = result_from_dict(result_dict)
            self.cache.put(key, result, cell)
            self.summary.executed += 1
            self.summary.executed_keys.add(key)
            if self.telemetry is not None:
                self.telemetry.counter("runner.cells.executed").inc()
            if self.telemetry is not None:
                self.telemetry.counter("runner.cache.miss").inc()
            if self.telemetry is not None:
                self.telemetry.histogram("runner.cell_wall_ns").observe(wall_ns)
            self._say(f"finished {cell.describe()}")
            return
        assert last_error is not None
        self.summary.failed += 1
        if self.telemetry is not None:
            self.telemetry.counter("runner.retry.exhausted").inc()
        record = {
            "key": key,
            "cell": cell.describe(),
            "attempts": attempts,
            "error": repr(last_error),
        }
        self.summary.failures.append(record)
        self.failures.record(
            key,
            label=cell.describe(),
            attempts=attempts,
            error=repr(last_error),
            worker=self.claims.worker_id,
        )
        self._say(
            f"gave up on {cell.describe()} after {attempts} attempts: "
            f"{last_error!r}"
        )


def run_queue(
    cells: Sequence[SweepCell],
    *,
    cache: ResultCache,
    options: Optional[QueueOptions] = None,
    telemetry=None,
    progress: Optional[ProgressFn] = None,
    log: Optional[LogFn] = None,
    name: str = "sweep",
) -> list[SimulationResult]:
    """The ``executor="queue"`` backend of
    :func:`repro.analysis.runner.run_cells`.

    Runs one :class:`QueueWorker` in this process, cooperating with any
    concurrent workers on the same cache directory, waits for the grid
    to drain, and returns results **in input order** — cells computed
    by peers are served from the shared cache and reported to
    *telemetry*/*progress* as cache hits.  Raises
    :class:`~repro.analysis.runner.CellExecutionError` if any cell
    carries a failure record once the grid is drained.
    """
    if options is not None and options.max_cells is not None:
        raise ConfigError(
            "run_queue waits for the whole grid; max_cells only applies to "
            "manifest workers (repro sweep run --max-cells)"
        )
    worker = QueueWorker(
        cells,
        cache=cache,
        options=options,
        telemetry=telemetry,
        log=log,
        name=name,
    )
    summary = worker.run()
    results: list[Optional[SimulationResult]] = [None] * len(worker.cells)
    done = 0
    failed: list[tuple[SweepCell, str]] = []
    for index, (cell, key) in enumerate(zip(worker.cells, worker.keys)):
        failure = worker.failures.get(key)
        if failure is not None and not worker.cache.path_for(key).exists():
            failed.append((cell, str(failure.get("error", "unknown error"))))
            continue
        result = cache.get(key)
        if result is None:
            # Cached when the grid drained, corrupt by the time we
            # assemble: treat like any other failed cell.
            failed.append((cell, "result vanished from the shared cache"))
            continue
        results[index] = result
        done += 1
        cached = key not in summary.executed_keys
        if telemetry is not None and cached:
            telemetry.counter("runner.cache.hit").inc()
        if progress is not None:
            progress(done, len(worker.cells), cell, cached)
    if telemetry is not None:
        telemetry.counter("runner.cells.total").inc(len(worker.cells))
    cache.flush_stats()
    if failed:
        raise CellExecutionError(failed, completed=done, total=len(worker.cells))
    return results  # type: ignore[return-value]  # every slot is filled


def run_manifest_worker(
    manifest: SweepManifest,
    *,
    cache: Optional[ResultCache] = None,
    options: Optional[QueueOptions] = None,
    telemetry=None,
    log: Optional[LogFn] = None,
) -> WorkerSummary:
    """``repro sweep run``: work a saved manifest until drained.

    Unlike :func:`run_queue` this does not wait to assemble results —
    a worker that executed its share (or hit ``max_cells``) exits and
    leaves the rest to its peers; the checkpoint and ``sweep status``
    tell the operator where the grid stands.
    """
    cache = cache if cache is not None else manifest.resolve_cache()
    worker = QueueWorker(
        manifest.cells,
        cache=cache,
        options=options,
        telemetry=telemetry,
        log=log,
        name=manifest.name,
    )
    summary = worker.run()
    cache.flush_stats()
    return summary

"""Wall-clock performance regression harness (``repro bench``).

The simulator's *simulated* results are pinned by the determinism tests;
this module pins its *cost*: how fast the simulator itself runs on the
host, in committed instructions per wall-clock second, plus the process
peak RSS.  Four canonical cases cover the code paths whose inner loops
dominate real usage:

* ``single_core`` — ITS on one core: the paper's default fast path.
* ``smp_4core`` — ITS on four cores: per-core clocks, work stealing,
  shootdown drains.
* ``tail_bimodal`` — ITS under the bimodal fault-injection profile:
  the retry/fallback machinery and tail sampling.
* ``adaptive`` — the adaptive controller: per-fault estimation and
  mode dispatch.

Each case is timed ``repeats`` times and the *minimum* wall time is
kept (minimum, not mean: the lower envelope is the least noisy
estimator of intrinsic cost on a shared host).  Results are written to
``BENCH_<stamp>.json`` at the repo root and compared against the
committed baseline (``benchmarks/baseline_bench.json``) with two
thresholds: a *warn* threshold (default 1.5x slower) and a *hard-fail*
threshold (2.0x) — CI treats warnings as advisory (hosts vary) but a
2x regression as a real one.  Peak RSS is reported but never failed
on: ``ru_maxrss`` is a high-water mark for the whole process, so later
cases inherit earlier cases' peaks.

Run locally with::

    PYTHONPATH=src python -m repro bench --check

and refresh the baseline (on the reference host) with::

    PYTHONPATH=src python -m repro bench --update-baseline
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.common.config import MachineConfig
from repro.common.errors import ReproError
from repro.faults.profiles import with_fault_profile

BASELINE_PATH = Path("benchmarks") / "baseline_bench.json"
"""Committed reference numbers, relative to the repo root."""

WARN_THRESHOLD = 1.5
"""Slowdown ratio above which a case is flagged (advisory)."""

HARD_THRESHOLD = 2.0
"""Slowdown ratio above which ``--check`` exits non-zero."""


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark configuration."""

    name: str
    policy: str
    batch: str = "2_Data_Intensive"
    seed: int = 3
    cores: Optional[int] = None
    fault_profile: Optional[str] = None

    def config(self) -> MachineConfig:
        """The machine configuration this case pins."""
        config = MachineConfig()
        if self.fault_profile is not None:
            config = with_fault_profile(config, self.fault_profile)
        return config


BENCH_CASES: tuple[BenchCase, ...] = (
    BenchCase("single_core", "ITS"),
    BenchCase("smp_4core", "ITS", cores=4),
    BenchCase("tail_bimodal", "ITS", fault_profile="tail_bimodal"),
    BenchCase("adaptive", "Adaptive"),
)


def _peak_rss_bytes() -> int:
    """Process peak RSS.  ``ru_maxrss`` is KiB on Linux, bytes on macOS."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak
    return peak * 1024


def run_case(
    case: BenchCase, *, repeats: int = 3, scale: float = 0.1
) -> dict:
    """Time one case and return its record (best-of-*repeats*)."""
    from repro.analysis.experiments import run_batch_policy

    config = case.config()
    best_s: Optional[float] = None
    instructions = 0
    makespan_ns = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = run_batch_policy(
            config,
            case.batch,
            case.policy,
            seed=case.seed,
            scale=scale,
            cores=case.cores,
        )
        elapsed = time.perf_counter() - start
        if best_s is None or elapsed < best_s:
            best_s = elapsed
        instructions = result.instructions_committed
        makespan_ns = result.makespan_ns
    assert best_s is not None
    return {
        "name": case.name,
        "policy": case.policy,
        "batch": case.batch,
        "seed": case.seed,
        "scale": scale,
        "cores": case.cores,
        "fault_profile": case.fault_profile,
        "wall_s": round(best_s, 6),
        "instructions_committed": instructions,
        "records_per_s": round(instructions / best_s) if best_s > 0 else 0,
        "makespan_ns": makespan_ns,
        "sim_ns_per_wall_s": round(makespan_ns / best_s) if best_s > 0 else 0,
    }


def run_bench(
    *,
    repeats: int = 3,
    scale: float = 0.1,
    cases: Optional[tuple[BenchCase, ...]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the full suite and return the report dict."""
    if cases is None:
        cases = BENCH_CASES  # resolved at call time (tests patch it)
    records = []
    for case in cases:
        if progress is not None:
            progress(f"bench {case.name}: {case.policy} x{repeats} ...")
        records.append(run_case(case, repeats=repeats, scale=scale))
    return {
        "schema": 1,
        "repeats": repeats,
        "scale": scale,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "peak_rss_bytes": _peak_rss_bytes(),
        "cases": records,
    }


def write_bench_json(report: dict, out_dir: Path, *, stamp: str) -> Path:
    """Write ``BENCH_<stamp>.json`` into *out_dir* and return the path."""
    path = out_dir / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path) -> dict:
    """Read a committed bench baseline, with friendly errors."""
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise ReproError(
            f"no bench baseline at {path}; create one with "
            "`repro bench --update-baseline`"
        )
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt bench baseline {path}: {exc}")


@dataclass
class CaseComparison:
    """Current-vs-baseline verdict for one case."""

    name: str
    status: str  # "ok" | "warn" | "fail" | "new"
    ratio: Optional[float] = None  # current wall / baseline wall
    current_wall_s: float = 0.0
    baseline_wall_s: Optional[float] = None
    detail: str = ""


@dataclass
class BenchComparison:
    """The full regression verdict."""

    cases: list[CaseComparison] = field(default_factory=list)

    @property
    def worst_ratio(self) -> float:
        ratios = [c.ratio for c in self.cases if c.ratio is not None]
        return max(ratios) if ratios else 0.0

    @property
    def failed(self) -> bool:
        return any(c.status == "fail" for c in self.cases)

    @property
    def warned(self) -> bool:
        return any(c.status == "warn" for c in self.cases)


def compare_bench(
    current: dict,
    baseline: dict,
    *,
    warn_threshold: float = WARN_THRESHOLD,
    hard_threshold: float = HARD_THRESHOLD,
) -> BenchComparison:
    """Compare a fresh report against the baseline, case by case.

    Only wall time is gated: simulated outputs are covered by the
    determinism tests, and RSS is a whole-process high-water mark.
    """
    by_name = {c["name"]: c for c in baseline.get("cases", ())}
    comparison = BenchComparison()
    for record in current["cases"]:
        base = by_name.get(record["name"])
        if base is None:
            comparison.cases.append(
                CaseComparison(
                    name=record["name"],
                    status="new",
                    current_wall_s=record["wall_s"],
                    detail="no baseline entry",
                )
            )
            continue
        ratio = (
            record["wall_s"] / base["wall_s"] if base["wall_s"] > 0 else 1.0
        )
        if ratio >= hard_threshold:
            status = "fail"
            detail = f">= {hard_threshold:.1f}x slower than baseline"
        elif ratio >= warn_threshold:
            status = "warn"
            detail = f">= {warn_threshold:.1f}x slower than baseline"
        else:
            status = "ok"
            detail = ""
        comparison.cases.append(
            CaseComparison(
                name=record["name"],
                status=status,
                ratio=ratio,
                current_wall_s=record["wall_s"],
                baseline_wall_s=base["wall_s"],
                detail=detail,
            )
        )
    return comparison


def render_bench_report(report: dict, comparison: Optional[BenchComparison]) -> str:
    """Human-readable bench table, with verdicts when a baseline exists."""
    verdicts = (
        {c.name: c for c in comparison.cases} if comparison is not None else {}
    )
    lines = [
        f"bench: repeats={report['repeats']} scale={report['scale']} "
        f"peak_rss={report['peak_rss_bytes'] / (1 << 20):.1f} MiB",
        f"{'case':<14} {'wall_s':>9} {'records/s':>12} "
        f"{'sim ns/wall s':>14}  verdict",
    ]
    for record in report["cases"]:
        verdict = verdicts.get(record["name"])
        if verdict is None:
            note = "-"
        elif verdict.status == "ok":
            note = f"ok ({verdict.ratio:.2f}x)"
        elif verdict.status == "new":
            note = "new (no baseline)"
        else:
            note = f"{verdict.status.upper()} ({verdict.ratio:.2f}x): {verdict.detail}"
        lines.append(
            f"{record['name']:<14} {record['wall_s']:>9.3f} "
            f"{record['records_per_s']:>12,} "
            f"{record['sim_ns_per_wall_s']:>14,}  {note}"
        )
    return "\n".join(lines)

"""Wall-clock performance regression harness (``repro bench``).

The simulator's *simulated* results are pinned by the determinism tests;
this module pins its *cost*: how fast the simulator itself runs on the
host, in committed instructions per wall-clock second, plus the process
peak RSS.  The canonical cases cover the code paths whose inner loops
dominate real usage:

* ``single_core`` — ITS on one core: the paper's default fast path.
* ``smp_4core`` — ITS on four cores: per-core clocks, work stealing,
  shootdown drains.
* ``tail_bimodal`` — ITS under the bimodal fault-injection profile:
  the retry/fallback machinery and tail sampling.
* ``adaptive`` — the adaptive controller: per-fault estimation and
  mode dispatch.
* ``hot_loop`` / ``hot_loop_fast`` — the vectorized engine
  (docs/ENGINES.md) against its reference pair on the fault-light shape
  it accelerates; ``hot_loop_fast`` carries ``speedup_vs_reference``,
  so the engine's win is a tracked number rather than a claim.

Each case is timed ``repeats`` times and the *minimum* wall time is
kept (minimum, not mean: the lower envelope is the least noisy
estimator of intrinsic cost on a shared host).  Results are written to
``BENCH_<stamp>.json`` at the repo root and compared against the
committed baseline (``benchmarks/baseline_bench.json``) with two
thresholds: a *warn* threshold (default 1.5x slower) and a *hard-fail*
threshold (2.0x) — CI treats warnings as advisory (hosts vary) but a
2x regression as a real one.  Peak RSS is reported but never failed
on: ``ru_maxrss`` is a high-water mark for the whole process, so later
cases inherit earlier cases' peaks.

Run locally with::

    PYTHONPATH=src python -m repro bench --check

and refresh the baseline (on the reference host) with::

    PYTHONPATH=src python -m repro bench --update-baseline
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.common.config import MachineConfig, with_engine
from repro.common.errors import ReproError
from repro.faults.profiles import with_fault_profile

BASELINE_PATH = Path("benchmarks") / "baseline_bench.json"
"""Committed reference numbers, relative to the repo root."""

WARN_THRESHOLD = 1.5
"""Slowdown ratio above which a case is flagged (advisory)."""

HARD_THRESHOLD = 2.0
"""Slowdown ratio above which ``--check`` exits non-zero."""


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark configuration.

    ``engine`` selects the execution engine (docs/ENGINES.md);
    ``speedup_vs`` names the reference-engine case this one is paired
    with, so the report records ``speedup_vs_reference`` (the records/s
    ratio) as a tracked number.  ``scale``, when set, pins the trace
    scale regardless of the suite-wide ``--scale`` (the hot-loop pair
    needs enough records for the ratio to be stable).  ``dram_frames``
    overrides the DRAM pool so fault-light shapes can be pinned.
    """

    name: str
    policy: str
    batch: str = "2_Data_Intensive"
    seed: int = 3
    cores: Optional[int] = None
    fault_profile: Optional[str] = None
    engine: str = "reference"
    dram_frames: Optional[int] = None
    scale: Optional[float] = None
    speedup_vs: Optional[str] = None

    def config(self) -> MachineConfig:
        """The machine configuration this case pins."""
        import dataclasses

        config = MachineConfig()
        if self.fault_profile is not None:
            config = with_fault_profile(config, self.fault_profile)
        if self.dram_frames is not None:
            config = dataclasses.replace(
                config,
                memory=dataclasses.replace(
                    config.memory, dram_frames=self.dram_frames
                ),
            )
        if self.engine != "reference":
            config = with_engine(config, self.engine)
        return config


BENCH_CASES: tuple[BenchCase, ...] = (
    BenchCase("single_core", "ITS"),
    BenchCase("smp_4core", "ITS", cores=4),
    BenchCase("tail_bimodal", "ITS", fault_profile="tail_bimodal"),
    BenchCase("adaptive", "Adaptive"),
    # The fast-engine pair: identical shape, only the engine differs,
    # so speedup_vs_reference isolates the engine's contribution.  The
    # shape is the fault-light hot loop (DRAM sized to the footprint),
    # where the step loop rather than the fault machinery dominates —
    # exactly what the fast engine exists for; fault-dominated shapes
    # run it at parity (docs/ENGINES.md).
    BenchCase(
        "hot_loop",
        "Sync",
        batch="No_Data_Intensive",
        dram_frames=8192,
        scale=3.0,
    ),
    BenchCase(
        "hot_loop_fast",
        "Sync",
        batch="No_Data_Intensive",
        dram_frames=8192,
        scale=3.0,
        engine="fast",
        speedup_vs="hot_loop",
    ),
)


def _peak_rss_bytes() -> int:
    """Process peak RSS.  ``ru_maxrss`` is KiB on Linux, bytes on macOS."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak
    return peak * 1024


class _TimedCase:
    """One case's untimed inputs plus its best-of-N timing state.

    The timed region is the simulator — construction plus the full run.
    Workload synthesis happens once, outside the timer: traces are an
    *input* to the simulator, their generation cost is identical for
    every engine and policy, and folding it in would dilute exactly the
    ratios this harness exists to track.
    """

    def __init__(self, case: BenchCase, scale: float) -> None:
        from repro.analysis.experiments import POLICY_FACTORIES
        from repro.common.config import with_cores
        from repro.sim.batch import build_batch

        config = case.config()
        if case.cores is not None:
            config = with_cores(config, case.cores)
        if case.scale is not None:
            scale = case.scale
        factory = POLICY_FACTORIES.get(case.policy)
        if factory is None:
            raise ReproError(
                f"unknown bench policy {case.policy!r}; "
                f"known: {', '.join(POLICY_FACTORIES)}"
            )
        self.case = case
        self.scale = scale
        self.config = config
        self.factory = factory
        self.workloads = build_batch(
            case.batch, seed=case.seed, scale=scale, config=config
        )
        self.best_s: Optional[float] = None
        self.instructions = 0
        self.makespan_ns = 0

    def time_once(self) -> None:
        """Run the simulator once and fold the wall time into the best."""
        from repro.engine import build_simulation

        start = time.perf_counter()
        result = build_simulation(
            self.config,
            self.workloads,
            self.factory(),
            batch_name=self.case.batch,
        ).run()
        elapsed = time.perf_counter() - start
        if self.best_s is None or elapsed < self.best_s:
            self.best_s = elapsed
        self.instructions = result.instructions_committed
        self.makespan_ns = result.makespan_ns

    def record(self) -> dict:
        best_s = self.best_s
        assert best_s is not None
        case = self.case
        return {
            "name": case.name,
            "policy": case.policy,
            "batch": case.batch,
            "seed": case.seed,
            "scale": self.scale,
            "cores": case.cores,
            "fault_profile": case.fault_profile,
            "engine": case.engine,
            "dram_frames": case.dram_frames,
            "wall_s": round(best_s, 6),
            "instructions_committed": self.instructions,
            "records_per_s": round(self.instructions / best_s)
            if best_s > 0
            else 0,
            "makespan_ns": self.makespan_ns,
            "sim_ns_per_wall_s": round(self.makespan_ns / best_s)
            if best_s > 0
            else 0,
        }


def run_case(
    case: BenchCase, *, repeats: int = 3, scale: float = 0.1
) -> dict:
    """Time one case and return its record (best-of-*repeats*)."""
    timed = _TimedCase(case, scale)
    for _ in range(max(1, repeats)):
        timed.time_once()
    return timed.record()


def _run_pair(
    reference: BenchCase, fast: BenchCase, *, repeats: int, scale: float
) -> list[dict]:
    """Time a speedup pair with *interleaved* repeats.

    Host load drifts on second timescales; timing all of one case's
    repeats before the other's lets a busy window inflate one side of
    the ratio and not the other.  Alternating the two cases' repeats
    makes both sample the same windows, so the best-of walls — and the
    recorded ``speedup_vs_reference`` — come from comparable conditions.
    """
    ref_timed = _TimedCase(reference, scale)
    fast_timed = _TimedCase(fast, scale)
    for _ in range(max(1, repeats)):
        ref_timed.time_once()
        fast_timed.time_once()
    return [ref_timed.record(), fast_timed.record()]


def run_bench(
    *,
    repeats: int = 3,
    scale: float = 0.1,
    cases: Optional[tuple[BenchCase, ...]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the full suite and return the report dict."""
    if cases is None:
        cases = BENCH_CASES  # resolved at call time (tests patch it)
    case_by_name = {c.name: c for c in cases}
    # Speedup pairs are timed together with interleaved repeats (see
    # _run_pair); the fast side is pulled forward to run alongside its
    # reference, keeping the record order of the case tuple.
    fast_for = {
        c.speedup_vs: c
        for c in cases
        if c.speedup_vs is not None and c.speedup_vs in case_by_name
    }
    records = []
    done = set()
    for case in cases:
        if case.name in done:
            continue
        fast = fast_for.get(case.name)
        if fast is not None:
            if progress is not None:
                progress(
                    f"bench {case.name} + {fast.name}: {case.policy} "
                    f"x{repeats} interleaved ..."
                )
            records.extend(_run_pair(case, fast, repeats=repeats, scale=scale))
            done.add(fast.name)
        else:
            if progress is not None:
                progress(f"bench {case.name}: {case.policy} x{repeats} ...")
            records.append(run_case(case, repeats=repeats, scale=scale))
        done.add(case.name)
    by_name = {r["name"]: r for r in records}
    for case in cases:
        if case.speedup_vs is None:
            continue
        record = by_name.get(case.name)
        reference = by_name.get(case.speedup_vs)
        if record and reference and reference["records_per_s"]:
            record["speedup_vs"] = case.speedup_vs
            record["speedup_vs_reference"] = round(
                record["records_per_s"] / reference["records_per_s"], 2
            )
    return {
        "schema": 1,
        "repeats": repeats,
        "scale": scale,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "peak_rss_bytes": _peak_rss_bytes(),
        "cases": records,
    }


def write_bench_json(report: dict, out_dir: Path, *, stamp: str) -> Path:
    """Write ``BENCH_<stamp>.json`` into *out_dir* and return the path."""
    path = out_dir / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path) -> dict:
    """Read a committed bench baseline, with friendly errors."""
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise ReproError(
            f"no bench baseline at {path}; create one with "
            "`repro bench --update-baseline`"
        )
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt bench baseline {path}: {exc}")


@dataclass
class CaseComparison:
    """Current-vs-baseline verdict for one case."""

    name: str
    status: str  # "ok" | "warn" | "fail" | "new" | "missing"
    ratio: Optional[float] = None  # current wall / baseline wall
    current_wall_s: float = 0.0
    baseline_wall_s: Optional[float] = None
    detail: str = ""


@dataclass
class BenchComparison:
    """The full regression verdict.

    The comparison is keyed per case, in both directions: a current
    case with no baseline entry (``new``) and a baseline entry with no
    current case (``missing``) both fail a ``--check`` run — otherwise
    adding or dropping suite cases would silently pass until someone
    remembered to refresh the baseline.
    """

    cases: list[CaseComparison] = field(default_factory=list)

    @property
    def worst_ratio(self) -> float:
        ratios = [c.ratio for c in self.cases if c.ratio is not None]
        return max(ratios) if ratios else 0.0

    @property
    def failed(self) -> bool:
        return any(c.status in ("fail", "new", "missing") for c in self.cases)

    @property
    def warned(self) -> bool:
        return any(c.status == "warn" for c in self.cases)

    @property
    def failed_names(self) -> list[str]:
        """Names of the cases that make :attr:`failed` true."""
        return [c.name for c in self.cases if c.status in ("fail", "new", "missing")]


def compare_bench(
    current: dict,
    baseline: dict,
    *,
    warn_threshold: float = WARN_THRESHOLD,
    hard_threshold: float = HARD_THRESHOLD,
) -> BenchComparison:
    """Compare a fresh report against the baseline, case by case.

    Only wall time is gated: simulated outputs are covered by the
    determinism tests, and RSS is a whole-process high-water mark.
    """
    by_name = {c["name"]: c for c in baseline.get("cases", ())}
    comparison = BenchComparison()
    current_names = set()
    for record in current["cases"]:
        current_names.add(record["name"])
        base = by_name.get(record["name"])
        if base is None:
            comparison.cases.append(
                CaseComparison(
                    name=record["name"],
                    status="new",
                    current_wall_s=record["wall_s"],
                    detail="no baseline entry; refresh with --update-baseline",
                )
            )
            continue
        ratio = (
            record["wall_s"] / base["wall_s"] if base["wall_s"] > 0 else 1.0
        )
        if ratio >= hard_threshold:
            status = "fail"
            detail = f">= {hard_threshold:.1f}x slower than baseline"
        elif ratio >= warn_threshold:
            status = "warn"
            detail = f">= {warn_threshold:.1f}x slower than baseline"
        else:
            status = "ok"
            detail = ""
        comparison.cases.append(
            CaseComparison(
                name=record["name"],
                status=status,
                ratio=ratio,
                current_wall_s=record["wall_s"],
                baseline_wall_s=base["wall_s"],
                detail=detail,
            )
        )
    for name, base in by_name.items():
        if name not in current_names:
            comparison.cases.append(
                CaseComparison(
                    name=name,
                    status="missing",
                    baseline_wall_s=base["wall_s"],
                    detail="baseline case absent from this run; "
                    "refresh with --update-baseline",
                )
            )
    return comparison


def render_bench_report(report: dict, comparison: Optional[BenchComparison]) -> str:
    """Human-readable bench table, with verdicts when a baseline exists."""
    verdicts = (
        {c.name: c for c in comparison.cases} if comparison is not None else {}
    )
    lines = [
        f"bench: repeats={report['repeats']} scale={report['scale']} "
        f"peak_rss={report['peak_rss_bytes'] / (1 << 20):.1f} MiB",
        f"{'case':<16} {'wall_s':>9} {'records/s':>12} "
        f"{'sim ns/wall s':>14}  verdict",
    ]
    for record in report["cases"]:
        verdict = verdicts.get(record["name"])
        if verdict is None:
            note = "-"
        elif verdict.status == "ok":
            note = f"ok ({verdict.ratio:.2f}x)"
        elif verdict.status == "new":
            note = f"NEW: {verdict.detail}"
        else:
            note = f"{verdict.status.upper()} ({verdict.ratio:.2f}x): {verdict.detail}"
        speedup = record.get("speedup_vs_reference")
        if speedup is not None:
            note += f"  [{speedup:.2f}x vs {record['speedup_vs']}]"
        lines.append(
            f"{record['name']:<16} {record['wall_s']:>9.3f} "
            f"{record['records_per_s']:>12,} "
            f"{record['sim_ns_per_wall_s']:>14,}  {note}"
        )
    if comparison is not None:
        for case in comparison.cases:
            if case.status == "missing":
                lines.append(
                    f"{case.name:<16} {'-':>9} {'-':>12} {'-':>14}  "
                    f"MISSING: {case.detail}"
                )
    return "\n".join(lines)

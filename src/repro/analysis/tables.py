"""Plain-text rendering of figure data.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.results import FigureSeries
from repro.analysis.serving import ServingRow
from repro.common.units import format_time_ns
from repro.sim.metrics import SimulationResult


def render_series_table(series: FigureSeries, *, precision: int = 2) -> str:
    """Render a :class:`FigureSeries` as an aligned text table.

    Rows are policies, columns are the x labels — the transpose of the
    paper's bar groups, which reads better in a terminal.
    """
    headers = ["policy", *series.x_labels]
    rows = [
        [name, *(f"{v:.{precision}f}" for v in values)]
        for name, values in series.series.items()
    ]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [series.title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_serving_table(rows: Mapping[float, Sequence[ServingRow]]) -> str:
    """Render a serving sweep (rate -> rows per policy) as text tables.

    One aligned block per offered rate: latency percentiles, SLO
    attainment, and shedding counts per policy.  Latencies print as
    ``-`` when no request completed at that cell.
    """
    def fmt_ns(value) -> str:
        return format_time_ns(value) if value is not None else "-"

    blocks = []
    for rate in sorted(rows):
        headers = [
            "policy", "arrivals", "done", "drop", "defer", "demote",
            "p50", "p95", "p99", "attain", "slo",
        ]
        body = [
            [
                row.policy,
                str(row.arrivals),
                str(row.completed),
                str(row.dropped),
                str(row.deferrals),
                str(row.demoted),
                fmt_ns(row.p50_ns),
                fmt_ns(row.p95_ns),
                fmt_ns(row.p99_ns),
                f"{row.attainment:.3f}",
                "met" if row.slo_met else "MISS",
            ]
            for row in rows[rate]
        ]
        widths = [
            max(len(headers[col]), *(len(r[col]) for r in body)) if body else len(headers[col])
            for col in range(len(headers))
        ]
        lines = [f"offered load {rate:g} req/s"]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_result_summary(result: SimulationResult) -> str:
    """One-run human-readable summary (used by the examples)."""
    idle = result.idle
    lines = [
        f"policy={result.policy} batch={result.batch}",
        f"  makespan            {format_time_ns(result.makespan_ns)}",
        f"  total CPU idle time {format_time_ns(result.total_idle_ns)}",
        f"    memory stalls     {format_time_ns(idle.memory_stall_ns)}",
        f"    sync storage wait {format_time_ns(idle.sync_storage_ns)}",
        f"    async idle        {format_time_ns(idle.async_idle_ns)}",
        f"    context switches  {format_time_ns(idle.ctx_switch_overhead_ns)}"
        f" ({result.context_switches} switches)",
        f"  major faults        {result.major_faults}",
        f"  minor faults        {result.minor_faults}",
        f"  LLC demand misses   {result.demand_cache_misses}"
        f" of {result.demand_cache_accesses} accesses",
        f"  prefetches          {result.prefetch_issued} issued,"
        f" {result.prefetch_hits} hit before eviction",
        f"  pre-executed instrs {result.preexec_instructions}"
        f" ({result.preexec_lines_warmed} lines warmed)",
    ]
    lines.append("  per-process finish times (by descending priority):")
    for record in result.finish_times_by_priority():
        tag = "data-intensive" if record.data_intensive else "general"
        lines.append(
            f"    prio={record.priority:2d} {record.name:<12s} {tag:<14s}"
            f" finish={format_time_ns(record.finish_time_ns)}"
            f" majors={record.major_faults}"
        )
    return "\n".join(lines)

"""The tiered-storage sweep: crossover-by-tier under each placement.

One sweep runs the adaptive policy on the same batch once per placement
policy, with the machine's storage replaced by the named tier presets.
Each run yields one row **per tier**: its traffic, migrations, and the
adaptive controller's decision mix on faults that tier backed.  The
decision mix *is* the paper's regime table read off device-by-device —
a fast (ULL-class) tier should converge to sync/steal servicing while a
slow (NVMe / far-memory) tier should converge to async demotion, and
the table shows exactly where each device lands.

Cells are cached like any sweep: the tier block serialises into
``MachineConfig.to_dict()``, so distinct tier sets, placements and
migration thresholds hash to distinct cache keys while tier-disabled
configs keep their historical ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.common.config import (
    TIER_PLACEMENTS,
    MachineConfig,
    with_adaptive,
)
from repro.common.errors import ConfigError

DEFAULT_TIER_NAMES = ("ull", "far_memory")
"""Tier presets swept by default: the two ends of the regime boundary."""

DEFAULT_SWEEP_ADAPTIVE = {"warmup_faults": 4, "min_dwell_faults": 1}
"""Adaptive overrides applied to sweep cells: per-tier estimators warm
quickly, so the steady-state decision mix dominates the table instead of
the cold-start STEAL default."""


@dataclass(frozen=True)
class TierSweepRow:
    """One (placement, tier) point of the tier sweep.

    ``makespan_ns`` repeats the placement run's makespan on each of its
    tier rows; ``sync_steal_fraction`` / ``async_fraction`` partition
    the adaptive decisions taken for faults this tier backed.
    """

    placement: str
    tier: str
    makespan_ns: int
    demand_reads: int
    prefetch_reads: int
    writebacks: int
    retries: int
    migrations_in: int
    migrations_out: int
    promotions: int
    demotions: int
    decisions: Mapping[str, int]
    sync_steal_fraction: float
    async_fraction: float


def tier_sweep_config(
    config: MachineConfig,
    tiers: Sequence,
    placement: str,
    *,
    promote_threshold: int = 0,
    demote_watermark: float = 1.0,
    adaptive_overrides: Optional[Mapping] = None,
) -> MachineConfig:
    """The machine config of one placement's sweep cell.

    ``hot_cold`` needs migration to ever populate the fast tier, so a
    zero *promote_threshold* is raised to a small default there; other
    placements keep migration off unless asked.
    """
    from repro.tiering import with_tier_presets

    if placement == "hot_cold" and promote_threshold == 0:
        promote_threshold = 4
    overrides = dict(DEFAULT_SWEEP_ADAPTIVE)
    overrides.update(adaptive_overrides or {})
    config = with_adaptive(config, **overrides)
    return with_tier_presets(
        config,
        tiers,
        placement=placement,
        promote_threshold=promote_threshold,
        demote_watermark=demote_watermark,
    )


def run_tier_sweep(
    config: Optional[MachineConfig] = None,
    *,
    tiers: Sequence = DEFAULT_TIER_NAMES,
    placements: Sequence[str] = TIER_PLACEMENTS,
    batch: str = "2_Data_Intensive",
    seed: int = 1,
    scale: float = 0.2,
    promote_threshold: int = 0,
    demote_watermark: float = 1.0,
    adaptive_overrides: Optional[Mapping] = None,
    workers: int = 1,
    cache=None,
    telemetry=None,
    progress=None,
    executor=None,
) -> list[TierSweepRow]:
    """Run the adaptive policy over every placement and tabulate per-tier
    decision mixes (rows grouped by placement, tiers in config order).

    ``workers``/``cache`` are forwarded to the sweep engine
    (:mod:`repro.analysis.runner`); results are identical at any worker
    count.
    """
    from repro.analysis.runner import SweepCell, run_cells

    if not placements:
        raise ConfigError("tier sweep needs at least one placement")
    for placement in placements:
        if placement not in TIER_PLACEMENTS:
            raise ConfigError(
                f"unknown placement {placement!r} "
                f"(known: {', '.join(TIER_PLACEMENTS)})"
            )
    config = config or MachineConfig()
    cells = [
        SweepCell(
            tier_sweep_config(
                config,
                tiers,
                placement,
                promote_threshold=promote_threshold,
                demote_watermark=demote_watermark,
                adaptive_overrides=adaptive_overrides,
            ),
            batch,
            "Adaptive",
            seed=seed,
            scale=scale,
        )
        for placement in placements
    ]
    results = run_cells(
        cells,
        workers=workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
        executor=executor,
    )
    rows: list[TierSweepRow] = []
    for placement, result in zip(placements, results):
        summary = result.tiers
        if summary is None:
            raise ConfigError(
                f"placement {placement!r} produced no tier summary; "
                "was the cell cached from a tier-disabled run?"
            )
        for usage in summary.tiers:
            rows.append(
                TierSweepRow(
                    placement=placement,
                    tier=usage.name,
                    makespan_ns=result.makespan_ns,
                    demand_reads=usage.demand_reads,
                    prefetch_reads=usage.prefetch_reads,
                    writebacks=usage.writebacks,
                    retries=usage.retries,
                    migrations_in=usage.migrations_in,
                    migrations_out=usage.migrations_out,
                    promotions=summary.promotions,
                    demotions=summary.demotions,
                    decisions=dict(usage.decisions),
                    sync_steal_fraction=usage.decision_fraction("sync", "steal"),
                    async_fraction=usage.decision_fraction("async"),
                )
            )
    return rows


def format_tier_table(rows: Sequence[TierSweepRow]) -> str:
    """Render sweep rows as the ``repro tiers`` crossover-by-tier table."""
    headers = (
        "placement", "tier", "demand", "prefetch", "wb", "retries",
        "mig in/out", "sync+steal", "async", "makespan_ms",
    )
    table = [headers]
    for row in rows:
        table.append((
            row.placement,
            row.tier,
            str(row.demand_reads),
            str(row.prefetch_reads),
            str(row.writebacks),
            str(row.retries),
            f"{row.migrations_in}/{row.migrations_out}",
            f"{row.sync_steal_fraction:6.1%}",
            f"{row.async_fraction:6.1%}",
            f"{row.makespan_ns / 1e6:.3f}",
        ))
    widths = [max(len(line[i]) for line in table) for i in range(len(headers))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)

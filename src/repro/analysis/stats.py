"""Seed statistics: dispersion of the figure metrics across priority
assignments.

The paper assigns priorities randomly; a single assignment can flip
which process is the makespan laggard (see EXPERIMENTS.md).  These
helpers quantify that spread: per-policy mean, sample standard
deviation, and a normal-approximation confidence interval over the
per-seed values of any metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.results import MetricKind, _extract
from repro.common.errors import ConfigError
from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class MetricSummary:
    """Mean, dispersion and CI of one metric across seeds."""

    metric: MetricKind
    n: int
    mean: float
    stdev: float
    ci_low: float
    ci_high: float

    @property
    def relative_spread(self) -> float:
        """Coefficient of variation (stdev / mean); 0.0 for a zero mean."""
        return self.stdev / self.mean if self.mean else 0.0


def summarize_metric(
    runs: Sequence[SimulationResult],
    metric: MetricKind,
    *,
    confidence_z: float = 1.96,
) -> MetricSummary:
    """Summarise *metric* across per-seed *runs*.

    Uses the normal approximation (z = 1.96 for ~95%); with the small
    seed counts typical here, treat the interval as indicative.
    """
    if not runs:
        raise ConfigError("cannot summarise an empty run list")
    values = [_extract(r, metric) for r in runs]
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        stdev = math.sqrt(variance)
    else:
        stdev = 0.0
    half = confidence_z * stdev / math.sqrt(n) if n > 1 else 0.0
    return MetricSummary(
        metric=metric,
        n=n,
        mean=mean,
        stdev=stdev,
        ci_low=mean - half,
        ci_high=mean + half,
    )


def summarize_policies(
    results: Mapping[str, Sequence[SimulationResult]],
    metric: MetricKind,
) -> dict[str, MetricSummary]:
    """Per-policy :func:`summarize_metric` over a results grid row."""
    return {
        policy: summarize_metric(runs, metric) for policy, runs in results.items()
    }


def orderings_stable(
    results: Mapping[str, Sequence[SimulationResult]],
    metric: MetricKind,
    better: str,
    worse: str,
) -> float:
    """Fraction of seeds in which *better* beats *worse* on *metric*.

    1.0 means the ordering holds for every priority assignment tested —
    the robustness statement behind each figure-shape claim.
    """
    better_runs = results.get(better)
    worse_runs = results.get(worse)
    if not better_runs or not worse_runs:
        raise ConfigError("both policies need runs")
    if len(better_runs) != len(worse_runs):
        raise ConfigError("policies were run on different seed sets")
    wins = sum(
        1
        for b, w in zip(better_runs, worse_runs)
        if _extract(b, metric) < _extract(w, metric)
    )
    return wins / len(better_runs)

"""Latency-vs-offered-load analysis rows for the serving layer.

The serving analogue of :func:`repro.analysis.experiments.run_core_scaling`:
sweep (policy x offered rate) through the PR 2 runner — every cell is a
plain :class:`~repro.analysis.runner.SweepCell` whose config carries an
enabled :class:`~repro.common.config.ServingConfig`, so results are
content-addressed, cacheable, and bit-identical at any worker count —
and distil each result's :class:`~repro.serving.request.ServingSummary`
into one table row.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.common.config import MachineConfig, ServingConfig
from repro.common.errors import ConfigError
from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class ServingRow:
    """One (policy, offered rate) point of the latency-vs-load story."""

    policy: str
    rate_per_s: float
    arrivals: int
    completed: int
    dropped: int
    deferrals: int
    demoted: int
    p50_ns: Optional[int]
    p95_ns: Optional[int]
    p99_ns: Optional[int]
    mean_ns: Optional[float]
    attainment: float
    slo_met: bool
    slo_violations: int


def row_from_result(result: SimulationResult) -> ServingRow:
    """Distil one open-loop result into its table row."""
    summary = result.serving
    if summary is None:
        raise ConfigError(
            f"result of {result.policy!r} carries no serving summary "
            "(was the cell run with serving enabled?)"
        )
    return ServingRow(
        policy=result.policy,
        rate_per_s=summary.rate_per_s,
        arrivals=summary.arrivals,
        completed=summary.completed,
        dropped=summary.dropped,
        deferrals=summary.deferrals,
        demoted=summary.demoted,
        p50_ns=summary.p50_ns,
        p95_ns=summary.p95_ns,
        p99_ns=summary.p99_ns,
        mean_ns=summary.mean_latency_ns,
        attainment=summary.attainment,
        slo_met=summary.slo_met,
        slo_violations=summary.slo_violations,
    )


def run_serving_sweep(
    config: Optional[MachineConfig] = None,
    *,
    rates: Sequence[float] = (500.0, 2000.0, 4000.0),
    policies: Sequence[str] = ("Async", "Sync", "Sync_Runahead", "Sync_Prefetch", "ITS", "Adaptive"),
    batch: str = "1_Data_Intensive",
    seed: int = 1,
    scale: float = 0.1,
    workers: int = 1,
    cache=None,
    telemetry=None,
    progress=None,
    executor=None,
) -> dict[float, list[ServingRow]]:
    """Latency percentiles and SLO attainment per (rate, policy).

    Returns ``rows[rate] -> [ServingRow per policy, in input order]``.
    The base *config*'s serving block supplies everything except the
    swept rate (arrival process, SLO, admission); a disabled block is
    promoted to the enabled default first, so
    ``run_serving_sweep(MachineConfig())`` works out of the box.

    Because arrival draws are rate-independent uniforms (see
    :mod:`repro.serving.arrivals`), sweeping the rate compresses one
    fixed schedule rather than sampling fresh traffic — the latency
    curve is load response, not replanned noise.
    """
    from repro.analysis.runner import SweepCell, run_cells

    if not rates:
        raise ConfigError("serving sweep needs at least one offered rate")
    if not policies:
        raise ConfigError("serving sweep needs at least one policy")
    config = config or MachineConfig()
    serving = config.serving if config.serving.enabled else ServingConfig(enabled=True)

    cells = []
    for rate in rates:
        cell_config = dataclasses.replace(
            config, serving=dataclasses.replace(serving, rate_per_s=float(rate))
        )
        for policy in policies:
            cells.append(
                SweepCell(
                    config=cell_config,
                    batch=batch,
                    policy=policy,
                    seed=seed,
                    scale=scale,
                )
            )
    results = run_cells(
        cells,
        workers=workers,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
        executor=executor,
    )
    rows: dict[float, list[ServingRow]] = {}
    index = 0
    for rate in rates:
        rows[float(rate)] = [
            row_from_result(results[index + offset])
            for offset in range(len(policies))
        ]
        index += len(policies)
    return rows


def serving_headline(rows: Mapping[float, Sequence[ServingRow]]) -> Optional[ServingRow]:
    """The row that best survives the heaviest load: at the highest
    swept rate, the SLO-meeting policy with the lowest p99 (or, when
    none meets it, the highest attainment)."""
    if not rows:
        return None
    heaviest = rows[max(rows)]
    meeting = [r for r in heaviest if r.slo_met and r.p99_ns is not None]
    if meeting:
        return min(meeting, key=lambda r: r.p99_ns)
    return max(heaviest, key=lambda r: r.attainment)


__all__ = ["ServingRow", "row_from_result", "run_serving_sweep", "serving_headline"]

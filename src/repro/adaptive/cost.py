"""Per-fault cost model: sync-spin vs ITS-steal vs async-demote.

Every cost is an *estimated CPU-time loss* (nanoseconds of the faulting
core's time that produce no forward progress for the workload), built
only from online estimates and machine constants — never from the fault
injector's ground truth:

* **SYNC** — busy-wait the whole window: loses the full expected wait
  ``Ŵ`` (the paper's Figure 1a idle time).
* **STEAL** — enter the ITS kernel thread (``kernel_entry_ns``), then
  recoup idle time with prefetch/pre-execution.  The recouped value is
  the observed steal payoff (prefetch hits per stolen window times the
  work each hit avoids), capped by the stealable budget ``Ŵ -
  kernel_entry``.
* **ASYNC** — context switch away and back (two switches), pay the
  demotion penalty (cache/TLB pollution, interleaving), and — if the
  ready queue is empty — still idle for the window, because there is
  nobody to switch to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Mode(enum.Enum):
    """The three servicing modes the controller chooses between."""

    SYNC = "sync"
    STEAL = "steal"
    ASYNC = "async"


@dataclass(frozen=True)
class ModeCosts:
    """Estimated CPU-time loss (ns) of servicing one fault in each mode."""

    sync_ns: float
    steal_ns: float
    async_ns: float

    def of(self, mode: Mode) -> float:
        """Cost of *mode*."""
        if mode is Mode.SYNC:
            return self.sync_ns
        if mode is Mode.STEAL:
            return self.steal_ns
        return self.async_ns

    def best(self, incumbent: Mode) -> Mode:
        """Cheapest mode, ties broken toward *incumbent*, then STEAL.

        Deterministic: equal costs never depend on dict ordering, and the
        incumbent wins ties so hysteresis has nothing to fight.
        """
        preference = {Mode.STEAL: 1, Mode.SYNC: 2, Mode.ASYNC: 3}
        preference[incumbent] = 0
        return min(Mode, key=lambda m: (self.of(m), preference[m]))


def estimate_costs(
    *,
    expected_wait_ns: float,
    steal_value_ns: float,
    kernel_entry_ns: int,
    context_switch_ns: int,
    demotion_penalty_ns: int,
    ready_count: int,
) -> ModeCosts:
    """Cost out the three modes for one anticipated fault window.

    ``steal_value_ns`` is the controller's running estimate of CPU time
    an ITS thread recoups per stolen window; it is capped here by the
    stealable budget, so an optimistic payoff estimate cannot make STEAL
    look better than a zero-cost fault.
    """
    sync_ns = expected_wait_ns

    budget_ns = max(0.0, expected_wait_ns - kernel_entry_ns)
    recouped_ns = min(budget_ns, max(0.0, steal_value_ns))
    steal_ns = kernel_entry_ns + (expected_wait_ns - recouped_ns)

    async_ns = 2.0 * context_switch_ns + demotion_penalty_ns
    if ready_count == 0:
        # Nobody to switch to: the core idles for the window anyway.
        async_ns += expected_wait_ns

    return ModeCosts(sync_ns=sync_ns, steal_ns=steal_ns, async_ns=async_ns)

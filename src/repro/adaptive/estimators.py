"""Online read-latency estimators for the adaptive I/O-mode controller.

Three estimator families, all fed exclusively from *observed* demand-read
completions (the :class:`~repro.kernel.fault.FaultContext` window between
handler exit and I/O completion) — never from the fault injector's
ground-truth distribution:

* :class:`EwmaEstimator` — exponentially weighted moving average of the
  window, the cheap central-tendency estimate.
* :class:`P2QuantileEstimator` — the Jain & Chlamtac P² streaming
  quantile algorithm: tracks one quantile in O(1) space without storing
  samples, used for p50/p95/p99.
* :class:`SlidingWindowHistogram` — the last *N* observations per
  device; supplies exact small-sample quantiles while the P² markers
  are still warming up, and tail-exceedance probabilities afterwards.

:class:`LatencyEstimator` composes the three behind one ``observe`` /
``mean`` / ``quantile`` / ``expected_wait`` surface.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional, Sequence


class EwmaEstimator:
    """Exponentially weighted moving average: ``v ← (1-a)·v + a·x``."""

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("EWMA alpha must lie in (0, 1]")
        self.alpha = alpha
        self.count = 0
        self._value: Optional[float] = None

    def observe(self, x: float) -> None:
        """Fold one observation into the average."""
        self.count += 1
        if self._value is None:
            self._value = float(x)
        else:
            self._value += self.alpha * (x - self._value)

    @property
    def value(self) -> Optional[float]:
        """Current estimate, or ``None`` before the first observation."""
        return self._value


class P2QuantileEstimator:
    """Streaming quantile via the P² algorithm (Jain & Chlamtac, 1985).

    Five markers track (min, q/2, q, (1+q)/2, max); marker heights are
    adjusted with a piecewise-parabolic fit as observations arrive.  The
    estimate is exact until five observations exist (sorted-buffer
    interpolation) and O(1) per update afterwards.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must lie in (0, 1)")
        self.q = q
        self.count = 0
        self._heights: list[float] = []
        self._positions = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._increments = [0.0, q / 2, q, (1 + q) / 2, 1.0]

    def observe(self, x: float) -> None:
        """Fold one observation into the marker state."""
        self.count += 1
        x = float(x)
        if len(self._heights) < 5:
            self._heights.append(x)
            self._heights.sort()
            return
        h = self._heights
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x >= h[4]:
            h[4] = x
            cell = 3
        else:
            cell = next(i for i in range(4) if h[i] <= x < h[i + 1])
        for i in range(cell + 1, 5):
            self._positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            n, n_prev, n_next = (
                self._positions[i],
                self._positions[i - 1],
                self._positions[i + 1],
            )
            if (d >= 1 and n_next - n > 1) or (d <= -1 and n_prev - n < -1):
                step = int(math.copysign(1, d))
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # parabolic fit left the bracket: fall back to linear
                    h[i] += step * (h[i + step] - h[i]) / (
                        self._positions[i + step] - n
                    )
                self._positions[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    @property
    def value(self) -> Optional[float]:
        """Current quantile estimate, or ``None`` with no observations."""
        if not self._heights:
            return None
        if len(self._heights) < 5 or self.count <= 5:
            rank = max(0, math.ceil(self.q * len(self._heights)) - 1)
            return sorted(self._heights)[rank]
        return self._heights[2]


class SlidingWindowHistogram:
    """The last *capacity* observations of one device's read windows."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be positive")
        self.capacity = capacity
        self.total = 0
        self._window: deque[float] = deque(maxlen=capacity)

    def observe(self, x: float) -> None:
        """Append one observation, evicting the oldest beyond capacity."""
        self.total += 1
        self._window.append(float(x))

    def __len__(self) -> int:
        return len(self._window)

    def mean(self) -> Optional[float]:
        """Mean over the current window, or ``None`` when empty."""
        if not self._window:
            return None
        return sum(self._window) / len(self._window)

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the current window."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must lie in (0, 1]")
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[rank]

    def exceedance(self, threshold: float) -> float:
        """Fraction of windowed observations strictly above *threshold*."""
        if not self._window:
            return 0.0
        return sum(1 for x in self._window if x > threshold) / len(self._window)


class LatencyEstimator:
    """EWMA + P² quantiles + sliding window, behind one surface.

    ``quantile(q)`` answers from the matching P² tracker once it has
    real marker state (> 5 observations) and from the exact sliding
    window before that, so early estimates are never extrapolations.
    """

    def __init__(
        self,
        *,
        alpha: float,
        window: int,
        quantiles: Sequence[float] = (0.5, 0.95, 0.99),
    ) -> None:
        self.ewma = EwmaEstimator(alpha)
        self.histogram = SlidingWindowHistogram(window)
        self.trackers = {q: P2QuantileEstimator(q) for q in quantiles}
        self.count = 0

    def observe(self, window_ns: int) -> None:
        """Feed one observed read window (ns) to every estimator."""
        self.count += 1
        self.ewma.observe(window_ns)
        self.histogram.observe(window_ns)
        for tracker in self.trackers.values():
            tracker.observe(window_ns)

    def mean(self) -> Optional[float]:
        """EWMA mean of the observed windows."""
        return self.ewma.value

    def quantile(self, q: float) -> Optional[float]:
        """Estimated quantile *q* of the window distribution."""
        tracker = self.trackers.get(q)
        if tracker is not None and tracker.count > 5:
            return tracker.value
        return self.histogram.quantile(q)

    def exceedance(self, threshold_ns: float) -> float:
        """Observed fraction of windows above *threshold_ns*."""
        return self.histogram.exceedance(threshold_ns)

    def expected_wait(self, tail_weight: float) -> Optional[float]:
        """Risk-blended wait estimate: ``(1-w)·p50 + w·p95``.

        Falls back to the EWMA mean while quantiles are unavailable;
        ``None`` with no observations at all.
        """
        p50 = self.quantile(0.5)
        p95 = self.quantile(0.95)
        if p50 is None or p95 is None:
            return self.mean()
        return (1.0 - tail_weight) * p50 + tail_weight * p95

"""Adaptive I/O-mode controller (docs/ADAPTIVE.md).

Online latency estimation from observed read completions, a per-fault
cost model over sync-spin / ITS-steal / async-demote, and the
:class:`AdaptivePolicy` that wires both into the simulator as a fourth
I/O policy next to Sync, Async and ITS.
"""

from repro.adaptive.controller import AdaptiveController, DecisionStats
from repro.adaptive.cost import Mode, ModeCosts, estimate_costs
from repro.adaptive.estimators import (
    EwmaEstimator,
    LatencyEstimator,
    P2QuantileEstimator,
    SlidingWindowHistogram,
)
from repro.adaptive.policy import AdaptivePolicy

__all__ = [
    "AdaptiveController",
    "AdaptivePolicy",
    "DecisionStats",
    "EwmaEstimator",
    "LatencyEstimator",
    "Mode",
    "ModeCosts",
    "P2QuantileEstimator",
    "SlidingWindowHistogram",
    "estimate_costs",
]

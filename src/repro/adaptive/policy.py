"""``AdaptivePolicy``: per-fault mode selection on top of ITS.

Subclasses :class:`~repro.core.its.ITSPolicy` so the full ITS machinery
(self-improving and self-sacrificing threads, prefetcher, pre-execute
cache carve-out, graceful demotion under fault injection) is available,
then routes each major fault by the controller's decision:

* **SYNC** — plain busy-wait (:func:`~repro.baselines.sync_io
  .busy_wait_fault`), when the estimated window is too short for the
  kernel-thread entry to pay off.
* **STEAL** — the normal ITS path: the priority comparison picks the
  self-improving or self-sacrificing thread as usual.
* **ASYNC** — demote: a LOW hint is pinned on the selection policy for
  this one fault, forcing the self-sacrificing thread, whose mechanics
  are exactly the asynchronous baseline (switch away, prefetch from the
  idle window, switch back on completion).

The controller never reads injector ground truth: its estimators are
fed by the fault handler's observer hook (realised completion times),
and the steal-payoff estimate comes from the machine's own swap-cache
hit statistics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.adaptive.controller import AdaptiveController
from repro.adaptive.cost import Mode
from repro.baselines.sync_io import busy_wait_fault
from repro.core.its import ITSPolicy
from repro.core.selection import PriorityClass
from repro.kernel.process import Process

if TYPE_CHECKING:
    from repro.sim.simulator import Simulation


class AdaptivePolicy(ITSPolicy):
    """Adaptive I/O-mode selection: sync / steal / async per fault."""

    name = "Adaptive"

    def attach(self, sim: "Simulation") -> None:
        super().attach(sim)
        config = sim.config
        self.controller = AdaptiveController(
            config.adaptive,
            kernel_entry_ns=config.its.kernel_entry_ns,
            context_switch_ns=config.scheduler.context_switch_ns,
            fault_handler_ns=config.fault_handler_ns,
            telemetry=sim.telemetry,
        )
        sim.machine.add_fault_observer(self.controller.observe)
        self._pending_mode: Optional[Mode] = None
        self.selection.hint = self._mode_hint

    def _mode_hint(self, process: Process) -> Optional[PriorityClass]:
        """Selection-policy hint: ASYNC forces the sacrificing thread."""
        if self._pending_mode is Mode.ASYNC:
            return PriorityClass.LOW
        return None  # STEAL: defer to the normal priority comparison

    def on_major_fault(self, sim: "Simulation", process: Process, vpn: int) -> None:
        machine = sim.machine
        self.controller.note_payoff(
            machine.memory.swap_cache.hits,
            self.improving.windows_stolen + self.sacrificing.sacrifices,
        )
        # On a tiered machine, cost the decision against the estimator of
        # the device backing the faulting page.
        tiers = getattr(machine, "tiers", None)
        tier = tiers.tier_of(process.pid, vpn) if tiers is not None else 0
        mode = self.controller.decide(
            process.pid, sim.scheduler.ready_count(), tier=tier
        )
        if tiers is not None:
            tiers.note_decision(tier, mode.value)
        if sim.telemetry is not None:
            args = {"mode": mode.value}
            if tiers is not None:
                args["tier"] = tiers.name_of(tier)
            sim.telemetry.instant(
                "fault.adaptive.mode", machine.now_ns,
                track="its", pid=process.pid, args=args,
            )
            if sim.telemetry.causal is not None:
                decision_id = sim.telemetry.causal.add(
                    "decision", machine.now_ns,
                    pid=process.pid, mode=mode.value,
                )
                sim.telemetry.causal.note_decision(process.pid, decision_id)
        if mode is Mode.SYNC:
            busy_wait_fault(sim, process, vpn)
            return
        self._pending_mode = mode
        try:
            super().on_major_fault(sim, process, vpn)
        finally:
            self._pending_mode = None

"""The adaptive I/O-mode controller.

Per major fault, :meth:`AdaptiveController.decide` picks a servicing
mode (sync-spin / ITS-steal / async-demote) for the faulting process
from the cost model, filtered through two stabilisers:

* a **confidence gate** — until ``warmup_faults`` read completions have
  been observed, the estimates are noise, so a cold controller falls
  back to plain ITS (STEAL), the paper's always-reasonable default;
* **hysteresis** — a process must dwell ``min_dwell_faults`` faults in
  its current mode before switching, and the challenger must beat the
  incumbent's estimated cost by ``switch_margin`` relatively.  Together
  they stop mode flapping when two costs run close.

The controller learns from :class:`~repro.kernel.fault.FaultContext`
observations delivered by the fault handler's observer hook — realised
completion times only, never the injector's distribution — and from the
machine's own prefetch-hit statistics (the steal-payoff estimate).

On a tiered machine (:mod:`repro.tiering`) the controller keeps one
latency estimator **per storage tier**: each fault's window trains the
estimator of the tier that served it, and each decision is costed
against the estimator of the tier backing the faulting page.  That is
what turns mode selection into a function of *which device* the page
lives on — sync-spin on the ULL tier, async demotion on a far-memory
tier — while a single-device machine (everything on tier 0) behaves
bit-identically to the pre-tiering controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.adaptive.cost import Mode, ModeCosts, estimate_costs
from repro.adaptive.estimators import EwmaEstimator, LatencyEstimator
from repro.common.config import AdaptiveConfig


@dataclass
class _ProcessState:
    """Mode history of one (process, tier) pair (hysteresis bookkeeping).

    Keyed per tier as well as per process: a process whose pages span
    devices genuinely wants different modes on different devices, and
    the dwell counter of one must not pin the other.
    """

    mode: Mode = Mode.STEAL
    dwell: int = 0


@dataclass
class DecisionStats:
    """Python-side tallies mirrored into the adaptive.* counters."""

    by_mode: dict = field(default_factory=lambda: {m: 0 for m in Mode})
    by_tier: dict = field(default_factory=dict)
    """tier index -> {mode: count}; single-tier runs only populate 0."""
    cold: int = 0
    switches: int = 0
    held_by_dwell: int = 0
    held_by_margin: int = 0

    @property
    def total(self) -> int:
        """All decisions taken (cold ones included)."""
        return sum(self.by_mode.values())


class AdaptiveController:
    """Online estimation + cost model + hysteresis, per process."""

    def __init__(
        self,
        config: AdaptiveConfig,
        *,
        kernel_entry_ns: int,
        context_switch_ns: int,
        fault_handler_ns: int,
        telemetry=None,
    ) -> None:
        self.config = config
        self.kernel_entry_ns = kernel_entry_ns
        self.context_switch_ns = context_switch_ns
        self.fault_handler_ns = fault_handler_ns
        self.telemetry = telemetry
        self._estimators: dict[int, LatencyEstimator] = {0: self._new_estimator()}
        self._error_ewmas: dict[int, EwmaEstimator] = {
            0: EwmaEstimator(config.ewma_alpha)
        }
        self.stats = DecisionStats()
        self.steal_value_ns = 0.0
        self._hits_per_window: Optional[float] = None
        self._states: dict[tuple[int, int], _ProcessState] = {}
        self._last_costs: Optional[ModeCosts] = None

    def _new_estimator(self) -> LatencyEstimator:
        return LatencyEstimator(
            alpha=self.config.ewma_alpha, window=self.config.quantile_window
        )

    # -- per-tier estimator access --------------------------------------------

    @property
    def estimator(self) -> LatencyEstimator:
        """Tier 0's latency estimator (the only one on a single-device
        machine — the pre-tiering attribute)."""
        return self._estimators[0]

    @property
    def error_ewma(self) -> EwmaEstimator:
        """Tier 0's prediction-error EWMA."""
        return self._error_ewmas[0]

    def estimator_for(self, tier: int) -> LatencyEstimator:
        """The latency estimator of *tier*, created on first use."""
        estimator = self._estimators.get(tier)
        if estimator is None:
            estimator = self._estimators[tier] = self._new_estimator()
            self._error_ewmas[tier] = EwmaEstimator(self.config.ewma_alpha)
        return estimator

    # -- learning ------------------------------------------------------------

    def observe(self, context) -> None:
        """Fold one realised fault window into the estimators.

        Registered as a fault-handler observer; *context* is the
        :class:`~repro.kernel.fault.FaultContext`.  The window used is
        handler-exit to I/O completion — the same busy-wait span a sync
        policy would have idled for, with injected retries folded in.
        Trains the estimator of the tier that served the fault.
        """
        tier = getattr(context, "tier", 0)
        estimator = self.estimator_for(tier)
        window_ns = context.io_done_ns - context.handler_done_ns
        prediction = estimator.expected_wait(self.config.tail_weight)
        if prediction is not None:
            # One-step-ahead absolute error: how far the blended-wait
            # estimate was from the window it was about to predict.
            self._error_ewmas[tier].observe(abs(prediction - window_ns))
        estimator.observe(window_ns)
        if self.telemetry is not None:
            self.telemetry.counter("adaptive.estimate.observations").inc()
            self._publish_estimates(tier)

    def note_payoff(self, prefetch_hits: int, stolen_windows: int) -> None:
        """Refresh the steal-payoff estimate from machine statistics.

        ``prefetch_hits / stolen_windows`` is the observed number of
        future faults an ITS window averts; each averted fault saves
        roughly one expected wait plus the handler overhead.  The ratio
        itself is device-independent; per-tier steal values scale it by
        each tier's own expected wait (:meth:`steal_value_for`).
        """
        if stolen_windows <= 0:
            return
        self._hits_per_window = prefetch_hits / stolen_windows
        wait = self.estimator.expected_wait(self.config.tail_weight)
        if wait is None:
            return
        self.steal_value_ns = self._hits_per_window * (wait + self.fault_handler_ns)

    def steal_value_for(self, tier: int) -> float:
        """Steal-payoff estimate against *tier*'s expected wait.

        Tier 0 returns the running ``steal_value_ns`` verbatim (the
        single-device code path, kept bit-identical); other tiers scale
        the same hits-per-window ratio by their own wait estimate.
        """
        if tier == 0:
            return self.steal_value_ns
        if self._hits_per_window is None:
            return 0.0
        wait = self.estimator_for(tier).expected_wait(self.config.tail_weight)
        if wait is None:
            return 0.0
        return self._hits_per_window * (wait + self.fault_handler_ns)

    # -- deciding ------------------------------------------------------------

    @property
    def confident(self) -> bool:
        """Whether enough completions were observed to trust the model
        (tier 0's gate — per-tier decisions use :meth:`confident_for`)."""
        return self.confident_for(0)

    def confident_for(self, tier: int) -> bool:
        """Whether *tier*'s estimator has warmed up."""
        return self.estimator_for(tier).count >= self.config.warmup_faults

    def decide(self, pid: int, ready_count: int, tier: int = 0) -> Mode:
        """Choose the servicing mode for *pid*'s current fault, costed
        against the estimator of the tier backing the faulting page."""
        state = self._states.setdefault((pid, tier), _ProcessState())
        if not self.confident_for(tier):
            mode = Mode.STEAL  # cold: plain ITS, the safe default
            self.stats.cold += 1
            self._count_decision(mode, tier, cold=True)
            state.mode = mode
            state.dwell += 1
            return mode

        costs = estimate_costs(
            expected_wait_ns=self.estimator_for(tier).expected_wait(
                self.config.tail_weight
            ),
            steal_value_ns=self.steal_value_for(tier),
            kernel_entry_ns=self.kernel_entry_ns,
            context_switch_ns=self.context_switch_ns,
            demotion_penalty_ns=self.config.demotion_penalty_ns,
            ready_count=ready_count,
        )
        self._last_costs = costs
        mode = self._apply_hysteresis(state, costs)
        self._count_decision(mode, tier, cold=False)
        return mode

    def _apply_hysteresis(self, state: _ProcessState, costs: ModeCosts) -> Mode:
        best = costs.best(state.mode)
        if best is state.mode:
            state.dwell += 1
            return state.mode
        if state.dwell < self.config.min_dwell_faults:
            self.stats.held_by_dwell += 1
            state.dwell += 1
            return state.mode
        incumbent_cost = costs.of(state.mode)
        if costs.of(best) >= incumbent_cost * (1.0 - self.config.switch_margin):
            self.stats.held_by_margin += 1
            state.dwell += 1
            return state.mode
        self.stats.switches += 1
        if self.telemetry is not None:
            self.telemetry.counter("adaptive.decision.switch").inc()
        state.mode = best
        state.dwell = 1
        return best

    def _count_decision(self, mode: Mode, tier: int, *, cold: bool) -> None:
        self.stats.by_mode[mode] += 1
        by_tier = self.stats.by_tier.setdefault(tier, {m: 0 for m in Mode})
        by_tier[mode] += 1
        if self.telemetry is not None:
            self.telemetry.counter(f"adaptive.decision.{mode.value}").inc()
            if cold:
                self.telemetry.counter("adaptive.decision.cold").inc()

    def mode_of(self, pid: int, tier: int = 0) -> Mode:
        """Current mode of *pid* on *tier* (STEAL before a decision)."""
        state = self._states.get((pid, tier))
        return state.mode if state is not None else Mode.STEAL

    @property
    def last_costs(self) -> Optional[ModeCosts]:
        """The cost vector behind the most recent warm decision."""
        return self._last_costs

    # -- telemetry -----------------------------------------------------------

    def _publish_estimates(self, tier: int = 0) -> None:
        """Publish the estimate gauges from *tier*'s estimators.

        Gauge names are unsuffixed — on a tiered run they track the most
        recently observed tier; the per-device traffic split lives in the
        ``tier.<name>.*`` gauges instead.
        """
        telemetry = self.telemetry
        estimator = self.estimator_for(tier)
        mean = estimator.mean()
        if mean is not None:
            telemetry.gauge("adaptive.estimate.mean_ns").set(mean)
        for q, name in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            value = estimator.quantile(q)
            if value is not None:
                telemetry.gauge(f"adaptive.estimate.{name}_ns").set(value)
        if self._error_ewmas[tier].value is not None:
            telemetry.gauge("adaptive.estimate.error_ns").set(
                self._error_ewmas[tier].value
            )
        telemetry.gauge("adaptive.steal_value_ns").set(self.steal_value_ns)

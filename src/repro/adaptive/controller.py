"""The adaptive I/O-mode controller.

Per major fault, :meth:`AdaptiveController.decide` picks a servicing
mode (sync-spin / ITS-steal / async-demote) for the faulting process
from the cost model, filtered through two stabilisers:

* a **confidence gate** — until ``warmup_faults`` read completions have
  been observed, the estimates are noise, so a cold controller falls
  back to plain ITS (STEAL), the paper's always-reasonable default;
* **hysteresis** — a process must dwell ``min_dwell_faults`` faults in
  its current mode before switching, and the challenger must beat the
  incumbent's estimated cost by ``switch_margin`` relatively.  Together
  they stop mode flapping when two costs run close.

The controller learns from :class:`~repro.kernel.fault.FaultContext`
observations delivered by the fault handler's observer hook — realised
completion times only, never the injector's distribution — and from the
machine's own prefetch-hit statistics (the steal-payoff estimate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.adaptive.cost import Mode, ModeCosts, estimate_costs
from repro.adaptive.estimators import EwmaEstimator, LatencyEstimator
from repro.common.config import AdaptiveConfig


@dataclass
class _ProcessState:
    """Mode history of one process (hysteresis bookkeeping)."""

    mode: Mode = Mode.STEAL
    dwell: int = 0


@dataclass
class DecisionStats:
    """Python-side tallies mirrored into the adaptive.* counters."""

    by_mode: dict = field(default_factory=lambda: {m: 0 for m in Mode})
    cold: int = 0
    switches: int = 0
    held_by_dwell: int = 0
    held_by_margin: int = 0

    @property
    def total(self) -> int:
        """All decisions taken (cold ones included)."""
        return sum(self.by_mode.values())


class AdaptiveController:
    """Online estimation + cost model + hysteresis, per process."""

    def __init__(
        self,
        config: AdaptiveConfig,
        *,
        kernel_entry_ns: int,
        context_switch_ns: int,
        fault_handler_ns: int,
        telemetry=None,
    ) -> None:
        self.config = config
        self.kernel_entry_ns = kernel_entry_ns
        self.context_switch_ns = context_switch_ns
        self.fault_handler_ns = fault_handler_ns
        self.telemetry = telemetry
        self.estimator = LatencyEstimator(
            alpha=config.ewma_alpha, window=config.quantile_window
        )
        self.error_ewma = EwmaEstimator(config.ewma_alpha)
        self.stats = DecisionStats()
        self.steal_value_ns = 0.0
        self._states: dict[int, _ProcessState] = {}
        self._last_costs: Optional[ModeCosts] = None

    # -- learning ------------------------------------------------------------

    def observe(self, context) -> None:
        """Fold one realised fault window into the estimators.

        Registered as a fault-handler observer; *context* is the
        :class:`~repro.kernel.fault.FaultContext`.  The window used is
        handler-exit to I/O completion — the same busy-wait span a sync
        policy would have idled for, with injected retries folded in.
        """
        window_ns = context.io_done_ns - context.handler_done_ns
        prediction = self.estimator.expected_wait(self.config.tail_weight)
        if prediction is not None:
            # One-step-ahead absolute error: how far the blended-wait
            # estimate was from the window it was about to predict.
            self.error_ewma.observe(abs(prediction - window_ns))
        self.estimator.observe(window_ns)
        if self.telemetry is not None:
            self.telemetry.counter("adaptive.estimate.observations").inc()
            self._publish_estimates()

    def note_payoff(self, prefetch_hits: int, stolen_windows: int) -> None:
        """Refresh the steal-payoff estimate from machine statistics.

        ``prefetch_hits / stolen_windows`` is the observed number of
        future faults an ITS window averts; each averted fault saves
        roughly one expected wait plus the handler overhead.
        """
        if stolen_windows <= 0:
            return
        wait = self.estimator.expected_wait(self.config.tail_weight)
        if wait is None:
            return
        hits_per_window = prefetch_hits / stolen_windows
        self.steal_value_ns = hits_per_window * (wait + self.fault_handler_ns)

    # -- deciding ------------------------------------------------------------

    @property
    def confident(self) -> bool:
        """Whether enough completions were observed to trust the model."""
        return self.estimator.count >= self.config.warmup_faults

    def decide(self, pid: int, ready_count: int) -> Mode:
        """Choose the servicing mode for *pid*'s current fault."""
        state = self._states.setdefault(pid, _ProcessState())
        if not self.confident:
            mode = Mode.STEAL  # cold: plain ITS, the safe default
            self.stats.cold += 1
            self._count_decision(mode, cold=True)
            state.mode = mode
            state.dwell += 1
            return mode

        costs = estimate_costs(
            expected_wait_ns=self.estimator.expected_wait(self.config.tail_weight),
            steal_value_ns=self.steal_value_ns,
            kernel_entry_ns=self.kernel_entry_ns,
            context_switch_ns=self.context_switch_ns,
            demotion_penalty_ns=self.config.demotion_penalty_ns,
            ready_count=ready_count,
        )
        self._last_costs = costs
        mode = self._apply_hysteresis(state, costs)
        self._count_decision(mode, cold=False)
        return mode

    def _apply_hysteresis(self, state: _ProcessState, costs: ModeCosts) -> Mode:
        best = costs.best(state.mode)
        if best is state.mode:
            state.dwell += 1
            return state.mode
        if state.dwell < self.config.min_dwell_faults:
            self.stats.held_by_dwell += 1
            state.dwell += 1
            return state.mode
        incumbent_cost = costs.of(state.mode)
        if costs.of(best) >= incumbent_cost * (1.0 - self.config.switch_margin):
            self.stats.held_by_margin += 1
            state.dwell += 1
            return state.mode
        self.stats.switches += 1
        if self.telemetry is not None:
            self.telemetry.counter("adaptive.decision.switch").inc()
        state.mode = best
        state.dwell = 1
        return best

    def _count_decision(self, mode: Mode, *, cold: bool) -> None:
        self.stats.by_mode[mode] += 1
        if self.telemetry is not None:
            self.telemetry.counter(f"adaptive.decision.{mode.value}").inc()
            if cold:
                self.telemetry.counter("adaptive.decision.cold").inc()

    def mode_of(self, pid: int) -> Mode:
        """Current mode of *pid* (STEAL before its first decision)."""
        state = self._states.get(pid)
        return state.mode if state is not None else Mode.STEAL

    @property
    def last_costs(self) -> Optional[ModeCosts]:
        """The cost vector behind the most recent warm decision."""
        return self._last_costs

    # -- telemetry -----------------------------------------------------------

    def _publish_estimates(self) -> None:
        telemetry = self.telemetry
        mean = self.estimator.mean()
        if mean is not None:
            telemetry.gauge("adaptive.estimate.mean_ns").set(mean)
        for q, name in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            value = self.estimator.quantile(q)
            if value is not None:
                telemetry.gauge(f"adaptive.estimate.{name}_ns").set(value)
        if self.error_ewma.value is not None:
            telemetry.gauge("adaptive.estimate.error_ns").set(self.error_ewma.value)
        telemetry.gauge("adaptive.steal_value_ns").set(self.steal_value_ns)

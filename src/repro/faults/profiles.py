"""Named fault profiles: curated ``FaultConfig`` presets.

Profiles bundle a latency model, error probabilities, and a demotion
deadline into one name usable from the CLI (``--fault-profile``) and
the tail-sensitivity sweep.  The parameters are loosely calibrated to
the read-tail measurements in "Faster than Flash" (Koh et al.) —
roughly an order of magnitude between the median and the P99.9 read —
scaled to this simulator's ~3 µs base device latency.

``none`` is special: it is the default :class:`FaultConfig`, which
``MachineConfig.to_dict`` omits entirely, so cache keys and results of
fault-free runs are bit-for-bit identical to a build without the fault
layer.
"""

from __future__ import annotations

import dataclasses

from repro.common.config import FaultConfig, MachineConfig
from repro.common.errors import ConfigError

#: Percentile table shaped like a measured ULL read-tail CDF:
#: 90% of reads at the base latency, 9% mildly slow, 0.9% at 4x
#: (program suspend), 0.1% at 12x (GC interference).
P999_TABLE = (
    (0.90, 1.0),
    (0.99, 1.5),
    (0.999, 4.0),
    (1.0, 12.0),
)

FAULT_PROFILES: dict = {
    "none": FaultConfig(),
    "tail_lognormal": FaultConfig(
        enabled=True,
        profile="tail_lognormal",
        read_latency_model="lognormal",
        lognormal_sigma=0.6,
        demote_after_ns=15_000,
    ),
    "tail_bimodal": FaultConfig(
        enabled=True,
        profile="tail_bimodal",
        read_latency_model="bimodal",
        bimodal_slow_prob=0.05,
        bimodal_slow_multiplier=12.0,
        demote_after_ns=15_000,
    ),
    "tail_p999": FaultConfig(
        enabled=True,
        profile="tail_p999",
        read_latency_model="table",
        table_percentiles=P999_TABLE,
        demote_after_ns=15_000,
    ),
    "flaky_dma": FaultConfig(
        enabled=True,
        profile="flaky_dma",
        crc_error_prob=0.02,
        timeout_prob=0.01,
        drop_completion_prob=0.01,
        pcie_jitter_ns=200,
    ),
    "worst_case": FaultConfig(
        enabled=True,
        profile="worst_case",
        read_latency_model="bimodal",
        bimodal_slow_prob=0.08,
        bimodal_slow_multiplier=16.0,
        crc_error_prob=0.02,
        timeout_prob=0.01,
        drop_completion_prob=0.01,
        pcie_jitter_ns=500,
        demote_after_ns=12_000,
    ),
}
"""Registry of named profiles, keyed by their CLI name."""

#: Tail-model names accepted by ``--tail-model`` / ``with_tail_model``.
TAIL_MODELS = ("fixed", "lognormal", "bimodal", "table")


def get_fault_profile(name: str) -> FaultConfig:
    """Look up a named profile, raising :class:`ConfigError` if unknown."""
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ConfigError(f"unknown fault profile {name!r} (known: {known})") from None


def with_fault_profile(config: MachineConfig, name: str) -> MachineConfig:
    """Return *config* with the named fault profile installed."""
    return dataclasses.replace(config, faults=get_fault_profile(name))


def with_tail_model(config: MachineConfig, model: str) -> MachineConfig:
    """Return *config* with its fault latency model swapped to *model*.

    Keeps the rest of the active fault profile (error probabilities,
    demotion deadline) and substitutes only the latency distribution,
    borrowing that model's parameters from the matching ``tail_*``
    profile.  Enables the fault layer if it was off.
    """
    if model not in TAIL_MODELS:
        known = ", ".join(TAIL_MODELS)
        raise ConfigError(f"unknown tail model {model!r} (known: {known})")
    base = config.faults
    if model == "fixed":
        faults = dataclasses.replace(
            base,
            enabled=True,
            read_latency_model="fixed",
            lognormal_sigma=0.0,
            bimodal_slow_prob=0.0,
            bimodal_slow_multiplier=1.0,
            table_percentiles=(),
        )
        return dataclasses.replace(config, faults=faults)
    donor = FAULT_PROFILES[f"tail_{model}" if model != "table" else "tail_p999"]
    faults = dataclasses.replace(
        base,
        enabled=True,
        read_latency_model=model,
        lognormal_sigma=donor.lognormal_sigma,
        bimodal_slow_prob=donor.bimodal_slow_prob,
        bimodal_slow_multiplier=donor.bimodal_slow_multiplier,
        table_percentiles=donor.table_percentiles,
        demote_after_ns=base.demote_after_ns or donor.demote_after_ns,
    )
    return dataclasses.replace(config, faults=faults)

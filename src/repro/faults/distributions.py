"""Latency-distribution models for the ULL device's read tail.

Real ULL SSDs are nothing like the fixed-latency device the paper
simulates: "Faster than Flash" measures heavy read-tail variability on
Z-NAND-class parts (garbage collection, program suspends, internal
retries).  Each model here maps the configured *base* latency to one
sampled per-operation latency, drawn from the machine's seeded
:class:`~repro.common.rng.DeterministicRNG` so runs stay bit-for-bit
reproducible.

Every distribution is a **multiplier family**: the sample is
``base_ns * m`` with the multiplier ``m`` drawn per op.  That way one
config composes with device-latency sweeps — sweeping the base latency
under a tail model scales the whole distribution, which is exactly what
the tail-sensitivity experiment needs.

Families (see docs/FAULTS.md for the maths):

* ``fixed`` — ``m = 1``; the legacy idealised device.
* ``lognormal`` — ``m = exp(N(-sigma^2/2, sigma))``; mean multiplier is
  exactly 1, so tails stretch without moving the average.
* ``bimodal`` — fast path ``m = 1`` with probability ``1 - p``, slow
  path ``m = M`` with probability ``p`` (GC/suspend interference).
* ``table`` — a step inverse-CDF over measured percentiles, e.g.
  P50/P90/P99/P99.9 multipliers taken from a device datasheet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.common.config import FaultConfig
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRNG

MIN_LATENCY_FRACTION = 0.25
"""Physical floor: no sample may undercut a quarter of the base latency
(the flash array cannot be read faster than its access time allows)."""


def _clamp(base_ns: int, sampled_ns: float) -> int:
    """Round and apply the physical floor to one sampled latency."""
    floor = max(1, int(base_ns * MIN_LATENCY_FRACTION))
    return max(floor, round(sampled_ns))


class LatencyDistribution(Protocol):
    """One per-operation latency model over a configured base latency."""

    def sample_ns(self, rng: DeterministicRNG, base_ns: int) -> int:
        """Draw one operation latency in nanoseconds."""
        ...


@dataclass(frozen=True)
class FixedLatency:
    """The legacy idealised device: every op takes the base latency."""

    def sample_ns(self, rng: DeterministicRNG, base_ns: int) -> int:
        """Return the base latency unchanged (no RNG draw)."""
        return base_ns


@dataclass(frozen=True)
class LognormalLatency:
    """Lognormal multiplier with unit mean: ``exp(N(-sigma^2/2, sigma))``."""

    sigma: float

    def sample_ns(self, rng: DeterministicRNG, base_ns: int) -> int:
        """Draw one lognormally-stretched latency."""
        if self.sigma == 0.0:
            return base_ns
        multiplier = rng.lognormal(-0.5 * self.sigma * self.sigma, self.sigma)
        return _clamp(base_ns, base_ns * multiplier)


@dataclass(frozen=True)
class BimodalLatency:
    """Fast path at the base latency; slow path ``multiplier`` x with
    probability ``slow_prob`` (GC, program suspend, internal retry)."""

    slow_prob: float
    slow_multiplier: float

    def sample_ns(self, rng: DeterministicRNG, base_ns: int) -> int:
        """Draw the fast or the slow path."""
        if rng.random() < self.slow_prob:
            return _clamp(base_ns, base_ns * self.slow_multiplier)
        return base_ns

    @property
    def mean_multiplier(self) -> float:
        """Expected multiplier: ``1 + p * (M - 1)``."""
        return 1.0 + self.slow_prob * (self.slow_multiplier - 1.0)


@dataclass(frozen=True)
class PercentileTableLatency:
    """Step inverse-CDF over ``((cum_prob, multiplier), ...)`` entries.

    A uniform draw ``u`` selects the first entry whose cumulative
    probability covers it, so the table reads directly as "90% of reads
    are 1x, 9% are 1.5x, 0.9% are 4x, 0.1% are 12x".
    """

    table: tuple

    def sample_ns(self, rng: DeterministicRNG, base_ns: int) -> int:
        """Draw one latency from the percentile step function."""
        u = rng.random()
        for cum, multiplier in self.table:
            if u < cum:
                return _clamp(base_ns, base_ns * multiplier)
        # u in [last_cum, 1) can't happen (table ends at 1.0), but float
        # edge cases land on the heaviest tail bucket.
        return _clamp(base_ns, base_ns * self.table[-1][1])


def build_distribution(config: FaultConfig) -> LatencyDistribution:
    """Instantiate the distribution named by ``config.read_latency_model``."""
    model = config.read_latency_model
    if model == "fixed":
        return FixedLatency()
    if model == "lognormal":
        return LognormalLatency(sigma=config.lognormal_sigma)
    if model == "bimodal":
        return BimodalLatency(
            slow_prob=config.bimodal_slow_prob,
            slow_multiplier=config.bimodal_slow_multiplier,
        )
    if model == "table":
        return PercentileTableLatency(table=tuple(config.table_percentiles))
    raise ConfigError(f"unknown read latency model {model!r}")

"""The fault-injection engine: one seeded source of device misbehaviour.

A :class:`FaultInjector` is constructed by the
:class:`~repro.sim.machine.Machine` from ``MachineConfig.faults`` when
injection is enabled, and shared by the storage components:

* :class:`~repro.storage.device.ULLDevice` asks it for per-operation
  flash latencies (``sample_read_latency_ns`` / ``sample_write_latency_ns``);
* :class:`~repro.storage.pcie.PCIeLink` asks it for link jitter;
* :class:`~repro.storage.dma.DMAController` asks it for per-read error
  outcomes (``next_read_outcome``) and retry backoffs (``backoff_ns``).

All draws come from one private :class:`DeterministicRNG` stream seeded
by ``FaultConfig.seed``, so the full fault sequence of a run is a pure
function of the configuration — parallel sweep workers and cache
replays observe identical faults.

Telemetry: the injector owns the ``faults.injected.*`` counters
(``tail`` for slow-path latency samples, ``crc`` / ``timeout`` /
``dropped`` for error outcomes) and the ``faults.tail.excess_ns``
histogram of sampled-minus-base latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.config import FaultConfig
from repro.common.rng import DeterministicRNG
from repro.faults.distributions import LatencyDistribution, build_distribution


class IOOutcome(enum.Enum):
    """How one device read ends, as decided by the injector."""

    OK = "ok"
    """The read completes normally."""
    CRC_ERROR = "crc"
    """The transfer arrives corrupted; detected when the data lands."""
    TIMEOUT = "timeout"
    """The device stalls; detected by the watchdog deadline."""
    DROPPED_COMPLETION = "dropped"
    """The completion interrupt is lost; detected by the watchdog."""


@dataclass
class InjectorStats:
    """Cumulative injection counters (mirrored to telemetry when attached)."""

    latency_samples: int = 0
    tail_samples: int = 0
    crc_errors: int = 0
    timeouts: int = 0
    dropped_completions: int = 0

    @property
    def errors(self) -> int:
        """Total injected error outcomes of any kind."""
        return self.crc_errors + self.timeouts + self.dropped_completions


@dataclass
class FaultInjector:
    """Seeded sampler for latency variability and error outcomes."""

    config: FaultConfig
    telemetry: object = None
    rng: DeterministicRNG = field(init=False)
    distribution: LatencyDistribution = field(init=False)
    stats: InjectorStats = field(init=False)

    def __post_init__(self) -> None:
        self.rng = DeterministicRNG(self.config.seed)
        self.distribution = build_distribution(self.config)
        self.stats = InjectorStats()

    # -- latency variability -------------------------------------------------

    def sample_read_latency_ns(self, base_ns: int) -> int:
        """One flash read latency under the configured distribution."""
        return self._sample_latency(base_ns)

    def sample_write_latency_ns(self, base_ns: int) -> int:
        """One flash program latency (same distribution as reads)."""
        return self._sample_latency(base_ns)

    def _sample_latency(self, base_ns: int) -> int:
        latency = self.distribution.sample_ns(self.rng, base_ns)
        self.stats.latency_samples += 1
        if latency > base_ns:
            self.stats.tail_samples += 1
            if self.telemetry is not None:
                self.telemetry.counter("faults.injected.tail").inc()
                self.telemetry.histogram("faults.tail.excess_ns").observe(
                    latency - base_ns
                )
        return latency

    def sample_link_jitter_ns(self) -> int:
        """Uniform [0, pcie_jitter_ns] addition to one PCIe transfer."""
        jitter = self.config.pcie_jitter_ns
        if jitter <= 0:
            return 0
        return self.rng.randint(0, jitter)

    # -- error outcomes --------------------------------------------------------

    def next_read_outcome(self) -> IOOutcome:
        """Decide how the next device read ends.

        One uniform draw is split across the configured probabilities,
        so the per-outcome frequencies match the config exactly in
        expectation and the draw count per read is constant (stable
        streams under config edits that only move probabilities).
        """
        cfg = self.config
        if cfg.error_prob == 0.0:
            return IOOutcome.OK
        u = self.rng.random()
        if u < cfg.crc_error_prob:
            return self._record(IOOutcome.CRC_ERROR)
        if u < cfg.crc_error_prob + cfg.timeout_prob:
            return self._record(IOOutcome.TIMEOUT)
        if u < cfg.error_prob:
            return self._record(IOOutcome.DROPPED_COMPLETION)
        return IOOutcome.OK

    def _record(self, outcome: IOOutcome) -> IOOutcome:
        if outcome is IOOutcome.CRC_ERROR:
            self.stats.crc_errors += 1
        elif outcome is IOOutcome.TIMEOUT:
            self.stats.timeouts += 1
        else:
            self.stats.dropped_completions += 1
        if self.telemetry is not None:
            self.telemetry.counter(f"faults.injected.{outcome.value}").inc()
        return outcome

    # -- retry schedule --------------------------------------------------------

    def backoff_ns(self, attempt: int) -> int:
        """Backoff before retry *attempt* (1-based): exponential growth.

        ``retry_backoff_ns * backoff_multiplier ** (attempt - 1)``,
        rounded to whole nanoseconds.
        """
        if attempt < 1:
            raise ValueError(f"retry attempts are 1-based, got {attempt}")
        cfg = self.config
        return round(cfg.retry_backoff_ns * cfg.backoff_multiplier ** (attempt - 1))

    def detection_delay_ns(self, outcome: IOOutcome, submit_ns: int, done_ns: int) -> int:
        """Absolute time the failure of one attempt is detected.

        CRC errors surface when the (corrupted) data lands; stalls and
        lost completions are caught by the watchdog ``timeout_ns`` after
        submission.
        """
        if outcome is IOOutcome.CRC_ERROR:
            return done_ns
        return submit_ns + self.config.timeout_ns

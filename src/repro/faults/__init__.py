"""Fault injection and device variability.

This package models what the idealised storage stack leaves out: ULL
read-tail variability (lognormal / bimodal / measured-percentile
latency distributions), DMA-level error outcomes (CRC error, device
timeout, dropped completion) with retry-backoff-fallback recovery, and
the resulting graceful degradation of ITS (demotion to the async
baseline when a steal window stalls).

Everything is driven by one seeded RNG stream owned by the
:class:`FaultInjector`, so faulty runs are exactly as reproducible and
cacheable as clean ones.  See docs/FAULTS.md for the full story.
"""

from repro.faults.distributions import (
    MIN_LATENCY_FRACTION,
    BimodalLatency,
    FixedLatency,
    LatencyDistribution,
    LognormalLatency,
    PercentileTableLatency,
    build_distribution,
)
from repro.faults.injector import FaultInjector, InjectorStats, IOOutcome
from repro.faults.profiles import (
    FAULT_PROFILES,
    TAIL_MODELS,
    get_fault_profile,
    with_fault_profile,
    with_tail_model,
)

__all__ = [
    "MIN_LATENCY_FRACTION",
    "BimodalLatency",
    "FixedLatency",
    "LatencyDistribution",
    "LognormalLatency",
    "PercentileTableLatency",
    "build_distribution",
    "FaultInjector",
    "InjectorStats",
    "IOOutcome",
    "FAULT_PROFILES",
    "TAIL_MODELS",
    "get_fault_profile",
    "with_fault_profile",
    "with_tail_model",
]

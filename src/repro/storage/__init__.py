"""Storage substrate: ULL device, PCIe link, DMA controller."""

from repro.storage.device import DeviceStats, ULLDevice
from repro.storage.pcie import PCIeLink
from repro.storage.dma import DMAController, DMARequest

__all__ = [
    "DeviceStats",
    "ULLDevice",
    "PCIeLink",
    "DMAController",
    "DMARequest",
]

"""DMA controller: asynchronous page movement between device and DRAM.

The page-fault handler "marks the DMA to move the data to the swap cache
in the DRAM"; the prefetcher likewise "sends these physical addresses to
the DMA for data moving", bypassing the CPU.  Completions are events on
the shared queue, so DMA progress overlaps CPU execution exactly as in
the paper's overlap argument.

Timing and error contract: ``read_page`` / ``write_page`` always
complete — ``on_complete`` fires exactly once, at the returned absolute
time.  Without a fault injector that time is flash access plus PCIe
serialisation, deterministically.  With an injector, each read may be
assigned an error outcome (CRC error detected when the data lands;
device timeout or dropped completion caught by a watchdog
``timeout_ns`` after submission), after which the controller backs off
exponentially and retries on a fresh channel slot.  After
``max_retries`` failed retries the read takes a host-software fallback
path (PIO re-read) costing ``fallback_penalty_ns`` and then succeeds,
so the simulation stays total: no request is ever lost, it only gets
slower.  Retries are visible as ``io.retry.*`` telemetry and in
``last_read_attempts`` for the fault handler's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.events import Event, EventQueue
from repro.faults.injector import IOOutcome
from repro.storage.device import ULLDevice
from repro.storage.pcie import PCIeLink


@dataclass(frozen=True)
class DMARequest:
    """One page-sized device->DRAM transfer."""

    pid: int
    vpn: int
    page_bytes: int
    prefetch: bool = False


class DMAController:
    """Issues device reads and schedules their completion events."""

    def __init__(
        self,
        device: ULLDevice,
        link: PCIeLink,
        events: EventQueue,
        *,
        telemetry=None,
        injector=None,
    ) -> None:
        self.device = device
        self.link = link
        self.events = events
        self.telemetry = telemetry
        self.injector = injector
        self.inflight = 0
        self.completed = 0
        self.prefetches_issued = 0
        self.writebacks_issued = 0
        self.retries = 0
        self.fallbacks = 0
        self.last_read_attempts = 1

    def read_page(
        self,
        now_ns: int,
        request: DMARequest,
        on_complete: Optional[Callable[[DMARequest, int], None]] = None,
    ) -> int:
        """Start a page read at *now_ns*; returns its completion time.

        The read occupies a device channel for the flash access, then the
        PCIe link for the transfer.  If *on_complete* is given it fires as
        an event at the completion time with ``(request, done_ns)``.
        Under fault injection a read may internally retry (see the module
        docstring); the returned time is the final, successful completion.
        """
        if self.injector is None:
            __, flash_done = self.device.submit_read(now_ns)
            __, done = self.link.schedule_transfer(flash_done, request.page_bytes)
            self.last_read_attempts = 1
        else:
            done, attempts = self._read_with_retries(now_ns, request)
            self.last_read_attempts = attempts
        self.inflight += 1
        if request.prefetch:
            self.prefetches_issued += 1
        if self.telemetry is not None:
            name = "dma.prefetch_read" if request.prefetch else "dma.demand_read"
            self.telemetry.record_span(
                name, now_ns, done,
                track="dma", pid=request.pid, args={"vpn": request.vpn},
            )
            self.telemetry.histogram("dma.read_latency_ns").observe(done - now_ns)
            causal = self.telemetry.causal
            if causal is not None:
                issue_id = causal.add(
                    "dma_issue", now_ns,
                    pid=request.pid, vpn=request.vpn, parent=causal.parent,
                    prefetch=request.prefetch,
                    attempts=self.last_read_attempts,
                )
                causal.add(
                    "io_complete", done,
                    pid=request.pid, vpn=request.vpn, parent=issue_id,
                )

        def _fire(event: Event) -> None:
            self.inflight -= 1
            self.completed += 1
            if on_complete is not None:
                on_complete(request, event.time_ns)

        self.events.schedule_at(done, tag=f"dma:{request.pid}:{request.vpn:#x}", callback=_fire)
        return done

    def write_page(
        self,
        now_ns: int,
        request: DMARequest,
        on_complete: Optional[Callable[[DMARequest, int], None]] = None,
    ) -> int:
        """Start a page write-back at *now_ns*; returns its completion time.

        The transfer crosses the PCIe link first (DRAM -> device), then
        occupies a device channel for the flash program.
        """
        __, link_done = self.link.schedule_transfer(now_ns, request.page_bytes)
        __, done = self.device.submit_write(link_done)
        self.inflight += 1
        self.writebacks_issued += 1
        if self.telemetry is not None:
            self.telemetry.record_span(
                "dma.writeback", now_ns, done,
                track="dma", pid=request.pid, args={"vpn": request.vpn},
            )
            self.telemetry.histogram("dma.write_latency_ns").observe(done - now_ns)

        def _fire(event: Event) -> None:
            self.inflight -= 1
            self.completed += 1
            if on_complete is not None:
                on_complete(request, event.time_ns)

        self.events.schedule_at(done, tag=f"dma-wb:{request.pid}:{request.vpn:#x}", callback=_fire)
        return done

    def _read_with_retries(self, now_ns: int, request: DMARequest) -> tuple[int, int]:
        """Run one read through the injector's outcome/retry machinery.

        Returns ``(done_ns, attempts)``.  Each attempt books a real
        channel slot and link transfer (failed attempts still consume
        device time).  On failure the controller waits out the detection
        delay plus an exponential backoff, then resubmits; once
        ``max_retries`` retries are spent, the fallback path adds
        ``fallback_penalty_ns`` after the last attempt and succeeds.
        """
        injector = self.injector
        cfg = injector.config
        submit = now_ns
        attempt = 1
        while True:
            __, flash_done = self.device.submit_read(submit, retry=attempt > 1)
            __, done = self.link.schedule_transfer(flash_done, request.page_bytes)
            outcome = injector.next_read_outcome()
            if outcome is IOOutcome.OK:
                return done, attempt
            detected = injector.detection_delay_ns(outcome, submit, done)
            if attempt > cfg.max_retries:
                self.fallbacks += 1
                done = max(done, detected) + cfg.fallback_penalty_ns
                if self.telemetry is not None:
                    self.telemetry.counter("io.retry.fallback").inc()
                return done, attempt
            backoff = injector.backoff_ns(attempt)
            next_submit = max(detected, submit) + backoff
            self.retries += 1
            if self.telemetry is not None:
                self.telemetry.counter("io.retry.attempts").inc()
                self.telemetry.histogram("io.retry.backoff_ns").observe(backoff)
                self.telemetry.record_span(
                    "io.retry.backoff", detected, next_submit,
                    track="dma", pid=request.pid,
                    args={"vpn": request.vpn, "attempt": attempt, "outcome": outcome.value},
                )
                if self.telemetry.causal is not None:
                    # Retries precede the dma_issue record (it carries
                    # the final completion), so they hang off the open
                    # fault scope directly.
                    self.telemetry.causal.add(
                        "dma_retry", detected,
                        pid=request.pid, vpn=request.vpn,
                        parent=self.telemetry.causal.parent,
                        attempt=attempt, outcome=outcome.value,
                        backoff_ns=backoff,
                    )
            submit = next_submit
            attempt += 1

    def tier_of(self, pid: int, vpn: int) -> int:
        """Storage tier backing (pid, vpn): always 0 on the single-device
        controller.  The tiered facade (:mod:`repro.tiering`) overrides
        this with the page's placement, letting the fault handler and
        policies stay tier-agnostic."""
        return 0

    def estimate_read_latency(self, now_ns: int) -> int:
        """Completion latency a read submitted now would see, without
        submitting it (used by policies to bound busy-wait windows).

        The estimate assumes the *nominal* access latency even under
        fault injection — policies plan against the datasheet number,
        and the gap between plan and tail reality is exactly what the
        demotion machinery (docs/FAULTS.md) absorbs."""
        start = self.device.earliest_free_ns(now_ns)
        flash_done = start + self.device.config.access_latency_ns
        link_start = max(flash_done, self.link.free_at())
        return link_start + self.link.config.transfer_time_ns(4096) - now_ns

"""DMA controller: asynchronous page movement between device and DRAM.

The page-fault handler "marks the DMA to move the data to the swap cache
in the DRAM"; the prefetcher likewise "sends these physical addresses to
the DMA for data moving", bypassing the CPU.  Completions are events on
the shared queue, so DMA progress overlaps CPU execution exactly as in
the paper's overlap argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.events import Event, EventQueue
from repro.storage.device import ULLDevice
from repro.storage.pcie import PCIeLink


@dataclass(frozen=True)
class DMARequest:
    """One page-sized device->DRAM transfer."""

    pid: int
    vpn: int
    page_bytes: int
    prefetch: bool = False


class DMAController:
    """Issues device reads and schedules their completion events."""

    def __init__(
        self,
        device: ULLDevice,
        link: PCIeLink,
        events: EventQueue,
        *,
        telemetry=None,
    ) -> None:
        self.device = device
        self.link = link
        self.events = events
        self.telemetry = telemetry
        self.inflight = 0
        self.completed = 0
        self.prefetches_issued = 0
        self.writebacks_issued = 0

    def read_page(
        self,
        now_ns: int,
        request: DMARequest,
        on_complete: Optional[Callable[[DMARequest, int], None]] = None,
    ) -> int:
        """Start a page read at *now_ns*; returns its completion time.

        The read occupies a device channel for the flash access, then the
        PCIe link for the transfer.  If *on_complete* is given it fires as
        an event at the completion time with ``(request, done_ns)``.
        """
        __, flash_done = self.device.submit_read(now_ns)
        __, done = self.link.schedule_transfer(flash_done, request.page_bytes)
        self.inflight += 1
        if request.prefetch:
            self.prefetches_issued += 1
        if self.telemetry is not None:
            name = "dma.prefetch_read" if request.prefetch else "dma.demand_read"
            self.telemetry.record_span(
                name, now_ns, done,
                track="dma", pid=request.pid, args={"vpn": request.vpn},
            )
            self.telemetry.histogram("dma.read_latency_ns").observe(done - now_ns)

        def _fire(event: Event) -> None:
            self.inflight -= 1
            self.completed += 1
            if on_complete is not None:
                on_complete(request, event.time_ns)

        self.events.schedule_at(done, tag=f"dma:{request.pid}:{request.vpn:#x}", callback=_fire)
        return done

    def write_page(
        self,
        now_ns: int,
        request: DMARequest,
        on_complete: Optional[Callable[[DMARequest, int], None]] = None,
    ) -> int:
        """Start a page write-back at *now_ns*; returns its completion time.

        The transfer crosses the PCIe link first (DRAM -> device), then
        occupies a device channel for the flash program.
        """
        __, link_done = self.link.schedule_transfer(now_ns, request.page_bytes)
        __, done = self.device.submit_write(link_done)
        self.inflight += 1
        self.writebacks_issued += 1
        if self.telemetry is not None:
            self.telemetry.record_span(
                "dma.writeback", now_ns, done,
                track="dma", pid=request.pid, args={"vpn": request.vpn},
            )
            self.telemetry.histogram("dma.write_latency_ns").observe(done - now_ns)

        def _fire(event: Event) -> None:
            self.inflight -= 1
            self.completed += 1
            if on_complete is not None:
                on_complete(request, event.time_ns)

        self.events.schedule_at(done, tag=f"dma-wb:{request.pid}:{request.vpn:#x}", callback=_fire)
        return done

    def estimate_read_latency(self, now_ns: int) -> int:
        """Completion latency a read submitted now would see, without
        submitting it (used by policies to bound busy-wait windows)."""
        start = self.device.earliest_free_ns(now_ns)
        flash_done = start + self.device.config.access_latency_ns
        link_start = max(flash_done, self.link.free_at())
        return link_start + self.link.config.transfer_time_ns(4096) - now_ns

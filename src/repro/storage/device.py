"""Ultra-Low-Latency storage device model.

A Z-NAND-class device: page reads complete in ``access_latency_ns``
(3 us by default), and the device has ``channels`` internal channels so
that a burst of prefetch reads proceeds in parallel ("Leveraging the
substantial parallelism offered by SSDs", Section 3.4.1).  Reads beyond
the channel count queue on the earliest-free channel.

Timing contract: ``submit_read`` / ``submit_write`` return absolute
``(start_ns, done_ns)`` with ``start_ns >= now_ns`` (channel queueing)
and ``done_ns = start_ns + latency``.  With no fault injector attached
the latency is exactly ``access_latency_ns`` for every op — the
idealised fixed-latency device the paper evaluates.  With an injector,
the latency of each op is drawn from the configured tail distribution
(see :mod:`repro.faults.distributions`); the device itself never fails —
error outcomes (CRC/timeout/drop) are modelled one layer up, in the
:class:`~repro.storage.dma.DMAController`, because that is where
detection and retry happen.  Submissions must be monotone in time per
caller, but the device tolerates out-of-order ``now_ns`` across callers
by queueing on the earliest-free channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import DeviceConfig


@dataclass
class DeviceStats:
    """Cumulative device-side counters.

    ``retried_ns`` / ``retried_ops`` isolate device time spent on retry
    re-submissions (attempts after the first, booked by the DMA
    controller's recovery machinery) from first-attempt latency, so
    per-tier tail tables do not conflate the two populations.
    """

    reads: int = 0
    writes: int = 0
    queued_ns: int = 0
    busy_ns: int = 0
    retried_ns: int = 0
    retried_ops: int = 0

    @property
    def total_ops(self) -> int:
        """Reads plus writes."""
        return self.reads + self.writes

    @property
    def first_attempt_ns(self) -> int:
        """Busy time spent on first-attempt ops only."""
        return self.busy_ns - self.retried_ns


class ULLDevice:
    """Channel-parallel latency model of an ULL SSD."""

    def __init__(self, config: DeviceConfig, *, injector=None) -> None:
        self.config = config
        self.stats = DeviceStats()
        self._channel_free_at: list[int] = [0] * config.channels
        self._injector = injector

    def submit_read(self, now_ns: int, *, retry: bool = False) -> tuple[int, int]:
        """Submit one page read at *now_ns*.

        Returns ``(start_ns, done_ns)``: the read starts when the
        earliest-free channel is available and finishes one access
        latency later.  The caller layers the PCIe transfer on top.
        ``retry=True`` marks a recovery re-submission, whose busy time
        is additionally booked under ``DeviceStats.retried_ns``.
        """
        return self._submit(now_ns, is_write=False, retry=retry)

    def submit_write(self, now_ns: int) -> tuple[int, int]:
        """Submit one page write (swap-out path)."""
        return self._submit(now_ns, is_write=True)

    def earliest_free_ns(self, now_ns: int) -> int:
        """When the next submitted op could start, without submitting."""
        return max(now_ns, min(self._channel_free_at))

    @property
    def pending_channels(self) -> int:
        """Number of channels busy at or after the last submit time."""
        latest = max(self._channel_free_at)
        return sum(1 for t in self._channel_free_at if t == latest and latest > 0)

    def _submit(
        self, now_ns: int, *, is_write: bool, retry: bool = False
    ) -> tuple[int, int]:
        index = min(range(len(self._channel_free_at)), key=self._channel_free_at.__getitem__)
        start = max(now_ns, self._channel_free_at[index])
        base = self.config.access_latency_ns
        if self._injector is None:
            latency = base
        elif is_write:
            latency = self._injector.sample_write_latency_ns(base)
        else:
            latency = self._injector.sample_read_latency_ns(base)
        done = start + latency
        self._channel_free_at[index] = done
        self.stats.queued_ns += start - now_ns
        self.stats.busy_ns += done - start
        if retry:
            self.stats.retried_ns += done - start
            self.stats.retried_ops += 1
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return start, done

"""Ultra-Low-Latency storage device model.

A Z-NAND-class device: page reads complete in ``access_latency_ns``
(3 us by default), and the device has ``channels`` internal channels so
that a burst of prefetch reads proceeds in parallel ("Leveraging the
substantial parallelism offered by SSDs", Section 3.4.1).  Reads beyond
the channel count queue on the earliest-free channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import DeviceConfig


@dataclass
class DeviceStats:
    """Cumulative device-side counters."""

    reads: int = 0
    writes: int = 0
    queued_ns: int = 0
    busy_ns: int = 0

    @property
    def total_ops(self) -> int:
        """Reads plus writes."""
        return self.reads + self.writes


class ULLDevice:
    """Channel-parallel latency model of an ULL SSD."""

    def __init__(self, config: DeviceConfig) -> None:
        self.config = config
        self.stats = DeviceStats()
        self._channel_free_at: list[int] = [0] * config.channels

    def submit_read(self, now_ns: int) -> tuple[int, int]:
        """Submit one page read at *now_ns*.

        Returns ``(start_ns, done_ns)``: the read starts when the
        earliest-free channel is available and finishes one access
        latency later.  The caller layers the PCIe transfer on top.
        """
        return self._submit(now_ns, is_write=False)

    def submit_write(self, now_ns: int) -> tuple[int, int]:
        """Submit one page write (swap-out path)."""
        return self._submit(now_ns, is_write=True)

    def earliest_free_ns(self, now_ns: int) -> int:
        """When the next submitted op could start, without submitting."""
        return max(now_ns, min(self._channel_free_at))

    @property
    def pending_channels(self) -> int:
        """Number of channels busy at or after the last submit time."""
        latest = max(self._channel_free_at)
        return sum(1 for t in self._channel_free_at if t == latest and latest > 0)

    def _submit(self, now_ns: int, *, is_write: bool) -> tuple[int, int]:
        index = min(range(len(self._channel_free_at)), key=self._channel_free_at.__getitem__)
        start = max(now_ns, self._channel_free_at[index])
        done = start + self.config.access_latency_ns
        self._channel_free_at[index] = done
        self.stats.queued_ns += start - now_ns
        self.stats.busy_ns += done - start
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        return start, done

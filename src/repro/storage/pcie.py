"""PCIe host-interface bandwidth model.

The paper simulates a 4-lane PCIe 5.x link (~3.983 GB/s per lane) between
DRAM and the ULL device.  The link is a shared serial resource: transfers
queue behind one another, so a prefetch burst pays bandwidth even though
the device channels overlap the flash accesses.
"""

from __future__ import annotations

from repro.common.config import PCIeConfig


class PCIeLink:
    """Serially-shared link with a configurable aggregate bandwidth."""

    def __init__(self, config: PCIeConfig, *, injector=None) -> None:
        self.config = config
        self._free_at = 0
        self.bytes_transferred = 0
        self.transfers = 0
        self.busy_ns = 0
        self._injector = injector

    def schedule_transfer(self, ready_ns: int, n_bytes: int) -> tuple[int, int]:
        """Book a transfer of *n_bytes* that becomes ready at *ready_ns*.

        Returns ``(start_ns, done_ns)``; the transfer starts when both
        the data is ready and the link is free.  A fault injector, if
        attached, adds uniform per-transfer jitter (arbitration and
        replay delays) on top of the deterministic serialisation time.
        """
        start = max(ready_ns, self._free_at)
        done = start + self.config.transfer_time_ns(n_bytes)
        if self._injector is not None:
            done += self._injector.sample_link_jitter_ns()
        self._free_at = done
        self.bytes_transferred += n_bytes
        self.transfers += 1
        self.busy_ns += done - start
        return start, done

    def free_at(self) -> int:
        """Earliest time a new transfer could start."""
        return self._free_at

    @property
    def total_bandwidth_bytes_per_sec(self) -> float:
        """Aggregate bandwidth of the configured link."""
        return self.config.total_bandwidth_bytes_per_sec

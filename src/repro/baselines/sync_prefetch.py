"""The Sync_Prefetch baseline.

Synchronous I/O plus page-based prefetching (footnote 5: "groups a
static number of pages with continuous page id into a page-on-page unit
and fetches an entire unit during handling a page fault").  Unlike the
ITS virtual-address-based prefetcher, the unit is *statically aligned*:
it neither skips ahead past already-resident pages nor crosses the unit
boundary to gather a full candidate set, which is why its accuracy trails
ITS by the paper's 10-15 %.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.sync_io import SyncIOPolicy, busy_wait_fault
from repro.kernel.process import Process

if TYPE_CHECKING:
    from repro.sim.simulator import Simulation


class SyncPrefetchPolicy(SyncIOPolicy):
    """Sync I/O + aligned page-on-page-unit prefetch on major faults."""

    name = "Sync_Prefetch"

    def __init__(self, unit_pages: int = 8) -> None:
        if unit_pages <= 0:
            raise ValueError("unit size must be positive")
        self.unit_pages = unit_pages

    def on_major_fault(self, sim: "Simulation", process: Process, vpn: int) -> None:
        # Issue the rest of the aligned unit over DMA first, so the
        # prefetch reads overlap the demand read's busy-wait.
        unit_start = vpn - (vpn % self.unit_pages)
        issued = 0
        for candidate in range(unit_start, unit_start + self.unit_pages):
            if candidate != vpn and sim.issue_prefetch(process.pid, candidate):
                issued += 1
        if sim.telemetry is not None:
            sim.telemetry.counter("prefetch.unit_pages_issued").inc(issued)
        busy_wait_fault(sim, process, vpn)

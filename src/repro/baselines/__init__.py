"""The four baseline I/O policies from the paper's evaluation.

* :class:`AsyncIOPolicy` — traditional asynchronous I/O (context switch
  on every major fault).
* :class:`SyncIOPolicy` — synchronous busy-waiting, as advocated by
  Intel and IBM for ULL devices.
* :class:`SyncRunaheadPolicy` — Sync plus traditional runahead
  pre-execution during LLC misses.
* :class:`SyncPrefetchPolicy` — Sync plus page-on-page-unit prefetching
  during major faults.

The ITS design itself lives in :mod:`repro.core`.
"""

from repro.baselines.base import IOPolicy
from repro.baselines.async_io import AsyncIOPolicy
from repro.baselines.sync_io import SyncIOPolicy
from repro.baselines.sync_runahead import SyncRunaheadPolicy
from repro.baselines.sync_prefetch import SyncPrefetchPolicy

__all__ = [
    "IOPolicy",
    "AsyncIOPolicy",
    "SyncIOPolicy",
    "SyncRunaheadPolicy",
    "SyncPrefetchPolicy",
]

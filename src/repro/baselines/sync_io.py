"""The synchronous I/O baseline ("Sync").

The mode Intel and IBM advocate for ULL devices: on a major fault the CPU
busy-waits for the DMA swap-in instead of context switching.  The whole
wait is CPU idle time — nothing useful happens — which is precisely the
waste the ITS design steals.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.base import IOPolicy
from repro.kernel.process import Process

if TYPE_CHECKING:
    from repro.sim.simulator import Simulation


def busy_wait_fault(sim: "Simulation", process: Process, vpn: int) -> int:
    """Synchronous-fault mechanics: handler, DMA, busy-wait, install.

    Returns the length of the busy-wait window (handler exit to I/O
    completion).  Shared by Sync, Sync_Runahead, Sync_Prefetch and the
    ITS self-improving path (which steals the returned window).
    """
    machine = sim.machine
    start_ns = machine.now_ns
    fault = machine.fault_handler.begin_major_fault(process.pid, vpn, machine.now_ns)
    sim.metrics.add_handler_overhead(machine.config.fault_handler_ns)
    wait_ns = fault.io_done_ns - fault.handler_done_ns
    # Ledger split: handler software time is run, the busy-wait is spin.
    sim.consume_time(process, fault.io_done_ns - machine.now_ns, category=None)
    sim.charge_time(process.pid, "run", machine.config.fault_handler_ns)
    sim.charge_time(process.pid, "spin_wait", wait_ns)
    sim.metrics.add_sync_storage_wait(wait_ns)
    process.stats.storage_wait_ns += wait_ns
    process.stats.sync_faults += 1
    machine.memory.install_page(process.pid, vpn)
    telemetry = sim.telemetry
    if telemetry is not None and telemetry.causal is not None:
        # Synchronous servicing: the process resumes in place at I/O
        # completion, closing the fault's lifecycle.
        telemetry.causal.add(
            "resume", fault.io_done_ns,
            pid=process.pid, vpn=vpn,
            parent=telemetry.causal.fault_of(process.pid),
        )
    if telemetry is not None:
        telemetry.record_span(
            "fault.sync", start_ns, fault.io_done_ns,
            track="cpu", pid=process.pid, args={"vpn": vpn},
        )
        telemetry.record_span(
            "fault.sync.wait", fault.handler_done_ns, fault.io_done_ns,
            track="cpu", pid=process.pid,
        )
        telemetry.histogram("fault.service_ns").observe(fault.io_done_ns - start_ns)
    return wait_ns


class SyncIOPolicy(IOPolicy):
    """Busy-wait on every major fault."""

    name = "Sync"

    def on_major_fault(self, sim: "Simulation", process: Process, vpn: int) -> None:
        busy_wait_fault(sim, process, vpn)

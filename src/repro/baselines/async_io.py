"""The asynchronous I/O baseline ("Async").

Traditional swap behaviour: on a major fault the OS marks the DMA and
context-switches to another ready process.  With ULL devices the 7 us
switch dwarfs the 3 us access — and the fine-grained interleaving it
causes lets the processes thrash each other's pages and caches, which is
what Figures 4b/4c measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.base import IOPolicy
from repro.kernel.process import Process
from repro.storage.dma import DMARequest

if TYPE_CHECKING:
    from repro.sim.simulator import Simulation


def block_on_fault(
    sim: "Simulation", process: Process, vpn: int, *, resume: bool = False
) -> None:
    """Asynchronous-fault mechanics: handler, DMA, block, unblock on
    completion.  Shared by Async (``resume=False``: queue tail) and the
    ITS self-sacrificing thread (``resume=True``: the forced-off process
    re-enters at the queue head with its residual slice)."""
    machine = sim.machine
    start_ns = machine.now_ns
    causal = sim.telemetry.causal if sim.telemetry is not None else None

    def complete(request: DMARequest, time_ns: int) -> None:
        if not machine.memory.is_resident_or_cached(request.pid, request.vpn):
            machine.memory.install_page(request.pid, request.vpn)
        sim.scheduler.unblock(process, resume=resume, ready_ns=time_ns)
        if causal is not None:
            # The process cannot fault while blocked, so fault_of still
            # names the fault this completion unblocks.
            unblock_id = causal.add(
                "unblock", time_ns,
                pid=request.pid, vpn=request.vpn,
                parent=causal.fault_of(request.pid),
            )
            causal.note_unblock(request.pid, unblock_id)

    fault = machine.fault_handler.begin_major_fault(
        process.pid, vpn, machine.now_ns, on_complete=complete
    )
    # The handler itself runs on the CPU before the switch.
    sim.consume_time(process, machine.config.fault_handler_ns)
    sim.metrics.add_handler_overhead(machine.config.fault_handler_ns)
    process.stats.async_faults += 1
    sim.scheduler.block_current()
    telemetry = sim.telemetry
    if telemetry is not None:
        # The I/O completion time is already determined, so the whole
        # blocked interval can be recorded up front.
        name = "fault.sacrifice.blocked" if resume else "fault.async"
        telemetry.record_span(
            name, start_ns, fault.io_done_ns,
            track="cpu", pid=process.pid, args={"vpn": vpn},
        )
        telemetry.histogram("fault.service_ns").observe(fault.io_done_ns - start_ns)


class AsyncIOPolicy(IOPolicy):
    """Block on every major fault; resume when the DMA completes."""

    name = "Async"

    def on_major_fault(self, sim: "Simulation", process: Process, vpn: int) -> None:
        block_on_fault(sim, process, vpn)

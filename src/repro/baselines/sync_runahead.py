"""The Sync_Runahead baseline.

Synchronous I/O plus *traditional* runahead execution: a pre-execute
episode opens on every demand LLC miss and runs for the duration of the
DRAM stall (footnote 4: "Traditional runahead execution runs the
pre-execution during handling cache misses, but ours does the
pre-execution during handling page faults").  Half the LLC is carved out
as the pre-execute cache, so this baseline trades cache capacity for
miss coverage — it reduces cache misses more than ITS (Figure 4c) yet
still loses on idle time because it does nothing about page faults.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.sync_io import SyncIOPolicy
from repro.common.errors import SimulationError
from repro.cpu.core import StepResult
from repro.cpu.isa import Instruction, register_written
from repro.kernel.process import Process

if TYPE_CHECKING:
    from repro.sim.simulator import Simulation


class SyncRunaheadPolicy(SyncIOPolicy):
    """Sync I/O + runahead on LLC misses."""

    name = "Sync_Runahead"
    uses_preexec_cache = True

    def on_instruction_complete(
        self,
        sim: "Simulation",
        process: Process,
        instr: Instruction,
        result: StepResult,
    ) -> None:
        if result.stall_ns <= 0:
            return
        engine = sim.machine.preexec_engine
        if engine is None:
            raise SimulationError("Sync_Runahead requires the pre-execute engine")
        engine.run_episode(
            process.pid,
            process.registers,
            process.trace,
            process.pc + 1,
            result.stall_ns,
            faulting_reg=register_written(instr),
        )

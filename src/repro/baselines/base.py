"""The I/O policy interface.

A policy decides what the machine does around a major page fault — the
single decision point the whole paper revolves around — plus optional
hooks on instruction completion (used by runahead) and replacement-policy
selection (used by ITS's priority-aware shielding).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from repro.cpu.core import StepResult
from repro.cpu.isa import Instruction
from repro.kernel.process import Process
from repro.vm.replacement import GlobalLRUPolicy, ReplacementPolicy

if TYPE_CHECKING:
    from repro.sim.simulator import Simulation


class IOPolicy(ABC):
    """Strategy object governing fault handling for one simulation run.

    Policies are stateful per run: :meth:`attach` is called once before
    the loop starts, and a fresh policy instance must be used for each
    :class:`~repro.sim.simulator.Simulation`.
    """

    name: str = "abstract"
    uses_preexec_cache: bool = False

    def create_replacement(self, processes: Sequence[Process]) -> ReplacementPolicy:
        """Build the page-replacement policy for this run.

        Baselines use global LRU; ITS overrides this with the
        priority-aware variant.
        """
        return GlobalLRUPolicy()

    def attach(self, sim: "Simulation") -> None:
        """Bind to the simulation before the run starts."""
        self.sim = sim

    @abstractmethod
    def on_major_fault(self, sim: "Simulation", process: Process, vpn: int) -> None:
        """Handle a major fault of *process* on page *vpn*.

        The implementation must leave the simulation in one of two
        states: the page resident and the process still RUNNING (sync
        flavours), or the process BLOCKED with a completion event armed
        (async flavours).
        """

    def on_instruction_complete(
        self,
        sim: "Simulation",
        process: Process,
        instr: Instruction,
        result: StepResult,
    ) -> None:
        """Hook after each committed instruction (default: nothing)."""

"""The time-attribution ledger: where every simulated nanosecond went.

The paper's argument is an accounting claim — the busy-wait window of a
synchronous page fault is CPU idle time that ITS can *steal* — so the
simulator should be able to answer "where did every nanosecond go?"
exactly, not just through coarse idle counters.  :class:`TimeLedger`
attributes every nanosecond of every core's clock to exactly one of
eight categories:

========================  ====================================================
category                  meaning
========================  ====================================================
``run``                   committed instruction execution (incl. DRAM stalls)
                          and page-fault handler software time
``idle``                  nothing runnable and no attributable wait reason
``spin_wait``             synchronous busy-wait on a demand swap-in
``stolen_run``            ITS kernel-thread work inside a stolen window
                          (entry, checkpoint, prefetch walk, pre-execution,
                          register restore)
``ctx_switch``            context-switch and cross-core migration overhead
``tlb_shootdown``         cross-core TLB-shootdown IPI servicing
``dma_wait``              core idle with demand/prefetch DMA in flight
``demoted_wait``          core idle while a demoted (blocked) fault waits
                          out its tail latency
========================  ====================================================

Cells are keyed ``(core, pid, category)`` — ``pid=None`` marks time not
attributable to a process (idle, IPIs) — so both the per-core and the
per-process breakdown come from the same single-writer structure.  The
**conservation law** is the whole point: after a run,

    ``sum(every cell) == makespan_ns × cores``

and per core, ``sum(core's cells) == makespan_ns``.  :meth:`audit`
checks both and raises :class:`~repro.common.errors.SimulationError`
on any leak; the simulator audits automatically at the end of every
ledger-attached run, and the integration suite runs it across all five
paper policies at 1, 2 and 4 cores.

The ledger is opt-in (``Telemetry(ledger=True)``) and every charge site
guards on ``None``, so detached runs and ordinary telemetry runs pay
nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SimulationError

CATEGORIES: tuple[str, ...] = (
    "run",
    "idle",
    "spin_wait",
    "stolen_run",
    "ctx_switch",
    "tlb_shootdown",
    "dma_wait",
    "demoted_wait",
)
"""The eight mutually exclusive, collectively exhaustive time categories."""

_CATEGORY_SET = frozenset(CATEGORIES)


class TimeLedger:
    """Per-(core, pid, category) nanosecond accounting with a
    conservation audit."""

    def __init__(self) -> None:
        self._cells: dict[tuple[int, Optional[int], str], int] = {}

    # -- recording -----------------------------------------------------------

    def charge(
        self, core: int, pid: Optional[int], category: str, ns: int
    ) -> None:
        """Attribute *ns* nanoseconds on *core* to (*pid*, *category*).

        ``pid=None`` books time no process owns (idle gaps, IPI
        servicing).  Zero-length charges are dropped; negative ones are
        accounting bugs and raise.
        """
        if ns == 0:
            return
        if ns < 0:
            raise SimulationError(
                f"ledger charge of {ns} ns ({category!r}, core {core}, "
                f"pid {pid}) is negative"
            )
        if category not in _CATEGORY_SET:
            raise SimulationError(f"unknown ledger category {category!r}")
        key = (core, pid, category)
        self._cells[key] = self._cells.get(key, 0) + ns

    # -- queries -------------------------------------------------------------

    def total_ns(self) -> int:
        """Every nanosecond the ledger has attributed, summed."""
        return sum(self._cells.values())

    def by_category(self) -> dict[str, int]:
        """Category -> total ns across all cores and processes."""
        out = {category: 0 for category in CATEGORIES}
        for (_core, _pid, category), ns in self._cells.items():
            out[category] += ns
        return out

    def by_core(self) -> dict[int, dict[str, int]]:
        """Core -> {category -> ns} (every category present, sorted keys)."""
        cores = sorted({core for core, _pid, _cat in self._cells})
        out = {core: {category: 0 for category in CATEGORIES} for core in cores}
        for (core, _pid, category), ns in self._cells.items():
            out[core][category] += ns
        return out

    def by_process(self) -> dict[Optional[int], dict[str, int]]:
        """Pid -> {category -> ns}; the ``None`` row is unattributed time."""
        pids = sorted(
            {pid for _core, pid, _cat in self._cells if pid is not None}
        )
        keys: list[Optional[int]] = list(pids)
        if any(pid is None for _core, pid, _cat in self._cells):
            keys.append(None)
        out: dict[Optional[int], dict[str, int]] = {
            pid: {category: 0 for category in CATEGORIES} for pid in keys
        }
        for (_core, pid, category), ns in self._cells.items():
            out[pid][category] += ns
        return out

    def core_total_ns(self, core: int) -> int:
        """Every nanosecond attributed on one core."""
        return sum(
            ns for (c, _pid, _cat), ns in self._cells.items() if c == core
        )

    # -- the conservation law ------------------------------------------------

    def audit(self, makespan_ns: int, cores: int) -> None:
        """Assert the conservation law; raise on any leaked or invented time.

        Checks both the machine-wide identity
        ``total == makespan × cores`` and the per-core identity
        ``core total == makespan`` (the latter subsumes the former but
        pinpoints the leaking core in the error message).
        """
        for core in range(cores):
            core_total = self.core_total_ns(core)
            if core_total != makespan_ns:
                breakdown = ", ".join(
                    f"{cat}={ns}"
                    for cat, ns in sorted(self.by_core().get(core, {}).items())
                    if ns
                )
                raise SimulationError(
                    f"time-ledger conservation violated on core {core}: "
                    f"attributed {core_total} ns != makespan {makespan_ns} ns "
                    f"(delta {core_total - makespan_ns:+d} ns; {breakdown})"
                )
        total = self.total_ns()
        if total != makespan_ns * cores:
            raise SimulationError(
                f"time-ledger conservation violated: attributed {total} ns "
                f"!= makespan {makespan_ns} ns x {cores} cores"
            )

    # -- rendering -----------------------------------------------------------

    def render(self, makespan_ns: int, cores: int) -> str:
        """The ``repro ledger`` breakdown table (the Fig. 4 implication:
        one row per category, one column per core, plus the per-process
        split)."""
        per_core = self.by_core()
        for core in range(cores):
            per_core.setdefault(core, {cat: 0 for cat in CATEGORIES})
        totals = self.by_category()
        grand = makespan_ns * cores
        name_w = max(len(c) for c in CATEGORIES)
        core_w = max(12, len(f"{makespan_ns:,}") + 1)
        lines = [
            f"time ledger: {cores} core(s), makespan {makespan_ns:,} ns",
            "",
            (
                f"{'category':<{name_w}}  "
                + "".join(f"{f'core{i}':>{core_w}} " for i in range(cores))
                + f"{'total':>{core_w}} {'share':>7}"
            ),
        ]
        for category in CATEGORIES:
            share = 100 * totals[category] / grand if grand else 0.0
            lines.append(
                f"{category:<{name_w}}  "
                + "".join(
                    f"{per_core[i][category]:>{core_w},} " for i in range(cores)
                )
                + f"{totals[category]:>{core_w},} {share:>6.1f}%"
            )
        lines.append(
            f"{'total':<{name_w}}  "
            + "".join(
                f"{self.core_total_ns(i):>{core_w},} " for i in range(cores)
            )
            + f"{self.total_ns():>{core_w},} {100.0 if grand else 0.0:>6.1f}%"
        )
        per_process = self.by_process()
        if per_process:
            lines.append("")
            lines.append("per-process (ns; pid '-' is unattributed time):")
            lines.append(
                f"{'pid':>4}  "
                + "".join(f"{category:>{core_w}} " for category in CATEGORIES)
            )
            for pid, row in per_process.items():
                label = "-" if pid is None else str(pid)
                lines.append(
                    f"{label:>4}  "
                    + "".join(f"{row[cat]:>{core_w},} " for cat in CATEGORIES)
                )
        return "\n".join(lines)

"""Causal event graph: parent-linked fault lifecycles.

Where the span tracer answers "how long did phase X take", the causal
graph answers "*why* did this happen": every major fault becomes a tree

    decision? -> fault -> dma_issue -> dma_retry* -> io_complete
                      \\-> steal/demote/sacrifice -> kthread_entry,
                          prefetch_issue -> prefetch_done
                      \\-> unblock -> resume        (blocking paths)
                      \\-> resume                   (synchronous paths)

Node ids are allocated in creation order and a parent is always created
before its children, so ``parent < id`` holds for every edge and the
graph is **acyclic by construction** (the integration suite still
asserts it).  The companion *completeness* invariant: every ``fault``
node has a ``resume`` descendant by end of run — no fault is ever left
half-serviced.

Recording sites hold the graph behind the :class:`~repro.telemetry
.handle.Telemetry` handle (``Telemetry(causal=True)``) and guard on
``None``, so detached and ordinary-telemetry runs pay nothing.  The
*scope stack* (:meth:`push`/:meth:`pop`/:attr:`parent`) lets a high
-level site (the fault handler, a steal window) parent the nodes a
lower-level component (the DMA controller, the kernel thread) records
without threading ids through every call signature.

Analysis lives here too: :meth:`fault_chain` extracts the per-process
critical path (a process's faults are serial — each one stalls it — so
the chain of fault-service intervals *is* the process's fault
contribution to its finish time), and :meth:`steal_windows` classifies
every stolen window as **paid off** (at least one prefetch it issued
landed and the page never major-faulted again) or **wasted**.  Cache
warming by pre-execution is real but not graph-visible, so the payoff
test is deliberately prefetch-based; ``repro path`` renders both.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.common.errors import SimulationError


@dataclass
class CausalNode:
    """One lifecycle record.  ``parent`` is the id of the causing node
    (``None`` for roots); ``args`` carries small payloads (mode, window
    length, attempt counts)."""

    id: int
    kind: str
    t_ns: int
    pid: Optional[int] = None
    vpn: Optional[int] = None
    parent: Optional[int] = None
    args: dict = field(default_factory=dict)


class CausalGraph:
    """Append-only causal record store with scoped parent linking."""

    def __init__(self) -> None:
        self.nodes: list[CausalNode] = []
        self._children: dict[int, list[int]] = {}
        self._scope: list[int] = []
        self._last_fault: dict[int, int] = {}
        self._pending_decision: dict[int, int] = {}
        self._pending_unblock: dict[int, int] = {}
        self._pending_prefetch: dict[tuple[int, int], int] = {}

    # -- recording -----------------------------------------------------------

    def add(
        self,
        kind: str,
        t_ns: int,
        *,
        pid: Optional[int] = None,
        vpn: Optional[int] = None,
        parent: Optional[int] = None,
        **args,
    ) -> int:
        """Append one node; returns its id."""
        node_id = len(self.nodes)
        if parent is not None and not 0 <= parent < node_id:
            raise SimulationError(
                f"causal node {node_id} given parent {parent} that does not "
                f"precede it"
            )
        self.nodes.append(CausalNode(node_id, kind, t_ns, pid, vpn, parent, args))
        if parent is not None:
            self._children.setdefault(parent, []).append(node_id)
        return node_id

    def push(self, node_id: int) -> None:
        """Make *node_id* the default parent for nodes recorded by
        lower layers until :meth:`pop`."""
        self._scope.append(node_id)

    def pop(self) -> None:
        """Leave the innermost scope."""
        self._scope.pop()

    @contextmanager
    def under(self, node_id: int):
        """``with graph.under(id):`` — scoped :meth:`push`/:meth:`pop`."""
        self.push(node_id)
        try:
            yield self
        finally:
            self.pop()

    @property
    def parent(self) -> Optional[int]:
        """The innermost open scope's node id, or ``None``."""
        return self._scope[-1] if self._scope else None

    # -- cross-site handoffs -------------------------------------------------

    def open_fault(self, pid: int, vpn: int, t_ns: int) -> int:
        """Record a ``fault`` root and enter its scope.

        An adaptive-mode decision noted for this pid becomes the fault's
        parent; failing that, the current scope (a self-sacrificing
        thread that initiated the async servicing) does.  The caller
        must :meth:`pop` once the synchronous servicing section ends.
        """
        parent = self._pending_decision.pop(pid, None)
        if parent is None:
            parent = self.parent
        fault_id = self.add("fault", t_ns, pid=pid, vpn=vpn, parent=parent)
        self._last_fault[pid] = fault_id
        self.push(fault_id)
        return fault_id

    def fault_of(self, pid: int) -> Optional[int]:
        """The most recent ``fault`` node id for *pid*."""
        return self._last_fault.get(pid)

    def note_decision(self, pid: int, node_id: int) -> None:
        """Register an adaptive-mode decision awaiting its fault."""
        self._pending_decision[pid] = node_id

    def note_unblock(self, pid: int, node_id: int) -> None:
        """Register an ``unblock`` awaiting the pid's next dispatch."""
        self._pending_unblock[pid] = node_id

    def take_unblock(self, pid: int) -> Optional[int]:
        """Pop the pending ``unblock`` for *pid* (dispatch consumed it)."""
        return self._pending_unblock.pop(pid, None)

    def peek_unblock(self, pid: int) -> Optional[int]:
        """The pending ``unblock`` for *pid* without consuming it."""
        return self._pending_unblock.get(pid)

    def note_prefetch(self, pid: int, vpn: int, node_id: int) -> None:
        """Register an in-flight prefetch's issue node."""
        self._pending_prefetch[(pid, vpn)] = node_id

    def take_prefetch(self, pid: int, vpn: int) -> Optional[int]:
        """Pop the issue node of a completing prefetch."""
        return self._pending_prefetch.pop((pid, vpn), None)

    # -- structure queries ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[CausalNode]:
        return iter(self.nodes)

    def of_kind(self, kind: str) -> list[CausalNode]:
        """All nodes of one kind, in creation order."""
        return [n for n in self.nodes if n.kind == kind]

    def children_map(self) -> dict[int, list[int]]:
        """Parent id -> child ids (creation order).

        A live index maintained by :meth:`add` — O(1) to obtain, and
        callers must not mutate it.  (It used to be rebuilt from every
        node per call, which made ``descendants``-heavy analysis
        quadratic on open-loop runs with thousands of faults.)
        """
        return self._children

    def descendants(self, node_id: int) -> list[CausalNode]:
        """Every node reachable from *node_id* (excluded), creation order."""
        children = self._children
        stack = list(children.get(node_id, []))
        seen: list[int] = []
        while stack:
            nid = stack.pop()
            seen.append(nid)
            stack.extend(children.get(nid, []))
        return [self.nodes[i] for i in sorted(seen)]

    def check_acyclic(self) -> None:
        """Raise unless every edge satisfies ``parent < id`` (it must:
        :meth:`add` enforces it — this re-verifies the stored graph)."""
        for node in self.nodes:
            if node.parent is not None and node.parent >= node.id:
                raise SimulationError(
                    f"causal node {node.id} has non-preceding parent "
                    f"{node.parent}"
                )

    def unresolved_faults(self) -> list[CausalNode]:
        """Fault nodes with no ``resume`` descendant (should be empty
        after a completed run)."""
        out = []
        for fault in self.of_kind("fault"):
            if not any(d.kind == "resume" for d in self.descendants(fault.id)):
                out.append(fault)
        return out

    # -- analysis ------------------------------------------------------------

    def fault_mode(self, fault: CausalNode) -> str:
        """How the fault was serviced: sync / steal / demote / sacrifice
        / async."""
        kinds = {d.kind for d in self.descendants(fault.id)}
        if "demote" in kinds:
            return "demote"
        if "steal" in kinds:
            return "steal"
        if fault.parent is not None and self.nodes[fault.parent].kind == "sacrifice":
            return "sacrifice"
        if "unblock" in kinds:
            return "async"
        return "sync"

    def fault_chain(self, pid: int) -> list[dict]:
        """The pid's ordered fault-service chain (its critical path
        through storage): one row per fault with resume time, service
        length and servicing mode."""
        rows = []
        for fault in self.of_kind("fault"):
            if fault.pid != pid:
                continue
            resumes = [
                d for d in self.descendants(fault.id) if d.kind == "resume"
            ]
            resume_ns = min(d.t_ns for d in resumes) if resumes else None
            rows.append(
                {
                    "fault_id": fault.id,
                    "t_ns": fault.t_ns,
                    "vpn": fault.vpn,
                    "mode": self.fault_mode(fault),
                    "resume_ns": resume_ns,
                    "service_ns": (
                        resume_ns - fault.t_ns if resume_ns is not None else None
                    ),
                }
            )
        rows.sort(key=lambda r: r["t_ns"])
        return rows

    def steal_windows(self) -> list[dict]:
        """Classify every steal/demote window: paid off or wasted.

        A window *paid off* when at least one prefetch it issued was
        installed and that page never major-faulted again for the pid —
        i.e. the window removed a future stall from the process's fault
        chain.  Everything else (no budget, no candidates, prefetches
        that never installed or whose pages faulted again) is *wasted*:
        the window closed without shortening the critical path.
        """
        children = self.children_map()
        fault_times: dict[tuple[int, int], list[int]] = {}
        for fault in self.of_kind("fault"):
            fault_times.setdefault((fault.pid, fault.vpn), []).append(fault.t_ns)
        rows = []
        for window in self.nodes:
            if window.kind not in ("steal", "demote"):
                continue
            issued = completed = useful = 0
            for child_id in children.get(window.id, []):
                child = self.nodes[child_id]
                if child.kind != "prefetch_issue":
                    continue
                issued += 1
                done = [
                    self.nodes[i]
                    for i in children.get(child_id, [])
                    if self.nodes[i].kind == "prefetch_done"
                ]
                installed = [d for d in done if d.args.get("installed")]
                if not installed:
                    continue
                completed += 1
                done_ns = min(d.t_ns for d in installed)
                later = fault_times.get((child.pid, child.vpn), [])
                if not any(t > done_ns for t in later):
                    useful += 1
            rows.append(
                {
                    "node_id": window.id,
                    "kind": window.kind,
                    "pid": window.pid,
                    "t_ns": window.t_ns,
                    "window_ns": window.args.get("window_ns", 0),
                    "prefetches_issued": issued,
                    "prefetches_installed": completed,
                    "prefetches_useful": useful,
                    "paid_off": useful > 0,
                }
            )
        return rows


def render_path_report(graph: CausalGraph, result=None) -> str:
    """The ``repro path`` report: per-process fault chains plus the
    stolen-window payoff split.

    With a :class:`~repro.sim.metrics.SimulationResult` attached, the
    makespan-critical process (the last finisher — the run's critical
    path runs through its fault chain) is marked and its longest fault
    services listed.
    """
    faults = graph.of_kind("fault")
    if not faults:
        return "(no faults recorded; nothing on the causal graph)"
    unresolved = graph.unresolved_faults()
    windows = graph.steal_windows()
    by_pid: dict[int, list[dict]] = {}
    for fault in faults:
        by_pid.setdefault(fault.pid, [])
    for pid in by_pid:
        by_pid[pid] = graph.fault_chain(pid)
    win_by_pid: dict[int, list[dict]] = {}
    for row in windows:
        win_by_pid.setdefault(row["pid"], []).append(row)

    lines = [
        f"causal fault graph: {len(graph)} nodes, {len(faults)} faults, "
        f"{len(unresolved)} unresolved, {len(windows)} stolen windows"
    ]
    lines.append("")
    lines.append(
        f"{'pid':>4} {'faults':>7} {'service_ns':>14} {'modes':<28} "
        f"{'windows':>8} {'paid-off':>9} {'wasted':>7} {'stolen_ns':>12}"
    )
    critical_pid = None
    if result is not None:
        critical_pid = max(
            result.processes, key=lambda p: p.finish_time_ns
        ).pid
    for pid in sorted(by_pid):
        chain = by_pid[pid]
        service = sum(r["service_ns"] or 0 for r in chain)
        modes: dict[str, int] = {}
        for row in chain:
            modes[row["mode"]] = modes.get(row["mode"], 0) + 1
        mode_text = " ".join(
            f"{mode}={count}" for mode, count in sorted(modes.items())
        )
        wins = win_by_pid.get(pid, [])
        paid = sum(1 for w in wins if w["paid_off"])
        stolen_ns = sum(w["window_ns"] for w in wins)
        mark = "*" if pid == critical_pid else " "
        lines.append(
            f"{pid:>3}{mark} {len(chain):>7} {service:>14,} {mode_text:<28} "
            f"{len(wins):>8} {paid:>9} {len(wins) - paid:>7} {stolen_ns:>12,}"
        )
    if critical_pid is not None:
        lines.append("")
        lines.append(
            f"critical process: pid {critical_pid} (last finisher; the "
            f"makespan path runs through its fault chain)"
        )
        longest = sorted(
            (r for r in by_pid.get(critical_pid, []) if r["service_ns"]),
            key=lambda r: r["service_ns"],
            reverse=True,
        )[:5]
        for row in longest:
            lines.append(
                f"  fault @ {row['t_ns']:>12,} ns  vpn {row['vpn']:#x}  "
                f"mode {row['mode']:<9} service {row['service_ns']:>10,} ns"
            )
    if unresolved:
        lines.append("")
        lines.append("UNRESOLVED faults (no resume recorded):")
        for fault in unresolved[:10]:
            lines.append(
                f"  fault @ {fault.t_ns:,} ns pid {fault.pid} vpn {fault.vpn:#x}"
            )
    return "\n".join(lines)

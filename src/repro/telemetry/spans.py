"""Span tracing on the virtual clock.

A *span* is a named interval of virtual time (``fault.its.prefetch_walk``
from 12_300 ns to 14_100 ns, attributed to pid 3); an *instant* is a
zero-width marker.  Spans can be recorded two ways:

* post hoc, via :meth:`SpanTracer.record` — the natural fit for the
  simulator, where a fault's phase boundaries (handler exit, walk end,
  I/O completion, restore) are all known the moment the fault is
  serviced;
* as a nestable context manager, via :meth:`SpanTracer.span`, which
  reads the bound virtual clock at entry and exit — the natural fit for
  code whose duration emerges from the clock advancing inside the block.

The tracer is a bounded ring buffer like
:class:`~repro.sim.eventlog.EventLog`: long runs overwrite the oldest
spans and count them in :attr:`SpanTracer.dropped`.  Telemetry-aware
call sites hold an ``Optional[Telemetry]`` and skip everything on
``None`` — a detached run pays one pointer comparison per site.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.common.errors import SimulationError


@dataclass(frozen=True)
class Span:
    """One recorded interval (or instant, when ``dur_ns`` is ``None``).

    ``track`` names the horizontal lane the span belongs to in a trace
    viewer (``cpu``, ``its``, ``dma``, ``events``); ``args`` carries
    small key/value payloads (vpn, candidate count) into the exported
    trace.
    """

    name: str
    start_ns: int
    dur_ns: Optional[int]
    track: str = "cpu"
    pid: Optional[int] = None
    args: Optional[dict] = None

    @property
    def end_ns(self) -> int:
        """Exclusive end time (equals ``start_ns`` for instants)."""
        return self.start_ns + (self.dur_ns or 0)

    @property
    def is_instant(self) -> bool:
        """True for zero-width markers."""
        return self.dur_ns is None


class SpanTracer:
    """Bounded recorder of spans and instants on the virtual clock."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity <= 0:
            raise SimulationError("span tracer capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._buffer: list[Span] = []
        self._head = 0  # index of the oldest span once the ring is full
        self._clock: Optional[Callable[[], int]] = None
        self._depth = 0

    # -- recording -----------------------------------------------------------

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Attach the virtual-clock reader used by :meth:`span`."""
        self._clock = clock

    def _push(self, span: Span) -> None:
        if len(self._buffer) < self.capacity:
            self._buffer.append(span)
        else:
            self._buffer[self._head] = span
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def record(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        *,
        track: str = "cpu",
        pid: Optional[int] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a completed span from *start_ns* to *end_ns*."""
        if end_ns < start_ns:
            raise SimulationError(
                f"span {name!r} ends before it starts ({end_ns} < {start_ns})"
            )
        self._push(Span(name, start_ns, end_ns - start_ns, track, pid, args))

    def instant(
        self,
        name: str,
        ts_ns: int,
        *,
        track: str = "events",
        pid: Optional[int] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a zero-width marker at *ts_ns*."""
        self._push(Span(name, ts_ns, None, track, pid, args))

    @contextmanager
    def span(
        self,
        name: str,
        *,
        track: str = "cpu",
        pid: Optional[int] = None,
        args: Optional[dict] = None,
    ):
        """Context manager recording the virtual time spent inside.

        Requires :meth:`bind_clock`; nests freely (each exit records one
        span, so an inner block shows up inside its enclosing block in
        the exported trace).
        """
        if self._clock is None:
            raise SimulationError("span() needs bind_clock() first")
        start = self._clock()
        self._depth += 1
        try:
            yield self
        finally:
            self._depth -= 1
            self.record(name, start, self._clock(), track=track, pid=pid, args=args)

    @property
    def active_depth(self) -> int:
        """How many :meth:`span` context managers are currently open."""
        return self._depth

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Span]:
        if self._head == 0:
            return iter(list(self._buffer))
        return iter(self._buffer[self._head :] + self._buffer[: self._head])

    def of_name(self, name: str) -> list[Span]:
        """All spans with exactly this name, in recording order."""
        return [s for s in self if s.name == name]

    def of_prefix(self, prefix: str) -> list[Span]:
        """All spans whose name starts with *prefix*."""
        return [s for s in self if s.name.startswith(prefix)]

    def total_duration_ns(self, name: str) -> int:
        """Summed duration of every (non-instant) span named *name*."""
        return sum(s.dur_ns for s in self if s.name == name and s.dur_ns is not None)

    def names(self) -> list[str]:
        """Distinct span names, sorted."""
        return sorted({s.name for s in self})

    def durations_ns(self, name: str) -> list[int]:
        """Durations of every (non-instant) span named *name*."""
        return [s.dur_ns for s in self if s.name == name and s.dur_ns is not None]

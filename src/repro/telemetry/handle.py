"""The ``Telemetry`` handle: one object threaded through a run.

Bundles the three telemetry primitives — a
:class:`~repro.telemetry.registry.MetricRegistry`, a
:class:`~repro.telemetry.spans.SpanTracer`, and (by default) a
:class:`~repro.sim.eventlog.EventLog` — behind a single handle that
:class:`~repro.sim.simulator.Simulation` and the machine components
accept as an optional argument.  Attach one to get counters, latency
histograms, spans and the legacy event log from a single run::

    from repro.telemetry import Telemetry, export_chrome_trace

    telemetry = Telemetry()
    result = Simulation(config, batch, ITSPolicy(), telemetry=telemetry).run()
    export_chrome_trace(telemetry, "run.trace.json")
    print(telemetry.registry.render_report())

Detached (``telemetry=None``) is the zero-cost mode: every instrumented
site guards with a single ``None`` check, the same discipline the event
log has always used.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.telemetry.causal import CausalGraph
from repro.telemetry.ledger import TimeLedger
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BOUNDS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.telemetry.spans import SpanTracer

if TYPE_CHECKING:
    from repro.sim.eventlog import EventLog

_CORE_TRACKS = frozenset({"cpu", "its"})
"""Tracks that are core-local under SMP (``dma`` is a shared controller
and ``events`` is the run-wide marker lane; both stay unsplit)."""


class Telemetry:
    """Registry + span tracer + event log, under one optional handle.

    ``events=False`` drops the embedded event log (spans and metrics
    only); ``event_capacity``/``span_capacity`` bound memory use on long
    runs exactly like :class:`~repro.sim.eventlog.EventLog` does.
    ``ledger=True`` attaches a :class:`~repro.telemetry.ledger
    .TimeLedger` (every nanosecond attributed, conservation-audited at
    end of run); ``causal=True`` attaches a :class:`~repro.telemetry
    .causal.CausalGraph` (parent-linked fault lifecycles).  Both default
    off so an ordinary telemetry run's output is unchanged and the
    detached (``telemetry=None``) path stays zero-cost.
    """

    def __init__(
        self,
        *,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        events: bool = True,
        ledger: bool = False,
        causal: bool = False,
        event_capacity: int = 100_000,
        span_capacity: int = 1_000_000,
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer(span_capacity)
        self.ledger: Optional[TimeLedger] = TimeLedger() if ledger else None
        self.causal: Optional[CausalGraph] = CausalGraph() if causal else None
        self._core_of: Optional[Callable[[], int]] = None
        self.event_log: Optional["EventLog"] = None
        if events:
            # Imported lazily: the telemetry package must stay importable
            # without repro.sim (hot modules import repro.telemetry.registry
            # at module scope, and repro.sim imports those hot modules).
            from repro.sim.eventlog import EventLog

            self.event_log = EventLog(event_capacity)

    # -- clock binding -------------------------------------------------------

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Point the span tracer at the run's virtual clock."""
        self.tracer.bind_clock(clock)

    def bind_core(self, core_of: Callable[[], int]) -> None:
        """Attach the active-core reader (SMP runs only).

        Once bound, spans on core-local tracks are recorded on
        ``cpu.core{i}`` / ``its.core{i}`` so each core gets its own row
        (and tid) in the exported Chrome/Perfetto trace instead of all
        cores interleaving on one lane.
        """
        self._core_of = core_of

    def _resolve_track(self, track: str) -> str:
        if self._core_of is not None and track in _CORE_TRACKS:
            return f"{track}.core{self._core_of()}"
        return track

    # -- registry shortcuts --------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create a counter (see :class:`MetricRegistry`)."""
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge (see :class:`MetricRegistry`)."""
        return self.registry.gauge(name)

    def histogram(
        self, name: str, bounds: Sequence[int] = DEFAULT_LATENCY_BOUNDS_NS
    ) -> Histogram:
        """Get or create a histogram (see :class:`MetricRegistry`)."""
        return self.registry.histogram(name, bounds)

    # -- tracer shortcuts ----------------------------------------------------

    def record_span(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        *,
        track: str = "cpu",
        pid: Optional[int] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a completed span (see :meth:`SpanTracer.record`)."""
        self.tracer.record(
            name, start_ns, end_ns,
            track=self._resolve_track(track), pid=pid, args=args,
        )

    def instant(
        self,
        name: str,
        ts_ns: int,
        *,
        track: str = "events",
        pid: Optional[int] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a zero-width marker (see :meth:`SpanTracer.instant`)."""
        self.tracer.instant(
            name, ts_ns, track=self._resolve_track(track), pid=pid, args=args
        )

    def span(
        self,
        name: str,
        *,
        track: str = "cpu",
        pid: Optional[int] = None,
        args: Optional[dict] = None,
    ):
        """Nestable context manager on the virtual clock (see
        :meth:`SpanTracer.span`)."""
        return self.tracer.span(
            name, track=self._resolve_track(track), pid=pid, args=args
        )

    # -- event-log adapter ---------------------------------------------------

    def on_event(
        self,
        time_ns: int,
        kind: str,
        pid: Optional[int] = None,
        vpn: Optional[int] = None,
    ) -> None:
        """Mirror one simulator event into the registry and tracer.

        Called by :meth:`Simulation.log_event` *in addition to* the
        event-log write, so the legacy CSV/timeline surface and the
        telemetry surface stay consistent without double-recording.
        """
        self.registry.counter(f"events.{kind}").inc()
        args = None if vpn is None else {"vpn": vpn}
        self.tracer.instant(kind, time_ns, track="events", pid=pid, args=args)

"""First-class observability for the simulator.

The telemetry subsystem answers *where the virtual nanoseconds go*
inside a run: per-phase fault spans (selection -> checkpoint ->
prefetch walk -> runahead -> restore), fixed-bucket latency histograms
with p50/p95/p99, and event counters — exported as Chrome/Perfetto
``trace_event`` JSON, JSONL streams, or a plain-text stats report.

Three layers:

* :mod:`repro.telemetry.registry` — counters, gauges and histograms
  under hierarchical dotted names;
* :mod:`repro.telemetry.spans` — the span tracer on the virtual clock;
* :mod:`repro.telemetry.ledger` — the time-attribution ledger (every
  nanosecond on every core in exactly one of eight categories, with a
  conservation audit);
* :mod:`repro.telemetry.causal` — the causal event graph (parent-linked
  fault lifecycles, critical-path and steal-payoff analysis);
* :mod:`repro.telemetry.exporters` — the output formats.

:class:`Telemetry` bundles all three (plus the legacy
:class:`~repro.sim.eventlog.EventLog`, which it routes through so
existing timeline tooling keeps working) behind the single optional
handle that ``Simulation(..., telemetry=...)`` threads through every
instrumented component.  See ``docs/TELEMETRY.md`` for the span naming
convention and a Perfetto walkthrough.
"""

from repro.telemetry.causal import CausalGraph, CausalNode, render_path_report
from repro.telemetry.exporters import (
    chrome_trace_dict,
    export_chrome_trace,
    export_jsonl,
    render_span_table,
    render_stats_report,
    span_latency_rows,
)
from repro.telemetry.handle import Telemetry
from repro.telemetry.ledger import CATEGORIES as LEDGER_CATEGORIES
from repro.telemetry.ledger import TimeLedger
from repro.telemetry.registry import (
    DEFAULT_COUNT_BOUNDS,
    DEFAULT_LATENCY_BOUNDS_NS,
    PERCENT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.telemetry.spans import Span, SpanTracer

__all__ = [
    "Telemetry",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BOUNDS_NS",
    "DEFAULT_COUNT_BOUNDS",
    "PERCENT_BOUNDS",
    "Span",
    "SpanTracer",
    "TimeLedger",
    "LEDGER_CATEGORIES",
    "CausalGraph",
    "CausalNode",
    "render_path_report",
    "chrome_trace_dict",
    "export_chrome_trace",
    "export_jsonl",
    "render_span_table",
    "render_stats_report",
    "span_latency_rows",
]

"""Hierarchical counter/gauge/histogram registry.

Metric names are dotted paths (``fault.window_ns``,
``its.prefetch.distance_pages``); the registry hands out one instrument
per name and renders them grouped by prefix.  Histograms use **fixed
buckets** (a 1-2-5 geometric ladder by default) so a million
observations cost one list index each and the registry never grows with
the run length; percentiles are estimated by linear interpolation inside
the owning bucket and clamped to the exact observed min/max.

Instruments are deliberately tiny: a site that holds a reference pays an
attribute load and an integer add per event, which is what lets the
simulator keep them on hot paths behind a single ``None`` check.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional, Sequence

from repro.common.errors import SimulationError


def _one_two_five(lo: int, hi: int) -> tuple[int, ...]:
    """The 1-2-5 geometric ladder covering [lo, hi]."""
    bounds: list[int] = []
    decade = 1
    while decade <= hi:
        for mult in (1, 2, 5):
            value = mult * decade
            if lo <= value <= hi:
                bounds.append(value)
        decade *= 10
    return tuple(bounds)


DEFAULT_LATENCY_BOUNDS_NS = _one_two_five(100, 10_000_000_000)
"""Default histogram bucket upper bounds for nanosecond latencies
(100 ns .. 10 s)."""

DEFAULT_COUNT_BOUNDS = _one_two_five(1, 1_000_000)
"""Default bucket upper bounds for per-event counts (instructions,
pages, entries)."""

PERCENT_BOUNDS = tuple(range(5, 101, 5))
"""Linear 5%-wide buckets for ratio metrics expressed in percent."""


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram with min/max/sum tracking.

    ``bounds`` are the inclusive upper edges of the finite buckets, in
    ascending order; one implicit overflow bucket catches everything
    above the last edge.  ``percentile`` interpolates linearly within
    the bucket that holds the requested rank, using the exact observed
    ``min``/``max`` to tighten the first, last and overflow buckets.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, bounds: Sequence[int] = DEFAULT_LATENCY_BOUNDS_NS
    ) -> None:
        if not bounds:
            raise SimulationError(f"histogram {name!r} needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise SimulationError(f"histogram {name!r} bounds must strictly ascend")
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated value at percentile *p* (0..100).

        Returns 0.0 for an empty histogram.  Exact for the extremes
        (p=0 -> min, p=100 -> max); interior percentiles interpolate
        within the owning bucket.
        """
        if not 0 <= p <= 100:
            raise SimulationError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        rank = p / 100 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count < rank:
                cumulative += bucket_count
                continue
            # The rank lands in this bucket: interpolate across it.
            lo = self.bounds[index - 1] if index > 0 else self.min
            hi = self.bounds[index] if index < len(self.bounds) else self.max
            lo = max(lo, self.min)
            hi = min(hi, self.max)
            if hi <= lo:
                return float(lo)
            fraction = (rank - cumulative) / bucket_count
            return lo + fraction * (hi - lo)
        return float(self.max)

    def snapshot(self) -> dict:
        """Summary dict: count, sum, mean, min/max and key percentiles."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricRegistry:
    """Name-keyed store of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call for a name fixes the instrument kind (and, for histograms, the
    buckets); later calls return the same object, and asking for the
    same name with a different kind raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise SimulationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter called *name*."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called *name*."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Sequence[int] = DEFAULT_LATENCY_BOUNDS_NS
    ) -> Histogram:
        """Get or create the histogram called *name* (first caller's
        *bounds* win)."""
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._instruments[k] for k in sorted(self._instruments))

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Counter | Gauge | Histogram]:
        """The instrument called *name*, or ``None``."""
        return self._instruments.get(name)

    def snapshot(self) -> dict:
        """Plain-dict dump of every instrument, keyed by name."""
        out: dict[str, object] = {}
        for instrument in self:
            if isinstance(instrument, Histogram):
                out[instrument.name] = instrument.snapshot()
            else:
                out[instrument.name] = instrument.value
        return out

    @staticmethod
    def _render_instruments(
        instruments: Sequence["Counter | Gauge | Histogram"],
    ) -> list[str]:
        """Render a group of instruments: scalars block, then the
        histogram table.  Sorted by name within each block."""
        counters_gauges = [
            i for i in instruments if isinstance(i, (Counter, Gauge))
        ]
        histograms = [i for i in instruments if isinstance(i, Histogram)]
        lines: list[str] = []
        if counters_gauges:
            lines.append("scalars:")
            width = max(len(i.name) for i in counters_gauges)
            for inst in sorted(counters_gauges, key=lambda i: i.name):
                value = inst.value
                rendered = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"  {inst.name:<{width}}  {rendered}")
        if histograms:
            if lines:
                lines.append("")
            lines.append("histograms:")
            width = max(len(h.name) for h in histograms)
            header = (
                f"  {'name':<{width}}  {'count':>8} {'mean':>12} "
                f"{'p50':>12} {'p95':>12} {'p99':>12} {'max':>12}"
            )
            lines.append(header)
            for hist in sorted(histograms, key=lambda h: h.name):
                lines.append(
                    f"  {hist.name:<{width}}  {hist.count:>8} {hist.mean:>12.1f} "
                    f"{hist.percentile(50):>12.1f} {hist.percentile(95):>12.1f} "
                    f"{hist.percentile(99):>12.1f} {(hist.max or 0):>12.1f}"
                )
        return lines

    def render_report(self) -> str:
        """Human-readable text report: all instruments, sorted by name."""
        lines = self._render_instruments(list(self))
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def render_section_report(self) -> str:
        """Like :meth:`render_report`, but grouped into sections by the
        top-level dotted prefix (``fault.*``, ``its.*``, ``adaptive.*``,
        ``cores.*``, ...), each section sorted internally.  The section
        order and every line within it are deterministic, so reports
        from identical runs diff clean."""
        sections: dict[str, list[Counter | Gauge | Histogram]] = {}
        for instrument in self:
            prefix = instrument.name.split(".", 1)[0]
            sections.setdefault(prefix, []).append(instrument)
        if not sections:
            return "(no metrics recorded)"
        lines: list[str] = []
        for prefix in sorted(sections):
            if lines:
                lines.append("")
            lines.append(f"[{prefix}]")
            lines.extend(self._render_instruments(sections[prefix]))
        return "\n".join(lines)

"""Telemetry exporters: Chrome/Perfetto trace JSON, JSONL, plain text.

Three consumers, three formats:

* :func:`export_chrome_trace` writes the Chrome ``trace_event`` JSON
  object format — load it at https://ui.perfetto.dev (or
  ``chrome://tracing``) to scrub through a run's fault phases on the
  virtual timeline.  Spans become complete (``"ph": "X"``) events with
  microsecond ``ts``/``dur``; instants become ``"ph": "i"`` markers;
  tracks become named threads.
* :func:`export_jsonl` streams one JSON object per line (spans, then
  instants, then a final metrics snapshot) for ad-hoc ``jq``/pandas
  processing.
* :func:`render_stats_report` renders the registry plus a per-span-name
  latency table (count, total, p50/p95/p99) as aligned plain text — the
  ``repro stats`` output.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, TYPE_CHECKING

from repro.telemetry.spans import Span, SpanTracer

if TYPE_CHECKING:
    from repro.telemetry.handle import Telemetry


def _track_ids(spans: Sequence[Span]) -> dict[str, int]:
    """Stable track-name -> tid mapping (first-seen order)."""
    ids: dict[str, int] = {}
    for span in spans:
        if span.track not in ids:
            ids[span.track] = len(ids)
    return ids


def chrome_trace_dict(
    telemetry: "Telemetry", *, process_name: str = "repro-sim"
) -> dict:
    """Build the Chrome ``trace_event`` JSON object for a run.

    ``ts``/``dur`` are microseconds (floats), per the trace-event spec;
    virtual nanoseconds survive exactly in ``args.start_ns``/
    ``args.dur_ns``.
    """
    spans = list(telemetry.tracer)
    tracks = _track_ids(spans)
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track, tid in tracks.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": 0,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    for span in spans:
        args: dict = {"start_ns": span.start_ns}
        if span.pid is not None:
            args["sim_pid"] = span.pid
        if span.args:
            args.update(span.args)
        entry: dict = {
            "name": span.name,
            "cat": span.track,
            "pid": 0,
            "tid": tracks[span.track],
            "ts": span.start_ns / 1000,
            "args": args,
        }
        if span.is_instant:
            entry["ph"] = "i"
            entry["s"] = "t"
        else:
            entry["ph"] = "X"
            entry["dur"] = span.dur_ns / 1000
            args["dur_ns"] = span.dur_ns
        events.append(entry)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "spans": len(spans),
            "spans_dropped": telemetry.tracer.dropped,
            "metrics": telemetry.registry.snapshot(),
        },
    }


def export_chrome_trace(
    telemetry: "Telemetry",
    path: str | Path,
    *,
    process_name: str = "repro-sim",
) -> Path:
    """Write the Chrome/Perfetto trace JSON to *path*; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as f:
        json.dump(chrome_trace_dict(telemetry, process_name=process_name), f)
    return path


def export_jsonl(telemetry: "Telemetry", path: str | Path) -> Path:
    """Write spans, instants and a metrics snapshot as JSON lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as f:
        for span in telemetry.tracer:
            record: dict = {
                "type": "instant" if span.is_instant else "span",
                "name": span.name,
                "track": span.track,
                "start_ns": span.start_ns,
            }
            if not span.is_instant:
                record["dur_ns"] = span.dur_ns
            if span.pid is not None:
                record["pid"] = span.pid
            if span.args:
                record["args"] = span.args
            f.write(json.dumps(record) + "\n")
        f.write(
            json.dumps({"type": "metrics", "metrics": telemetry.registry.snapshot()})
            + "\n"
        )
    return path


def _exact_percentile(sorted_values: Sequence[int], p: float) -> float:
    """Exact percentile over a sorted sample (nearest-rank with
    interpolation)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = p / 100 * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    fraction = rank - lo
    return sorted_values[lo] + fraction * (sorted_values[hi] - sorted_values[lo])


def span_latency_rows(
    tracer: SpanTracer, names: Optional[Sequence[str]] = None
) -> list[dict]:
    """Per-span-name latency summary rows (count, total, percentiles).

    Percentiles here are *exact* (computed over the retained span
    durations), unlike the bucketed estimates of
    :class:`~repro.telemetry.registry.Histogram`.
    """
    if names is None:
        names = [
            name
            for name in tracer.names()
            if any(s.dur_ns is not None for s in tracer.of_name(name))
        ]
    rows = []
    for name in names:
        durations = sorted(tracer.durations_ns(name))
        if not durations:
            continue
        rows.append(
            {
                "name": name,
                "count": len(durations),
                "total_ns": sum(durations),
                "mean_ns": sum(durations) / len(durations),
                "p50_ns": _exact_percentile(durations, 50),
                "p95_ns": _exact_percentile(durations, 95),
                "p99_ns": _exact_percentile(durations, 99),
                "max_ns": durations[-1],
            }
        )
    return rows


def render_span_table(
    tracer: SpanTracer, names: Optional[Sequence[str]] = None
) -> str:
    """Aligned text table of :func:`span_latency_rows`."""
    rows = span_latency_rows(tracer, names)
    if not rows:
        return "(no spans recorded)"
    width = max(len(r["name"]) for r in rows)
    lines = [
        f"{'span':<{width}}  {'count':>8} {'total_ns':>14} {'mean_ns':>12} "
        f"{'p50_ns':>12} {'p95_ns':>12} {'p99_ns':>12} {'max_ns':>12}"
    ]
    for r in rows:
        lines.append(
            f"{r['name']:<{width}}  {r['count']:>8} {r['total_ns']:>14} "
            f"{r['mean_ns']:>12.1f} {r['p50_ns']:>12.1f} {r['p95_ns']:>12.1f} "
            f"{r['p99_ns']:>12.1f} {r['max_ns']:>12}"
        )
    return "\n".join(lines)


def render_stats_report(telemetry: "Telemetry", *, title: str = "telemetry") -> str:
    """The full plain-text stats report: spans table + metric registry."""
    parts = [f"== {title} =="]
    parts.append("")
    parts.append("span latency (virtual ns):")
    parts.append(render_span_table(telemetry.tracer))
    parts.append("")
    parts.append(telemetry.registry.render_section_report())
    if telemetry.tracer.dropped:
        parts.append("")
        parts.append(
            f"note: {telemetry.tracer.dropped} oldest spans were dropped "
            f"(capacity {telemetry.tracer.capacity})"
        )
    return "\n".join(parts)

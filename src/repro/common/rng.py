"""Deterministic random number generation.

Every stochastic component (trace synthesis, priority assignment) draws
from a :class:`DeterministicRNG` seeded explicitly, so a simulation is
reproducible bit-for-bit from its configuration.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A seeded random source with the handful of draws the library needs.

    Thin wrapper over :class:`random.Random` that (a) forces an explicit
    seed and (b) offers domain helpers such as Zipf sampling that the
    standard library lacks.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, salt: int) -> "DeterministicRNG":
        """Derive an independent child generator.

        Child streams are decorrelated by mixing *salt* into the seed;
        forking lets each workload generator own a private stream so that
        adding a workload does not perturb the others.
        """
        return DeterministicRNG((self._seed * 1_000_003 + salt) & 0x7FFF_FFFF_FFFF_FFFF)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        return self._random.choice(items)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle *items* in place."""
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Choose *k* distinct elements."""
        return self._random.sample(items, k)

    def zipf(self, n: int, alpha: float = 1.0) -> int:
        """Sample an index in ``[0, n)`` under a Zipf(alpha) law.

        Rank 0 is the most popular.  Inverse-CDF sampling over the
        truncated harmonic weights; O(log n) per draw after an O(n)
        cached table build per (n, alpha).
        """
        table = self._zipf_table(n, alpha)
        u = self._random.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if table[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal draw with mean *mu* and standard deviation *sigma*."""
        return self._random.gauss(mu, sigma)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Lognormal draw: ``exp(N(mu, sigma))``.

        Used by the fault layer's latency-multiplier distributions; with
        ``mu = -sigma**2 / 2`` the mean of the multiplier is exactly 1,
        so tails stretch without shifting the average latency.
        """
        return self._random.lognormvariate(mu, sigma)

    def geometric(self, p: float) -> int:
        """Number of failures before the first success, ``p`` in (0, 1]."""
        if not 0 < p <= 1:
            raise ValueError("geometric parameter must be in (0, 1]")
        count = 0
        while self._random.random() >= p:
            count += 1
        return count

    def _zipf_table(self, n: int, alpha: float) -> list[float]:
        key = (n, alpha)
        cache = getattr(self, "_zipf_cache", None)
        if cache is None:
            cache = {}
            self._zipf_cache = cache
        if key not in cache:
            weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
            total = sum(weights)
            cumulative = []
            acc = 0.0
            for w in weights:
                acc += w / total
                cumulative.append(acc)
            cumulative[-1] = 1.0
            cache[key] = cumulative
        return cache[key]

"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class TraceError(ReproError):
    """A trace file or trace record is malformed."""


class AddressError(ReproError):
    """A virtual or physical address is out of range or misaligned."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This indicates a bug in a policy or in the simulator itself, never a
    user input problem; user input problems raise :class:`ConfigError` or
    :class:`TraceError` before simulation starts.
    """

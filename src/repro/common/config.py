"""Validated configuration dataclasses for the simulated machine.

The paper's evaluation platform (Section 4.1) is captured by
:meth:`MachineConfig.paper`; the default constructor produces a
proportionally scaled-down machine that regenerates every figure in seconds
on a laptop.  All times are nanoseconds, all sizes bytes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import ConfigError
from repro.common.units import GIB, KIB, MIB, MS, PAGE_SIZE, US


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigError` with *message* unless *condition* holds."""
    if not condition:
        raise ConfigError(message)


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of a set-associative cache.

    The paper simulates a 16-way, 8 MiB last-level cache with 64-byte
    lines; half of its capacity is reconfigured as the pre-execute cache
    for Sync_Runahead and ITS.
    """

    size_bytes: int = 1 * MIB
    ways: int = 16
    line_size: int = 64
    hit_latency_ns: int = 20

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.ways > 0, "cache associativity must be positive")
        _require(_is_power_of_two(self.line_size), "cache line size must be a power of two")
        _require(self.hit_latency_ns >= 0, "cache hit latency must be non-negative")
        _require(
            self.size_bytes % (self.ways * self.line_size) == 0,
            "cache size must be a multiple of ways * line_size",
        )
        _require(
            _is_power_of_two(self.num_sets),
            "number of cache sets must be a power of two",
        )

    @property
    def num_sets(self) -> int:
        """Number of sets (size / (ways * line_size))."""
        return self.size_bytes // (self.ways * self.line_size)

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_size

    def halved(self) -> "CacheConfig":
        """Return the same cache with half the capacity.

        Used to carve the pre-execute cache out of the LLC (the paper
        dedicates half of the 8 MiB LLC to pre-execution under
        Sync_Runahead and ITS).
        """
        return dataclasses.replace(self, size_bytes=self.size_bytes // 2)


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of the translation look-aside buffer."""

    entries: int = 64
    hit_latency_ns: int = 1
    miss_walk_latency_ns: int = 100
    flush_on_switch: bool = True
    """Flush the TLB on every context switch.  Setting this False models
    ASID/PCID-tagged TLBs, which avoid the flush (translations are still
    shot down individually when pages are evicted)."""

    def __post_init__(self) -> None:
        _require(self.entries > 0, "TLB must have at least one entry")
        _require(self.hit_latency_ns >= 0, "TLB hit latency must be non-negative")
        _require(self.miss_walk_latency_ns >= 0, "TLB walk latency must be non-negative")


@dataclass(frozen=True)
class DeviceConfig:
    """An Ultra-Low-Latency storage device (e.g. Samsung Z-NAND).

    ``access_latency_ns`` is the device-internal latency of one page-sized
    read; ``channels`` models internal parallelism exploited by the DMA
    prefetcher ("Leveraging the substantial parallelism offered by SSDs").
    """

    access_latency_ns: int = 3 * US
    channels: int = 8
    capacity_bytes: int = 4 * GIB

    def __post_init__(self) -> None:
        _require(self.access_latency_ns > 0, "device latency must be positive")
        _require(self.channels > 0, "device must have at least one channel")
        _require(self.capacity_bytes >= PAGE_SIZE, "device must hold at least one page")


@dataclass(frozen=True)
class PCIeConfig:
    """The host interface between DRAM and the ULL device.

    The paper simulates a 4-lane PCIe 5.x link with ~3.983 GB/s per lane.
    """

    lanes: int = 4
    bandwidth_per_lane_bytes_per_sec: float = 3.983e9

    def __post_init__(self) -> None:
        _require(self.lanes > 0, "PCIe link needs at least one lane")
        _require(self.bandwidth_per_lane_bytes_per_sec > 0, "PCIe lane bandwidth must be positive")

    @property
    def total_bandwidth_bytes_per_sec(self) -> float:
        """Aggregate link bandwidth across all lanes."""
        return self.lanes * self.bandwidth_per_lane_bytes_per_sec

    def transfer_time_ns(self, n_bytes: int) -> int:
        """Time to move *n_bytes* across the link, in nanoseconds."""
        _require(n_bytes >= 0, "transfer size must be non-negative")
        return round(n_bytes / self.total_bandwidth_bytes_per_sec * 1e9)


@dataclass(frozen=True)
class MemoryConfig:
    """DRAM sizing and timing.

    ``dram_frames`` bounds the global frame pool; the paper sizes DRAM to
    the working set so that the combined footprints of a batch exceed it
    and page replacement is exercised.
    """

    dram_frames: int = 448
    dram_latency_ns: int = 50
    page_size: int = PAGE_SIZE
    writeback_dirty: bool = True
    """Write dirty pages back to the device on eviction (occupying a
    device channel and PCIe bandwidth)."""

    def __post_init__(self) -> None:
        _require(self.dram_frames > 0, "DRAM must have at least one frame")
        _require(self.dram_latency_ns >= 0, "DRAM latency must be non-negative")
        _require(_is_power_of_two(self.page_size), "page size must be a power of two")
        _require(self.page_size >= 512, "page size must be at least 512 bytes")

    @property
    def dram_bytes(self) -> int:
        """Total DRAM capacity in bytes."""
        return self.dram_frames * self.page_size


@dataclass(frozen=True)
class SchedulerConfig:
    """SCHED_RR parameters.

    The paper follows the Linux NICE mechanism: the highest-priority
    process receives an 800 ms time slice, the lowest 5 ms, interpolated
    in between.  ``context_switch_ns`` is the measured 7 us switch cost.
    """

    max_time_slice_ns: int = 800 * MS
    min_time_slice_ns: int = 5 * MS
    context_switch_ns: int = 7 * US
    priority_levels: int = 40
    switch_pollution_fraction: float = 0.3

    def __post_init__(self) -> None:
        _require(self.min_time_slice_ns > 0, "minimum time slice must be positive")
        _require(
            self.max_time_slice_ns >= self.min_time_slice_ns,
            "maximum time slice must be >= minimum time slice",
        )
        _require(self.context_switch_ns >= 0, "context switch cost must be non-negative")
        _require(self.priority_levels >= 2, "need at least two priority levels")
        _require(
            0.0 <= self.switch_pollution_fraction <= 1.0,
            "switch pollution fraction must lie in [0, 1]",
        )

    def time_slice_ns(self, priority: int) -> int:
        """Map a priority in ``[0, priority_levels)`` to a time slice.

        Linux RT convention: a *larger* priority value means a more
        important process.  The most important level gets the 800 ms
        slice, the least important the 5 ms slice, with the NICE table's
        monotone mapping approximated linearly in between.
        """
        _require(
            0 <= priority < self.priority_levels,
            f"priority {priority} outside [0, {self.priority_levels})",
        )
        span = self.max_time_slice_ns - self.min_time_slice_ns
        frac = priority / (self.priority_levels - 1)
        return round(self.min_time_slice_ns + frac * span)


@dataclass(frozen=True)
class ITSConfig:
    """Tunables of the Idle-Time-Stealing design itself."""

    prefetch_degree: int = 8
    """Candidate pages the VA-based prefetcher gathers per fault (*n*).

    Note: *which* ITS components run (prefetch / pre-execute /
    self-sacrifice) is chosen on the :class:`~repro.core.its.ITSPolicy`
    constructor, since it also determines machine assembly (the
    pre-execute cache carve-out); this config holds the components'
    tunables only.
    """

    kernel_entry_ns: int = 300
    """Transition cost from the fault handler into an ITS kernel thread
    (hundreds of nanoseconds: the design stays in kernel space)."""

    preexec_instr_ns: int = 2
    """Virtual cost of pre-executing one instruction (used to bound the
    pre-execute window to the remaining busy-wait time)."""

    preexec_max_instructions: int = 1024
    """Hard cap on instructions per pre-execute episode: warming too far
    ahead self-pollutes the (halved) LLC faster than it helps."""

    def __post_init__(self) -> None:
        _require(self.prefetch_degree >= 0, "prefetch degree must be non-negative")
        _require(self.kernel_entry_ns >= 0, "kernel entry cost must be non-negative")
        _require(self.preexec_instr_ns > 0, "pre-execute instruction cost must be positive")
        _require(
            self.preexec_max_instructions > 0,
            "pre-execute episode cap must be positive",
        )


_LATENCY_MODELS = ("fixed", "lognormal", "bimodal", "table")
"""Read-latency distribution families understood by :mod:`repro.faults`."""


@dataclass(frozen=True)
class FaultConfig:
    """Device-variability and failure-injection model (see docs/FAULTS.md).

    The default instance (``enabled=False``) is the idealised legacy
    device: fixed latencies, infallible DMA.  It deliberately serialises
    to *nothing* in :meth:`MachineConfig.to_dict`, so configurations
    that never enable faults keep their historical sweep-cache keys and
    bit-identical results.

    All stochastic draws flow from ``seed`` through one
    :class:`~repro.common.rng.DeterministicRNG`, so a fault sequence is
    reproducible from the config alone.
    """

    enabled: bool = False
    profile: str = "none"
    """Name of the profile this config was built from (informational)."""

    seed: int = 0xFA017
    """Seed of the injector's private RNG stream."""

    # -- latency variability ------------------------------------------------
    read_latency_model: str = "fixed"
    """One of ``fixed`` / ``lognormal`` / ``bimodal`` / ``table``; the
    sampled value replaces ``DeviceConfig.access_latency_ns`` per op."""
    lognormal_sigma: float = 0.0
    """Shape of the lognormal multiplier (mean multiplier is always 1)."""
    bimodal_slow_prob: float = 0.0
    """Probability a read takes the device's slow path."""
    bimodal_slow_multiplier: float = 1.0
    """Latency multiplier of the slow path (>= 1)."""
    table_percentiles: tuple = ()
    """``((cum_prob, multiplier), ...)`` step CDF, cum_probs ascending
    and ending at 1.0 — e.g. a measured P50/P99/P99.9 read-tail table."""
    pcie_jitter_ns: int = 0
    """Uniform [0, jitter] ns added to every PCIe transfer."""

    # -- injectable error outcomes ------------------------------------------
    crc_error_prob: float = 0.0
    """Per-read probability the transfer arrives corrupted (DMA CRC)."""
    timeout_prob: float = 0.0
    """Per-read probability the device stalls past the watchdog."""
    drop_completion_prob: float = 0.0
    """Per-read probability the completion interrupt is lost."""
    timeout_ns: int = 50_000
    """Watchdog deadline: stalls and dropped completions are detected
    this long after submission."""

    # -- retry / fallback ---------------------------------------------------
    max_retries: int = 3
    """Re-submissions after a failed attempt before falling back."""
    retry_backoff_ns: int = 2_000
    """Backoff before the first retry; grows by ``backoff_multiplier``."""
    backoff_multiplier: float = 2.0
    """Exponential backoff growth factor between retries."""
    fallback_penalty_ns: int = 100_000
    """Cost of the slow recovery path taken when retries are exhausted."""

    # -- graceful degradation (ITS) -----------------------------------------
    demote_after_ns: int = 0
    """Steal-window deadline: an ITS busy-wait predicted or observed to
    outlast this is abandoned (state restored) and the request demoted
    to the asynchronous baseline path.  0 disables demotion."""

    def __post_init__(self) -> None:
        _require(
            self.read_latency_model in _LATENCY_MODELS,
            f"unknown read latency model {self.read_latency_model!r}; "
            f"known: {', '.join(_LATENCY_MODELS)}",
        )
        _require(self.lognormal_sigma >= 0.0, "lognormal sigma must be non-negative")
        _require(
            0.0 <= self.bimodal_slow_prob <= 1.0,
            "bimodal slow-path probability must lie in [0, 1]",
        )
        _require(
            self.bimodal_slow_multiplier >= 1.0,
            "bimodal slow-path multiplier must be >= 1",
        )
        for prob, name in (
            (self.crc_error_prob, "CRC error"),
            (self.timeout_prob, "timeout"),
            (self.drop_completion_prob, "dropped completion"),
        ):
            _require(0.0 <= prob <= 1.0, f"{name} probability must lie in [0, 1]")
        _require(
            self.crc_error_prob + self.timeout_prob + self.drop_completion_prob <= 1.0,
            "error probabilities must sum to at most 1",
        )
        if self.read_latency_model == "table":
            _require(bool(self.table_percentiles), "percentile table must be non-empty")
            last = 0.0
            for entry in self.table_percentiles:
                _require(
                    len(entry) == 2,
                    "percentile table entries must be (cum_prob, multiplier) pairs",
                )
                cum, mult = entry
                _require(cum > last, "percentile table cum_probs must ascend")
                _require(mult > 0.0, "percentile table multipliers must be positive")
                last = float(cum)
            _require(last == 1.0, "percentile table must end at cum_prob 1.0")
        _require(self.pcie_jitter_ns >= 0, "PCIe jitter must be non-negative")
        _require(self.timeout_ns > 0, "watchdog timeout must be positive")
        _require(self.max_retries >= 0, "retry count must be non-negative")
        _require(self.retry_backoff_ns >= 0, "retry backoff must be non-negative")
        _require(self.backoff_multiplier >= 1.0, "backoff multiplier must be >= 1")
        _require(self.fallback_penalty_ns >= 0, "fallback penalty must be non-negative")
        _require(self.demote_after_ns >= 0, "demotion deadline must be non-negative")

    @property
    def error_prob(self) -> float:
        """Total per-read probability of any injected error outcome."""
        return self.crc_error_prob + self.timeout_prob + self.drop_completion_prob

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "FaultConfig":
        """Reconstruct from :meth:`MachineConfig.to_dict` output.

        ``None`` (the key was omitted, i.e. a legacy or fault-free
        config) yields the disabled default.  JSON round-trips turn the
        percentile-table tuples into lists; they are normalised back.
        """
        if data is None:
            return cls()
        try:
            data = dict(data)
            data["table_percentiles"] = tuple(
                (float(cum), float(mult))
                for cum, mult in data.get("table_percentiles", ())
            )
            return cls(**data)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed FaultConfig dict: {exc}") from exc


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tunables of the adaptive I/O-mode controller (docs/ADAPTIVE.md).

    The default instance (``enabled=False``) deliberately serialises to
    *nothing* in :meth:`MachineConfig.to_dict`: configurations that never
    touch the adaptive layer keep their historical sweep-cache keys and
    bit-identical results, exactly like :class:`FaultConfig`.

    The controller itself is installed by choosing the ``Adaptive`` I/O
    policy; this block only carries its parameters.  ``enabled=True``
    marks a deliberately configured block (and makes it serialise), but
    the :class:`~repro.adaptive.AdaptivePolicy` reads the parameters
    either way, so ``--policy adaptive`` works on a stock config.
    """

    enabled: bool = False

    # -- online latency estimation ------------------------------------------
    ewma_alpha: float = 0.2
    """Weight of the newest observation in the EWMA mean estimator."""
    quantile_window: int = 128
    """Observations kept by the sliding-window histogram (per device)."""
    warmup_faults: int = 16
    """Confidence gate: observed read completions required before the
    cost model is trusted; a cold controller falls back to plain ITS."""
    tail_weight: float = 0.3
    """Risk blend of the expected-wait estimate: ``(1 - w) * p50 +
    w * p95``.  0 trusts the median, 1 plans for the tail."""

    # -- hysteresis ---------------------------------------------------------
    min_dwell_faults: int = 8
    """Faults a process must spend in its current mode before the
    controller may switch it again (mode flapping guard)."""
    switch_margin: float = 0.1
    """Relative cost advantage a challenger mode needs over the
    incumbent before a switch is worth the transient."""

    # -- cost model ---------------------------------------------------------
    demotion_penalty_ns: int = 10_000
    """Cost of demoting a fault to the asynchronous path beyond the two
    context switches themselves: cache/TLB pollution on return and the
    fine-grained interleaving it invites (Figure 4's thrash)."""

    def __post_init__(self) -> None:
        _require(0.0 < self.ewma_alpha <= 1.0, "EWMA alpha must lie in (0, 1]")
        _require(self.quantile_window >= 8, "quantile window must hold at least 8 samples")
        _require(self.warmup_faults >= 0, "warmup fault count must be non-negative")
        _require(0.0 <= self.tail_weight <= 1.0, "tail weight must lie in [0, 1]")
        _require(self.min_dwell_faults >= 0, "minimum dwell must be non-negative")
        _require(0.0 <= self.switch_margin < 1.0, "switch margin must lie in [0, 1)")
        _require(self.demotion_penalty_ns >= 0, "demotion penalty must be non-negative")

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "AdaptiveConfig":
        """Reconstruct from :meth:`MachineConfig.to_dict` output.

        ``None`` (the key was omitted, i.e. a legacy or non-adaptive
        config) yields the disabled default.
        """
        if data is None:
            return cls()
        try:
            return cls(**data)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed AdaptiveConfig dict: {exc}") from exc


ARRIVAL_PROCESSES = ("poisson", "mmpp", "diurnal", "trace")
"""Arrival-process families understood by :mod:`repro.serving`."""

ADMISSION_POLICIES = ("admit_all", "drop", "defer", "demote")
"""Admission/load-shedding policies understood by :mod:`repro.serving`."""


@dataclass(frozen=True)
class ServingConfig:
    """Open-loop serving workload: request arrivals, SLOs, admission
    (docs/SERVING.md).

    The default instance (``enabled=False``) is the closed-loop legacy
    mode — the whole batch is admitted at t=0 and runs to completion.
    It deliberately serialises to *nothing* in
    :meth:`MachineConfig.to_dict`, so configurations that never enable
    serving keep their historical sweep-cache keys and bit-identical
    results, exactly like :class:`FaultConfig`, :class:`AdaptiveConfig`
    and :class:`CoreConfig`.

    All stochastic draws (arrival times, per-request workload mix and
    priorities) flow from ``seed`` mixed with the cell seed through
    :class:`~repro.common.rng.DeterministicRNG`, so a request schedule
    is reproducible from the config alone.
    """

    enabled: bool = False

    # -- arrival process ------------------------------------------------------
    arrival: str = "poisson"
    """One of ``poisson`` / ``mmpp`` / ``diurnal`` / ``trace``."""
    rate_per_s: float = 400.0
    """Offered load: mean request arrival rate (requests per second of
    virtual time).  For ``diurnal`` this is the mid-line of the cycle;
    for ``mmpp`` the quiet-state rate."""
    duration_ms: float = 40.0
    """Length of the arrival window; requests arrive in
    ``[0, duration)`` and the run ends when the last admitted request
    completes."""
    seed: int = 0x5E12
    """Seed of the serving layer's private RNG stream (mixed with the
    cell seed, so sweeps over seeds re-draw the schedule)."""

    # -- SLO ------------------------------------------------------------------
    slo_ms: float = 20.0
    """Per-request latency target (arrival to finish)."""
    slo_percentile: float = 0.99
    """The SLO is met when this fraction of requests land within the
    target (dropped requests always count against it)."""

    # -- admission / load shedding -------------------------------------------
    admission: str = "admit_all"
    """One of ``admit_all`` / ``drop`` / ``defer`` / ``demote``; the
    shedding policies act when in-system requests reach ``queue_cap``."""
    queue_cap: int = 0
    """In-system request bound consulted by the shedding policies
    (required >= 1 for ``drop`` / ``defer`` / ``demote``)."""
    defer_ns: int = 200_000
    """Retry delay of a deferred arrival (the request re-attempts
    admission this much later, keeping its original arrival stamp)."""

    # -- mmpp (2-state Markov-modulated Poisson) ------------------------------
    burst_multiplier: float = 4.0
    """Burst-state rate as a multiple of ``rate_per_s``."""
    mean_dwell_ms: float = 10.0
    """Mean dwell time in the quiet state (exponential)."""
    mean_burst_ms: float = 2.0
    """Mean dwell time in the burst state (exponential)."""

    # -- diurnal (sinusoidal rate schedule) -----------------------------------
    amplitude: float = 0.8
    """Peak rate modulation depth in [0, 1): rate swings between
    ``rate * (1 - amplitude)`` and ``rate * (1 + amplitude)``."""
    period_ms: float = 0.0
    """Cycle length; 0 stretches one full cycle across the duration."""

    # -- trace replay ---------------------------------------------------------
    arrivals_ns: tuple = ()
    """Explicit arrival timestamps (ns, ascending) replayed verbatim
    when ``arrival == "trace"``; timestamps at or past the duration are
    ignored.  Inlined (not a file path) so cache keys stay
    content-addressed."""

    def __post_init__(self) -> None:
        _require(
            self.arrival in ARRIVAL_PROCESSES,
            f"unknown arrival process {self.arrival!r}; "
            f"known: {', '.join(ARRIVAL_PROCESSES)}",
        )
        _require(self.rate_per_s > 0, "arrival rate must be positive")
        _require(self.duration_ms > 0, "serving duration must be positive")
        _require(self.slo_ms > 0, "SLO latency target must be positive")
        _require(
            0.0 < self.slo_percentile <= 1.0,
            "SLO percentile must lie in (0, 1]",
        )
        _require(
            self.admission in ADMISSION_POLICIES,
            f"unknown admission policy {self.admission!r}; "
            f"known: {', '.join(ADMISSION_POLICIES)}",
        )
        _require(self.queue_cap >= 0, "queue cap must be non-negative")
        if self.admission != "admit_all":
            _require(
                self.queue_cap >= 1,
                f"admission policy {self.admission!r} needs --queue-cap >= 1",
            )
        _require(self.defer_ns > 0, "defer delay must be positive")
        _require(self.burst_multiplier >= 1.0, "burst multiplier must be >= 1")
        _require(self.mean_dwell_ms > 0, "mean dwell time must be positive")
        _require(self.mean_burst_ms > 0, "mean burst time must be positive")
        _require(0.0 <= self.amplitude < 1.0, "amplitude must lie in [0, 1)")
        _require(self.period_ms >= 0, "period must be non-negative")
        if self.arrival == "trace":
            _require(
                bool(self.arrivals_ns),
                "trace arrivals need a non-empty timestamp list "
                "(--arrival trace requires --arrival-trace FILE)",
            )
            last = -1
            for t in self.arrivals_ns:
                _require(
                    isinstance(t, int) and t >= 0,
                    "trace arrival timestamps must be non-negative integers",
                )
                _require(t >= last, "trace arrival timestamps must ascend")
                last = t

    @property
    def duration_ns(self) -> int:
        """The arrival window in nanoseconds."""
        return round(self.duration_ms * 1e6)

    @property
    def slo_target_ns(self) -> int:
        """The latency target in nanoseconds."""
        return round(self.slo_ms * 1e6)

    @property
    def period_ns(self) -> int:
        """The diurnal cycle in nanoseconds (defaults to the duration)."""
        return round(self.period_ms * 1e6) if self.period_ms > 0 else self.duration_ns

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "ServingConfig":
        """Reconstruct from :meth:`MachineConfig.to_dict` output.

        ``None`` (the key was omitted, i.e. a legacy or closed-loop
        config) yields the disabled default.  JSON round-trips turn the
        arrival-timestamp tuple into a list; it is normalised back.
        """
        if data is None:
            return cls()
        try:
            data = dict(data)
            data["arrivals_ns"] = tuple(int(t) for t in data.get("arrivals_ns", ()))
            return cls(**data)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed ServingConfig dict: {exc}") from exc


def with_serving(config: "MachineConfig", **overrides: Any) -> "MachineConfig":
    """Return *config* with an explicitly configured serving block.

    ``enabled`` is forced on (so the block serialises and the sweep
    cache distinguishes the configuration); keyword overrides set
    individual :class:`ServingConfig` fields.
    """
    overrides.setdefault("enabled", True)
    return dataclasses.replace(config, serving=ServingConfig(**overrides))


ENGINE_NAMES = ("reference", "fast")
"""Execution engines understood by :mod:`repro.engine`: ``reference``
is the per-record step loop, ``fast`` the vectorized batch engine that
falls back to the reference loop inside fault windows (docs/ENGINES.md).
Both produce bit-identical results; the choice only affects wall-clock
speed."""


def with_engine(config: "MachineConfig", engine: str) -> "MachineConfig":
    """Return *config* running on the named execution engine.

    ``with_engine(config, "reference")`` restores the default (which
    serialises to nothing, preserving existing sweep-cache keys — the
    two engines are bit-identical, so a result computed by either
    answers for both).
    """
    return dataclasses.replace(config, engine=engine)


_PLACEMENTS = ("round_robin", "least_loaded")
"""Placement policies understood by the SMP scheduler: ``round_robin``
spreads admitted processes across cores by pid, ``least_loaded`` puts
each new process on the core with the shortest ready queue."""


@dataclass(frozen=True)
class CoreConfig:
    """Multi-core topology and cross-core cost model (docs/SMP.md).

    The default instance (``count=1``) is the single-core machine the
    paper simulates and deliberately serialises to *nothing* in
    :meth:`MachineConfig.to_dict`: configurations that never go SMP keep
    their historical sweep-cache keys and bit-identical results, exactly
    like :class:`FaultConfig` and :class:`AdaptiveConfig`.
    """

    count: int = 1
    """Number of cores.  Each core owns a private TLB, run queue and
    context-switch model; LLC, DRAM, swap and the DMA path are shared."""

    work_steal: bool = True
    """Idle cores steal ready processes from the tail of the most
    loaded core's run queue."""

    migration_cost_ns: int = 2 * US
    """Cost of migrating a stolen process onto the thief core (cold
    private-TLB refill, run-queue locking, inter-processor signalling)."""

    tlb_shootdown_ns: int = 1 * US
    """Cost of one cross-core TLB shootdown IPI, charged to the evicting
    core per *remote* core that held the translation."""

    placement: str = "round_robin"
    """Initial placement policy; one of ``round_robin`` / ``least_loaded``.
    The SMP scheduler also exposes a programmatic affinity hook that
    overrides this (see :meth:`repro.kernel.smp.SMPScheduler.set_placement`)."""

    def __post_init__(self) -> None:
        _require(self.count >= 1, "a machine needs at least one core")
        _require(self.migration_cost_ns >= 0, "migration cost must be non-negative")
        _require(self.tlb_shootdown_ns >= 0, "TLB shootdown cost must be non-negative")
        _require(
            self.placement in _PLACEMENTS,
            f"unknown placement {self.placement!r}; known: {', '.join(_PLACEMENTS)}",
        )

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "CoreConfig":
        """Reconstruct from :meth:`MachineConfig.to_dict` output.

        ``None`` (the key was omitted, i.e. a legacy or single-core
        config) yields the single-core default.
        """
        if data is None:
            return cls()
        try:
            return cls(**data)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed CoreConfig dict: {exc}") from exc


TIER_PLACEMENTS = ("pid_hash", "round_robin", "hot_cold")
"""Page-placement policies understood by :mod:`repro.tiering`:
``pid_hash`` maps every page of a process to one tier by pid modulo,
``round_robin`` stripes allocations across tiers, ``hot_cold`` starts
every page on the slowest tier and relies on promotion to move hot
pages toward tier 0."""


@dataclass(frozen=True)
class TierSpec:
    """One storage tier: a named device + link pair (docs/TIERING.md).

    ``fault_profile`` names a :data:`repro.faults.FAULT_PROFILES` entry
    applied to this tier's device and link only; the empty string
    inherits the machine-level ``faults`` block, so a single profile
    flag still covers every tier.
    """

    name: str
    device: DeviceConfig = field(default_factory=DeviceConfig)
    pcie: PCIeConfig = field(default_factory=PCIeConfig)
    fault_profile: str = ""

    def __post_init__(self) -> None:
        _require(bool(self.name), "a storage tier needs a name")

    @classmethod
    def from_dict(cls, data: dict) -> "TierSpec":
        """Reconstruct from :meth:`MachineConfig.to_dict` output."""
        try:
            return cls(
                name=data["name"],
                device=DeviceConfig(**data["device"]),
                pcie=PCIeConfig(**data["pcie"]),
                fault_profile=data.get("fault_profile", ""),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed TierSpec dict: {exc}") from exc


@dataclass(frozen=True)
class TierConfig:
    """Heterogeneous storage tiers (docs/TIERING.md).

    The default instance (``enabled=False``) is the single-device legacy
    machine and deliberately serialises to *nothing* in
    :meth:`MachineConfig.to_dict`: configurations that never enable
    tiering keep their historical sweep-cache keys and bit-identical
    results, exactly like :class:`FaultConfig`, :class:`AdaptiveConfig`,
    :class:`CoreConfig` and :class:`ServingConfig`.

    Tier order is the promotion ladder: ``tiers[0]`` is the fast tier
    promotion moves pages toward, and demotion pushes victims one index
    toward the tail.  Presets (``ull`` / ``nvme`` / ``far_memory``) live
    in :mod:`repro.tiering.presets`.
    """

    enabled: bool = False
    tiers: tuple = ()
    """Ordered :class:`TierSpec` tuple (fastest / preferred tier first)."""
    placement: str = "pid_hash"
    """Static placement policy; one of :data:`TIER_PLACEMENTS`."""
    promote_threshold: int = 0
    """Major faults on one page before it is promoted one tier up
    (migration charges a device-to-device copy).  0 disables migration."""
    demote_watermark: float = 1.0
    """Used-slot fraction of the promotion target above which the
    coldest page is demoted to make room (1.0 = only when full)."""

    def __post_init__(self) -> None:
        _require(
            self.placement in TIER_PLACEMENTS,
            f"unknown tier placement {self.placement!r}; "
            f"known: {', '.join(TIER_PLACEMENTS)}",
        )
        _require(self.promote_threshold >= 0, "promote threshold must be non-negative")
        _require(
            0.0 < self.demote_watermark <= 1.0,
            "demote watermark must lie in (0, 1]",
        )
        if self.enabled:
            _require(bool(self.tiers), "enabled tiering needs at least one tier")
        names = [spec.name for spec in self.tiers]
        _require(len(names) == len(set(names)), "tier names must be unique")
        if self.placement == "hot_cold":
            _require(
                self.promote_threshold >= 1,
                "hot_cold placement needs promote_threshold >= 1 "
                "(pages only leave the cold tier via promotion)",
            )

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "TierConfig":
        """Reconstruct from :meth:`MachineConfig.to_dict` output.

        ``None`` (the key was omitted, i.e. a legacy or single-device
        config) yields the disabled default.
        """
        if data is None:
            return cls()
        try:
            data = dict(data)
            data["tiers"] = tuple(
                TierSpec.from_dict(dict(t)) for t in data.get("tiers", ())
            )
            return cls(**data)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed TierConfig dict: {exc}") from exc


def with_tiers(config: "MachineConfig", tiers, **overrides: Any) -> "MachineConfig":
    """Return *config* with an explicitly configured tier block.

    *tiers* is an iterable of :class:`TierSpec`; ``enabled`` is forced
    on (so the block serialises and the sweep cache distinguishes the
    configuration).  Name-based preset resolution lives in
    :func:`repro.tiering.presets.with_tier_presets`.
    """
    overrides.setdefault("enabled", True)
    return dataclasses.replace(
        config, tiers=TierConfig(tiers=tuple(tiers), **overrides)
    )


def with_cores(config: "MachineConfig", count: int, **overrides: Any) -> "MachineConfig":
    """Return *config* with an SMP ``cores`` block of *count* cores.

    Keyword overrides set individual :class:`CoreConfig` fields;
    ``with_cores(config, 1)`` restores the default block (which
    serialises to nothing, preserving single-core cache keys).
    """
    return dataclasses.replace(config, cores=CoreConfig(count=count, **overrides))


def with_adaptive(config: "MachineConfig", **overrides: Any) -> "MachineConfig":
    """Return *config* with an explicitly configured adaptive block.

    ``enabled`` is forced on (so the block serialises and the sweep cache
    distinguishes the configuration); keyword overrides set individual
    :class:`AdaptiveConfig` fields.
    """
    overrides.setdefault("enabled", True)
    return dataclasses.replace(config, adaptive=AdaptiveConfig(**overrides))


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of the simulated platform.

    The default instance is a scaled-down machine for fast regeneration of
    the paper's figures; :meth:`paper` reproduces the Section 4.1 platform
    at full scale.
    """

    llc: CacheConfig = field(default_factory=CacheConfig)
    l1: Optional[CacheConfig] = None
    """Optional L1 level above the LLC (fidelity extension; the paper's
    simulator models the LLC only).  ``CacheConfig(size_bytes=32*KIB,
    ways=8, hit_latency_ns=4)`` is a typical choice."""
    tlb: TLBConfig = field(default_factory=TLBConfig)
    device: DeviceConfig = field(default_factory=DeviceConfig)
    pcie: PCIeConfig = field(default_factory=PCIeConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    scheduler: SchedulerConfig = field(
        default_factory=lambda: SchedulerConfig(
            # Scaled-down slices: traces are milliseconds long, so the
            # 800 ms/5 ms paper slices are shrunk proportionally (the
            # 7 us switch cost is kept at its measured value).
            max_time_slice_ns=2 * MS,
            min_time_slice_ns=100 * US,
        )
    )
    its: ITSConfig = field(default_factory=ITSConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    """Device variability / failure injection; disabled by default (the
    idealised device).  Serialised only when it differs from the
    default, so fault-free cache keys are stable across versions."""
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    """Adaptive I/O-mode controller parameters; disabled by default.
    Serialised only when it differs from the default, so non-adaptive
    cache keys are stable across versions."""
    cores: CoreConfig = field(default_factory=CoreConfig)
    """SMP topology; a single core by default.  Serialised only when it
    differs from the default, so single-core cache keys are stable
    across versions."""
    serving: ServingConfig = field(default_factory=ServingConfig)
    """Open-loop serving workload; disabled (closed-loop) by default.
    Serialised only when it differs from the default, so closed-loop
    cache keys are stable across versions."""
    tiers: TierConfig = field(default_factory=TierConfig)
    """Heterogeneous storage tiers; disabled (single device) by default.
    Serialised only when it differs from the default, so single-device
    cache keys are stable across versions."""

    compute_ns_per_instr: int = 1
    """CPU cost of one non-memory instruction."""

    fault_handler_ns: int = 500
    """Software cost of entering/servicing the page-fault handler."""

    engine: str = "reference"
    """Execution engine (docs/ENGINES.md): ``reference`` is the exact
    per-record step loop, ``fast`` the vectorized batch engine (bit-
    identical results, much faster between faults).  Serialised only
    when non-default: the engines produce identical results, so the
    default must not move sweep-cache keys."""

    def __post_init__(self) -> None:
        _require(
            self.memory.page_size % self.llc.line_size == 0,
            "page size must be a multiple of the cache line size",
        )
        if self.l1 is not None:
            _require(
                self.l1.line_size == self.llc.line_size,
                "L1 and LLC must share a line size",
            )
            _require(
                self.l1.size_bytes <= self.llc.size_bytes,
                "L1 must not be larger than the LLC",
            )
        _require(self.compute_ns_per_instr >= 0, "compute cost must be non-negative")
        _require(self.fault_handler_ns >= 0, "fault handler cost must be non-negative")
        _require(
            self.engine in ENGINE_NAMES,
            f"unknown engine {self.engine!r}; known: {', '.join(ENGINE_NAMES)}",
        )

    @classmethod
    def paper(cls) -> "MachineConfig":
        """The Section 4.1 platform: 8 MiB 16-way LLC, 3 us Z-NAND,
        50 ns DRAM, 7 us context switch, PCIe 5.x x4."""
        return cls(
            llc=CacheConfig(size_bytes=8 * MIB, ways=16, line_size=64, hit_latency_ns=20),
            memory=MemoryConfig(dram_frames=64 * 1024, dram_latency_ns=50),
            scheduler=SchedulerConfig(),  # the full 800 ms / 5 ms NICE slices
        )

    @classmethod
    def small(cls) -> "MachineConfig":
        """A deliberately tiny machine for unit tests."""
        return cls(
            llc=CacheConfig(size_bytes=16 * KIB, ways=4, line_size=64, hit_latency_ns=10),
            tlb=TLBConfig(entries=16),
            memory=MemoryConfig(dram_frames=64, dram_latency_ns=50),
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain nested dict (JSON-compatible).

        The ``faults`` block is omitted while it equals the disabled
        default: sweep-cache keys are SHA-256 digests of this dict, and
        fault-free configurations must keep addressing the results they
        produced before the fault layer existed.
        """
        data = dataclasses.asdict(self)
        if self.faults == FaultConfig():
            del data["faults"]
        if self.adaptive == AdaptiveConfig():
            del data["adaptive"]
        if self.cores == CoreConfig():
            del data["cores"]
        if self.serving == ServingConfig():
            del data["serving"]
        if self.tiers == TierConfig():
            del data["tiers"]
        if self.engine == "reference":
            # The engines are bit-identical, so the default engine must
            # keep addressing results computed before it had a name.
            del data["engine"]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MachineConfig":
        """Reconstruct a config from :meth:`to_dict` output."""
        try:
            return cls(
                llc=CacheConfig(**data["llc"]),
                l1=CacheConfig(**data["l1"]) if data.get("l1") else None,
                tlb=TLBConfig(**data["tlb"]),
                device=DeviceConfig(**data["device"]),
                pcie=PCIeConfig(**data["pcie"]),
                memory=MemoryConfig(**data["memory"]),
                scheduler=SchedulerConfig(**data["scheduler"]),
                its=ITSConfig(**data["its"]),
                faults=FaultConfig.from_dict(data.get("faults")),
                adaptive=AdaptiveConfig.from_dict(data.get("adaptive")),
                cores=CoreConfig.from_dict(data.get("cores")),
                serving=ServingConfig.from_dict(data.get("serving")),
                tiers=TierConfig.from_dict(data.get("tiers")),
                compute_ns_per_instr=data["compute_ns_per_instr"],
                fault_handler_ns=data["fault_handler_ns"],
                engine=data.get("engine", "reference"),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed MachineConfig dict: {exc}") from exc

"""A discrete-event queue over virtual time.

The simulator is mostly an instruction-by-instruction loop on one CPU, but
device-side progress (DMA swap-ins, prefetches, asynchronous I/O
completions) is naturally event-driven.  :class:`EventQueue` orders those
completions on the shared virtual clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.errors import SimulationError


@dataclass(frozen=True, order=False)
class Event:
    """A scheduled callback on the virtual clock.

    ``payload`` is free-form context carried to the callback; ``tag`` is a
    short label used in logs and assertions.
    """

    time_ns: int
    tag: str
    callback: Callable[["Event"], None] = field(compare=False)
    payload: Any = field(default=None, compare=False)


class EventQueue:
    """Min-heap of :class:`Event` keyed by (time, insertion order).

    Insertion order breaks ties so that two events at the same timestamp
    fire in the order they were scheduled — a property several policies
    rely on (e.g. a prefetch completion scheduled before a fault completion
    at the same instant must land first).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def schedule(self, event: Event) -> int:
        """Add *event*; returns a handle usable with :meth:`cancel`."""
        if event.time_ns < 0:
            raise SimulationError(f"event {event.tag!r} scheduled at negative time {event.time_ns}")
        handle = next(self._counter)
        heapq.heappush(self._heap, (event.time_ns, handle, event))
        return handle

    def schedule_at(
        self,
        time_ns: int,
        tag: str,
        callback: Callable[[Event], None],
        payload: Any = None,
    ) -> int:
        """Convenience wrapper constructing and scheduling an :class:`Event`."""
        return self.schedule(Event(time_ns=time_ns, tag=tag, callback=callback, payload=payload))

    def cancel(self, handle: int) -> None:
        """Mark the event with *handle* as cancelled (lazy deletion)."""
        self._cancelled.add(handle)

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop() on an empty event queue")
        __, handle, event = heapq.heappop(self._heap)
        return event

    def pop_due(self, now_ns: int) -> list[Event]:
        """Remove and return every live event with ``time_ns <= now_ns``.

        Events are returned in firing order.  The caller is responsible
        for invoking each event's callback.
        """
        due: list[Event] = []
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > now_ns:
                break
            due.append(self.pop())
        return due

    def run_due(self, now_ns: int) -> int:
        """Fire callbacks for every event due at or before *now_ns*.

        Returns the number of events fired.  Callbacks may schedule
        further events; those are honoured within the same call if they
        are also due.
        """
        fired = 0
        while True:
            batch = self.pop_due(now_ns)
            if not batch:
                return fired
            for event in batch:
                event.callback(event)
                fired += 1

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][1] in self._cancelled:
            __, handle, __unused = heapq.heappop(self._heap)
            self._cancelled.discard(handle)

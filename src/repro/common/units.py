"""Time and size units.

All simulator times are integers in **nanoseconds** and all sizes are
integers in **bytes**.  These constants make configuration code read like
the paper ("3 us device latency", "8 MiB LLC") rather than like raw
magnitudes.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NS = 1
"""One nanosecond (the base time unit)."""

US = 1_000
"""One microsecond in nanoseconds."""

MS = 1_000_000
"""One millisecond in nanoseconds."""

SEC = 1_000_000_000
"""One second in nanoseconds."""

# --- sizes -----------------------------------------------------------------

KIB = 1024
"""One kibibyte in bytes."""

MIB = 1024 * 1024
"""One mebibyte in bytes."""

GIB = 1024 * 1024 * 1024
"""One gibibyte in bytes."""

PAGE_SIZE = 4 * KIB
"""Default page size (4 KiB, the x86-64 base page)."""

CACHE_LINE_SIZE = 64
"""Default CPU cache line size in bytes."""


def ns_to_us(t_ns: int | float) -> float:
    """Convert nanoseconds to microseconds."""
    return t_ns / US


def ns_to_ms(t_ns: int | float) -> float:
    """Convert nanoseconds to milliseconds."""
    return t_ns / MS


def us_to_ns(t_us: int | float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(t_us * US)


def ms_to_ns(t_ms: int | float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(t_ms * MS)


def format_time_ns(t_ns: int | float) -> str:
    """Render a nanosecond quantity with a human-friendly unit.

    >>> format_time_ns(1500)
    '1.500us'
    >>> format_time_ns(42)
    '42ns'
    """
    if t_ns >= SEC:
        return f"{t_ns / SEC:.3f}s"
    if t_ns >= MS:
        return f"{t_ns / MS:.3f}ms"
    if t_ns >= US:
        return f"{t_ns / US:.3f}us"
    return f"{t_ns:.0f}ns"


def format_size(n_bytes: int) -> str:
    """Render a byte quantity with a human-friendly unit.

    >>> format_size(8 * 1024 * 1024)
    '8.0MiB'
    """
    if n_bytes >= GIB:
        return f"{n_bytes / GIB:.1f}GiB"
    if n_bytes >= MIB:
        return f"{n_bytes / MIB:.1f}MiB"
    if n_bytes >= KIB:
        return f"{n_bytes / KIB:.1f}KiB"
    return f"{n_bytes}B"

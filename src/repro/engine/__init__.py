"""Execution engines: the reference step loop and the vectorized fast path.

Two engines can drive a run (docs/ENGINES.md):

* ``reference`` — :class:`repro.sim.simulator.Simulation`, the exact
  per-record step loop every result in this repository was produced by.
* ``fast`` — :class:`repro.engine.fast.FastSimulation`, which commits
  fault-free stretches of the trace in batches (columnar trace arrays,
  run-length fast-forward of the virtual clock) and drops back to the
  reference code paths for every fault-adjacent decision.

Both implement the :class:`Engine` protocol and are bit-identical: same
:class:`~repro.sim.metrics.SimulationResult`, same telemetry-off digests
(enforced against the pinned seed digests in CI).  The engine is chosen
on :class:`~repro.common.config.MachineConfig` (``engine="fast"`` /
``--engine fast``); the default serialises to nothing, so sweep-cache
keys are unchanged and a cached result computed by either engine
answers for both.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.common.config import ENGINE_NAMES, MachineConfig
from repro.engine.fast import FastSimulation
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import Simulation, WorkloadInstance


@runtime_checkable
class Engine(Protocol):
    """What a simulation engine exposes to the analysis layer.

    Both :class:`~repro.sim.simulator.Simulation` (the reference step
    loop) and :class:`~repro.engine.fast.FastSimulation` (the vectorized
    batch engine) satisfy this protocol; policies additionally rely on
    the service surface of :class:`Simulation` (``consume_time``,
    ``issue_prefetch``, ...), which ``FastSimulation`` inherits.
    """

    config: MachineConfig

    def run(self) -> SimulationResult:
        """Execute until every process finishes; returns the result."""
        ...


def build_simulation(
    config: MachineConfig,
    workloads: Sequence[WorkloadInstance],
    policy,
    **kwargs,
) -> Simulation:
    """Construct the simulation for ``config.engine``.

    The factory is the single switch point: every run constructed here
    honours ``MachineConfig.engine`` (and therefore ``--engine``), and
    the fast engine transparently falls back to the reference loop for
    shapes it does not accelerate (SMP, telemetry/event-log observers,
    progress callbacks, unknown instruction hooks) — selecting it is
    always safe, never wrong, sometimes just not faster.
    """
    if config.engine == "fast":
        return FastSimulation(config, workloads, policy, **kwargs)
    return Simulation(config, workloads, policy, **kwargs)


__all__ = [
    "ENGINE_NAMES",
    "Engine",
    "FastSimulation",
    "Simulation",
    "build_simulation",
]

"""The vectorized fast-path engine (docs/ENGINES.md).

The paper's own observation — most trace records are fault-free, and
only the windows around page faults need exact, cycle-level treatment —
applies to the simulator itself: the reference step loop pays ~20 Python
calls per record even when the record is a TLB-hit load or a pure ALU
op.  This engine removes that overhead where nothing can happen:

* Traces are preprocessed once into columnar arrays (op kind, vpn, page
  offset, cumulative compute cost, next-memory-op index) — numpy when
  available, pure Python otherwise.
* Runs of compute/branch records are committed as a single batch: the
  virtual clock fast-forwards by a cumulative-sum difference, cut
  exactly at the first record that exhausts the time slice or reaches
  the next pending device event (found by binary search), so event
  callbacks observe the identical ``machine.now_ns`` / ``process.pc``
  they would under the reference loop.
* Memory ops run through an inlined TLB-probe + page-table-hit path
  that performs the same state mutations (TLB LRU order and counters,
  PTE accessed/dirty bits, replacement LRU touch, LLC sets and
  counters, DRAM traffic counters) in the same order.

Everything fault-adjacent drops back to the proven code: a miss in the
inlined hit-classifier defers to :meth:`MemoryManager.classify_touch`,
and a MAJOR fault exits the batch window entirely so the I/O policy
(ITS steal, adaptive mode selection, DMA retry, demotion) runs the
exact reference fault path.  Shapes the engine does not accelerate —
SMP, telemetry/event-log observers, progress callbacks, policies with
unknown instruction hooks — fall back to the inherited reference
``run()`` wholesale.

Bit-identity contract: same ``SimulationResult``, same downstream
component state.  The one tolerated divergence is the *unpublished*
``PageTable.stats.walks`` counter (the engine caches PTE references, so
repeat touches skip the simulated table walk); see docs/ENGINES.md.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.baselines.base import IOPolicy
from repro.baselines.sync_runahead import SyncRunaheadPolicy
from repro.common.errors import SimulationError
from repro.cpu.core import StepOutcome, StepResult
from repro.cpu.isa import Branch, Compute, Load, Store
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import Simulation
from repro.vm.mm import FaultKind
from repro.vm.replacement import (
    GlobalLRUPolicy,
    PriorityAwareLRUPolicy,
    ResidentPage,
)

try:  # numpy accelerates trace preprocessing; the engine runs without it
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships numpy
    _np = None

_COMPUTE = 0
_LOAD = 1
_STORE = 2
_UNKNOWN = 3


@dataclass(frozen=True)
class TraceColumns:
    """Columnar view of one trace (plain lists for tight-loop indexing).

    ``cum`` has ``len(trace) + 1`` entries: ``cum[j] - cum[i]`` is the
    compute cost of records ``[i, j)`` (memory ops contribute zero — an
    inter-fault compute run fast-forwards the clock by one subtraction).
    ``next_mem[i]`` is the first index ``>= i`` holding a non-compute
    record, or ``len(trace)``.
    """

    kind: list
    cum: list
    vpn: list
    off: list
    next_mem: list


def build_columns(trace, page_shift: int, page_mask: int, compute_ns: int) -> TraceColumns:
    """Preprocess *trace* into :class:`TraceColumns` (one pass + numpy)."""
    n = len(trace)
    kind = [_COMPUTE] * n
    cost = [0] * n
    vpn = [0] * n
    off = [0] * n
    for i, instr in enumerate(trace):
        # Exact-type dispatch first (the only types real traces hold);
        # the isinstance chain below keeps subclass semantics identical
        # to the reference core's dispatch.
        t = instr.__class__
        if t is Compute:
            cost[i] = instr.cycles * compute_ns
        elif t is Load:
            kind[i] = _LOAD
            vpn[i] = instr.vaddr >> page_shift
            off[i] = instr.vaddr & page_mask
        elif t is Store:
            kind[i] = _STORE
            vpn[i] = instr.vaddr >> page_shift
            off[i] = instr.vaddr & page_mask
        elif t is Branch:
            cost[i] = compute_ns
        elif isinstance(instr, Compute):
            cost[i] = instr.cycles * compute_ns
        elif isinstance(instr, Branch):
            cost[i] = compute_ns
        elif isinstance(instr, Load):
            kind[i] = _LOAD
            vpn[i] = instr.vaddr >> page_shift
            off[i] = instr.vaddr & page_mask
        elif isinstance(instr, Store):
            kind[i] = _STORE
            vpn[i] = instr.vaddr >> page_shift
            off[i] = instr.vaddr & page_mask
        else:
            # Surfaced as the reference TypeError if execution reaches it.
            kind[i] = _UNKNOWN
    if _np is not None:
        cum = _np.concatenate(
            ([0], _np.cumsum(_np.asarray(cost, dtype=_np.int64)))
        ).tolist()
        stops = _np.where(
            _np.asarray(kind, dtype=_np.int64) != _COMPUTE,
            _np.arange(n, dtype=_np.int64),
            n,
        )
        next_mem = _np.minimum.accumulate(stops[::-1])[::-1].tolist()
        next_mem.append(n)
    else:
        cum = [0] * (n + 1)
        for i in range(n):
            cum[i + 1] = cum[i] + cost[i]
        next_mem = [n] * (n + 1)
        for i in range(n - 1, -1, -1):
            next_mem[i] = i if kind[i] != _COMPUTE else next_mem[i + 1]
    return TraceColumns(kind=kind, cum=cum, vpn=vpn, off=off, next_mem=next_mem)


class FastSimulation(Simulation):
    """Batched execution with exact fallback inside fault windows."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._columns: dict[int, TraceColumns] = {}
        # (pid, vpn) -> (PageTableEntry, ResidentPage): one lookup serves
        # both the walk-skip and the replacement-touch on the hit path.
        self._page_cache: dict = {}
        hook = type(self.policy).on_instruction_complete
        if hook is IOPolicy.on_instruction_complete:
            self._hook = None
            hook_supported = True
        else:
            self._hook = self.policy.on_instruction_complete
            # The runahead hook is a no-op unless the record stalled, so
            # the engine only materialises a StepResult on stalls; any
            # *other* override could observe every record, which batching
            # cannot honour — run those on the reference loop.
            hook_supported = hook is SyncRunaheadPolicy.on_instruction_complete
        self._force_reference = (
            self._smp
            or self.telemetry is not None
            or self.event_log is not None
            or self.progress is not None
            or not hook_supported
            # Tiered storage routes faults per page; the batched fast
            # path models a single fault latency, so tiered configs run
            # on the (bit-identical) reference loop.
            or self.config.tiers.enabled
        )

    def _columns_for(self, trace) -> TraceColumns:
        columns = self._columns.get(id(trace))
        if columns is None:
            page_size = self.config.memory.page_size
            columns = build_columns(
                trace,
                page_size.bit_length() - 1,
                page_size - 1,
                self.config.compute_ns_per_instr,
            )
            self._columns[id(trace)] = columns
        return columns

    # -- driving the run ----------------------------------------------------

    def run(self) -> SimulationResult:
        if self._force_reference:
            return super().run()
        steps = 0
        while self.scheduler.has_work() or self._arrivals_outstanding > 0:
            steps += 1
            if steps > self.MAX_STEPS:
                raise SimulationError("simulation exceeded MAX_STEPS; diverged?")
            if self.scheduler.current is None:
                if not self._dispatch_or_idle():
                    continue
            self._run_window()
        return self._build_result()

    def _run_window(self) -> None:
        """Run the current process until it faults, finishes, is
        preempted, or yields to a resuming sacrificer.

        Local mirrors of the hot state (clock, pc, slice, stat counters)
        are flushed back at every externally observable point — event
        firing, policy hooks, fault paths, window exit — so any code
        outside this method sees exactly the state the reference loop
        would have produced at the same virtual instant.
        """
        process = self.scheduler.current
        if process is None:  # the fault handler may have blocked it
            return
        pid = process.pid
        trace = process.trace
        columns = self._columns_for(trace)
        kind = columns.kind
        cum = columns.cum
        vpns = columns.vpn
        offs = columns.off
        next_mem = columns.next_mem
        n = len(trace)

        machine = self.machine
        scheduler = self.scheduler
        events = machine.events
        run_due = events.run_due
        peek_time = events.peek_time
        resume_preempts = scheduler.resume_preempts_current
        memory = machine.memory
        mm = memory.mm_of(pid)
        pte_for = mm.pte_for
        classify = memory.classify_touch
        replacement = memory.replacement
        on_touch = replacement.on_touch
        # Both LRU-family policies implement on_touch as "move to MRU if
        # tracked"; inline that as a single OrderedDict op.  Other (or
        # subclassed) policies keep the virtual call.
        lru_move = (
            replacement._lru.move_to_end
            if type(replacement) in (GlobalLRUPolicy, PriorityAwareLRUPolicy)
            else None
        )
        frames_info_get = memory.frames._info.get
        tlb = machine.tlb
        entries = tlb._entries
        entries_get = entries.get
        move_to_end = entries.move_to_end
        tlb_insert = tlb.insert
        tlb_hit_ns = tlb.config.hit_latency_ns
        tlb_miss_ns = tlb.config.miss_walk_latency_ns
        hierarchy = machine.hierarchy
        full_hierarchy = hierarchy.l1 is not None
        hier_access = hierarchy.access
        llc = hierarchy.llc
        llc_access = llc.access
        llc_sets = llc._sets
        llc_line_bits = llc._line_bits
        llc_set_mask = llc._set_mask
        llc_tag_shift = llc_set_mask.bit_length()
        llc_stats = llc.stats
        llc_hit_ns = llc.config.hit_latency_ns
        line_size = llc.config.line_size
        dram_read = hierarchy.dram.read_latency_ns
        dram_write = hierarchy.dram.write_latency_ns
        page_size = memory.frames.page_size
        fault_handler_ns = self.config.fault_handler_ns
        cpu = machine.cpu
        stats = process.stats
        registers = process.registers
        idle = self.metrics.idle
        tlb_stats = tlb.stats
        page_cache = self._page_cache
        page_cache_get = page_cache.get
        hook = self._hook
        policy = self.policy

        now = machine.now_ns
        pc = process.pc
        slice_left = process.slice_remaining_ns

        # Same-page streak state: while consecutive memory ops touch one
        # vpn and nothing external runs in between, the TLB entry, the
        # replacement-LRU position, the PTE accessed bit and the frame's
        # prefetched flag are all provably already in their post-touch
        # state, so the repeat probe reduces to a hit count + latency.
        # Reset (-1) at every external call: events, hooks, fault paths.
        last_v = -1
        last_pte = None
        last_frame = 0

        d_committed = 0
        d_cpu = 0
        d_stall = 0
        d_minor = 0
        d_hits = 0
        d_misses = 0
        d_llc_hits = 0

        def flush() -> None:
            nonlocal d_committed, d_cpu, d_stall, d_minor, d_hits, d_misses
            nonlocal d_llc_hits
            machine.now_ns = now
            process.pc = pc
            registers.pc = pc
            process.slice_remaining_ns = slice_left
            if d_committed:
                cpu.instructions_committed += d_committed
                d_committed = 0
            if d_cpu:
                stats.cpu_time_ns += d_cpu
                d_cpu = 0
            if d_stall:
                stats.memory_stall_ns += d_stall
                idle.memory_stall_ns += d_stall
                d_stall = 0
            if d_minor:
                stats.minor_faults += d_minor
                idle.handler_overhead_ns += d_minor * fault_handler_ns
                d_minor = 0
            if d_hits:
                tlb_stats.hits += d_hits
                d_hits = 0
            if d_misses:
                tlb_stats.misses += d_misses
                d_misses = 0
            if d_llc_hits:
                llc_stats.demand_hits += d_llc_hits
                d_llc_hits = 0

        next_event = peek_time()
        resume_pending = resume_preempts()

        while True:
            k = kind[pc]
            if k == _COMPUTE:
                # Fast-forward a fault-free compute/branch run [pc, stop).
                base = cum[pc]
                stop = next_mem[pc]
                if cum[stop] - base >= slice_left:
                    stop = bisect_left(cum, base + slice_left, pc + 1, stop)
                if next_event is not None and cum[stop] - base >= next_event - now:
                    stop = bisect_left(cum, base + (next_event - now), pc + 1, stop)
                if resume_pending and stop > pc + 1:
                    # A higher-priority resume is already pending: the
                    # reference loop would yield after one record.
                    stop = pc + 1
                dt = cum[stop] - base
                d_committed += stop - pc
                d_cpu += dt
                now += dt
                slice_left -= dt
                # The record "in flight" at the batch cut, for any event
                # callback that observes process.pc (reference loop
                # timing: events fire before the pc advances).
                pc = stop - 1
                stall = 0
                minor = False
            elif k == _UNKNOWN:
                flush()
                instr = trace[pc]
                raise TypeError(f"unknown instruction {instr!r}")
            else:
                v = vpns[pc]
                if v == last_v:
                    # Same-page streak: the previous op left (pid, v) at
                    # TLB MRU and replacement MRU, accessed set and
                    # prefetched cleared — the repeat probe is a pure
                    # hit, every LRU move a no-op.
                    d_hits += 1
                    time_ns = tlb_hit_ns
                    pte = last_pte
                    frame2 = last_frame
                    minor = False
                else:
                    key = (pid, v)
                    frame = entries_get(key)
                    tlb_hit = frame is not None
                    if tlb_hit:
                        move_to_end(key)
                        d_hits += 1
                        time_ns = tlb_hit_ns
                    else:
                        d_misses += 1
                        time_ns = tlb_miss_ns
                    ent = page_cache_get(key)
                    if ent is not None:
                        pte, rp = ent
                    else:
                        pte = pte_for(v)
                        if pte is not None:
                            rp = ResidentPage(pid, v)
                            page_cache[key] = (pte, rp)
                    if pte is not None and pte.present:
                        # Inlined FaultKind.HIT classification: identical
                        # mutations in identical order to classify_touch().
                        pte.accessed = True
                        if lru_move is not None:
                            try:  # on_touch(): move to MRU if tracked
                                lru_move(rp)
                            except KeyError:
                                pass
                        else:
                            on_touch(rp)
                        info = frames_info_get(pte.frame)
                        if info is not None:  # clear_prefetched()
                            info.prefetched = False
                        frame2 = pte.frame
                        minor = False
                    else:
                        # Cold path (minor/major/unmapped): the proven
                        # classifier takes every decision.
                        flush()
                        touch = classify(pid, v)
                        if touch.kind is FaultKind.MAJOR:
                            if tlb_hit:
                                tlb.shootdown(pid, v)
                            flush()
                            stats.major_faults += 1
                            policy.on_major_fault(self, process, v)
                            if (
                                scheduler.current is process
                                and process.slice_remaining_ns <= 0
                            ):
                                scheduler.preempt_current()
                            return
                        pte = touch.pte
                        frame2 = touch.frame
                        minor = touch.kind is FaultKind.MINOR
                        if minor:
                            time_ns += fault_handler_ns
                        resume_pending = resume_preempts()
                        last_v = -1
                    if tlb_hit:
                        if frame != frame2:
                            entries[key] = frame2
                    else:
                        tlb_insert(pid, v, frame2)
                    if not minor:
                        last_v = v
                        last_pte = pte
                        last_frame = frame2
                is_write = k == _STORE
                if is_write:
                    pte.dirty = True
                paddr = frame2 * page_size + offs[pc]
                if full_hierarchy:
                    access = hier_access(
                        paddr, is_write=is_write, owner=pid, preexec=False
                    )
                    lat = access.latency_ns
                    stall = access.stall_ns
                else:
                    # Inlined SetAssociativeCache.access() hit path; a
                    # miss defers to the real method (fill + eviction).
                    # Read hits need one OrderedDict op (the LRU move);
                    # only writes fetch the line, to set its dirty bit.
                    line_key = paddr >> llc_line_bits
                    cache_set = llc_sets[line_key & llc_set_mask]
                    tag = line_key >> llc_tag_shift
                    if is_write:
                        cache_line = cache_set.get(tag)
                        if cache_line is not None:
                            cache_set.move_to_end(tag)
                            cache_line.dirty = True
                            d_llc_hits += 1
                            lat = llc_hit_ns
                            stall = 0
                        else:
                            llc_access(paddr, is_write=True, owner=pid, preexec=False)
                            stall = dram_write(line_size)
                            lat = llc_hit_ns + stall
                    else:
                        try:
                            cache_set.move_to_end(tag)
                            d_llc_hits += 1
                            lat = llc_hit_ns
                            stall = 0
                        except KeyError:
                            llc_access(paddr, is_write=False, owner=pid, preexec=False)
                            stall = dram_read(line_size)
                            lat = llc_hit_ns + stall
                time_ns += lat
                d_committed += 1
                d_cpu += time_ns
                now += time_ns
                slice_left -= time_ns

            if next_event is not None and now >= next_event:
                flush()
                run_due(now)
                next_event = peek_time()
                now = machine.now_ns
                pc = process.pc
                slice_left = process.slice_remaining_ns
                resume_pending = resume_preempts()
                last_v = -1
            if stall:
                d_stall += stall
            if minor:
                d_minor += 1
            if hook is not None and stall > 0:
                flush()
                hook(
                    self,
                    process,
                    trace[pc],
                    StepResult(
                        outcome=StepOutcome.COMPLETED,
                        time_ns=time_ns,
                        stall_ns=stall,
                        minor_fault=minor,
                    ),
                )
                next_event = peek_time()
                now = machine.now_ns
                slice_left = process.slice_remaining_ns
                resume_pending = resume_preempts()
                last_v = -1

            pc += 1
            if pc >= n:
                flush()
                scheduler.finish_current(machine.now_ns)
                self._release_process_memory(pid)
                if self._serving:
                    self._finish_request(pid)
                return
            if slice_left <= 0:
                flush()
                scheduler.preempt_current()
                return
            if resume_pending:
                flush()
                self._resume_preempt()
                return

    def _resume_preempt(self) -> None:
        """The reference loop's resume-preemption path, verbatim (minus
        the telemetry/causal branches, which force the reference engine)."""
        displaced = self.scheduler.preempt_for_resume()
        cost = self.machine.context_switch.perform(displaced.pid)
        self.machine.advance_ctx(cost)
        self.metrics.add_ctx_overhead(cost)
        resumed = self.scheduler.current
        self.charge_time(
            resumed.pid if resumed is not None else None, "ctx_switch", cost
        )
        if resumed is not None:
            resumed.stats.context_switches += 1
            self._last_pid = resumed.pid

"""The priority-aware thread selection policy (Section 3.2).

At each major fault, the faulting (current) process's priority value is
compared against the next-to-be-run process's: lower means the current
process is *low-priority* (run the self-sacrificing thread), otherwise
it is *high-priority* (run the self-improving thread).  The policy never
changes priorities or the scheduler's ordering.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.kernel.process import Process
from repro.kernel.scheduler import RoundRobinScheduler


class PriorityClass(enum.Enum):
    """Outcome of the selection policy for one fault."""

    HIGH = "high"
    LOW = "low"


@dataclass
class PrioritySelectionPolicy:
    """Compares the running process against the ready-queue head."""

    high_selections: int = 0
    low_selections: int = 0

    def classify(self, process: Process, scheduler: RoundRobinScheduler) -> PriorityClass:
        """Classify *process* at fault time.

        With an empty ready queue there is nobody to give way to, so the
        process counts as high-priority (stealing benefits only itself).
        Ties also count as high-priority ("and vice versa"): only a
        strictly more important waiter forces self-sacrifice.
        """
        next_process = scheduler.peek_next()
        if next_process is not None and process.priority < next_process.priority:
            self.low_selections += 1
            return PriorityClass.LOW
        self.high_selections += 1
        return PriorityClass.HIGH

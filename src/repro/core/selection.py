"""The priority-aware thread selection policy (Section 3.2).

At each major fault, the faulting (current) process's priority value is
compared against the next-to-be-run process's: lower means the current
process is *low-priority* (run the self-sacrificing thread), otherwise
it is *high-priority* (run the self-improving thread).  The policy never
changes priorities or the scheduler's ordering.

Two integrations hang off the classifier:

* With a telemetry handle passed to :meth:`classify`, every outcome is
  exported as the ``its.selection.high`` / ``its.selection.low``
  counters, so the Python-field tallies are visible in ``repro stats``
  and traces.
* An optional *mode hint* lets the adaptive I/O-mode controller
  (:mod:`repro.adaptive`) override the priority comparison for one
  fault: a hinted class is returned (and counted) verbatim.  Without a
  hint installed the classifier behaves exactly as the paper describes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.kernel.process import Process
from repro.kernel.scheduler import RoundRobinScheduler


class PriorityClass(enum.Enum):
    """Outcome of the selection policy for one fault."""

    HIGH = "high"
    LOW = "low"


@dataclass
class PrioritySelectionPolicy:
    """Compares the running process against the ready-queue head."""

    high_selections: int = 0
    low_selections: int = 0
    hint: Optional[Callable[[Process], Optional["PriorityClass"]]] = None
    """Mode-hint provider consulted before the priority comparison.
    Returning ``None`` defers to the normal comparison; returning a
    class forces it for this fault (the adaptive controller's lever)."""

    def classify(
        self,
        process: Process,
        scheduler: RoundRobinScheduler,
        *,
        telemetry=None,
    ) -> PriorityClass:
        """Classify *process* at fault time.

        With an empty ready queue there is nobody to give way to, so the
        process counts as high-priority (stealing benefits only itself).
        Ties also count as high-priority ("and vice versa"): only a
        strictly more important waiter forces self-sacrifice.
        """
        outcome: Optional[PriorityClass] = None
        if self.hint is not None:
            outcome = self.hint(process)
        if outcome is None:
            next_process = scheduler.peek_next()
            if next_process is not None and process.priority < next_process.priority:
                outcome = PriorityClass.LOW
            else:
                outcome = PriorityClass.HIGH
        if outcome is PriorityClass.LOW:
            self.low_selections += 1
        else:
            self.high_selections += 1
        if telemetry is not None:
            telemetry.counter(f"its.selection.{outcome.value}").inc()
        return outcome

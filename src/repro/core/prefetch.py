"""The virtual-address-based page-prefetch policy (Section 3.4.1).

On a major fault, the policy walks the faulting process's page table
starting from the victim page, exactly as Figure 2 describes: it
iterates PT entries after the victim in virtual-address order (stepping
into the next PMD/PUD/PGD subtree when a table is exhausted), skips
pages whose present bit is already set, and collects up to *n* candidate
pages still on storage.  Their physical (swap) locations go to the DMA,
so the transfers overlap the demand fault's busy-wait and consume no CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vm.mm import MemoryManager


@dataclass
class PrefetcherStats:
    """Walk and candidate counters."""

    invocations: int = 0
    entries_scanned: int = 0
    candidates_found: int = 0
    already_resident_skipped: int = 0

    @property
    def mean_scan_length(self) -> float:
        """Average PT entries scanned per invocation."""
        return self.entries_scanned / self.invocations if self.invocations else 0.0


class StridePrefetcher:
    """Stride-detecting page prefetcher (extension beyond the paper).

    Tracks the delta between consecutive victim VPNs per process; once
    the same delta repeats, candidates are ``victim + k*stride`` for
    ``k = 1..degree``.  Where the paper's VA-walk prefetcher assumes
    forward-sequential access, this one also captures the strided sweeps
    of stencil codes (Wrf) — at the cost of needing two faults to train.
    """

    def __init__(self, memory: MemoryManager, *, degree: int) -> None:
        if degree < 0:
            raise ValueError("prefetch degree must be non-negative")
        self.memory = memory
        self.degree = degree
        self.stats = PrefetcherStats()
        self._last_vpn: dict[int, int] = {}
        self._stride: dict[int, int] = {}
        self._confirmed: dict[int, bool] = {}

    def collect(self, pid: int, victim_vpn: int) -> tuple[list[int], int]:
        """Candidates along the detected stride; ``(list, walk_cost)``.

        Untrained or unconfirmed strides yield no candidates.  The walk
        cost is one PTE check per candidate considered.
        """
        self.stats.invocations += 1
        last = self._last_vpn.get(pid)
        self._last_vpn[pid] = victim_vpn
        if last is not None:
            delta = victim_vpn - last
            if delta != 0:
                self._confirmed[pid] = self._stride.get(pid) == delta
                self._stride[pid] = delta
        if self.degree == 0 or not self._confirmed.get(pid):
            return [], 0
        stride = self._stride[pid]
        mm = self.memory.mm_of(pid)
        candidates: list[int] = []
        scanned = 0
        for k in range(1, self.degree + 1):
            vpn = victim_vpn + k * stride
            if vpn < 0:
                break
            scanned += 1
            pte = mm.pte_for(vpn)
            if pte is None:
                break  # ran off the mapping
            if pte.present or self.memory.swap_cache.contains(pid, vpn):
                self.stats.already_resident_skipped += 1
                continue
            candidates.append(vpn)
        self.stats.entries_scanned += scanned
        self.stats.candidates_found += len(candidates)
        return candidates, scanned * 5


class VirtualAddressPrefetcher:
    """Walks the page table to find the next *n* non-resident pages."""

    def __init__(
        self,
        memory: MemoryManager,
        *,
        degree: int,
        walk_entry_ns: int = 5,
        scan_limit: int = 256,
    ) -> None:
        if degree < 0:
            raise ValueError("prefetch degree must be non-negative")
        if scan_limit <= 0:
            raise ValueError("scan limit must be positive")
        self.memory = memory
        self.degree = degree
        self.walk_entry_ns = walk_entry_ns
        self.scan_limit = scan_limit
        self.stats = PrefetcherStats()

    def collect(self, pid: int, victim_vpn: int) -> tuple[list[int], int]:
        """Gather candidate VPNs after *victim_vpn*.

        Returns ``(candidates, walk_cost_ns)``.  The walk cost is the
        CPU time the self-improving thread spends traversing page-table
        entries; it is charged against the stolen window.  The scan stops
        after ``degree`` candidates, the end of the mapped address space,
        or ``scan_limit`` entries — whichever comes first (the thread
        must stay light-weight).
        """
        self.stats.invocations += 1
        if self.degree == 0:
            return [], 0
        mm = self.memory.mm_of(pid)
        candidates: list[int] = []
        scanned = 0
        for vpn, pte in mm.page_table.iter_ptes_from(victim_vpn << 12):
            if scanned >= self.scan_limit:
                break
            scanned += 1
            if pte.present or self.memory.swap_cache.contains(pid, vpn):
                self.stats.already_resident_skipped += 1
                continue
            candidates.append(vpn)
            if len(candidates) >= self.degree:
                break
        self.stats.entries_scanned += scanned
        self.stats.candidates_found += len(candidates)
        return candidates, scanned * self.walk_entry_ns

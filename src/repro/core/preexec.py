"""The fault-aware pre-execute policy (Section 3.4.2).

A thin policy layer over the shared
:class:`~repro.cpu.runahead.PreExecuteEngine`: it decides whether an
episode is *justified* ("the pre-execute policy must justify the
trade-off in pre-execution") and, if so, runs it over the leftover
busy-wait window.  The justification rule is simple and cheap: the
window remaining after prefetch-walk costs must exceed a minimum number
of pre-executable instructions, otherwise entering pre-execution would
cost more (checkpointing, cache churn) than it could save.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import SimulationError
from repro.cpu.isa import register_written
from repro.cpu.runahead import PreExecuteEngine, PreExecuteStats
from repro.kernel.process import Process


@dataclass
class FaultAwarePreExecutePolicy:
    """Runs justified pre-execute episodes during page-fault waits."""

    engine: PreExecuteEngine
    min_instructions: int = 8
    episodes_run: int = 0
    episodes_rejected: int = 0

    def justified(self, budget_ns: int) -> bool:
        """True if *budget_ns* is worth opening an episode for."""
        per_instr = self.engine.config.its.preexec_instr_ns
        return budget_ns >= self.min_instructions * per_instr

    def run(
        self, process: Process, budget_ns: int
    ) -> tuple[Optional[PreExecuteStats], list[int]]:
        """Pre-execute *process*'s upcoming instructions within
        *budget_ns* if justified.

        The faulting instruction is ``process.trace[process.pc]``; its
        destination register enters the episode INV and pre-execution
        starts at the instruction after it.  Returns the episode stats
        and the non-resident pages the speculative stream discovered
        (``(None, [])`` when rejected).
        """
        if process.finished:
            raise SimulationError("pre-executing a finished process")
        if not self.justified(budget_ns):
            self.episodes_rejected += 1
            return None, []
        self.episodes_run += 1
        faulting = process.trace[process.pc]
        stats, discovered = self.engine.run_episode(
            process.pid,
            process.registers,
            process.trace,
            process.pc + 1,
            budget_ns,
            faulting_reg=register_written(faulting),
        )
        return stats, discovered

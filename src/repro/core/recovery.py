"""The state-recovery policy (Section 3.4.3).

ITS activity runs on the faulting process's CPU context, so the
architectural register file (including PC, SP, branch history and the
return-address stack) is checkpointed to a shadow register file when ITS
activates and restored before ITS ends.  Termination is triggered either
by **polling** (a timer periodically checks I/O completion — the restore
can lag the completion by up to one polling period) or by **interrupt**
(the DMA signals completion — restore happens immediately, at a small
fixed cost).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import SimulationError
from repro.cpu.registers import RegisterFile, ShadowRegisterFile


class RecoveryTrigger(enum.Enum):
    """How the end of the stolen window is detected."""

    POLLING = "polling"
    INTERRUPT = "interrupt"


@dataclass
class StateRecoveryPolicy:
    """Checkpoint/restore of the architectural state around ITS windows."""

    trigger: RecoveryTrigger = RecoveryTrigger.INTERRUPT
    poll_interval_ns: int = 500
    restore_cost_ns: int = 50
    checkpoints: int = 0
    restores: int = 0
    _shadow: Optional[ShadowRegisterFile] = field(default=None, repr=False)

    def checkpoint(self, registers: RegisterFile) -> None:
        """Snapshot the register file into the shadow register file."""
        if self._shadow is not None:
            raise SimulationError("nested ITS checkpoint without restore")
        self._shadow = registers.checkpoint()
        self.checkpoints += 1

    def restore(self, registers: RegisterFile) -> int:
        """Restore the checkpointed state; returns the detection+restore
        latency in nanoseconds.

        Polling detects completion half a period late on average;
        interrupts detect it immediately.  Both pay the fixed restore
        cost of moving the shadow state back.
        """
        if self._shadow is None:
            raise SimulationError("ITS restore without checkpoint")
        registers.restore(self._shadow)
        self._shadow = None
        self.restores += 1
        detection = self.poll_interval_ns // 2 if self.trigger is RecoveryTrigger.POLLING else 0
        return detection + self.restore_cost_ns

    @property
    def armed(self) -> bool:
        """True between checkpoint and restore."""
        return self._shadow is not None

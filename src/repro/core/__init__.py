"""The Idle-Time-Stealing (ITS) design — the paper's contribution.

Composed of:

* :class:`~repro.core.selection.PrioritySelectionPolicy` — decides at
  each major fault whether the faulting process is high-priority
  (self-improving) or low-priority (self-sacrificing) by comparing its
  priority with the next-to-be-run process (Section 3.2).
* :class:`~repro.core.prefetch.VirtualAddressPrefetcher` — the
  page-table-walking page-prefetch policy (Section 3.4.1, Figure 2).
* :class:`~repro.core.preexec.FaultAwarePreExecutePolicy` — the
  pre-execute policy run in leftover busy-wait time (Section 3.4.2,
  Figure 3).
* :class:`~repro.core.recovery.StateRecoveryPolicy` — shadow-register-
  file checkpoint/restore around ITS activity (Section 3.4.3).
* :class:`~repro.core.self_improving.SelfImprovingThread` and
  :class:`~repro.core.self_sacrificing.SelfSacrificingThread` — the two
  ITS kernel threads (Sections 3.3-3.4).
* :class:`~repro.core.its.ITSPolicy` — the composed I/O policy the
  simulator installs.
"""

from repro.core.selection import PriorityClass, PrioritySelectionPolicy
from repro.core.prefetch import (
    PrefetcherStats,
    StridePrefetcher,
    VirtualAddressPrefetcher,
)
from repro.core.preexec import FaultAwarePreExecutePolicy
from repro.core.recovery import RecoveryTrigger, StateRecoveryPolicy
from repro.core.self_improving import SelfImprovingThread
from repro.core.self_sacrificing import SelfSacrificingThread
from repro.core.its import ITSPolicy

__all__ = [
    "PriorityClass",
    "PrioritySelectionPolicy",
    "PrefetcherStats",
    "VirtualAddressPrefetcher",
    "StridePrefetcher",
    "FaultAwarePreExecutePolicy",
    "RecoveryTrigger",
    "StateRecoveryPolicy",
    "SelfImprovingThread",
    "SelfSacrificingThread",
    "ITSPolicy",
]

"""The composed Idle-Time-Stealing I/O policy.

``ITSPolicy`` is what the simulator installs to reproduce the "ITS" bars
of Figures 4 and 5.  Per major fault, the priority-aware thread
selection policy picks one of the two ITS kernel threads; replacement is
the priority-aware LRU (the self-sacrificing thread's memory-contention
benefit); pre-execution uses half the LLC as the pre-execute cache, as
in the paper's platform.

Every component can be disabled independently for ablations::

    ITSPolicy(prefetch=False)          # pre-execution + sacrifice only
    ITSPolicy(preexec=False)           # prefetch + sacrifice only
    ITSPolicy(self_sacrifice=False)    # self-improving thread only

Under fault injection (``MachineConfig.faults``) the self-improving
thread additionally degrades gracefully: a steal window that outgrows
``demote_after_ns`` is demoted to the async baseline path after state
recovery (see :mod:`repro.core.self_improving`); :attr:`ITSPolicy.demotions`
counts how often that happened in the attached run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.baselines.base import IOPolicy
from repro.common.errors import SimulationError
from repro.core.preexec import FaultAwarePreExecutePolicy
from repro.core.prefetch import StridePrefetcher, VirtualAddressPrefetcher
from repro.core.recovery import RecoveryTrigger, StateRecoveryPolicy
from repro.core.selection import PriorityClass, PrioritySelectionPolicy
from repro.core.self_improving import SelfImprovingThread
from repro.core.self_sacrificing import SelfSacrificingThread
from repro.kernel.kthread import KernelThread
from repro.kernel.process import Process
from repro.vm.replacement import (
    GlobalLRUPolicy,
    PriorityAwareLRUPolicy,
    ReplacementPolicy,
)

if TYPE_CHECKING:
    from repro.sim.simulator import Simulation


class ITSPolicy(IOPolicy):
    """The paper's Idle-Time-Stealing design."""

    name = "ITS"

    def __init__(
        self,
        *,
        prefetch: bool = True,
        preexec: bool = True,
        self_sacrifice: bool = True,
        priority_aware_replacement: bool = True,
        prefetch_discovered: bool = False,
        prefetcher_kind: str = "va",
        recovery_trigger: RecoveryTrigger = RecoveryTrigger.INTERRUPT,
    ) -> None:
        if prefetcher_kind not in ("va", "stride"):
            raise ValueError(f"unknown prefetcher kind {prefetcher_kind!r}")
        self.prefetch_enabled = prefetch
        self.preexec_enabled = preexec
        self.self_sacrifice_enabled = self_sacrifice
        self.priority_aware_replacement = priority_aware_replacement
        self.prefetch_discovered = prefetch_discovered
        self.prefetcher_kind = prefetcher_kind
        self.recovery_trigger = recovery_trigger
        self.uses_preexec_cache = preexec

    # -- construction hooks -----------------------------------------------

    def create_replacement(self, processes: Sequence[Process]) -> ReplacementPolicy:
        if not self.priority_aware_replacement:
            return GlobalLRUPolicy()
        priorities = {p.pid: p.priority for p in processes}
        ordered = sorted(priorities.values())
        median = ordered[len(ordered) // 2]

        def is_low_priority(pid: int) -> bool:
            return priorities[pid] < median

        return PriorityAwareLRUPolicy(is_low_priority, scan_limit=16)

    def attach(self, sim: "Simulation") -> None:
        super().attach(sim)
        its_config = sim.config.its
        self.selection = PrioritySelectionPolicy()

        prefetcher = None
        if self.prefetch_enabled:
            if self.prefetcher_kind == "stride":
                prefetcher = StridePrefetcher(
                    sim.machine.memory, degree=its_config.prefetch_degree
                )
            else:
                prefetcher = VirtualAddressPrefetcher(
                    sim.machine.memory, degree=its_config.prefetch_degree
                )
        preexec_policy = None
        if self.preexec_enabled:
            engine = sim.machine.preexec_engine
            if engine is None:
                raise SimulationError("ITS with pre-execution needs the engine")
            preexec_policy = FaultAwarePreExecutePolicy(engine)

        self.recovery = StateRecoveryPolicy(trigger=self.recovery_trigger)
        telemetry = sim.telemetry
        self.improving = SelfImprovingThread(
            kthread=KernelThread(
                "self-improving", its_config.kernel_entry_ns, telemetry=telemetry
            ),
            prefetcher=prefetcher,
            preexec=preexec_policy,
            recovery=self.recovery,
            prefetch_discovered=self.prefetch_discovered,
        )
        self.sacrificing = SelfSacrificingThread(
            kthread=KernelThread(
                "self-sacrificing", its_config.kernel_entry_ns, telemetry=telemetry
            ),
            prefetcher=prefetcher,
        )

    @property
    def demotions(self) -> int:
        """Steal windows demoted to the async path (0 before attach)."""
        improving = getattr(self, "improving", None)
        return improving.demotions if improving is not None else 0

    # -- the fault path ------------------------------------------------------

    def on_major_fault(self, sim: "Simulation", process: Process, vpn: int) -> None:
        telemetry = sim.telemetry
        selected = PriorityClass.HIGH
        if self.self_sacrifice_enabled:
            # classify() tallies its Python fields and mirrors them into
            # the its.selection.high/low counters, so the two stay equal.
            selected = self.selection.classify(
                process, sim.scheduler, telemetry=telemetry
            )
        if telemetry is not None:
            # Selection is free in the cost model (one priority compare
            # inside the handler); the instant marks which way it went.
            telemetry.instant(
                "fault.its.selection", sim.machine.now_ns,
                track="its", pid=process.pid, args={"class": selected.value},
            )
        if selected is PriorityClass.LOW:
            self.sacrificing.handle_fault(sim, process, vpn)
        else:
            self.improving.handle_fault(sim, process, vpn)

"""The self-improving kernel thread (Section 3.4).

For a high-priority process, the major fault is served synchronously,
and the busy-wait window is stolen: the thread activates (kernel-entry
cost only, Section 3.2), runs the page-prefetch policy over DMA, spends
whatever window remains on fault-aware pre-execution, and finally the
state-recovery policy restores the checkpointed context when the demand
I/O completes.

Graceful degradation: when fault injection is active and a steal window
stretches past ``FaultConfig.demote_after_ns`` (tail read, DMA retries,
fallback path), committing to the synchronous wait would be worse than a
context switch.  The thread then *demotes* the fault: it steals only up
to the deadline, restores the checkpoint via the state-recovery policy,
and blocks the process so the rest of the wait behaves like the async
baseline (queue-head resume with the residual slice, mirroring the
self-sacrificing path).  Demotions surface as ``its.demote.*`` counters
and ``fault.its.demote`` spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.preexec import FaultAwarePreExecutePolicy
from repro.core.prefetch import VirtualAddressPrefetcher
from repro.core.recovery import StateRecoveryPolicy
from repro.kernel.kthread import KernelThread
from repro.kernel.process import Process
from repro.telemetry.registry import DEFAULT_COUNT_BOUNDS, PERCENT_BOUNDS

if TYPE_CHECKING:
    from repro.sim.simulator import Simulation


@dataclass
class SelfImprovingThread:
    """Steals synchronous busy-wait windows for prefetch + pre-execution."""

    kthread: KernelThread
    prefetcher: Optional[VirtualAddressPrefetcher]
    preexec: Optional[FaultAwarePreExecutePolicy]
    recovery: StateRecoveryPolicy
    prefetch_discovered: bool = False
    """Also prefetch the non-resident pages the speculative stream
    touched.  An extension beyond the paper (its prefetcher is purely
    VA-adjacent); off by default, available for the ablation bench."""
    windows_stolen: int = 0
    stolen_ns: int = 0
    demotions: int = 0
    demoted_wait_ns: int = 0

    def handle_fault(self, sim: "Simulation", process: Process, vpn: int) -> None:
        """Serve a high-priority major fault synchronously, stealing the
        wait window."""
        machine = sim.machine
        telemetry = sim.telemetry
        fault_start = machine.now_ns
        fault = machine.fault_handler.begin_major_fault(
            process.pid, vpn, machine.now_ns
        )
        sim.metrics.add_handler_overhead(machine.config.fault_handler_ns)
        window_ns = fault.io_done_ns - fault.handler_done_ns
        faults_cfg = machine.config.faults
        if (
            faults_cfg.enabled
            and faults_cfg.demote_after_ns > 0
            and window_ns > faults_cfg.demote_after_ns
        ):
            self._demote(sim, process, vpn, fault, fault_start, window_ns)
            return
        causal = telemetry.causal if telemetry is not None else None
        if causal is not None:
            # The steal window scopes everything the kernel thread does
            # (entry, prefetch issues, pre-execution) under one node.
            steal_id = causal.add(
                "steal", fault.handler_done_ns,
                pid=process.pid, vpn=vpn,
                parent=causal.fault_of(process.pid), window_ns=window_ns,
            )
            causal.push(steal_id)
        work_start, budget_ns = self.kthread.activate(fault.handler_done_ns, window_ns)
        # For tracing, the entry/checkpoint phase cannot outlast the
        # window itself (a too-small window means the thread never ran).
        entry_end_ns = min(work_start, fault.io_done_ns)
        walk_end_ns = entry_end_ns
        preexec_end_ns = entry_end_ns

        recovery_latency = 0
        if budget_ns > 0 and not process.finished:
            self.windows_stolen += 1
            self.stolen_ns += budget_ns
            sim.log_event("steal", process.pid, vpn)
            self.recovery.checkpoint(process.registers)

            if self.prefetcher is not None:
                candidates, walk_cost_ns = self.prefetcher.collect(process.pid, vpn)
                budget_ns = max(0, budget_ns - walk_cost_ns)
                walk_end_ns = min(work_start + walk_cost_ns, fault.io_done_ns)
                for candidate in candidates:
                    sim.issue_prefetch(process.pid, candidate, at_ns=work_start)
                if telemetry is not None:
                    distance_hist = telemetry.histogram(
                        "its.prefetch.distance_pages", DEFAULT_COUNT_BOUNDS
                    )
                    for candidate in candidates:
                        distance_hist.observe(abs(candidate - vpn))
            preexec_end_ns = walk_end_ns

            if self.preexec is not None and process.pc + 1 < len(process.trace):
                episode, discovered = self.preexec.run(process, budget_ns)
                preexec_end_ns = min(
                    walk_end_ns
                    + episode.instructions * machine.config.its.preexec_instr_ns,
                    fault.io_done_ns,
                )
                # Pages the speculative stream found missing are known
                # future faults — prime prefetch candidates (extension,
                # see ``prefetch_discovered``).
                if self.prefetch_discovered and self.prefetcher is not None:
                    for candidate in discovered[: self.prefetcher.degree]:
                        sim.issue_prefetch(process.pid, candidate, at_ns=work_start)

            recovery_latency = self.recovery.restore(process.registers)

        if causal is not None:
            causal.pop()
            causal.add(
                "resume", fault.io_done_ns + recovery_latency,
                pid=process.pid, vpn=vpn,
                parent=causal.fault_of(process.pid),
            )
        # The window itself is still CPU idle time — committed progress
        # is stalled on storage throughout (the stolen work pays off as
        # *fewer future* faults and misses, which is what Section 4.2.1
        # attributes the idle-time reduction to).  Ledger split: handler
        # run, kernel-thread phases (entry/walk/runahead/restore) stolen
        # run, residual busy-wait spin.
        sim.consume_time(
            process, fault.io_done_ns - machine.now_ns + recovery_latency,
            category=None,
        )
        sim.charge_time(process.pid, "run", machine.config.fault_handler_ns)
        sim.charge_time(
            process.pid, "stolen_run",
            (preexec_end_ns - fault.handler_done_ns) + recovery_latency,
        )
        sim.charge_time(
            process.pid, "spin_wait", fault.io_done_ns - preexec_end_ns
        )
        sim.metrics.add_sync_storage_wait(window_ns)
        process.stats.storage_wait_ns += window_ns
        process.stats.sync_faults += 1
        machine.memory.install_page(process.pid, vpn)
        if telemetry is not None:
            self._trace_fault_phases(
                telemetry,
                pid=process.pid,
                vpn=vpn,
                fault_start=fault_start,
                handler_done=fault.handler_done_ns,
                work_start=entry_end_ns,
                walk_end=walk_end_ns,
                preexec_end=preexec_end_ns,
                io_done=fault.io_done_ns,
                recovery_latency=recovery_latency,
                window_ns=window_ns,
            )

    def _demote(
        self,
        sim: "Simulation",
        process: Process,
        vpn: int,
        fault,
        fault_start: int,
        window_ns: int,
    ) -> None:
        """Gracefully degrade a stalled steal window to the async path.

        The window turned out longer than the demotion deadline (tail
        read, DMA retries, fallback recovery), so committing to the
        synchronous wait would cost more than a context switch.  The
        thread steals only up to the deadline — checkpoint, prefetch
        walk, pre-execution within the truncated budget — then the
        state-recovery policy restores the checkpointed registers and
        the process blocks.  The remainder of the wait is ordinary
        asynchronous idle; on completion the process re-enters at the
        queue head with its residual slice (the self-sacrificing resume
        contract), so demotion never costs it a turn.
        """
        machine = sim.machine
        telemetry = sim.telemetry
        causal = telemetry.causal if telemetry is not None else None
        deadline_ns = machine.config.faults.demote_after_ns
        deadline_abs = fault.handler_done_ns + deadline_ns
        self.demotions += 1
        self.demoted_wait_ns += window_ns - deadline_ns
        sim.log_event("demote", process.pid, vpn)

        if causal is not None:
            demote_id = causal.add(
                "demote", fault.handler_done_ns,
                pid=process.pid, vpn=vpn,
                parent=causal.fault_of(process.pid),
                window_ns=window_ns, deadline_ns=deadline_ns,
            )
            causal.push(demote_id)
        work_start, budget_ns = self.kthread.activate(
            fault.handler_done_ns, deadline_ns
        )
        stole = budget_ns > 0 and not process.finished
        recovery_latency = 0
        if budget_ns > 0 and not process.finished:
            self.windows_stolen += 1
            self.stolen_ns += budget_ns
            self.recovery.checkpoint(process.registers)
            if self.prefetcher is not None:
                candidates, walk_cost_ns = self.prefetcher.collect(process.pid, vpn)
                budget_ns = max(0, budget_ns - walk_cost_ns)
                for candidate in candidates:
                    sim.issue_prefetch(process.pid, candidate, at_ns=work_start)
            if self.preexec is not None and process.pc + 1 < len(process.trace):
                self.preexec.run(process, budget_ns)
            recovery_latency = self.recovery.restore(process.registers)

        if causal is not None:
            causal.pop()
        # The CPU is occupied from the fault through the deadline and the
        # register restore; only that truncated slice of the window stays
        # synchronous idle — the abandoned remainder is async wait.
        # Ledger: the occupied slice is stolen run when the kernel thread
        # got a budget, residual spin otherwise; the abandoned remainder
        # books as demoted_wait from the idle loop while this fault is
        # pending.
        sim.consume_time(
            process, deadline_abs - machine.now_ns + recovery_latency,
            category=None,
        )
        sim.charge_time(process.pid, "run", machine.config.fault_handler_ns)
        occupied_ns = deadline_abs - fault.handler_done_ns
        if stole:
            sim.charge_time(
                process.pid, "stolen_run", occupied_ns + recovery_latency
            )
        else:
            sim.charge_time(process.pid, "spin_wait", occupied_ns)
        sim.metrics.add_sync_storage_wait(deadline_ns)
        process.stats.storage_wait_ns += deadline_ns
        process.stats.async_faults += 1
        blocked_from = machine.now_ns
        resume_at = max(fault.io_done_ns, blocked_from)
        sim.note_demote_blocked(+1)

        def complete(__event) -> None:
            if not machine.memory.is_resident_or_cached(process.pid, vpn):
                machine.memory.install_page(process.pid, vpn)
            sim.scheduler.unblock(process, resume=True, ready_ns=resume_at)
            sim.note_demote_blocked(-1)
            if causal is not None:
                unblock_id = causal.add(
                    "unblock", resume_at,
                    pid=process.pid, vpn=vpn,
                    parent=causal.fault_of(process.pid),
                )
                causal.note_unblock(process.pid, unblock_id)

        machine.events.schedule_at(
            resume_at, tag=f"demote:{process.pid}:{vpn:#x}", callback=complete
        )
        sim.scheduler.block_current()
        if telemetry is not None:
            telemetry.counter("its.demote.count").inc()
            telemetry.histogram("its.demote.window_ns").observe(window_ns)
            telemetry.record_span(
                "fault.its.demote", fault_start, blocked_from,
                track="its", pid=process.pid, args={"vpn": vpn},
            )
            telemetry.record_span(
                "fault.its.demote.blocked", blocked_from, resume_at,
                track="cpu", pid=process.pid, args={"vpn": vpn},
            )
            telemetry.histogram("fault.service_ns").observe(resume_at - fault_start)

    def _trace_fault_phases(
        self,
        telemetry,
        *,
        pid: int,
        vpn: int,
        fault_start: int,
        handler_done: int,
        work_start: int,
        walk_end: int,
        preexec_end: int,
        io_done: int,
        recovery_latency: int,
        window_ns: int,
    ) -> None:
        """Emit the per-phase spans and window histograms of one stolen
        fault.

        The child phases tile the parent ``fault.its`` span exactly:
        handler -> checkpoint (kernel entry + register snapshot) ->
        prefetch_walk -> runahead -> wait (residual busy-wait) ->
        restore, so summed child durations equal the parent duration.
        """
        end = io_done + recovery_latency
        args = {"vpn": vpn}
        telemetry.record_span(
            "fault.its", fault_start, end, track="its", pid=pid, args=args
        )
        telemetry.record_span(
            "fault.its.checkpoint", handler_done, work_start, track="its", pid=pid
        )
        if walk_end > work_start:
            telemetry.record_span(
                "fault.its.prefetch_walk", work_start, walk_end, track="its", pid=pid
            )
        if preexec_end > walk_end:
            telemetry.record_span(
                "fault.its.runahead", walk_end, preexec_end, track="its", pid=pid
            )
        if io_done > preexec_end:
            telemetry.record_span(
                "fault.its.wait", preexec_end, io_done, track="its", pid=pid
            )
        if recovery_latency > 0:
            telemetry.record_span(
                "fault.its.restore", io_done, end, track="its", pid=pid
            )
        telemetry.histogram("fault.service_ns").observe(end - fault_start)
        telemetry.histogram("its.steal.window_ns").observe(window_ns)
        if window_ns > 0:
            used_ns = preexec_end - handler_done  # entry + walk + runahead
            telemetry.histogram(
                "its.steal.utilization_pct", PERCENT_BOUNDS
            ).observe(100 * used_ns / window_ns)

"""The self-sacrificing kernel thread (Section 3.3).

When a *low-priority* process takes a major fault, the thread switches
the request to asynchronous mode and forces the process off the CPU even
though its time slice remains: high-priority processes get the CPU (and,
with the priority-aware replacement policy, the memory pool) sooner, and
the low-priority process still finishes no later because it gets
dedicated resources once the high-priority ones complete.

The demoted swap-in keeps the kernel's swap-cluster readahead (the ITS
kernel is crafted from Linux 4.4, whose ``swapin_readahead`` clusters
neighbouring swap pages into the same DMA): the thread runs the same
virtual-address-based prefetch walk before switching out, dispatching
the candidates over DMA.  This costs only the walk (charged to the
faulting process before it yields) — the transfers themselves never
touch the CPU.  Without it, every demotion would strictly starve the
low-priority process relative to the Sync_Prefetch baseline, which is
the opposite of the paper's Figure 5b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.baselines.async_io import block_on_fault
from repro.core.prefetch import VirtualAddressPrefetcher
from repro.kernel.kthread import KernelThread
from repro.kernel.process import Process
from repro.telemetry.registry import DEFAULT_COUNT_BOUNDS

if TYPE_CHECKING:
    from repro.sim.simulator import Simulation


@dataclass
class SelfSacrificingThread:
    """Demotes low-priority faults from synchronous to asynchronous."""

    kthread: KernelThread
    prefetcher: Optional[VirtualAddressPrefetcher] = None
    sacrifices: int = 0

    def handle_fault(self, sim: "Simulation", process: Process, vpn: int) -> None:
        """Switch the fault to asynchronous mode and yield the CPU."""
        telemetry = sim.telemetry
        causal = telemetry.causal if telemetry is not None else None
        start_ns = sim.machine.now_ns
        self.sacrifices += 1
        sim.log_event("sacrifice", process.pid, vpn)
        if causal is not None:
            # The sacrifice decision precedes the fault record (the
            # fault is registered when the async servicing begins), so
            # it opens a scope the fault will attach under.
            sacrifice_id = causal.add(
                "sacrifice", start_ns, pid=process.pid, vpn=vpn,
                parent=causal.parent,
            )
            causal.push(sacrifice_id)
        self.kthread.activate(sim.machine.now_ns, self.kthread.entry_cost_ns)
        # The mode-switch decision itself runs in kernel space for a few
        # hundred nanoseconds on the faulting process's time (ledger:
        # stolen run — it is ITS thread work, not process progress).
        sim.consume_time(
            process, self.kthread.entry_cost_ns, category="stolen_run"
        )
        entry_done_ns = sim.machine.now_ns
        if self.prefetcher is not None:
            candidates, walk_cost_ns = self.prefetcher.collect(process.pid, vpn)
            sim.consume_time(process, walk_cost_ns, category="stolen_run")
            for candidate in candidates:
                sim.issue_prefetch(process.pid, candidate)
            if telemetry is not None:
                if walk_cost_ns > 0:
                    telemetry.record_span(
                        "fault.sacrifice.prefetch_walk",
                        entry_done_ns,
                        entry_done_ns + walk_cost_ns,
                        track="its",
                        pid=process.pid,
                    )
                distance_hist = telemetry.histogram(
                    "its.prefetch.distance_pages", DEFAULT_COUNT_BOUNDS
                )
                for candidate in candidates:
                    distance_hist.observe(abs(candidate - vpn))
        if telemetry is not None:
            telemetry.record_span(
                "fault.sacrifice", start_ns, sim.machine.now_ns,
                track="its", pid=process.pid, args={"vpn": vpn},
            )
        try:
            block_on_fault(sim, process, vpn, resume=True)
        finally:
            if causal is not None:
                causal.pop()

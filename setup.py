"""Legacy setup shim.

The environment ships an offline setuptools without the ``wheel``
package, so PEP 517/660 editable installs (which need ``bdist_wheel``)
fail; this shim lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Ablation: adding an L1 level above the LLC (fidelity extension).

The paper's simulator models the LLC only; real runahead literature
populates L1/L2.  With a small fast L1, repeated-line hits stop paying
the LLC latency, shrinking every policy's memory time — but the
*relative* story (ITS best, Async worst) must be insensitive to this
modelling choice, which is what this bench verifies.
"""

import dataclasses

from repro import AsyncIOPolicy, MachineConfig, Simulation, SyncIOPolicy, build_batch
from repro.common.config import CacheConfig
from repro.common.units import KIB
from repro.core import ITSPolicy

SEED = 1
SCALE = 0.5
L1 = CacheConfig(size_bytes=32 * KIB, ways=8, line_size=64, hit_latency_ns=4)


def _run_cells():
    cells = {}
    for with_l1 in (False, True):
        config = dataclasses.replace(
            MachineConfig(), l1=L1 if with_l1 else None
        )
        for policy_cls in (SyncIOPolicy, AsyncIOPolicy, ITSPolicy):
            batch = build_batch("1_Data_Intensive", seed=SEED, scale=SCALE, config=config)
            result = Simulation(
                config, batch, policy_cls(), batch_name="l1_ablation"
            ).run()
            cells[(policy_cls().name, with_l1)] = result
    return cells


def bench_ablation_l1_level(benchmark):
    """Toggle the L1 and verify the orderings are model-insensitive."""
    cells = benchmark.pedantic(_run_cells, rounds=1, iterations=1)
    print()
    print("Ablation: optional L1 level (1_Data_Intensive)")
    print("policy  L1     idle(ms)  makespan(ms)")
    for (policy, with_l1), result in cells.items():
        print(
            f"{policy:6s} {str(with_l1):5s}  {result.total_idle_ns / 1e6:8.3f}"
            f"  {result.makespan_ns / 1e6:12.3f}"
        )
    for with_l1 in (False, True):
        # The orderings hold with and without the L1.
        assert (
            cells[("ITS", with_l1)].total_idle_ns
            < cells[("Sync", with_l1)].total_idle_ns
            < cells[("Async", with_l1)].total_idle_ns
        ), with_l1
    # The L1 speeds up everyone (or at worst is neutral).
    for policy in ("Sync", "Async", "ITS"):
        assert (
            cells[(policy, True)].makespan_ns
            <= 1.02 * cells[(policy, False)].makespan_ns
        ), policy

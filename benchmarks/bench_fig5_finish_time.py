"""Figure 5: average process finish time, top and bottom priority halves.

Paper shape:

* Fig 5a (top 50%): ITS best everywhere — 65-75% faster than Async,
  11-33% faster than Sync.
* Fig 5b (bottom 50%): ITS still best — up to 58% faster than Async and
  21-27% faster than Sync (self-sacrificing processes catch up once the
  high-priority ones finish early and free the machine).

Documented deviation: at our scaled slice lengths the ITS-vs-
Sync_Prefetch comparison on the bottom half can invert (see
EXPERIMENTS.md); the bench asserts the paper ordering against Async,
Sync and Sync_Runahead.
"""

from repro.analysis.results import MetricKind

from benchmarks._shared import figure_grid, print_with_expectation, series_from_grid


def _compute_fig5():
    grid = figure_grid()
    top = series_from_grid(
        grid,
        MetricKind.FINISH_TOP_HALF,
        "Fig 5a: avg finish time, top 50% priority (ns)",
    )
    bottom = series_from_grid(
        grid,
        MetricKind.FINISH_BOTTOM_HALF,
        "Fig 5b: avg finish time, bottom 50% priority (ns)",
    )
    return top, bottom


def bench_fig5a_top_half_finish(benchmark):
    """Regenerate Figure 5a and verify its shape."""
    top, __ = benchmark.pedantic(_compute_fig5, rounds=1, iterations=1)
    print_with_expectation(
        top, "ITS best; Async worst (2.8-4.1x ITS); Sync 1.1-1.5x ITS"
    )
    for i, batch in enumerate(top.x_labels):
        values = {name: top.series[name][i] for name in top.series}
        assert values["ITS"] == min(values.values()), (batch, values)
        assert values["Async"] == max(values.values()), (batch, values)
        assert values["ITS"] < 0.5 * values["Async"], (batch, values)


def bench_fig5b_bottom_half_finish(benchmark):
    """Regenerate Figure 5b and verify its shape."""
    __, bottom = benchmark.pedantic(_compute_fig5, rounds=1, iterations=1)
    print_with_expectation(
        bottom,
        "ITS best; saves up to 58% vs Async, 21-27% vs Sync, 13-24% vs "
        "Sync_Runahead, 11-17% vs Sync_Prefetch",
    )
    for i, batch in enumerate(bottom.x_labels):
        values = {name: bottom.series[name][i] for name in bottom.series}
        assert values["ITS"] < values["Async"], (batch, values)
        assert values["ITS"] < 1.05 * values["Sync"], (batch, values)
        assert values["ITS"] < 1.05 * values["Sync_Runahead"], (batch, values)

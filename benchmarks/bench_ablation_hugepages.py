"""Ablation: page size (the paper's huge-page motivation).

Section 1: the busy-wait waste "becomes more pronounced, particularly
when dealing with larger I/O sizes like huge page management".  This
bench sweeps the page size from 4 KiB to 64 KiB (DRAM bytes held
constant) and shows two things:

1. with the prefetch degree *adapted* to the page size (constant bytes
   in flight), ITS beats Sync at 4 and 16 KiB and stays within noise of
   it at 64 KiB — the edge narrows as the page transfer time itself
   approaches the context-switch cost, i.e. exactly as the premise of
   synchronous mode fades;
2. with the degree left at the 4 KiB default, huge-page prefetching
   floods the PCIe link and evicts a third of DRAM per fault — ITS
   degrades far below Sync.  Prefetch aggressiveness is not free at
   large page sizes.
"""

import dataclasses

from repro import ITSPolicy, MachineConfig, Simulation, SyncIOPolicy, build_batch
from repro.common.units import KIB

PAGE_SIZES_KIB = (4, 16, 64)
SEED = 7
SCALE = 0.5


def _config_for(page_kib: int, degree: int) -> MachineConfig:
    base = MachineConfig()
    frames = max(16, base.memory.dram_bytes // (page_kib * KIB))
    return dataclasses.replace(
        base,
        memory=dataclasses.replace(
            base.memory, page_size=page_kib * KIB, dram_frames=frames
        ),
        its=dataclasses.replace(base.its, prefetch_degree=degree),
    )


def _run_sweep():
    rows = []
    for page_kib in PAGE_SIZES_KIB:
        adapted_degree = max(1, 8 * 4 // page_kib)
        naive_degree = 8
        cells = {}
        for label, degree, policy_cls in (
            ("sync", 0, SyncIOPolicy),
            ("its_adapted", adapted_degree, ITSPolicy),
            ("its_naive", naive_degree, ITSPolicy),
        ):
            config = _config_for(page_kib, degree)
            batch = build_batch("1_Data_Intensive", seed=SEED, scale=SCALE, config=config)
            cells[label] = Simulation(
                config, batch, policy_cls(), batch_name=f"hugepages_{page_kib}k"
            ).run()
        rows.append((page_kib, adapted_degree, cells))
    return rows


def bench_ablation_page_size(benchmark):
    """Sweep the page size and verify the adapted-ITS advantage."""
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print("Ablation: page size (DRAM bytes constant; 1_Data_Intensive)")
    print("page(KiB)  n   sync idle(ms)  ITS-adapted(ms)  ITS-naive-n8(ms)")
    for page_kib, degree, cells in rows:
        print(
            f"{page_kib:9d}  {degree:2d}  {cells['sync'].total_idle_ns / 1e6:13.3f}"
            f"  {cells['its_adapted'].total_idle_ns / 1e6:15.3f}"
            f"  {cells['its_naive'].total_idle_ns / 1e6:16.3f}"
        )
    for page_kib, __, cells in rows:
        # Adapted ITS beats Sync outright at small pages and never loses
        # by more than noise as the transfer time approaches the switch
        # cost.
        if page_kib <= 16:
            assert (
                cells["its_adapted"].total_idle_ns < cells["sync"].total_idle_ns
            ), page_kib
        else:
            assert (
                cells["its_adapted"].total_idle_ns
                < 1.1 * cells["sync"].total_idle_ns
            ), page_kib
    # At the largest page size, the naive 4 KiB-tuned degree backfires.
    __, ___, largest = rows[-1]
    assert largest["its_naive"].total_idle_ns > 2 * largest["its_adapted"].total_idle_ns

"""Figure 4a: normalized total CPU idle time, per batch, per policy.

Regenerates the series the paper plots: four batches (0-3 data-intensive
processes among six) x five policies, idle time normalised to ITS.
Paper shape: ITS saves 61-66% vs Async, 17-43% vs Sync, 7-37% vs
Sync_Runahead, and 10-15% vs Sync_Prefetch.
"""

from repro.analysis.results import MetricKind

from benchmarks._shared import figure_grid, print_with_expectation, series_from_grid


def _compute_fig4a():
    grid = figure_grid()
    return series_from_grid(
        grid, MetricKind.IDLE_TIME, "Fig 4a: total CPU idle time (ns)"
    )


def bench_fig4a_idle_time(benchmark):
    """Regenerate Figure 4a and verify its shape."""
    series = benchmark.pedantic(_compute_fig4a, rounds=1, iterations=1)
    print_with_expectation(
        series,
        "ITS < Sync_Prefetch (1.11-1.18x) < Sync_Runahead < Sync (1.2-1.75x) "
        "< Async (2.59-2.95x)",
    )
    normalized = series.normalized_to("ITS")
    for i, batch in enumerate(normalized.x_labels):
        values = {name: normalized.series[name][i] for name in normalized.series}
        assert (
            values["ITS"]
            < values["Sync_Prefetch"]
            < values["Sync_Runahead"]
            < values["Sync"]
            < values["Async"]
        ), (batch, values)

"""Shared infrastructure for the benchmark harness.

The three Figure 4 panels and both Figure 5 panels come from the same
(batch x policy x seed) grid; this module caches that grid per
(seeds, scale) so each bench file reuses it instead of re-simulating.

Two cache layers stack here:

* **In-process** (``_GRID_CACHE``): one pytest invocation collecting
  several bench files simulates the grid once and shares it.
* **On-disk** (:class:`repro.analysis.runner.ResultCache`): every grid
  cell is content-addressed by its config/batch/policy/seed/scale hash,
  so a *repeated* bench invocation — or one interrupted halfway and
  restarted — re-simulates nothing.  Benches discover the cache
  directory from ``--cache-dir``, falling back to ``$REPRO_CACHE_DIR``
  and then ``~/.cache/repro-its`` (the same resolution the CLI uses;
  ``repro cache stats`` / ``repro cache clear`` manage it).  ``--no-cache``
  opts out.

``--workers N`` fans uncached cells out on a process pool; because each
cell is seeded independently and shares no state, the grid is bit-for-bit
identical at any worker count.  A per-cell progress line and a final
hit/miss summary (fed by the runner's ``runner.cache.*`` telemetry
counters) are printed to stderr as the grid fills.
"""

from __future__ import annotations

import sys
from typing import Sequence

from repro import MachineConfig
from repro.analysis.experiments import (
    PAPER_POLICIES,
    run_batch_policy,
)
from repro.analysis.results import FigureSeries, MetricKind, average_results
from repro.sim.batch import batch_names

SEEDS = (1, 2, 3)
SCALE = 1.0

TRACE_OUT: str | None = None
"""Directory for per-cell Chrome traces; set by ``--trace-out`` in
``benchmarks/conftest.py``, ``None`` disables tracing (the default).
Tracing forces the serial, uncached path."""

WORKERS: int = 1
"""Process-pool size for grid simulation; set by ``--workers``."""

CACHE_DIR: str | None = None
"""Result-cache directory override; set by ``--cache-dir``."""

NO_CACHE: bool = False
"""Bypass the on-disk result cache; set by ``--no-cache``."""

_GRID_CACHE: dict = {}


def _run_cell_traced(config, batch: str, policy: str, seed: int, scale: float):
    """One grid cell with telemetry attached and its trace exported."""
    from pathlib import Path

    from repro.telemetry import Telemetry, export_chrome_trace

    telemetry = Telemetry(events=False)
    result = run_batch_policy(
        config, batch, policy, seed=seed, scale=scale, telemetry=telemetry
    )
    out_dir = Path(TRACE_OUT)
    out_dir.mkdir(parents=True, exist_ok=True)
    export_chrome_trace(
        telemetry,
        out_dir / f"{batch}.{policy}.seed{seed}.trace.json",
        process_name=f"{policy} on {batch} (seed {seed})",
    )
    return result


def _traced_grid(config, seeds: Sequence[int], scale: float):
    """Serial, uncached grid for ``--trace-out`` (per-cell telemetry)."""
    grid = {}
    for batch in batch_names():
        grid[batch] = {policy: [] for policy in PAPER_POLICIES}
        for seed in seeds:
            for policy in PAPER_POLICIES:
                grid[batch][policy].append(
                    _run_cell_traced(config, batch, policy, seed, scale)
                )
    return grid


def _engine_grid(config, seeds: Sequence[int], scale: float):
    """Grid via the parallel/cached sweep engine (the default path)."""
    from repro.analysis.runner import ResultCache, run_grid
    from repro.telemetry import Telemetry

    cache = None if NO_CACHE else ResultCache(CACHE_DIR)
    telemetry = Telemetry(events=False)

    def progress(done, total, cell, cached):
        tag = "cache" if cached else "ran"
        print(f"  [grid {done}/{total}] {cell.describe()} ({tag})", file=sys.stderr)

    grid = run_grid(
        config,
        batches=batch_names(),
        policies=list(PAPER_POLICIES),
        seeds=seeds,
        scale=scale,
        workers=WORKERS,
        cache=cache,
        telemetry=telemetry,
        progress=progress,
    )
    hits = telemetry.counter("runner.cache.hit").value
    misses = telemetry.counter("runner.cache.miss").value
    where = "cache disabled" if cache is None else f"cache {cache.root}"
    print(
        f"grid: {hits} cache hits, {misses} simulated "
        f"(workers={WORKERS}, {where})",
        file=sys.stderr,
    )
    return grid


def figure_grid(seeds: Sequence[int] = SEEDS, scale: float = SCALE):
    """results[batch][policy] -> list of per-seed SimulationResult."""
    key = (tuple(seeds), scale)
    if key not in _GRID_CACHE:
        config = MachineConfig()
        if TRACE_OUT is not None:
            _GRID_CACHE[key] = _traced_grid(config, seeds, scale)
        else:
            _GRID_CACHE[key] = _engine_grid(config, seeds, scale)
    return _GRID_CACHE[key]


def series_from_grid(grid, metric: MetricKind, title: str) -> FigureSeries:
    """Collapse the cached grid into one figure's series."""
    policies = list(PAPER_POLICIES)
    series = {policy: [] for policy in policies}
    for batch in grid:
        averages = average_results(grid[batch], metric)
        for policy in policies:
            series[policy].append(averages.values[policy])
    return FigureSeries(
        title=title, metric=metric, x_labels=list(grid), series=series
    )


def print_with_expectation(series: FigureSeries, expectation: str) -> None:
    """Print the measured series (normalised to ITS) plus the paper's
    expected shape, in the same orientation as the paper's figures."""
    from repro.analysis.tables import render_series_table

    print()
    print(render_series_table(series.normalized_to("ITS")))
    print(f"paper expectation: {expectation}")

"""Shared infrastructure for the benchmark harness.

The three Figure 4 panels and both Figure 5 panels come from the same
(batch x policy x seed) grid; this module caches that grid per
(seeds, scale) so each bench file reuses it instead of re-simulating.
"""

from __future__ import annotations

from typing import Sequence

from repro import MachineConfig
from repro.analysis.experiments import (
    POLICY_FACTORIES,
    run_batch_policy,
)
from repro.analysis.results import FigureSeries, MetricKind, average_results
from repro.sim.batch import batch_names

SEEDS = (1, 2, 3)
SCALE = 1.0

TRACE_OUT: str | None = None
"""Directory for per-cell Chrome traces; set by ``--trace-out`` in
``benchmarks/conftest.py``, ``None`` disables tracing (the default)."""

_GRID_CACHE: dict = {}


def _run_cell(config, batch: str, policy: str, seed: int, scale: float):
    """One grid cell; exports a trace when ``--trace-out`` is active."""
    if TRACE_OUT is None:
        return run_batch_policy(config, batch, policy, seed=seed, scale=scale)
    from pathlib import Path

    from repro.telemetry import Telemetry, export_chrome_trace

    telemetry = Telemetry(events=False)
    result = run_batch_policy(
        config, batch, policy, seed=seed, scale=scale, telemetry=telemetry
    )
    out_dir = Path(TRACE_OUT)
    out_dir.mkdir(parents=True, exist_ok=True)
    export_chrome_trace(
        telemetry,
        out_dir / f"{batch}.{policy}.seed{seed}.trace.json",
        process_name=f"{policy} on {batch} (seed {seed})",
    )
    return result


def figure_grid(seeds: Sequence[int] = SEEDS, scale: float = SCALE):
    """results[batch][policy] -> list of per-seed SimulationResult."""
    key = (tuple(seeds), scale)
    if key not in _GRID_CACHE:
        config = MachineConfig()
        grid = {}
        for batch in batch_names():
            grid[batch] = {policy: [] for policy in POLICY_FACTORIES}
            for seed in seeds:
                for policy in POLICY_FACTORIES:
                    grid[batch][policy].append(
                        _run_cell(config, batch, policy, seed, scale)
                    )
        _GRID_CACHE[key] = grid
    return _GRID_CACHE[key]


def series_from_grid(grid, metric: MetricKind, title: str) -> FigureSeries:
    """Collapse the cached grid into one figure's series."""
    policies = list(POLICY_FACTORIES)
    series = {policy: [] for policy in policies}
    for batch in grid:
        averages = average_results(grid[batch], metric)
        for policy in policies:
            series[policy].append(averages.values[policy])
    return FigureSeries(
        title=title, metric=metric, x_labels=list(grid), series=series
    )


def print_with_expectation(series: FigureSeries, expectation: str) -> None:
    """Print the measured series (normalised to ITS) plus the paper's
    expected shape, in the same orientation as the paper's figures."""
    from repro.analysis.tables import render_series_table

    print()
    print(render_series_table(series.normalized_to("ITS")))
    print(f"paper expectation: {expectation}")

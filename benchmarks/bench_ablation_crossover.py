"""Ablation: the sync-vs-async crossover over device latency.

The paper's premise (Sections 1-2): synchronous I/O wins once device
latency drops below the context-switch cost, and asynchronous I/O wins
for slow devices.  Sweeping the ULL device latency from 1 us to 100 us
must show Sync ahead at the ULL end and Async ahead at the slow end,
with a crossover in between.
"""

import dataclasses

from repro import AsyncIOPolicy, MachineConfig, Simulation, SyncIOPolicy, build_batch
from repro.common.units import US

LATENCIES_US = (1, 3, 7, 15, 30, 60, 100)
SEED = 1


def _run_sweep():
    rows = []
    for latency_us in LATENCIES_US:
        config = MachineConfig()
        config = dataclasses.replace(
            config,
            device=dataclasses.replace(
                config.device, access_latency_ns=latency_us * US
            ),
        )
        makespans = {}
        for policy_cls in (SyncIOPolicy, AsyncIOPolicy):
            batch = build_batch("1_Data_Intensive", seed=SEED, scale=0.5, config=config)
            result = Simulation(
                config, batch, policy_cls(), batch_name="crossover"
            ).run()
            makespans[result.policy] = result.makespan_ns
        rows.append((latency_us, makespans["Sync"], makespans["Async"]))
    return rows


def bench_ablation_sync_async_crossover(benchmark):
    """Sweep device latency and verify the crossover exists."""
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print("Ablation: sync-vs-async makespan crossover (7 us context switch)")
    print("latency(us)  sync(ms)  async(ms)  winner")
    for latency_us, sync_ns, async_ns in rows:
        winner = "Sync" if sync_ns < async_ns else "Async"
        print(
            f"{latency_us:11d}  {sync_ns / 1e6:8.3f}  {async_ns / 1e6:9.3f}  {winner}"
        )
    # ULL end: sync wins (the paper's premise).
    first = rows[0]
    assert first[1] < first[2], rows
    # Slow-device end: async wins (the traditional wisdom).
    last = rows[-1]
    assert last[2] < last[1], rows

"""Ablation: VA-walk vs stride-detecting prefetcher (extension).

The paper's prefetcher assumes the pages right after the victim in VA
order are next (Figure 2).  A stride prefetcher instead learns the
victim-to-victim delta.  Measured outcome: the VA walk wins on *both* a
stride-2 stencil batch and the sequential batch — because it skips
already-resident pages, the walk covers strided footprints implicitly,
needs no training, and never mispredicts across phase changes, while
the stride table must re-train at every sweep boundary.  A useful
negative result: the paper's simple design choice is the right one.
"""

from repro import MachineConfig, Simulation, WorkloadInstance, build_batch
from repro.common.rng import DeterministicRNG
from repro.core import ITSPolicy
from repro.trace.workloads import build_workload

SEED = 1


def _wrf_batch():
    rng = DeterministicRNG(SEED)
    builds = {
        name: build_workload(name, rng.fork(i + 1))
        for i, name in enumerate(("wrf", "deepsjeng", "blender"))
    }
    priorities = {"wrf": 30, "deepsjeng": 15, "blender": 5}
    return [
        WorkloadInstance(
            name, b.trace, priority=priorities[name], mapped_vpns=b.mapped_vpns
        )
        for name, b in builds.items()
    ]


def _run_cells():
    cells = {}
    for kind in ("va", "stride"):
        config = MachineConfig()
        cells[("wrf_heavy", kind)] = Simulation(
            config, _wrf_batch(), ITSPolicy(prefetcher_kind=kind),
            batch_name="wrf_heavy",
        ).run()
        batch = build_batch("No_Data_Intensive", seed=SEED, config=config)
        cells[("sequential", kind)] = Simulation(
            config, batch, ITSPolicy(prefetcher_kind=kind),
            batch_name="No_Data_Intensive",
        ).run()
    return cells


def bench_ablation_prefetcher_kind(benchmark):
    """Compare the two prefetchers' fault coverage per workload shape."""
    cells = benchmark.pedantic(_run_cells, rounds=1, iterations=1)
    print()
    print("Ablation: prefetcher kind under ITS")
    print("batch       kind    idle(ms)  majors  minors")
    for (batch, kind), r in cells.items():
        print(
            f"{batch:10s}  {kind:6s}  {r.total_idle_ns / 1e6:8.3f}"
            f"  {r.major_faults:6d}  {r.minor_faults:6d}"
        )
    # Both prefetchers convert a meaningful share of faults everywhere.
    for key, r in cells.items():
        assert r.minor_faults > 0, key
    # The paper's VA walk wins on both batches: it skips resident pages
    # (covering strides implicitly) and needs no training.
    for batch in ("wrf_heavy", "sequential"):
        assert (
            cells[(batch, "va")].major_faults
            <= cells[(batch, "stride")].major_faults
        ), batch
        assert (
            cells[(batch, "va")].total_idle_ns
            <= cells[(batch, "stride")].total_idle_ns
        ), batch

"""Ablation: memory pressure (DRAM size relative to the footprints).

Section 2.2's observation is at heart a pressure statement: co-running
processes "share and contend the memory resources", and the idle problem
worsens as pressure rises.  This bench sweeps the DRAM frame count from
generous to starved and shows (a) Sync's idle time grows as refaults
appear, and (b) ITS's relative advantage grows with pressure — the
design matters most exactly where the problem is worst.
"""

from repro.analysis.sweeps import sweep_dram_frames

FRAME_COUNTS = (1400, 900, 600, 448, 320)  # generous -> starved
SWEEP_KW = dict(
    policies=("Sync", "ITS"),
    batch="1_Data_Intensive",
    seed=1,
    scale=0.5,
)


def _run_sweep():
    return sweep_dram_frames(FRAME_COUNTS, **SWEEP_KW)


def bench_ablation_memory_pressure(benchmark):
    """Sweep DRAM size and verify the pressure story."""
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print("Ablation: memory pressure (1_Data_Intensive)")
    print("frames  Sync idle(ms)  Sync majors  ITS idle(ms)  ITS majors  ITS saving")
    for row in rows:
        sync = row.results["Sync"]
        its = row.results["ITS"]
        saving = 1 - its.total_idle_ns / sync.total_idle_ns
        print(
            f"{int(row.value):6d}  {sync.total_idle_ns / 1e6:13.3f}"
            f"  {sync.major_faults:11d}  {its.total_idle_ns / 1e6:12.3f}"
            f"  {its.major_faults:10d}  {saving:10.1%}"
        )
    sync_idle = [row.results["Sync"].total_idle_ns for row in rows]
    sync_majors = [row.results["Sync"].major_faults for row in rows]
    # Pressure hurts: Sync idle and faults grow as frames shrink.
    assert sync_idle[-1] > sync_idle[0]
    assert sync_majors[-1] > sync_majors[0]
    # ITS wins at every pressure level.
    for row in rows:
        assert row.results["ITS"].total_idle_ns < row.results["Sync"].total_idle_ns

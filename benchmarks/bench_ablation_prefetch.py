"""Ablation: prefetch degree (the policy's *n*).

DESIGN.md calls out the prefetch degree as the ITS design's main
accuracy/waste trade-off: higher degrees convert more major faults into
minor ones on predictable workloads, but each extra candidate risks
evicting useful pages when the walk runs past the workload's actual
reach.  Sweeps n over {0, 2, 4, 8, 16} on the 1_Data_Intensive batch.
"""

import dataclasses

from repro import ITSPolicy, MachineConfig, Simulation, build_batch

DEGREES = (0, 2, 4, 8, 16)
SEED = 1


def _run_sweep():
    results = {}
    for degree in DEGREES:
        config = MachineConfig()
        config = dataclasses.replace(
            config, its=dataclasses.replace(config.its, prefetch_degree=degree)
        )
        batch = build_batch("1_Data_Intensive", seed=SEED, config=config)
        results[degree] = Simulation(
            config, batch, ITSPolicy(), batch_name="ablation_prefetch"
        ).run()
    return results


def bench_ablation_prefetch_degree(benchmark):
    """Sweep the prefetch degree and verify diminishing returns."""
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print("Ablation: ITS prefetch degree (1_Data_Intensive)")
    print("degree  idle(ms)  majors  minors  prefetch_issued  accuracy")
    for degree, r in results.items():
        accuracy = r.prefetch_hits / r.prefetch_issued if r.prefetch_issued else 0.0
        print(
            f"{degree:6d}  {r.total_idle_ns / 1e6:8.3f}  {r.major_faults:6d}"
            f"  {r.minor_faults:6d}  {r.prefetch_issued:15d}  {accuracy:8.1%}"
        )
    # Degree 0 must not prefetch at all; any positive degree must beat it.
    assert results[0].prefetch_issued == 0
    assert results[8].major_faults < results[0].major_faults
    # Faults are monotone non-increasing in degree (within 5% noise).
    ordered = [results[d].major_faults for d in DEGREES]
    for earlier, later in zip(ordered, ordered[1:]):
        assert later <= 1.05 * earlier, ordered

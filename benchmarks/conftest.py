"""Benchmark-harness pytest hooks.

Adds ``--trace-out DIR``: when set, every (batch, policy, seed) cell the
grid cache simulates is run with telemetry attached and its
Chrome/Perfetto trace written to
``DIR/<batch>.<policy>.seed<seed>.trace.json``, e.g.::

    PYTHONPATH=src python -m pytest benchmarks/bench_fig4_idle_time.py \
        --trace-out /tmp/traces

Tracing costs a few percent of simulated throughput, so leave the flag
off when benchmarking wall-clock numbers.
"""

from __future__ import annotations

import benchmarks._shared as _shared


def pytest_addoption(parser):
    """Register ``--trace-out`` with the benchmark harness."""
    parser.addoption(
        "--trace-out",
        default=None,
        help="directory for per-(batch, policy, seed) Chrome trace JSON files",
    )


def pytest_configure(config):
    """Publish the option to the shared grid cache before collection."""
    _shared.TRACE_OUT = config.getoption("--trace-out")

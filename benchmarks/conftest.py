"""Benchmark-harness pytest hooks.

Execution-engine options (all published to ``benchmarks/_shared.py``
before collection; see docs/RUNNING.md for the full story):

``--workers N``
    Simulate the (batch, policy, seed) grid cells on a process pool of
    *N* workers.  ``1`` (the default) runs in-process; results are
    bit-for-bit identical at any worker count.

``--cache-dir DIR`` / ``--no-cache``
    Where the content-addressed result cache lives (default:
    ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-its``), and the switch to
    bypass it.  With the cache on — the default — a repeated bench run
    re-simulates nothing, and an interrupted grid resumes from the
    completed cells.

``--trace-out DIR``
    When set, every cell the grid cache simulates is run with telemetry
    attached and its Chrome/Perfetto trace written to
    ``DIR/<batch>.<policy>.seed<seed>.trace.json``, e.g.::

        PYTHONPATH=src python -m pytest benchmarks/bench_fig4_idle_time.py \
            --trace-out /tmp/traces

    Tracing forces serial, uncached execution (each cell carries its own
    telemetry handle) and costs a few percent of simulated throughput,
    so leave the flag off when benchmarking wall-clock numbers.
"""

from __future__ import annotations

import benchmarks._shared as _shared


def pytest_addoption(parser):
    """Register the execution-engine options with the bench harness."""
    parser.addoption(
        "--trace-out",
        default=None,
        help="directory for per-(batch, policy, seed) Chrome trace JSON files",
    )
    parser.addoption(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for grid simulation (1 = in-process)",
    )
    parser.addoption(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-its)",
    )
    parser.addoption(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache",
    )


def pytest_configure(config):
    """Publish the options to the shared grid cache before collection."""
    _shared.TRACE_OUT = config.getoption("--trace-out")
    _shared.WORKERS = config.getoption("--workers")
    _shared.CACHE_DIR = config.getoption("--cache-dir")
    _shared.NO_CACHE = config.getoption("--no-cache")

"""Section 2.2 motivation experiment: CPU idle time vs process count.

Five representative processes (Wrf, Blender, page rank, random walk,
single shortest path) run under the synchronous I/O mode; the paper
reports that more than 22% of CPU time is idle and that the idle time
grows as more processes contend for memory (results normalised to the
2-process run).
"""

from repro import MachineConfig
from repro.analysis.experiments import run_observation


def _compute_observation():
    return run_observation(MachineConfig(), process_counts=(2, 3, 4, 5), scale=1.0)


def bench_observation_idle_vs_process_count(benchmark):
    """Regenerate the Section 2.2 observation and verify its shape."""
    data = benchmark.pedantic(_compute_observation, rounds=1, iterations=1)
    print()
    print("Sec 2.2: CPU idle time under Sync vs number of processes")
    print("processes  idle(ms)  idle/makespan  normalized-to-2")
    for count, idle, frac, norm in zip(
        data.process_counts, data.idle_ns, data.idle_fraction, data.normalized_idle
    ):
        print(f"{count:9d}  {idle / 1e6:8.3f}  {frac:13.1%}  {norm:15.2f}")
    print("paper expectation: idle share > 22%, growing with process count")
    assert all(frac > 0.22 for frac in data.idle_fraction)
    assert data.normalized_idle == sorted(data.normalized_idle)
    assert data.normalized_idle[-1] > 1.5

"""Ablation: the three ITS components, enabled one at a time.

DESIGN.md calls out the division of labour the paper claims: the
page-prefetch policy removes page faults, the pre-execute policy removes
cache misses, and the self-sacrificing thread shifts resources toward
high-priority processes.  This bench runs ITS with each component
disabled on the 2_Data_Intensive batch and checks each claim, plus the
`prefetch_discovered` extension (pre-exec-discovered faults fed to the
prefetcher).
"""

from repro import ITSPolicy, MachineConfig, Simulation, build_batch

SEED = 1
BATCH = "2_Data_Intensive"

VARIANTS = {
    "full": dict(),
    "no_prefetch": dict(prefetch=False),
    "no_preexec": dict(preexec=False),
    "no_sacrifice": dict(self_sacrifice=False),
    "no_shielding": dict(priority_aware_replacement=False),
    "plus_discovered": dict(prefetch_discovered=True),
}


def _run_variants():
    results = {}
    for name, kwargs in VARIANTS.items():
        config = MachineConfig()
        batch = build_batch(BATCH, seed=SEED, config=config)
        results[name] = Simulation(
            config, batch, ITSPolicy(**kwargs), batch_name=f"ablation_{name}"
        ).run()
    return results


def bench_ablation_its_components(benchmark):
    """Disable each ITS component in turn and verify its contribution."""
    results = benchmark.pedantic(_run_variants, rounds=1, iterations=1)
    print()
    print(f"Ablation: ITS components ({BATCH})")
    print("variant          idle(ms)  majors  misses  top50(ms)  bot50(ms)")
    for name, r in results.items():
        print(
            f"{name:15s}  {r.total_idle_ns / 1e6:8.3f}  {r.major_faults:6d}"
            f"  {r.demand_cache_misses:6d}  {r.mean_finish_top_half_ns() / 1e6:9.3f}"
            f"  {r.mean_finish_bottom_half_ns() / 1e6:9.3f}"
        )
    full = results["full"]
    # Prefetching is the fault killer.
    assert results["no_prefetch"].major_faults > 1.5 * full.major_faults
    # Pre-execution is the (pre-execute-side) miss killer: disabling it
    # removes all warmed lines.
    assert results["no_preexec"].preexec_instructions == 0
    assert full.preexec_instructions > 0
    # Self-sacrificing favours the top half.
    assert (
        full.mean_finish_top_half_ns()
        <= 1.05 * results["no_sacrifice"].mean_finish_top_half_ns()
    )
    # The discovered-faults extension prefetches *known* future faults,
    # so it removes majors beyond what the VA-adjacent walk achieves.
    assert results["plus_discovered"].major_faults < full.major_faults

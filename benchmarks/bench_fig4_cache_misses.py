"""Figure 4c: number of CPU cache misses, per batch, per policy.

Paper shape: Sync_Runahead reduces cache misses the most (it opens a
pre-execute episode on *every* LLC miss, where ITS only steals page-fault
windows), Async suffers the most (context-switch pollution), and ITS
sits in between — yet still wins on idle time (Figure 4a) because page
faults cost far more than cache misses.
"""

from repro.analysis.results import MetricKind

from benchmarks._shared import figure_grid, print_with_expectation, series_from_grid


def _compute_fig4c():
    grid = figure_grid()
    return series_from_grid(
        grid, MetricKind.CACHE_MISSES, "Fig 4c: number of CPU cache misses"
    )


def bench_fig4c_cache_misses(benchmark):
    """Regenerate Figure 4c and verify its shape."""
    series = benchmark.pedantic(_compute_fig4c, rounds=1, iterations=1)
    print_with_expectation(
        series,
        "Sync_Runahead lowest; Async highest (switch pollution); "
        "ITS comparable to or below Sync",
    )
    for i, batch in enumerate(series.x_labels):
        values = {name: series.series[name][i] for name in series.series}
        assert values["Sync_Runahead"] == min(values.values()), (batch, values)
        assert values["Async"] == max(values.values()), (batch, values)
        assert values["ITS"] <= 1.10 * values["Sync"], (batch, values)

"""Figure 4b: number of major page faults, per batch, per policy.

Paper shape: ITS saves at least 65% / 61% of the page faults of
Async/Sync on the No_Data_Intensive and 1_Data_Intensive batches
(prefetching predicts general-purpose access behaviour well); Async is
clearly worst on the data-intensive batches (fine-grained interleaving
thrashes the shared pool).
"""

from repro.analysis.results import MetricKind

from benchmarks._shared import figure_grid, print_with_expectation, series_from_grid


def _compute_fig4b():
    grid = figure_grid()
    return series_from_grid(
        grid, MetricKind.PAGE_FAULTS, "Fig 4b: number of major page faults"
    )


def bench_fig4b_page_faults(benchmark):
    """Regenerate Figure 4b and verify its shape."""
    series = benchmark.pedantic(_compute_fig4b, rounds=1, iterations=1)
    print_with_expectation(
        series,
        "ITS lowest (~= Sync_Prefetch); >=61-65% below Sync/Async on "
        "low-intensity batches; Async worst when data-intensive",
    )
    for i, batch in enumerate(series.x_labels):
        values = {name: series.series[name][i] for name in series.series}
        floor = min(values.values())
        assert values["ITS"] <= 1.15 * floor, (batch, values)
        if batch in ("No_Data_Intensive", "1_Data_Intensive"):
            assert values["ITS"] < 0.5 * values["Sync"], (batch, values)
    last = {name: series.series[name][-1] for name in series.series}
    assert last["Async"] > 1.1 * last["Sync"], last

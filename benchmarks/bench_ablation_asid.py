"""Ablation: ASID/PCID-tagged TLB (no flush on context switch).

The paper's case against asynchronous I/O includes "frequent CPU cache
misses and TLB shootdown" from switching.  Modern cores tag TLB entries
with address-space IDs, removing the flush.  This bench re-runs Async
and Sync with ASIDs on and off: ASIDs recover part of Async's loss (its
TLB miss rate drops sharply) — but the 7 us switch itself still dwarfs
the 3 us device, so the paper's conclusion survives the optimisation.
"""

import dataclasses

from repro import AsyncIOPolicy, MachineConfig, Simulation, SyncIOPolicy, build_batch

SEED = 1
SCALE = 0.5


def _run_cells():
    cells = {}
    for asid in (False, True):
        base = MachineConfig()
        config = dataclasses.replace(
            base, tlb=dataclasses.replace(base.tlb, flush_on_switch=not asid)
        )
        for policy_cls in (SyncIOPolicy, AsyncIOPolicy):
            batch = build_batch("1_Data_Intensive", seed=SEED, scale=SCALE, config=config)
            sim = Simulation(config, batch, policy_cls(), batch_name="asid")
            result = sim.run()
            miss_rate = sim.machine.tlb.stats.miss_rate
            cells[(policy_cls().name, asid)] = (result, miss_rate)
    return cells


def bench_ablation_asid_tagged_tlb(benchmark):
    """Toggle TLB flush-on-switch and verify the claim's robustness."""
    cells = benchmark.pedantic(_run_cells, rounds=1, iterations=1)
    print()
    print("Ablation: ASID-tagged TLB (1_Data_Intensive)")
    print("policy  asid   idle(ms)  makespan(ms)  TLB miss rate")
    for (policy, asid), (result, miss_rate) in cells.items():
        print(
            f"{policy:6s} {str(asid):5s}  {result.total_idle_ns / 1e6:8.3f}"
            f"  {result.makespan_ns / 1e6:12.3f}  {miss_rate:13.2%}"
        )
    # ASIDs reduce Async's TLB miss rate...
    assert cells[("Async", True)][1] < cells[("Async", False)][1]
    # ...and help its makespan at least marginally...
    assert (
        cells[("Async", True)][0].makespan_ns
        <= 1.01 * cells[("Async", False)][0].makespan_ns
    )
    # ...but Async still loses to Sync: the switch cost dominates.
    assert (
        cells[("Async", True)][0].total_idle_ns
        > cells[("Sync", True)][0].total_idle_ns
    )

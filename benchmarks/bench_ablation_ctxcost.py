"""Ablation: context-switch cost (the premise's other axis).

The paper cites 5-10 us switches on general-purpose machines and
measures 7 us on its i7-7800X.  This bench sweeps the switch cost from
1 us to 20 us with the device fixed at 3 us: Async's idle time scales
with the switch cost (every fault pays it) while the synchronous
flavours are indifferent — quantifying how the killer-microsecond gap
opens.
"""

import dataclasses

from repro import AsyncIOPolicy, MachineConfig, Simulation, SyncIOPolicy, build_batch
from repro.common.units import US
from repro.core import ITSPolicy

SWITCH_COSTS_US = (1, 3, 7, 12, 20)
SEED = 1
SCALE = 0.5


def _run_sweep():
    rows = []
    for cost_us in SWITCH_COSTS_US:
        base = MachineConfig()
        config = dataclasses.replace(
            base,
            scheduler=dataclasses.replace(
                base.scheduler, context_switch_ns=cost_us * US
            ),
        )
        cells = {}
        for policy_cls in (SyncIOPolicy, AsyncIOPolicy, ITSPolicy):
            batch = build_batch("1_Data_Intensive", seed=SEED, scale=SCALE, config=config)
            result = Simulation(
                config, batch, policy_cls(), batch_name="ctx_sweep"
            ).run()
            cells[result.policy] = result
        rows.append((cost_us, cells))
    return rows


def bench_ablation_context_switch_cost(benchmark):
    """Sweep the switch cost and verify who pays for it."""
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print("Ablation: context-switch cost (device fixed at 3 us)")
    print("switch(us)  Sync idle(ms)  Async idle(ms)  ITS idle(ms)")
    for cost_us, cells in rows:
        print(
            f"{cost_us:10d}  {cells['Sync'].total_idle_ns / 1e6:13.3f}"
            f"  {cells['Async'].total_idle_ns / 1e6:14.3f}"
            f"  {cells['ITS'].total_idle_ns / 1e6:12.3f}"
        )
    # Async idle grows monotonically with the switch cost.
    async_idle = [cells["Async"].total_idle_ns for _, cells in rows]
    assert async_idle == sorted(async_idle), async_idle
    # Sync is indifferent (it never switches on faults): within 5%.
    sync_idle = [cells["Sync"].total_idle_ns for _, cells in rows]
    assert max(sync_idle) < 1.05 * min(sync_idle), sync_idle
    # At the measured 7 us, ITS beats both.
    at_7us = dict(rows)[7]
    assert at_7us["ITS"].total_idle_ns < at_7us["Sync"].total_idle_ns
    assert at_7us["ITS"].total_idle_ns < at_7us["Async"].total_idle_ns

#!/bin/sh
# Capture a memory trace of a real program with Valgrind's lackey tool —
# the same front end the paper's simulator uses ("adopts the dynamic
# binary instruction tools, Valgrind, to capture the accessed virtual
# addresses").
#
# Usage:  ./scripts/capture_trace.sh <command...> > program.lackey
#
# Then feed it to the simulator:
#
#   from repro.trace.lackey import parse_lackey
#   with open("program.lackey") as f:
#       trace = parse_lackey(f, max_instructions=200_000)
#
# Notes:
#  * lackey slows programs ~100x; capture short, representative runs;
#  * use max_instructions to bound the replayed prefix;
#  * a small pre-captured sample ships at examples/data/sample.lackey.

if [ $# -eq 0 ]; then
    echo "usage: $0 <command...>" >&2
    exit 2
fi

exec valgrind --tool=lackey --trace-mem=yes --basic-counts=no "$@" 2>&1

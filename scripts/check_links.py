#!/usr/bin/env python3
"""Docs link checker: every relative Markdown link must resolve.

Scans the given Markdown files (default: README.md and docs/*.md) for
inline links/images ``[text](target)`` and verifies that relative
targets exist on disk, resolved against the linking file's directory.
External schemes (http/https/mailto) and pure in-page anchors are
skipped.  Exits non-zero listing every broken link — CI runs this so a
renamed doc can't leave dangling cross-references.

Usage:  python scripts/check_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline Markdown links/images; [text](target "title") titles are cut
# below, reference-style definitions are rare enough here to ignore.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_links(path: Path):
    """Yield (line_number, target) for every inline link in *path*."""
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for match in LINK_RE.finditer(line):
            yield number, match.group(1)


def check_file(path: Path) -> list[str]:
    """Return one error string per broken relative link in *path*."""
    errors = []
    for number, target in iter_links(path):
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path}:{number}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    """Check every file given (or the repo's doc set); 0 = all good."""
    root = Path(__file__).resolve().parents[1]
    files = (
        [Path(a) for a in argv]
        if argv
        else [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    )
    errors: list[str] = []
    checked = 0
    for path in files:
        if not path.is_file():
            errors.append(f"{path}: file not found")
            continue
        checked += 1
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} files: {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

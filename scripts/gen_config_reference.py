#!/usr/bin/env python3
"""Regenerate docs/CONFIG.md from the configuration dataclasses.

Parses ``src/repro/common/config.py`` and emits one section per config
block (``MachineConfig`` first, then every nested block in field
order): the class docstring, then a table of field name, type, default
(as written in the source, so ``8 * MIB`` stays readable), and the
field's attribute docstring.  The whole file is generated — editing it
by hand is futile; change the dataclasses and re-run.

Run from the repo root::

    python scripts/gen_config_reference.py          # rewrite docs/CONFIG.md
    python scripts/gen_config_reference.py --check  # exit 1 if stale

CI's docs job runs ``--check``, so a new config field without a
regenerated reference fails the build rather than silently drifting.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
SOURCE = REPO_ROOT / "src" / "repro" / "common" / "config.py"
DOC = REPO_ROOT / "docs" / "CONFIG.md"

ROOT_CLASS = "MachineConfig"


@dataclass
class Field:
    name: str
    annotation: str
    default: Optional[str]
    doc: str


@dataclass
class Block:
    name: str
    doc: str
    fields: list


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
    return False


def _default_source(node: Optional[ast.expr], source: str) -> Optional[str]:
    """The default as written, unwrapping ``field(default_factory=X)``."""
    if node is None:
        return None
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "field"
    ):
        for kw in node.keywords:
            if kw.arg == "default_factory":
                if isinstance(kw.value, ast.Name):
                    return f"{kw.value.id}()"
                if isinstance(kw.value, ast.Lambda):
                    # Show the constructed value, without the lambda's
                    # inline comments.
                    return ast.unparse(kw.value.body)
                return ast.get_source_segment(source, kw.value) or "?"
            if kw.arg == "default":
                return ast.get_source_segment(source, kw.value)
        return "field(...)"
    return ast.get_source_segment(source, node)


def _collapse(text: str) -> str:
    """One markdown-table-safe line."""
    return " ".join(text.split()).replace("|", "\\|")


def parse_blocks(source: str) -> dict:
    """Every dataclass in the module, keyed by name, in source order."""
    tree = ast.parse(source)
    blocks: dict[str, Block] = {}
    for node in tree.body:
        if not (isinstance(node, ast.ClassDef) and _is_dataclass(node)):
            continue
        fields: list[Field] = []
        body = iter(node.body)
        previous: Optional[Field] = None
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                previous = Field(
                    name=statement.target.id,
                    annotation=ast.get_source_segment(source, statement.annotation)
                    or "?",
                    default=_default_source(statement.value, source),
                    doc="",
                )
                fields.append(previous)
                continue
            # An attribute docstring: a bare string literal directly
            # after the field it documents.
            if (
                previous is not None
                and isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, str)
            ):
                previous.doc = statement.value.value
            previous = None
        blocks[node.name] = Block(
            name=node.name, doc=ast.get_docstring(node) or "", fields=fields
        )
    return blocks


def _render_block(block: Block, blocks: dict) -> list:
    lines = [f"## `{block.name}`", ""]
    if block.doc:
        lines.append(block.doc.strip())
        lines.append("")
    lines.append("| field | type | default | description |")
    lines.append("|---|---|---|---|")
    for field_ in block.fields:
        annotation = field_.annotation
        # Cross-link nested blocks.
        for name in blocks:
            if name in annotation:
                annotation = annotation.replace(name, f"[{name}](#{name.lower()})")
                break
        default = f"`{_collapse(field_.default)}`" if field_.default else "-"
        lines.append(
            f"| `{field_.name}` | {_collapse(annotation)} | {default} "
            f"| {_collapse(field_.doc)} |"
        )
    lines.append("")
    return lines


def render() -> str:
    source = SOURCE.read_text()
    blocks = parse_blocks(source)
    if ROOT_CLASS not in blocks:
        raise SystemExit(f"{ROOT_CLASS} not found in {SOURCE}")
    # MachineConfig first, then its nested blocks in field order, then
    # any remaining dataclasses in source order.
    order = [ROOT_CLASS]
    for field_ in blocks[ROOT_CLASS].fields:
        for name in blocks:
            if name in field_.annotation and name not in order:
                order.append(name)
    order.extend(name for name in blocks if name not in order)

    out = [
        "# Configuration reference",
        "",
        "<!-- generated by scripts/gen_config_reference.py; do not edit by hand -->",
        "",
        "Every configuration block, field, and default below is extracted",
        "from the live dataclasses (`repro.common.config`); regenerate with",
        "`python scripts/gen_config_reference.py` after changing them.",
        "Defaults are shown as written in the source (`8 * MIB`, not",
        "`8388608`); all times are nanoseconds, all sizes bytes.  What the",
        "blocks *mean* is covered in [MODEL.md](MODEL.md); the execution",
        "engine selected by `MachineConfig.engine` in",
        "[ENGINES.md](ENGINES.md); fault profiles in [FAULTS.md](FAULTS.md).",
        "",
        "Blocks that equal their disabled default are omitted from",
        "`MachineConfig.to_dict()` so sweep-cache keys stay stable; see the",
        "field notes below.",
        "",
    ]
    for name in order:
        out.extend(_render_block(blocks[name], blocks))
    return "\n".join(out).rstrip() + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the committed reference is stale, change nothing",
    )
    args = parser.parse_args(argv)

    fresh = render()
    current = DOC.read_text() if DOC.exists() else None
    if args.check:
        if fresh != current:
            print(
                "config reference is stale: run "
                "`python scripts/gen_config_reference.py`",
                file=sys.stderr,
            )
            return 1
        print("config reference is up to date")
        return 0
    if fresh != current:
        DOC.write_text(fresh)
        print(f"rewrote {DOC}")
    else:
        print("config reference already up to date")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Calibration probe: run all five policies on all four batches and
print the figure-relevant metrics, including paper-style normalisation.

Usage: python scripts/calibrate.py [scale] [seed]
"""

import sys
import time

from repro import (
    AsyncIOPolicy,
    ITSPolicy,
    MachineConfig,
    Simulation,
    SyncIOPolicy,
    SyncPrefetchPolicy,
    SyncRunaheadPolicy,
    batch_names,
    build_batch,
)

POLICIES = (AsyncIOPolicy, SyncIOPolicy, SyncRunaheadPolicy, SyncPrefetchPolicy, ITSPolicy)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    config = MachineConfig()
    for batch_name in batch_names():
        print(f"== {batch_name} (scale={scale}, seed={seed})")
        results = {}
        for policy_cls in POLICIES:
            batch = build_batch(batch_name, seed=seed, scale=scale)
            t0 = time.time()
            r = Simulation(config, batch, policy_cls(), batch_name=batch_name).run()
            results[r.policy] = r
            i = r.idle
            print(
                f"  {r.policy:14s} idle={r.total_idle_ns/1e6:7.2f}ms "
                f"(mem={i.memory_stall_ns/1e6:5.2f} sync={i.sync_storage_ns/1e6:5.2f} "
                f"async={i.async_idle_ns/1e6:5.2f} ctx={i.ctx_switch_overhead_ns/1e6:5.2f}) "
                f"majors={r.major_faults:5d} misses={r.demand_cache_misses:6d} "
                f"pf_iss={r.prefetch_issued:5d} pf_hit={r.prefetch_hits:5d} "
                f"warm={r.preexec_lines_warmed:6d} "
                f"top50={r.mean_finish_top_half_ns()/1e6:7.2f}ms "
                f"bot50={r.mean_finish_bottom_half_ns()/1e6:7.2f}ms "
                f"wall={time.time()-t0:4.1f}s"
            )
        its = results["ITS"]
        print("  normalized to ITS:")
        for name, r in results.items():
            print(
                f"    {name:14s} idle={r.total_idle_ns / max(1, its.total_idle_ns):5.2f} "
                f"majors={r.major_faults / max(1, its.major_faults):5.2f} "
                f"misses={r.demand_cache_misses / max(1, its.demand_cache_misses):5.2f} "
                f"top50={r.mean_finish_top_half_ns() / max(1, its.mean_finish_top_half_ns()):5.2f} "
                f"bot50={r.mean_finish_bottom_half_ns() / max(1, its.mean_finish_bottom_half_ns()):5.2f}"
            )


if __name__ == "__main__":
    main()

"""End-to-end tests for the open-loop serving layer (docs/SERVING.md).

What must hold across the whole stack:

* an open-loop run stamps every request through the full lifecycle and
  is bit-reproducible across reruns and worker counts;
* Sync's p99 latency is monotone non-decreasing in offered load (the
  latency-vs-load story `repro serve` tells);
* admission policies visibly shed/defer/demote under a tight cap;
* serving composes with the SMP machine model;
* with the ``ServingConfig`` block left at its disabled default, sweep
  cache keys are bit-identical to what the repo produced before the
  serving layer existed (pinned digests), so no historical cached
  result is orphaned.
"""

import dataclasses

import pytest

from repro.analysis.experiments import run_batch_policy
from repro.analysis.runner import SweepCell, cache_key, run_cells
from repro.analysis.serving import (
    row_from_result,
    run_serving_sweep,
    serving_headline,
)
from repro.analysis.store import result_from_dict, result_to_dict
from repro.analysis.tables import render_serving_table
from repro.common.config import (
    MachineConfig,
    ServingConfig,
    with_cores,
    with_serving,
)
from repro.serving.request import OUTCOME_COMPLETED, OUTCOME_DROPPED

BATCH = "1_Data_Intensive"
SCALE = 0.1


def serve_config(**overrides):
    overrides.setdefault("rate_per_s", 2000.0)
    overrides.setdefault("slo_ms", 2.0)
    return with_serving(MachineConfig(), **overrides)


@pytest.fixture(scope="module")
def sync_run():
    """One shared Sync open-loop run at 2000 req/s."""
    return run_batch_policy(serve_config(), BATCH, "Sync", seed=1, scale=SCALE)


@pytest.fixture(scope="module")
def sweep():
    """One shared rate sweep: Sync and ITS across three offered loads."""
    return run_serving_sweep(
        rates=(500.0, 2000.0, 4000.0),
        policies=("Sync", "ITS"),
        batch=BATCH,
        seed=1,
        scale=SCALE,
    )


class TestOpenLoopRun:
    def test_every_request_runs_the_full_lifecycle(self, sync_run):
        summary = sync_run.serving
        assert summary is not None
        assert summary.arrivals > 0
        # admit_all: nothing shed, the run ends when the last finishes.
        assert summary.dropped == 0
        assert summary.completed == summary.arrivals
        for record in summary.requests:
            assert record.outcome == OUTCOME_COMPLETED
            assert (
                record.arrival_ns
                <= record.enqueue_ns
                <= record.start_ns
                <= record.finish_ns
            )
            assert record.latency_ns > 0
            assert record.latency_ns == record.queue_wait_ns + record.service_ns

    def test_rerun_is_bit_identical(self, sync_run):
        again = run_batch_policy(serve_config(), BATCH, "Sync", seed=1, scale=SCALE)
        assert result_to_dict(again) == result_to_dict(sync_run)

    def test_closed_loop_results_omit_the_serving_key(self):
        result = run_batch_policy(
            MachineConfig(), "No_Data_Intensive", "Sync", seed=1, scale=0.2
        )
        assert result.serving is None
        assert "serving" not in result_to_dict(result)

    def test_serving_payload_round_trips_through_store(self, sync_run):
        payload = result_to_dict(sync_run)
        assert len(payload["serving"]["requests"]) == sync_run.serving.arrivals
        restored = result_from_dict(payload)
        assert restored.serving.requests == sync_run.serving.requests
        assert result_to_dict(restored) == payload

    def test_worker_pool_matches_serial_execution(self):
        cells = [
            SweepCell(
                config=serve_config(rate_per_s=500.0),
                batch=BATCH,
                policy=policy,
                seed=1,
                scale=SCALE,
            )
            for policy in ("Sync", "ITS")
        ]
        serial = run_cells(cells)
        pooled = run_cells(cells, workers=2)
        assert [result_to_dict(r) for r in serial] == [
            result_to_dict(r) for r in pooled
        ]


class TestLatencyVsLoad:
    def test_sync_p99_is_monotone_in_offered_load(self, sweep):
        p99s = [
            next(row for row in sweep[rate] if row.policy == "Sync").p99_ns
            for rate in sorted(sweep)
        ]
        assert all(a <= b for a, b in zip(p99s, p99s[1:])), p99s

    def test_rows_cover_the_grid(self, sweep):
        assert sorted(sweep) == [500.0, 2000.0, 4000.0]
        for rate, rows in sweep.items():
            assert [row.policy for row in rows] == ["Sync", "ITS"]
            for row in rows:
                assert row.rate_per_s == rate
                assert row.arrivals == row.completed + row.dropped
                assert 0.0 <= row.attainment <= 1.0
                assert row.p50_ns <= row.p95_ns <= row.p99_ns

    def test_rate_sweep_compresses_one_schedule(self, sweep):
        # Same serving seed at every rate: the arrival count grows with
        # the offered load (the same uniforms, compressed).
        arrivals = [sweep[rate][0].arrivals for rate in sorted(sweep)]
        assert arrivals[0] < arrivals[1] < arrivals[2]

    def test_table_and_headline_render(self, sweep):
        table = render_serving_table(sweep)
        assert "offered load 500 req/s" in table
        assert "offered load 4000 req/s" in table
        assert "Sync" in table and "ITS" in table
        head = serving_headline(sweep)
        assert head is not None
        assert head.rate_per_s == 4000.0
        assert head in sweep[4000.0]

    def test_row_from_result_matches_summary(self, sync_run):
        row = row_from_result(sync_run)
        assert row.policy == "Sync"
        assert row.arrivals == sync_run.serving.arrivals
        assert row.p99_ns == sync_run.serving.p99_ns
        assert row.attainment == sync_run.serving.attainment


class TestAdmissionUnderLoad:
    def run_with(self, admission, queue_cap):
        config = serve_config(admission=admission, queue_cap=queue_cap)
        return run_batch_policy(config, BATCH, "Sync", seed=1, scale=SCALE)

    def test_drop_sheds_over_the_cap(self, sync_run):
        result = self.run_with("drop", 2)
        summary = result.serving
        assert summary.arrivals == sync_run.serving.arrivals  # same schedule
        assert summary.dropped > 0
        assert summary.completed + summary.dropped == summary.arrivals
        for record in summary.requests:
            if record.outcome == OUTCOME_DROPPED:
                assert record.enqueue_ns is None
                assert record.finish_ns is None
                assert record.deadline_missed
        # Shed load means the survivors wait less than the admit-all run.
        assert summary.p99_ns <= sync_run.serving.p99_ns

    def test_defer_delays_but_never_sheds(self, sync_run):
        summary = self.run_with("defer", 2).serving
        assert summary.deferrals > 0
        assert summary.dropped == 0
        assert summary.completed == summary.arrivals
        deferred = [r for r in summary.requests if r.deferrals]
        assert deferred
        for record in deferred:
            # The arrival stamp survives deferral; latency keeps accruing.
            assert record.enqueue_ns >= record.arrival_ns + 200_000

    def test_demote_admits_at_the_floor_priority(self, sync_run):
        summary = self.run_with("demote", 2).serving
        assert summary.dropped == 0
        assert summary.completed == summary.arrivals
        demoted = [r for r in summary.requests if r.demoted]
        assert demoted
        # Demoted requests entered the queue immediately (no deferrals).
        assert all(r.deferrals == 0 for r in demoted)


class TestServingOnSMP:
    def test_two_core_run_completes_and_replays(self):
        config = with_cores(serve_config(rate_per_s=500.0), 2)
        first = run_batch_policy(config, BATCH, "Sync", seed=1, scale=SCALE)
        summary = first.serving
        assert summary is not None
        assert summary.completed == summary.arrivals > 0
        again = run_batch_policy(config, BATCH, "Sync", seed=1, scale=SCALE)
        assert result_to_dict(again) == result_to_dict(first)


class TestCacheKeyContract:
    # Digests recorded before the serving layer existed (default
    # MachineConfig, 1_Data_Intensive, seed 1, scale 0.2).  If one of
    # these moves, every previously cached result is orphaned.
    SEED_DIGESTS = {
        "ITS": "6a50da2424f49f20b1ec536a29c882339af854b9ace480f71c119cbbd4010966",
        "Sync": "91e1e4ff33f2da8dd5b059e2563f0739cfb65ec63ca06ef83630c7a5b5a0ddd8",
    }

    def make_cell(self, policy, config=None):
        return SweepCell(
            config=config or MachineConfig(),
            batch=BATCH,
            policy=policy,
            seed=1,
            scale=0.2,
        )

    def test_disabled_serving_keys_bit_identical_to_seed(self):
        for policy, digest in self.SEED_DIGESTS.items():
            assert cache_key(self.make_cell(policy)) == digest

    def test_explicit_default_block_also_hashes_identically(self):
        config = dataclasses.replace(MachineConfig(), serving=ServingConfig())
        assert (
            cache_key(self.make_cell("ITS", config)) == self.SEED_DIGESTS["ITS"]
        )

    def test_enabled_serving_changes_the_key(self):
        assert (
            cache_key(self.make_cell("ITS", with_serving(MachineConfig())))
            != self.SEED_DIGESTS["ITS"]
        )

    def test_every_offered_rate_gets_its_own_key(self):
        keys = {
            cache_key(self.make_cell("ITS", serve_config(rate_per_s=rate)))
            for rate in (500.0, 2000.0, 4000.0)
        }
        assert len(keys) == 3

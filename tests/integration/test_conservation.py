"""Time-conservation invariants of the simulation loop.

Virtual time only advances through three channels: CPU occupancy charged
to a process (`consume_time`), context-switch costs, and idle gaps while
every process waits on I/O.  The makespan must therefore decompose
exactly — no time is created or lost.
"""

import pytest

from repro import MachineConfig, Simulation, build_batch
from repro.analysis.experiments import POLICY_FACTORIES


@pytest.mark.parametrize("policy_name", list(POLICY_FACTORIES))
@pytest.mark.parametrize("batch_name", ["No_Data_Intensive", "3_Data_Intensive"])
def test_makespan_decomposes_exactly(policy_name, batch_name):
    batch = build_batch(batch_name, seed=5, scale=0.25)
    sim = Simulation(
        MachineConfig(), batch, POLICY_FACTORIES[policy_name](), batch_name=batch_name
    )
    result = sim.run()
    cpu_occupancy = sum(p.cpu_time_ns for p in result.processes)
    accounted = (
        cpu_occupancy
        + result.idle.ctx_switch_overhead_ns
        + result.idle.async_idle_ns
    )
    assert accounted == result.makespan_ns


@pytest.mark.parametrize("policy_name", ["Sync", "Async", "ITS"])
def test_idle_components_within_makespan(policy_name):
    batch = build_batch("2_Data_Intensive", seed=5, scale=0.25)
    result = Simulation(
        MachineConfig(), batch, POLICY_FACTORIES[policy_name]()
    ).run()
    idle = result.idle
    assert 0 <= idle.memory_stall_ns
    assert 0 <= idle.sync_storage_ns
    assert 0 <= idle.async_idle_ns
    assert idle.total_idle_ns <= result.makespan_ns


@pytest.mark.parametrize("policy_name", list(POLICY_FACTORIES))
def test_storage_waits_match_process_records(policy_name):
    batch = build_batch("1_Data_Intensive", seed=5, scale=0.25)
    result = Simulation(
        MachineConfig(), batch, POLICY_FACTORIES[policy_name]()
    ).run()
    per_process = sum(p.storage_wait_ns for p in result.processes)
    assert per_process == result.idle.sync_storage_ns


def test_memory_stalls_match_process_records():
    batch = build_batch("1_Data_Intensive", seed=5, scale=0.25)
    result = Simulation(MachineConfig(), batch, POLICY_FACTORIES["Sync"]()).run()
    per_process = sum(p.memory_stall_ns for p in result.processes)
    assert per_process == result.idle.memory_stall_ns

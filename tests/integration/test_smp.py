"""SMP invariants of the full simulation loop.

Three contracts anchor the multi-core model:

* **per-core time conservation** — each core's five buckets
  (busy + idle + steal + ctx + shootdown) tile its wall clock exactly,
  the SMP analogue of test_conservation.py's makespan decomposition;
* **single-core bit-identity** — ``cores=1`` serialises to nothing, so
  sweep-cache keys and batch results are byte-identical to the seed
  repo (the pinned digests of test_adaptive_policy.py must not move);
* **determinism** — the same seed at the same core count reproduces
  the run exactly, at any core count.
"""

import dataclasses

import pytest

from repro.analysis.experiments import POLICY_FACTORIES, run_core_scaling
from repro.analysis.runner import SweepCell, cache_key
from repro.common.config import CoreConfig, MachineConfig, with_cores
from repro.common.errors import ConfigError
from repro.sim.batch import build_batch, run_batch_instrumented
from repro.sim.simulator import Simulation

SMP_POLICIES = ["Sync", "Async", "ITS"]


def run_smp(policy_name, cores, *, scale=0.2, seed=5, batch="1_Data_Intensive",
            config=None, **core_kw):
    """Run one batch on an SMP machine; return the live Simulation and
    its result (the machine's per-core buckets stay inspectable)."""
    config = with_cores(config or MachineConfig(), cores, **core_kw)
    workloads = build_batch(batch, seed=seed, scale=scale, config=config)
    sim = Simulation(
        config, workloads, POLICY_FACTORIES[policy_name](), batch_name=batch
    )
    return sim, sim.run()


class TestPerCoreConservation:
    @pytest.mark.parametrize("policy_name", SMP_POLICIES)
    @pytest.mark.parametrize("cores", [2, 4])
    def test_buckets_tile_each_cores_clock(self, policy_name, cores):
        sim, result = run_smp(policy_name, cores)
        for core in sim.machine.cores:
            accounted = (
                core.busy_ns
                + core.idle_ns
                + core.steal_ns
                + core.ctx_ns
                + core.shootdown_ns
            )
            assert accounted == result.makespan_ns
            assert core.now_ns == result.makespan_ns

    def test_conservation_survives_disabled_stealing(self):
        sim, result = run_smp("Async", 2, work_steal=False)
        assert sim.scheduler.steal_stats.steals == 0
        for core in sim.machine.cores:
            total = (
                core.busy_ns + core.idle_ns + core.steal_ns
                + core.ctx_ns + core.shootdown_ns
            )
            assert total == result.makespan_ns

    def test_async_idle_equals_summed_core_idle(self):
        sim, result = run_smp("Async", 2)
        assert result.idle.async_idle_ns == sum(
            core.idle_ns for core in sim.machine.cores
        )

    def test_instructions_sum_over_cores(self):
        sim, result = run_smp("ITS", 2)
        assert result.instructions_committed == sum(
            core.cpu.instructions_committed for core in sim.machine.cores
        )
        assert result.context_switches == sum(
            core.context_switch.switches for core in sim.machine.cores
        )


class TestSingleCoreBitIdentity:
    # The pinned pre-SMP digests (default MachineConfig, 1_Data_Intensive,
    # seed 1, scale 0.2) — shared with test_adaptive_policy.py.
    SEED_DIGESTS = {
        "ITS": "6a50da2424f49f20b1ec536a29c882339af854b9ace480f71c119cbbd4010966",
        "Sync": "91e1e4ff33f2da8dd5b059e2563f0739cfb65ec63ca06ef83630c7a5b5a0ddd8",
    }

    def make_cell(self, policy, config):
        return SweepCell(
            config=config, batch="1_Data_Intensive", policy=policy, seed=1, scale=0.2
        )

    def test_explicit_single_core_block_keeps_seed_digests(self):
        config = dataclasses.replace(MachineConfig(), cores=CoreConfig())
        for policy, digest in self.SEED_DIGESTS.items():
            assert cache_key(self.make_cell(policy, config)) == digest

    def test_with_cores_one_keeps_seed_digests(self):
        config = with_cores(MachineConfig(), 1)
        assert cache_key(self.make_cell("ITS", config)) == self.SEED_DIGESTS["ITS"]

    def test_multi_core_changes_the_key(self):
        config = with_cores(MachineConfig(), 2)
        assert cache_key(self.make_cell("ITS", config)) != self.SEED_DIGESTS["ITS"]

    @pytest.mark.parametrize("policy_name", ["Sync", "ITS"])
    def test_single_core_results_identical_to_baseline(self, policy_name):
        _, baseline = run_smp(policy_name, 1)
        workloads = build_batch("1_Data_Intensive", seed=5, scale=0.2)
        plain = Simulation(
            MachineConfig(),
            workloads,
            POLICY_FACTORIES[policy_name](),
            batch_name="1_Data_Intensive",
        ).run()
        assert baseline == plain


class TestDeterminism:
    @pytest.mark.parametrize("policy_name,cores", [("ITS", 2), ("Async", 4)])
    def test_same_seed_same_result(self, policy_name, cores):
        _, first = run_smp(policy_name, cores)
        _, second = run_smp(policy_name, cores)
        assert first == second

    def test_steal_counters_reproduce(self):
        sim_a, _ = run_smp("Async", 2)
        sim_b, _ = run_smp("Async", 2)
        assert sim_a.scheduler.steal_stats == sim_b.scheduler.steal_stats


class TestScaling:
    def test_more_cores_shrink_fault_heavy_makespan(self):
        _, single = run_smp("ITS", 1, scale=0.1, batch="3_Data_Intensive")
        _, quad = run_smp("ITS", 4, scale=0.1, batch="3_Data_Intensive")
        assert quad.makespan_ns < single.makespan_ns

    def test_work_actually_migrates(self):
        sim, _ = run_smp("Async", 2)
        assert sim.scheduler.steal_stats.steals > 0
        assert sim.scheduler.steal_stats.migration_ns > 0

    def test_run_core_scaling_rows_and_speedups(self):
        rows = run_core_scaling(core_counts=(1, 2), policies=("Async",), scale=0.1)
        assert [row.cores for row in rows] == [1, 2]
        assert rows[0].speedup["Async"] == 1.0
        assert rows[1].speedup["Async"] > 1.0
        assert rows[1].makespan_ns["Async"] < rows[0].makespan_ns["Async"]

    def test_run_core_scaling_requires_baseline(self):
        with pytest.raises(ConfigError):
            run_core_scaling(core_counts=(2, 4), policies=("Async",), scale=0.1)


class TestTelemetry:
    def test_per_core_gauges_published(self):
        result, telemetry = run_batch_instrumented(
            "1_Data_Intensive",
            POLICY_FACTORIES["Async"](),
            seed=5,
            scale=0.2,
            cores=2,
        )
        registry = telemetry.registry
        busy = [registry.gauge(f"cpu.core{i}.busy_ns").value for i in range(2)]
        idle = [registry.gauge(f"cpu.core{i}.idle_ns").value for i in range(2)]
        assert all(value > 0 for value in busy)
        assert registry.gauge("sched.steal.count").value > 0
        assert registry.gauge("sched.core0.dispatches").value > 0
        assert registry.gauge("tlb.shootdown.count").value >= 0
        # The aggregate view still carries the familiar names.
        assert registry.gauge("sched.dispatches").value > 0
        assert registry.gauge("cpu.instructions_committed").value == (
            result.instructions_committed
        )

    def test_single_core_publishes_no_core_gauges(self):
        _, telemetry = run_batch_instrumented(
            "1_Data_Intensive", POLICY_FACTORIES["Sync"](), seed=5, scale=0.2
        )
        names = {metric.name for metric in telemetry.registry}
        assert not any(name.startswith("cpu.core") for name in names)
        assert "tlb.shootdown.count" not in names

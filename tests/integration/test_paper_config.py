"""The full-scale Section 4.1 platform config also runs end-to-end.

The paper-scale machine (8 MiB LLC, 256 MiB DRAM, 800 ms slices) is used
with reduced trace scale so the test stays fast; what this verifies is
that nothing in the code assumes the scaled-down defaults.
"""

import pytest

from repro import ITSPolicy, MachineConfig, Simulation, SyncIOPolicy, build_batch


@pytest.fixture(scope="module")
def paper_config():
    return MachineConfig.paper()


def test_paper_platform_runs_sync(paper_config):
    batch = build_batch("1_Data_Intensive", seed=2, scale=0.2, config=paper_config)
    result = Simulation(paper_config, batch, SyncIOPolicy(), batch_name="paper").run()
    assert result.makespan_ns > 0
    # DRAM is large at paper scale: only cold faults remain.
    assert result.major_faults > 0


def test_paper_platform_runs_its(paper_config):
    batch = build_batch("1_Data_Intensive", seed=2, scale=0.2, config=paper_config)
    result = Simulation(paper_config, batch, ITSPolicy(), batch_name="paper").run()
    assert result.makespan_ns > 0


def test_paper_slices_serialize_high_priority(paper_config):
    # With 800 ms maximum slices and millisecond traces, the first
    # dispatched process runs to completion uninterrupted under Sync.
    batch = build_batch("No_Data_Intensive", seed=2, scale=0.2, config=paper_config)
    result = Simulation(paper_config, batch, SyncIOPolicy(), batch_name="paper").run()
    first = min(result.processes, key=lambda p: p.finish_time_ns)
    assert first.context_switches == 0

"""Engine equivalence on the paper's own cells.

The unit and property tests cover crafted and random shapes; this file
pins the contract on the real thing: the seed-digest cell the CI smoke
jobs assert on (``1_Data_Intensive``, seed 1, scale 0.2) must produce
the same result digest under both engines, for every paper policy plus
the adaptive controller, and the default engine must not move the
pinned sweep-cache keys.
"""

import pytest

from repro.analysis.experiments import PAPER_POLICIES, POLICY_FACTORIES
from repro.analysis.runner import SweepCell, cache_key, stable_hash
from repro.analysis.store import result_to_dict
from repro.common.config import MachineConfig, with_engine
from repro.engine import build_simulation
from repro.sim.batch import build_batch

# The same pinned input digests the CI smoke jobs assert on: the seed
# cell's cache key, which the engine field must not move.
SEED_DIGESTS = {
    "ITS": "6a50da2424f49f20b1ec536a29c882339af854b9ace480f71c119cbbd4010966",
    "Sync": "91e1e4ff33f2da8dd5b059e2563f0739cfb65ec63ca06ef83630c7a5b5a0ddd8",
}

POLICIES = tuple(PAPER_POLICIES) + ("Adaptive",)


def run_cell(policy_name, engine):
    config = with_engine(MachineConfig(), engine)
    batch = build_batch("1_Data_Intensive", seed=1, scale=0.2, config=config)
    return build_simulation(
        config,
        batch,
        POLICY_FACTORIES[policy_name](),
        batch_name="1_Data_Intensive",
    ).run()


@pytest.mark.parametrize("policy_name", POLICIES)
def test_result_digest_identical_under_both_engines(policy_name):
    reference = stable_hash(result_to_dict(run_cell(policy_name, "reference")))
    fast = stable_hash(result_to_dict(run_cell(policy_name, "fast")))
    assert fast == reference


@pytest.mark.parametrize("policy_name", sorted(SEED_DIGESTS))
def test_default_engine_keeps_pinned_cache_keys(policy_name):
    key = cache_key(
        SweepCell(
            config=MachineConfig(),
            batch="1_Data_Intensive",
            policy=policy_name,
            seed=1,
            scale=0.2,
        )
    )
    assert key == SEED_DIGESTS[policy_name]

"""Reproducibility: identical (config, batch, seed, policy) runs give
bit-identical results."""

import pytest

from repro import MachineConfig, Simulation, build_batch
from repro.analysis.experiments import POLICY_FACTORIES


def run_once(policy_name, seed=3):
    batch = build_batch("1_Data_Intensive", seed=seed, scale=0.25)
    factory = POLICY_FACTORIES[policy_name]
    return Simulation(
        MachineConfig(), batch, factory(), batch_name="det"
    ).run()


@pytest.mark.parametrize("policy_name", list(POLICY_FACTORIES))
def test_repeat_runs_identical(policy_name):
    a = run_once(policy_name)
    b = run_once(policy_name)
    assert a.makespan_ns == b.makespan_ns
    assert a.total_idle_ns == b.total_idle_ns
    assert a.major_faults == b.major_faults
    assert a.minor_faults == b.minor_faults
    assert a.demand_cache_misses == b.demand_cache_misses
    assert [p.finish_time_ns for p in a.processes] == [
        p.finish_time_ns for p in b.processes
    ]


def test_different_seed_changes_outcome():
    a = run_once("Sync", seed=3)
    b = run_once("Sync", seed=4)
    # Priorities differ, so at least the finish-time profile must move.
    assert [p.priority for p in a.processes] != [p.priority for p in b.processes]

"""Smoke tests: the example scripts run to completion and produce the
output their docstrings promise."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *argv: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *argv],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "ITS reduces total CPU idle time" in out
        assert "policy=Sync" in out and "policy=ITS" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py")
        assert "composed trace" in out
        assert "trace file round trip OK" in out
        assert "Sync" in out and "ITS" in out

    def test_event_timeline(self):
        out = run_example("event_timeline.py")
        assert "event counts:" in out
        assert "steal" in out
        assert "resource utilisation:" in out

    def test_priority_scheduling(self):
        out = run_example("priority_scheduling.py")
        assert "thread selection:" in out
        assert "self-improving:" in out
        assert "state recovery:" in out

    def test_tail_latency(self, tmp_path):
        out = run_example("tail_latency.py", str(tmp_path / "cache"))
        assert "crossover" in out
        assert "tail_bimodal" in out
        assert "async takes over" in out
        assert "steal windows demoted to the async path" in out

    def test_adaptive_modes(self, tmp_path):
        out = run_example("adaptive_modes.py", str(tmp_path / "cache"))
        assert "adaptive tracked the best static policy" in out
        assert "adaptive decisions under tail_bimodal:" in out
        assert "controller's view of the read-wait distribution" in out
        assert "p95" in out

"""The observability layer against real simulations.

Three invariants anchor this file (docs/OBSERVABILITY.md):

* **conservation** — with the time ledger attached, every simulated
  nanosecond on every core lands in exactly one category, for every
  paper policy at 1, 2 and 4 cores;
* **zero perturbation** — attaching the ledger and the causal graph
  changes nothing about the simulated outcome;
* **causal soundness** — the fault graph is acyclic and complete
  (every fault reaches a ``resume``).
"""

import pytest

from repro import MachineConfig, Telemetry
from repro.analysis.experiments import PAPER_POLICIES, run_batch_policy
from repro.telemetry import LEDGER_CATEGORIES

SCALE = 0.1
BATCH = "2_Data_Intensive"
SEED = 3


def _run(policy_name, *, cores=None, telemetry=None, config=None):
    return run_batch_policy(
        config or MachineConfig(),
        BATCH,
        policy_name,
        seed=SEED,
        scale=SCALE,
        cores=cores,
        telemetry=telemetry,
    )


@pytest.mark.parametrize("policy_name", PAPER_POLICIES)
@pytest.mark.parametrize("cores", [1, 2, 4])
def test_ledger_conservation_across_policies_and_cores(policy_name, cores):
    telemetry = Telemetry(events=False, ledger=True)
    result = _run(policy_name, cores=cores, telemetry=telemetry)
    ledger = telemetry.ledger
    # The simulator audits at _build_result time; re-assert explicitly.
    ledger.audit(result.makespan_ns, cores)
    assert ledger.total_ns() == result.makespan_ns * cores
    for core in range(cores):
        assert ledger.core_total_ns(core) == result.makespan_ns
    assert set(ledger.by_category()) == set(LEDGER_CATEGORIES)


@pytest.mark.parametrize("policy_name", PAPER_POLICIES)
def test_observability_does_not_perturb_results(policy_name):
    bare = _run(policy_name)
    telemetry = Telemetry(events=False, ledger=True, causal=True)
    observed = _run(policy_name, telemetry=telemetry)
    assert bare.makespan_ns == observed.makespan_ns
    assert bare.major_faults == observed.major_faults
    assert bare.total_idle_ns == observed.total_idle_ns
    assert bare.instructions_committed == observed.instructions_committed


@pytest.mark.parametrize("policy_name", ["ITS", "Adaptive", "Async"])
@pytest.mark.parametrize("cores", [1, 2])
def test_causal_graph_acyclic_and_complete(policy_name, cores):
    telemetry = Telemetry(events=False, causal=True)
    result = _run(policy_name, cores=cores, telemetry=telemetry)
    graph = telemetry.causal
    graph.check_acyclic()
    faults = graph.of_kind("fault")
    assert len(faults) == result.major_faults
    assert graph.unresolved_faults() == []
    # Parent ids always precede children (acyclic by construction).
    for node in graph:
        if node.parent is not None:
            assert node.parent < node.id


def test_causal_steal_windows_classified_on_its():
    telemetry = Telemetry(events=False, causal=True)
    _run("ITS", telemetry=telemetry)
    windows = telemetry.causal.steal_windows()
    assert windows, "an ITS run must record stolen windows"
    assert any(w["paid_off"] for w in windows)
    for row in windows:
        assert row["prefetches_useful"] <= row["prefetches_installed"]
        assert row["prefetches_installed"] <= row["prefetches_issued"]


class TestSyncLedgerIdentities:
    """Single-core Sync: the ledger agrees with the idle breakdown."""

    @pytest.fixture(scope="class")
    def run(self):
        telemetry = Telemetry(events=False, ledger=True)
        result = _run("Sync", telemetry=telemetry)
        return result, telemetry.ledger

    def test_spin_wait_is_the_sync_storage_wait(self, run):
        result, ledger = run
        assert ledger.by_category()["spin_wait"] == result.idle.sync_storage_ns

    def test_ctx_switch_matches_overhead(self, run):
        result, ledger = run
        assert (
            ledger.by_category()["ctx_switch"]
            == result.idle.ctx_switch_overhead_ns
        )

    def test_no_its_categories_on_a_baseline(self, run):
        _result, ledger = run
        totals = ledger.by_category()
        assert totals["stolen_run"] == 0
        assert totals["tlb_shootdown"] == 0


class TestSMPSpanTiling:
    """Per-core track suffixes: ITS fault phases tile per core.

    A major fault is serviced entirely on the core it hit, so its
    ``fault.handler`` span (``cpu.core{i}`` track) and ``fault.its.*``
    phases (``its.core{i}`` track) must sum to exactly that core's
    ``fault.its`` parent spans — per core, not just in aggregate.
    """

    ITS_PHASES = (
        "fault.its.checkpoint",
        "fault.its.prefetch_walk",
        "fault.its.runahead",
        "fault.its.wait",
        "fault.its.restore",
    )

    @pytest.fixture(scope="class")
    def tracer(self):
        from repro import Simulation, build_batch
        from repro.common.config import with_cores
        from repro.core import ITSPolicy

        # All-self-improving: a sacrificed fault records a handler span
        # but no ``fault.its`` parent, which would break the identity.
        config = with_cores(MachineConfig(), 2)
        batch = build_batch(BATCH, seed=SEED, scale=SCALE, config=config)
        telemetry = Telemetry(events=False)
        Simulation(
            config, batch, ITSPolicy(self_sacrifice=False), telemetry=telemetry
        ).run()
        return telemetry.tracer

    def test_core_tracks_present(self, tracer):
        tracks = {span.track for span in tracer}
        assert {"its.core0", "its.core1"} <= tracks
        # Shared resources stay on shared tracks.
        assert not any(t.startswith("dma.core") for t in tracks)

    def test_phases_tile_parent_per_core(self, tracer):
        for core in range(2):
            parent_total = sum(
                s.dur_ns or 0
                for s in tracer
                if s.name == "fault.its" and s.track == f"its.core{core}"
            )
            assert parent_total > 0
            child_total = sum(
                s.dur_ns or 0
                for s in tracer
                if (s.name in self.ITS_PHASES and s.track == f"its.core{core}")
                or (s.name == "fault.handler" and s.track == f"cpu.core{core}")
            )
            assert child_total == parent_total


def test_ledger_gauges_published():
    telemetry = Telemetry(events=False, ledger=True)
    _run("ITS", telemetry=telemetry)
    snap = telemetry.registry.snapshot()
    for category in LEDGER_CATEGORIES:
        assert f"ledger.{category}_ns" in snap
    assert snap["ledger.run_ns"] > 0

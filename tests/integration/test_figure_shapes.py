"""The headline reproduction checks: the paper's figure *shapes*.

These tests assert orderings and rough factors, not absolute numbers
(our substrate is a scaled-down simulator).  They run the full grid once
at reduced scale, averaged over seeds, exactly as the benchmark harness
does.  Expected shapes (paper Section 4.2):

* Fig 4a — total idle time: ITS < Sync_Prefetch < Sync_Runahead <
  Sync < Async, in every batch.
* Fig 4b — major faults: ITS lowest (within noise of Sync_Prefetch);
  Async ≥ Sync; Async clearly worst on data-intensive batches.
* Fig 4c — cache misses: Sync_Runahead lowest, Async highest.
* Fig 5a — top-50% finish time: ITS best, Async worst.
* Fig 5b — bottom-50% finish time: ITS beats Async, Sync and
  Sync_Runahead (the Sync_Prefetch comparison is the one documented
  deviation, see EXPERIMENTS.md).
"""

import pytest

from repro import MachineConfig
from repro.analysis.experiments import run_figure4, run_figure5, run_observation

# Full-scale traces: the Async-vs-Sync fault-thrash differential needs
# the reuse passes that scaled-down traces drop.
SEEDS = (1, 2)
SCALE = 1.0


@pytest.fixture(scope="module")
def fig4():
    return run_figure4(MachineConfig(), seeds=SEEDS, scale=SCALE)


@pytest.fixture(scope="module")
def fig5():
    return run_figure5(MachineConfig(), seeds=SEEDS, scale=SCALE)


def series_by_batch(series):
    for i, batch in enumerate(series.x_labels):
        yield batch, {name: values[i] for name, values in series.series.items()}


class TestFigure4a:
    def test_its_always_best(self, fig4):
        for batch, values in series_by_batch(fig4.idle_time):
            assert values["ITS"] == min(values.values()), (batch, values)

    def test_async_always_worst(self, fig4):
        for batch, values in series_by_batch(fig4.idle_time):
            assert values["Async"] == max(values.values()), (batch, values)

    def test_full_paper_ordering(self, fig4):
        for batch, values in series_by_batch(fig4.idle_time):
            assert (
                values["ITS"]
                < values["Sync_Prefetch"]
                < values["Sync_Runahead"]
                < values["Sync"]
                < values["Async"]
            ), (batch, values)

    def test_savings_vs_async_substantial(self, fig4):
        # Paper: 61-66% saved vs Async.  We assert at least half.
        for batch, values in series_by_batch(fig4.idle_time):
            assert values["ITS"] < 0.5 * values["Async"], (batch, values)

    def test_savings_vs_sync_visible(self, fig4):
        # Paper: 17-43% saved vs Sync.  We assert at least 15%.
        for batch, values in series_by_batch(fig4.idle_time):
            assert values["ITS"] < 0.85 * values["Sync"], (batch, values)


class TestFigure4b:
    def test_its_fewest_faults_or_close_to_prefetch(self, fig4):
        for batch, values in series_by_batch(fig4.page_faults):
            floor = min(values.values())
            assert values["ITS"] <= 1.15 * floor, (batch, values)

    def test_async_comparable_or_worse_than_sync(self, fig4):
        # Paper Fig 4b: Async tracks Sync on low-intensity batches and
        # exceeds it once data-intensive processes thrash the pool.
        for batch, values in series_by_batch(fig4.page_faults):
            assert values["Async"] >= 0.9 * values["Sync"], (batch, values)

    def test_prefetchers_cut_faults_substantially(self, fig4):
        # Paper: >=61-65% fault reduction on the low-intensity batches.
        for batch, values in series_by_batch(fig4.page_faults):
            if batch in ("No_Data_Intensive", "1_Data_Intensive"):
                assert values["ITS"] < 0.5 * values["Sync"], (batch, values)

    def test_async_thrash_on_data_intensive(self, fig4):
        values = dict(series_by_batch(fig4.page_faults))["3_Data_Intensive"]
        assert values["Async"] > 1.1 * values["Sync"]


class TestFigure4c:
    def test_runahead_fewest_misses(self, fig4):
        for batch, values in series_by_batch(fig4.cache_misses):
            assert values["Sync_Runahead"] == min(values.values()), (batch, values)

    def test_async_most_misses(self, fig4):
        for batch, values in series_by_batch(fig4.cache_misses):
            assert values["Async"] == max(values.values()), (batch, values)

    def test_runahead_beats_its_on_misses_but_loses_on_idle(self, fig4):
        # The paper's key cross-metric observation.
        idle = dict(series_by_batch(fig4.idle_time))
        misses = dict(series_by_batch(fig4.cache_misses))
        for batch in idle:
            assert misses[batch]["Sync_Runahead"] < misses[batch]["ITS"]
            assert idle[batch]["Sync_Runahead"] > idle[batch]["ITS"]


class TestFigure5a:
    def test_its_best_top_half(self, fig5):
        for batch, values in series_by_batch(fig5.top_half):
            assert values["ITS"] == min(values.values()), (batch, values)

    def test_async_worst_top_half(self, fig5):
        for batch, values in series_by_batch(fig5.top_half):
            assert values["Async"] == max(values.values()), (batch, values)

    def test_substantial_savings_vs_async(self, fig5):
        # Paper: 65-75% saved vs Async.
        for batch, values in series_by_batch(fig5.top_half):
            assert values["ITS"] < 0.5 * values["Async"], (batch, values)


class TestFigure5b:
    def test_beats_async_sync_runahead(self, fig5):
        for batch, values in series_by_batch(fig5.bottom_half):
            assert values["ITS"] < values["Async"], (batch, values)
            assert values["ITS"] < 1.05 * values["Sync"], (batch, values)
            assert values["ITS"] < 1.05 * values["Sync_Runahead"], (batch, values)


class TestObservation:
    def test_idle_grows_with_process_count(self):
        data = run_observation(MachineConfig(), scale=0.4)
        assert data.normalized_idle == sorted(data.normalized_idle)
        assert data.normalized_idle[0] == 1.0
        assert data.normalized_idle[-1] > 1.5

    def test_idle_share_significant(self):
        # Paper: more than 22% of time is CPU idle under Sync.
        data = run_observation(MachineConfig(), scale=0.4)
        assert all(frac > 0.22 for frac in data.idle_fraction)

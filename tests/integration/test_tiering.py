"""Integration tests for heterogeneous storage tiers.

The headline acceptance check reproduces the paper's regime boundary
*within one machine*: with per-tier adaptation enabled, the controller
must select sync/steal servicing for the faults an ULL-class device
backs while routing far-memory-backed faults through the async path —
concurrently, in a single run (docs/TIERING.md).
"""

import dataclasses

import pytest

from repro.adaptive.policy import AdaptivePolicy
from repro.analysis.store import result_from_dict, result_to_dict
from repro.analysis.tiering import format_tier_table, run_tier_sweep
from repro.common.config import (
    CacheConfig,
    MachineConfig,
    MemoryConfig,
    SchedulerConfig,
    TLBConfig,
    with_engine,
    with_serving,
)
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRNG
from repro.common.units import KIB, US
from repro.cpu.isa import Load
from repro.engine import FastSimulation, Simulation, build_simulation
from repro.sim.simulator import WorkloadInstance
from repro.tiering import with_tier_presets
from repro.trace.workloads import build_workload

PAGE = 4096


def adaptive_tiered_config(tiers=("ull", "far_memory"), **tier_overrides):
    """Per-tier adaptation on heterogeneous storage: the controller
    warms quickly and re-decides per fault, prefetching disabled so the
    estimators see raw device latencies."""
    base = MachineConfig()
    base = dataclasses.replace(
        base,
        its=dataclasses.replace(base.its, prefetch_degree=0),
        adaptive=dataclasses.replace(
            base.adaptive, enabled=True, warmup_faults=4, min_dwell_faults=1
        ),
    )
    return with_tier_presets(base, tiers, **tier_overrides)


def balanced_roster(count=6, scale=0.5, seed=1):
    """*count* identical data-intensive processes: co-running persists
    through the whole run, so the ready queue stays populated and the
    async path's context-switch economics are representative."""
    config = MachineConfig()
    rng = DeterministicRNG(seed)
    priorities = rng.sample(range(config.scheduler.priority_levels), count)
    instances = []
    for index in range(count):
        build = build_workload("random_walk", rng.fork(index + 1), scale)
        instances.append(
            WorkloadInstance(
                name=f"rw{index}",
                trace=build.trace,
                priority=priorities[index],
                data_intensive=True,
                mapped_vpns=build.mapped_vpns,
            )
        )
    return instances


class TestRegimeBoundaryByTier:
    """ISSUE acceptance: >= 90% sync/steal on ULL, >= 90% async on far
    memory, in the same adaptive run under the ``none`` fault profile."""

    def test_adaptive_splits_modes_by_device(self):
        config = adaptive_tiered_config(placement="pid_hash")
        sim = build_simulation(
            config, balanced_roster(), AdaptivePolicy(), batch_name="tiered"
        )
        result = sim.run()
        summary = result.tiers
        assert summary is not None
        ull = summary.usage_of("ull")
        far = summary.usage_of("far_memory")
        # Both tiers must actually have served faults for the check to
        # mean anything.
        assert ull.total_decisions > 50
        assert far.total_decisions > 50
        assert ull.decision_fraction("sync", "steal") >= 0.9
        assert far.decision_fraction("async") >= 0.9


def tiny_config():
    return MachineConfig(
        llc=CacheConfig(size_bytes=8 * KIB, ways=2),
        tlb=TLBConfig(entries=4),
        memory=MemoryConfig(dram_frames=12),
        scheduler=SchedulerConfig(max_time_slice_ns=200 * US, min_time_slice_ns=20 * US),
    )


def tiny_workloads():
    return [
        WorkloadInstance(
            name=f"w{i}",
            trace=[Load(dst=1, vaddr=0x40_0000 + p * PAGE) for p in range(8)],
            priority=i,
        )
        for i in range(2)
    ]


class TestFastEngineFallback:
    """Tiered configs must run on the reference loop — bit-identically."""

    def test_tiers_force_reference(self):
        config = with_engine(
            with_tier_presets(tiny_config(), ["ull", "nvme"]), "fast"
        )
        sim = build_simulation(
            config, tiny_workloads(), AdaptivePolicy(), batch_name="t"
        )
        assert isinstance(sim, FastSimulation)
        assert sim._force_reference

    def test_forced_reference_is_bit_identical(self):
        tiered = with_tier_presets(tiny_config(), ["ull", "nvme"])
        reference = Simulation(
            tiered, tiny_workloads(), AdaptivePolicy(), batch_name="t"
        )
        fast = FastSimulation(
            with_engine(tiered, "fast"),
            tiny_workloads(),
            AdaptivePolicy(),
            batch_name="t",
        )
        assert result_to_dict(fast.run()) == result_to_dict(reference.run())


class TestResultPayload:
    def test_tiered_result_round_trips(self):
        config = with_tier_presets(tiny_config(), ["ull", "nvme"])
        result = build_simulation(
            config, tiny_workloads(), AdaptivePolicy(), batch_name="t"
        ).run()
        payload = result_to_dict(result)
        assert payload["tiers"]["placement"] == "pid_hash"
        assert [t["name"] for t in payload["tiers"]["tiers"]] == ["ull", "nvme"]
        assert result_from_dict(payload) == result

    def test_untier_result_omits_key(self):
        result = build_simulation(
            tiny_config(), tiny_workloads(), AdaptivePolicy(), batch_name="t"
        ).run()
        assert result.tiers is None
        assert "tiers" not in result_to_dict(result)


class TestTierSweep:
    def test_rows_per_placement_and_tier(self, tmp_path):
        from repro.analysis.runner import ResultCache

        cache = ResultCache(tmp_path)
        kwargs = dict(
            tiers=("ull", "nvme"),
            placements=("pid_hash", "hot_cold"),
            batch="1_Data_Intensive",
            seed=1,
            scale=0.05,
            promote_threshold=1,
            cache=cache,
        )
        rows = run_tier_sweep(**kwargs)
        assert [(r.placement, r.tier) for r in rows] == [
            ("pid_hash", "ull"),
            ("pid_hash", "nvme"),
            ("hot_cold", "ull"),
            ("hot_cold", "nvme"),
        ]
        for row in rows:
            assert row.makespan_ns > 0
            assert 0.0 <= row.sync_steal_fraction <= 1.0
            assert 0.0 <= row.async_fraction <= 1.0
        # Pages start cold under hot_cold and threshold 1 promotes on
        # the first fault, so migration traffic must appear.
        hot_cold = [r for r in rows if r.placement == "hot_cold"]
        assert hot_cold[0].migrations_in == hot_cold[1].migrations_out
        assert hot_cold[0].migrations_in > 0
        # The second run must be served from cache, through the result
        # store's tiers codec, and produce identical rows.
        assert run_tier_sweep(**kwargs) == rows
        table = format_tier_table(rows)
        assert "pid_hash" in table and "hot_cold" in table

    def test_unknown_placement_rejected(self):
        with pytest.raises(ConfigError, match="unknown placement"):
            run_tier_sweep(placements=("hottest",), scale=0.05)


class TestServingWithTiers:
    def test_open_loop_run_reports_both_summaries(self):
        from repro.analysis.experiments import run_batch_policy

        config = with_serving(
            with_tier_presets(MachineConfig(), ["ull", "nvme"]),
            rate_per_s=2000.0,
            duration_ms=2.0,
        )
        result = run_batch_policy(
            config, "1_Data_Intensive", "Adaptive", seed=1, scale=0.05
        )
        assert result.serving is not None
        assert result.tiers is not None
        assert {t.name for t in result.tiers.tiers} == {"ull", "nvme"}

"""Integration tests for the adaptive I/O-mode controller.

The acceptance criteria of the adaptive subsystem, asserted end to end:

* under the idealised ``none`` profile the adaptive policy lands within
  5% of the best static policy's makespan at every swept nominal device
  latency;
* under ``tail_bimodal`` it strictly beats at least one static policy's
  mean batch finish time at every point;
* with the ``AdaptiveConfig`` block left at its disabled default, sweep
  cache keys are bit-identical to what the repo produced before the
  adaptive layer existed (pinned digests), so no historical cached
  result is orphaned.
"""

import dataclasses

import pytest

from repro.adaptive import AdaptivePolicy, Mode
from repro.analysis.experiments import run_adaptive_comparison
from repro.analysis.runner import SweepCell, cache_key
from repro.common.config import AdaptiveConfig, MachineConfig, with_adaptive
from repro.common.units import US
from repro.core.selection import PriorityClass
from repro.sim.simulator import Simulation, WorkloadInstance

from tests.conftest import make_linear_trace

LATENCIES_US = (1, 3, 7, 15, 30)


@pytest.fixture(scope="module")
def comparison():
    """One shared sweep: none + tail_bimodal across the latency axis."""
    return run_adaptive_comparison(
        profiles=("none", "tail_bimodal"),
        latencies_us=LATENCIES_US,
        scale=0.2,
    )


class TestAcceptance:
    def test_within_5pct_of_best_static_under_none(self, comparison):
        for row in comparison:
            if row.profile != "none":
                continue
            assert row.adaptive_gap <= 0.05, (
                f"adaptive {row.adaptive_gap:+.1%} off {row.best_static} "
                f"at {row.latency_us} us"
            )

    def test_beats_a_static_policy_under_tail_bimodal(self, comparison):
        for row in comparison:
            if row.profile != "tail_bimodal":
                continue
            adaptive = row.mean_finish_ns["Adaptive"]
            statics = [
                v for k, v in row.mean_finish_ns.items() if k != "Adaptive"
            ]
            assert adaptive < max(statics), (
                f"adaptive mean finish {adaptive} beat no static policy "
                f"at {row.latency_us} us"
            )

    def test_every_point_has_all_policies(self, comparison):
        assert len(comparison) == 2 * len(LATENCIES_US)
        for row in comparison:
            assert set(row.makespan_ns) == {"Sync", "Async", "ITS", "Adaptive"}


class TestCacheKeyContract:
    """Disabled-adaptive configs must keep their historical cache keys."""

    # Digests recorded before the adaptive layer existed (default
    # MachineConfig, 1_Data_Intensive, seed 1, scale 0.2).  If one of
    # these moves, every previously cached result is orphaned.
    SEED_DIGESTS = {
        "ITS": "6a50da2424f49f20b1ec536a29c882339af854b9ace480f71c119cbbd4010966",
        "Sync": "91e1e4ff33f2da8dd5b059e2563f0739cfb65ec63ca06ef83630c7a5b5a0ddd8",
    }

    def make_cell(self, policy, config=None):
        return SweepCell(
            config=config or MachineConfig(),
            batch="1_Data_Intensive",
            policy=policy,
            seed=1,
            scale=0.2,
        )

    def test_disabled_adaptive_keys_bit_identical_to_seed(self):
        for policy, digest in self.SEED_DIGESTS.items():
            assert cache_key(self.make_cell(policy)) == digest

    def test_explicit_default_block_also_hashes_identically(self):
        config = dataclasses.replace(MachineConfig(), adaptive=AdaptiveConfig())
        assert (
            cache_key(self.make_cell("ITS", config))
            == self.SEED_DIGESTS["ITS"]
        )

    def test_enabled_adaptive_changes_the_key(self):
        config = with_adaptive(MachineConfig())
        assert (
            cache_key(self.make_cell("ITS", config))
            != self.SEED_DIGESTS["ITS"]
        )

    def test_adaptive_policy_cells_share_static_config_hash(self):
        # run_adaptive_comparison runs Adaptive on the *same* config as
        # the statics: only the policy name separates the cells.
        its = self.make_cell("ITS")
        adaptive = self.make_cell("Adaptive")
        assert its.key_payload()["config"] == adaptive.key_payload()["config"]
        assert cache_key(its) != cache_key(adaptive)


class TestModeDispatch:
    """The controller's decisions steer the actual fault paths."""

    def run_adaptive(self, config, traces=2, **adaptive_kw):
        config = with_adaptive(config, **adaptive_kw)
        workloads = [
            WorkloadInstance(
                name=f"w{i}",
                trace=make_linear_trace(6, base_va=0x10_0000 + i * 0x50_0000),
                priority=5 + 15 * i,
            )
            for i in range(traces)
        ]
        policy = AdaptivePolicy(prefetch=False)
        result = Simulation(config, workloads, policy, batch_name="unit").run()
        return policy, result

    def test_slow_device_no_payoff_demotes_to_async(self, small_config):
        # 200 us reads, no prefetcher to recoup anything: once warm, the
        # controller should abandon stealing and demote to the async
        # path via the self-sacrificing thread.
        config = dataclasses.replace(
            small_config,
            device=dataclasses.replace(
                small_config.device, access_latency_ns=200 * US
            ),
        )
        policy, result = self.run_adaptive(
            config, warmup_faults=4, min_dwell_faults=0
        )
        assert policy.controller.stats.by_mode[Mode.ASYNC] > 0
        assert policy.sacrificing.sacrifices > 0
        assert result.context_switches > 0

    def test_fast_device_stays_in_steal(self, small_config):
        policy, _ = self.run_adaptive(
            small_config, warmup_faults=4, min_dwell_faults=0
        )
        stats = policy.controller.stats
        assert stats.by_mode[Mode.ASYNC] == 0
        assert stats.by_mode[Mode.STEAL] > 0

    def test_hint_only_active_during_async_faults(self, small_config):
        policy, _ = self.run_adaptive(small_config, warmup_faults=4)
        # Outside a fault the pending mode is cleared: no standing bias
        # on the selection policy.
        assert policy._pending_mode is None
        assert policy.selection.hint is not None
        assert policy._mode_hint(None) is None
        policy._pending_mode = Mode.ASYNC
        assert policy._mode_hint(None) is PriorityClass.LOW

"""Integration: the fault layer end-to-end.

The contract under test: ``fault_profile=none`` is bit-identical to a
config that never heard of faults; enabled profiles are deterministic,
produce nonzero injection/demotion telemetry, and shift the crossover.
"""

import dataclasses

import pytest

from repro.analysis.experiments import run_batch_policy, run_tail_sensitivity
from repro.analysis.runner import SweepCell, cache_key
from repro.common.config import FaultConfig, MachineConfig
from repro.faults import with_fault_profile
from repro.telemetry import Telemetry

BATCH = "1_Data_Intensive"
SCALE = 0.1
SEED = 7


class TestNoneProfileBitIdentity:
    def test_results_identical_to_unfaulted_config(self):
        plain = MachineConfig()
        none_profile = with_fault_profile(MachineConfig(), "none")
        assert none_profile == plain
        for policy in ("Sync", "Async", "ITS"):
            a = run_batch_policy(plain, BATCH, policy, seed=SEED, scale=SCALE)
            b = run_batch_policy(none_profile, BATCH, policy, seed=SEED, scale=SCALE)
            assert a == b, policy

    def test_disabled_faults_never_sample(self):
        # An *explicit* but disabled FaultConfig with tail parameters set
        # must also change nothing: Machine only builds an injector when
        # enabled.
        sleeper = dataclasses.replace(
            MachineConfig(),
            faults=FaultConfig(
                enabled=False,
                read_latency_model="bimodal",
                bimodal_slow_prob=0.5,
                bimodal_slow_multiplier=10.0,
            ),
        )
        a = run_batch_policy(MachineConfig(), BATCH, "ITS", seed=SEED, scale=SCALE)
        b = run_batch_policy(sleeper, BATCH, "ITS", seed=SEED, scale=SCALE)
        assert a == b

    def test_cache_key_unchanged_by_none_profile(self):
        cell = lambda cfg: SweepCell(
            config=cfg, batch=BATCH, policy="ITS", seed=SEED, scale=SCALE
        )
        assert cache_key(cell(MachineConfig())) == cache_key(
            cell(with_fault_profile(MachineConfig(), "none"))
        )


class TestFaultyRunsDeterministic:
    @pytest.mark.parametrize("profile", ["tail_bimodal", "flaky_dma", "worst_case"])
    def test_same_config_same_result(self, profile):
        config = with_fault_profile(MachineConfig(), profile)
        a = run_batch_policy(config, BATCH, "ITS", seed=SEED, scale=SCALE)
        b = run_batch_policy(config, BATCH, "ITS", seed=SEED, scale=SCALE)
        assert a == b

    def test_injector_seed_changes_result(self):
        base = with_fault_profile(MachineConfig(), "tail_bimodal")
        reseeded = dataclasses.replace(
            base, faults=dataclasses.replace(base.faults, seed=12345)
        )
        a = run_batch_policy(base, BATCH, "ITS", seed=SEED, scale=SCALE)
        b = run_batch_policy(reseeded, BATCH, "ITS", seed=SEED, scale=SCALE)
        assert a.makespan_ns != b.makespan_ns


class TestTelemetrySurface:
    def test_tail_profile_injects_and_demotes(self):
        telemetry = Telemetry(events=False)
        config = with_fault_profile(MachineConfig(), "tail_bimodal")
        run_batch_policy(
            config, BATCH, "ITS", seed=SEED, scale=SCALE, telemetry=telemetry
        )
        assert telemetry.counter("faults.injected.tail").value > 0
        assert telemetry.counter("its.demote.count").value > 0

    def test_flaky_profile_retries(self):
        telemetry = Telemetry(events=False)
        config = with_fault_profile(MachineConfig(), "flaky_dma")
        run_batch_policy(
            config, BATCH, "ITS", seed=SEED, scale=SCALE, telemetry=telemetry
        )
        injected = (
            telemetry.counter("faults.injected.crc").value
            + telemetry.counter("faults.injected.timeout").value
            + telemetry.counter("faults.injected.dropped").value
        )
        assert injected > 0
        assert telemetry.counter("io.retry.attempts").value > 0

    def test_clean_run_emits_no_fault_telemetry(self):
        telemetry = Telemetry(events=False)
        run_batch_policy(
            MachineConfig(), BATCH, "ITS", seed=SEED, scale=SCALE, telemetry=telemetry
        )
        snapshot = telemetry.registry.snapshot()
        assert not any(
            name.startswith(("faults.", "io.retry.", "its.demote."))
            for name in snapshot
        )


class TestTailSensitivity:
    def test_produces_crossover_rows(self, tmp_path):
        from repro.analysis.runner import ResultCache

        rows = run_tail_sensitivity(
            MachineConfig(),
            profiles=("none", "tail_bimodal"),
            latencies_us=(3, 30),
            batch=BATCH,
            seed=SEED,
            scale=SCALE,
            cache=ResultCache(tmp_path / "cache"),
        )
        assert [r.profile for r in rows] == ["none", "tail_bimodal"]
        for row in rows:
            assert len(row.points) == 2
            assert 0 <= row.sync_wins <= 2
            assert {"Sync", "Async"} <= set(row.points[0].results)
        # At 3 us nominal the idealised device favours Sync; at 30 us
        # Async wins everywhere, so the baseline sees the flip.
        assert rows[0].crossover_us == 30

    def test_rejects_single_policy(self):
        with pytest.raises(Exception):
            run_tail_sensitivity(MachineConfig(), policies=("Sync",))

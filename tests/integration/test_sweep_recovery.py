"""Crash-recovery harness for the distributed sweep backend.

The ISSUE-10 acceptance contract: run a grid with two real worker
subprocesses, SIGKILL one mid-cell, let the lease expire, ``repro sweep
resume`` the grid, and prove that

* the killed worker's claim is reclaimed (``stale reclaimed`` >= 1),
* the final result set is bit-identical to a serial ``run_cells``, and
* no already-cached cell is ever re-executed — checked twice, via the
  cache files' ``st_mtime_ns`` (unchanged across resume) and via the
  ``runner.cells.executed`` / ``runner.cache.hit`` telemetry counters.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.analysis.claims import ClaimStore
from repro.analysis.manifest import FailureLog, SweepManifest, scan_progress
from repro.analysis.runner import ResultCache, SweepCell, run_cells
from repro.analysis.store import result_to_dict
from repro.common.config import MachineConfig
from repro.telemetry import Telemetry

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="SIGKILL process control needs POSIX"
)

LEASE_S = 1.5
N_CELLS = 10
DEADLINE_S = 120.0


def grid_cells():
    config = MachineConfig()
    return [
        SweepCell(
            config=config,
            batch="No_Data_Intensive",
            policy="Sync",
            seed=seed,
            scale=0.2,
        )
        for seed in range(1, N_CELLS + 1)
    ]


def worker_argv(manifest_path, verb):
    argv = [
        sys.executable, "-m", "repro", "sweep", verb,
        "--manifest", str(manifest_path),
        "--lease-s", str(LEASE_S),
    ]
    if verb in ("run", "resume"):
        argv += ["--poll-s", "0.1", "--backoff-s", "0.05"]
    return argv


def worker_env():
    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    return env


def cached_keys(cache, manifest):
    return [k for k in manifest.keys if cache.path_for(k).exists()]


def claim_pids(claims_root):
    """pid of every live claim file, keyed by path."""
    pids = {}
    for path in claims_root.glob("*.claim"):
        try:
            pids[path] = json.loads(path.read_text(encoding="utf-8"))["pid"]
        except (OSError, ValueError, KeyError):
            continue
    return pids


def test_sigkill_mid_grid_resume_is_bit_identical(tmp_path):
    cells = grid_cells()
    cache = ResultCache(tmp_path / "cache")
    manifest = SweepManifest(
        name="recovery", cache_dir=str(cache.root), cells=cells
    )
    manifest_path = manifest.save(tmp_path / "manifest.json")

    # Serial baseline, separate cache: the ground truth result set.
    baseline = run_cells(cells, cache=ResultCache(tmp_path / "baseline"))

    # Two real workers; --max-cells keeps them from draining the grid
    # so the post-crash resume is guaranteed to have work left.
    argv = worker_argv(manifest_path, "run") + ["--workers", "1", "--max-cells", "4"]
    env = worker_env()
    workers = [subprocess.Popen(argv, env=env) for _ in range(2)]
    by_pid = {p.pid: p for p in workers}

    # Kill one worker as soon as (a) some cells are cached -- so there
    # is pre-crash state to protect -- and (b) it demonstrably holds a
    # claim, so it dies mid-cell and leaves a stale lease behind.
    victim = None
    deadline = time.monotonic() + DEADLINE_S
    while time.monotonic() < deadline:
        if len(cached_keys(cache, manifest)) >= 2:
            for path, pid in claim_pids(cache.root / "claims").items():
                if pid in by_pid and by_pid[pid].poll() is None:
                    victim = by_pid[pid]
                    victim.kill()  # SIGKILL: no cleanup, claim left behind
                    victim.wait()
                    break
            if victim is not None:
                break
        time.sleep(0.01)
    assert victim is not None, "never caught a worker holding a claim"

    survivor = next(p for p in workers if p is not victim)
    assert survivor.wait(timeout=DEADLINE_S) == 0

    # Mid-crash audit: grid incomplete, victim's stale claim on disk.
    claims = ClaimStore(cache.root / "claims", lease_s=LEASE_S)
    failures = FailureLog(cache.root / "failures")
    progress = scan_progress(manifest, cache, claims, failures)
    assert not progress.complete
    assert progress.claimed + progress.stale >= 1  # the orphaned claim
    pre_crash = {
        key: cache.path_for(key).stat().st_mtime_ns
        for key in cached_keys(cache, manifest)
    }
    assert len(pre_crash) >= 2

    # Resume: must reclaim the stale lease and finish the grid.
    resume = subprocess.run(
        worker_argv(manifest_path, "resume") + ["--workers", "1"],
        env=env,
        capture_output=True,
        text=True,
        timeout=DEADLINE_S,
    )
    assert resume.returncode == 0, resume.stderr
    match = re.search(r"(\d+) stale reclaimed", resume.stderr)
    assert match is not None, resume.stderr
    assert int(match.group(1)) >= 1, "stale claim was not reclaimed"

    progress = scan_progress(manifest, cache, claims, failures)
    assert progress.complete
    assert progress.stale == 0 and progress.claimed == 0

    # Zero recomputation, proof 1: the cache files of every pre-crash
    # cell are byte-for-byte untouched (atomic writes would have moved
    # st_mtime_ns had anything been rewritten).
    for key, mtime_ns in pre_crash.items():
        assert cache.path_for(key).stat().st_mtime_ns == mtime_ns

    # Zero recomputation, proof 2 + bit-identical results: assembling
    # the grid through the queue executor is pure cache hits and equals
    # the serial baseline exactly.
    telemetry = Telemetry(events=False)
    resumed = run_cells(
        cells, cache=cache, executor="queue", telemetry=telemetry
    )
    assert telemetry.counter("runner.cells.executed").value == 0
    assert telemetry.counter("runner.cache.hit").value == N_CELLS
    assert [result_to_dict(r) for r in resumed] == [
        result_to_dict(r) for r in baseline
    ]


def test_status_verb_reports_recovery_state(tmp_path):
    """`repro sweep status` renders done/stale counts a recovery
    operator can act on (spot-check of the CLI surface)."""
    cells = grid_cells()[:2]
    cache = ResultCache(tmp_path / "cache")
    manifest = SweepManifest(name="st", cache_dir=str(cache.root), cells=cells)
    manifest_path = manifest.save(tmp_path / "manifest.json")
    run_cells([cells[0]], cache=cache)  # one cell done
    status = subprocess.run(
        worker_argv(manifest_path, "status"),
        env=worker_env(),
        capture_output=True,
        text=True,
        timeout=DEADLINE_S,
    )
    assert status.returncode == 0, status.stderr
    assert "1/2 done" in status.stdout
    assert "1 pending" in status.stdout

"""Parallel/cached sweep execution matches serial execution exactly.

The ISSUE-2 acceptance contract: ``workers=1`` and ``workers=4``
produce identical sweep rows, and a repeated run against the same cache
is 100% hits (verified through the runner's telemetry counters).
"""

from repro.analysis.runner import ResultCache, run_grid
from repro.analysis.sweeps import sweep_device_latency
from repro.common.config import MachineConfig
from repro.sim.batch import batch_names
from repro.telemetry import Telemetry

FAST = dict(policies=("Sync", "Async"), batch="No_Data_Intensive", seed=1, scale=0.2)
LATENCIES = [1, 30]


class TestWorkerCountInvariance:
    def test_serial_and_parallel_rows_identical(self):
        serial = sweep_device_latency(LATENCIES, workers=1, **FAST)
        parallel = sweep_device_latency(LATENCIES, workers=4, **FAST)
        assert [r.value for r in serial] == [r.value for r in parallel]
        for s_row, p_row in zip(serial, parallel):
            assert s_row.results == p_row.results  # bit-for-bit dataclass equality

    def test_parallel_grid_matches_serial_grid(self):
        config = MachineConfig()
        kwargs = dict(
            batches=batch_names()[:1],
            policies=["Sync", "ITS"],
            seeds=(1,),
            scale=0.2,
        )
        serial = run_grid(config, workers=1, **kwargs)
        parallel = run_grid(config, workers=4, **kwargs)
        assert serial == parallel


class TestResumability:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold_t = Telemetry(events=False)
        cold = sweep_device_latency(
            LATENCIES, workers=4, cache=cache, telemetry=cold_t, **FAST
        )
        expected_cells = len(LATENCIES) * len(FAST["policies"])
        assert cold_t.counter("runner.cache.miss").value == expected_cells
        assert cold_t.counter("runner.cache.hit").value == 0

        warm_t = Telemetry(events=False)
        warm = sweep_device_latency(
            LATENCIES, workers=4, cache=cache, telemetry=warm_t, **FAST
        )
        assert warm_t.counter("runner.cache.hit").value == expected_cells
        assert warm_t.counter("runner.cache.miss").value == 0
        assert warm_t.counter("runner.cells.executed").value == 0
        for c_row, w_row in zip(cold, warm):
            assert c_row.results == w_row.results

    def test_interrupted_grid_resumes(self, tmp_path):
        """Cells cached by a partial run are reused by the full run."""
        cache = ResultCache(tmp_path)
        sweep_device_latency(LATENCIES[:1], cache=cache, **FAST)  # "interrupted"
        telemetry = Telemetry(events=False)
        sweep_device_latency(LATENCIES, cache=cache, telemetry=telemetry, **FAST)
        assert telemetry.counter("runner.cache.hit").value == len(FAST["policies"])
        assert telemetry.counter("runner.cache.miss").value == len(FAST["policies"])

"""Telemetry attached to real simulations: invariants across the stack.

The key checks: attaching telemetry must not perturb the simulation
(identical results with and without), the ITS fault-phase spans must
tile their parent span exactly, and the span/metric surfaces must agree
with the simulator's own accounting.
"""

import json

import pytest

from repro import MachineConfig, Simulation, Telemetry, build_batch
from repro.analysis.experiments import POLICY_FACTORIES, run_batch_policy
from repro.core import ITSPolicy
from repro.sim.batch import run_batch_instrumented
from repro.telemetry import export_chrome_trace

SCALE = 0.1
BATCH = "2_Data_Intensive"


def _run(policy_name: str, telemetry=None):
    config = MachineConfig()
    return run_batch_policy(
        config, BATCH, policy_name, seed=3, scale=SCALE, telemetry=telemetry
    )


@pytest.mark.parametrize("policy_name", list(POLICY_FACTORIES))
def test_telemetry_does_not_perturb_results(policy_name):
    bare = _run(policy_name)
    instrumented = _run(policy_name, telemetry=Telemetry())
    assert bare.makespan_ns == instrumented.makespan_ns
    assert bare.major_faults == instrumented.major_faults
    assert bare.total_idle_ns == instrumented.total_idle_ns
    assert bare.demand_cache_misses == instrumented.demand_cache_misses


class TestITSFaultPhases:
    """Span identities on an all-self-improving ITS run."""

    PHASES = (
        "fault.handler",
        "fault.its.checkpoint",
        "fault.its.prefetch_walk",
        "fault.its.runahead",
        "fault.its.wait",
        "fault.its.restore",
    )

    @pytest.fixture(scope="class")
    def run(self):
        config = MachineConfig()
        batch = build_batch(BATCH, seed=3, scale=SCALE, config=config)
        telemetry = Telemetry()
        result = Simulation(
            config, batch, ITSPolicy(self_sacrifice=False), telemetry=telemetry
        ).run()
        return config, result, telemetry

    def test_every_major_fault_has_a_parent_span(self, run):
        _config, result, telemetry = run
        assert len(telemetry.tracer.of_name("fault.its")) == result.major_faults

    def test_phases_tile_parent_exactly(self, run):
        _config, _result, telemetry = run
        tracer = telemetry.tracer
        parent_total = tracer.total_duration_ns("fault.its")
        child_total = sum(tracer.total_duration_ns(name) for name in self.PHASES)
        assert child_total == parent_total

    def test_handler_spans_match_configured_cost(self, run):
        config, result, telemetry = run
        handler_total = telemetry.tracer.total_duration_ns("fault.handler")
        assert handler_total == result.major_faults * config.fault_handler_ns

    def test_service_histogram_counts_every_fault(self, run):
        _config, result, telemetry = run
        hist = telemetry.registry.get("fault.service_ns")
        assert hist is not None and hist.count == result.major_faults
        # Every fault's busy window includes the DMA access, so the
        # minimum service time is bounded below by the device latency.
        assert hist.min >= _config_device_floor(run)

    def test_published_gauges_match_result(self, run):
        _config, result, telemetry = run
        snap = telemetry.registry.snapshot()
        assert snap["sim.makespan_ns"] == result.makespan_ns
        assert snap["fault.major"] == result.major_faults
        assert snap["idle.total_ns"] == result.total_idle_ns
        assert snap["overhead.handler_ns"] == result.idle.total_overhead_ns

    def test_event_log_and_counters_agree(self, run):
        _config, _result, telemetry = run
        log_counts = telemetry.event_log.counts()
        snap = telemetry.registry.snapshot()
        for kind, count in log_counts.items():
            assert snap[f"events.{kind}"] == count


def test_run_batch_instrumented_exports_loadable_trace(tmp_path):
    result, telemetry = run_batch_instrumented(
        BATCH, ITSPolicy(), seed=3, scale=SCALE
    )
    path = export_chrome_trace(telemetry, tmp_path / "its.trace.json")
    with path.open() as f:
        doc = json.load(f)
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"fault.its", "fault.its.runahead", "dma.demand_read"} <= names
    assert doc["otherData"]["metrics"]["sim.makespan_ns"] == result.makespan_ns
    # Chrome's ts/dur are microseconds; the exact ns live in args.
    complete = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert complete["ts"] * 1000 == complete["args"]["start_ns"]
    assert complete["dur"] * 1000 == complete["args"]["dur_ns"]


def _config_device_floor(run) -> int:
    """Lower bound on any major-fault service time: one device access."""
    config, _result, _telemetry = run
    return config.device.access_latency_ns

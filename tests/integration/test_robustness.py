"""Seed robustness: the headline orderings hold for (almost) every
random priority assignment, not just on average."""

import pytest

from repro import MachineConfig, Simulation, build_batch
from repro.analysis.experiments import POLICY_FACTORIES
from repro.analysis.results import MetricKind
from repro.analysis.stats import orderings_stable, summarize_metric

SEEDS = (1, 2, 3, 4, 5)
POLICIES = ("Async", "Sync", "ITS")


@pytest.fixture(scope="module")
def grid():
    results = {policy: [] for policy in POLICIES}
    for seed in SEEDS:
        for policy in POLICIES:
            batch = build_batch("1_Data_Intensive", seed=seed, scale=0.5)
            results[policy].append(
                Simulation(
                    MachineConfig(), batch, POLICY_FACTORIES[policy](),
                    batch_name="robustness",
                ).run()
            )
    return results


class TestOrderingStability:
    def test_its_beats_sync_on_idle_every_seed(self, grid):
        assert orderings_stable(grid, MetricKind.IDLE_TIME, "ITS", "Sync") == 1.0

    def test_its_beats_async_on_idle_every_seed(self, grid):
        assert orderings_stable(grid, MetricKind.IDLE_TIME, "ITS", "Async") == 1.0

    def test_sync_beats_async_on_idle_every_seed(self, grid):
        # The paper's premise itself: with a 3 us device, sync wins.
        assert orderings_stable(grid, MetricKind.IDLE_TIME, "Sync", "Async") == 1.0

    def test_its_cuts_faults_every_seed(self, grid):
        assert orderings_stable(grid, MetricKind.PAGE_FAULTS, "ITS", "Sync") == 1.0

    def test_top_half_ordering_stable(self, grid):
        assert (
            orderings_stable(grid, MetricKind.FINISH_TOP_HALF, "ITS", "Async") == 1.0
        )
        assert (
            orderings_stable(grid, MetricKind.FINISH_TOP_HALF, "ITS", "Sync") >= 0.8
        )


class TestDispersion:
    def test_idle_spread_is_moderate(self, grid):
        # Priority assignment shifts idle time but not wildly: the
        # coefficient of variation stays under 1.
        for policy in POLICIES:
            summary = summarize_metric(grid[policy], MetricKind.IDLE_TIME)
            assert summary.relative_spread < 1.0, (policy, summary)

    def test_finish_time_spread_larger_than_idle_spread(self, grid):
        # Finish times depend on *which* process got which priority, so
        # they disperse more than machine-level idle time does.
        idle = summarize_metric(grid["ITS"], MetricKind.IDLE_TIME)
        finish = summarize_metric(grid["ITS"], MetricKind.FINISH_BOTTOM_HALF)
        assert finish.relative_spread >= 0.5 * idle.relative_spread

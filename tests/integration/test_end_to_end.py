"""End-to-end integration: every policy completes every batch and the
fundamental accounting invariants hold."""

import pytest

from repro import MachineConfig, Simulation, build_batch
from repro.analysis.experiments import POLICY_FACTORIES

SCALE = 0.25
SEED = 11


@pytest.fixture(scope="module")
def results():
    config = MachineConfig()
    out = {}
    for batch_name in ("No_Data_Intensive", "2_Data_Intensive"):
        for policy_name, factory in POLICY_FACTORIES.items():
            batch = build_batch(batch_name, seed=SEED, scale=SCALE)
            out[(batch_name, policy_name)] = Simulation(
                MachineConfig(), batch, factory(), batch_name=batch_name
            ).run()
    return out


class TestCompletion:
    def test_all_cells_completed(self, results):
        assert len(results) == 2 * len(POLICY_FACTORIES)

    def test_every_process_finished(self, results):
        for result in results.values():
            assert len(result.processes) == 6
            assert all(p.finish_time_ns > 0 for p in result.processes)

    def test_committed_instructions_identical_across_policies(self, results):
        """Policies change timing, never the work: every policy commits
        exactly the same instruction count on the same batch."""
        for batch_name in ("No_Data_Intensive", "2_Data_Intensive"):
            counts = {
                policy: results[(batch_name, policy)].instructions_committed
                for policy in POLICY_FACTORIES
            }
            assert len(set(counts.values())) == 1, counts


class TestAccountingInvariants:
    def test_finish_times_bounded_by_makespan(self, results):
        for result in results.values():
            assert max(p.finish_time_ns for p in result.processes) == result.makespan_ns

    def test_idle_less_than_makespan(self, results):
        for result in results.values():
            assert result.total_idle_ns < result.makespan_ns

    def test_major_faults_at_least_cold_footprint_fraction(self, results):
        # Cold start: the touched footprint must be swapped in at least
        # once, through majors or prefetch-driven minors.
        for result in results.values():
            assert result.major_faults + result.minor_faults > 0

    def test_per_process_majors_sum_to_total(self, results):
        for result in results.values():
            assert sum(p.major_faults for p in result.processes) == result.major_faults

    def test_sync_modes_have_no_async_idle(self, results):
        for (batch, policy), result in results.items():
            if policy in ("Sync", "Sync_Runahead", "Sync_Prefetch"):
                assert result.idle.async_idle_ns == 0

    def test_async_has_no_sync_wait(self, results):
        for (batch, policy), result in results.items():
            if policy == "Async":
                assert result.idle.sync_storage_ns == 0

    def test_prefetching_policies_issue_prefetches(self, results):
        for (batch, policy), result in results.items():
            if policy in ("Sync_Prefetch", "ITS", "Adaptive"):
                assert result.prefetch_issued > 0
            if policy in ("Async", "Sync"):
                assert result.prefetch_issued == 0

    def test_preexec_only_where_expected(self, results):
        for (batch, policy), result in results.items():
            if policy in ("Sync_Runahead", "ITS", "Adaptive"):
                assert result.preexec_instructions > 0
            else:
                assert result.preexec_instructions == 0


class TestITSEventAccounting:
    def test_every_major_fault_takes_exactly_one_its_path(self):
        from repro.core import ITSPolicy

        policy = ITSPolicy()
        batch = build_batch("2_Data_Intensive", seed=SEED, scale=SCALE)
        result = Simulation(
            MachineConfig(), batch, policy, batch_name="paths"
        ).run()
        selection = policy.selection
        assert (
            selection.high_selections + selection.low_selections
            == result.major_faults
        )
        assert policy.sacrificing.sacrifices == selection.low_selections
        # Windows are stolen for (almost) every high-priority fault; the
        # only exceptions are faults of already-finished traces.
        assert policy.improving.windows_stolen <= selection.high_selections
        assert policy.improving.windows_stolen >= 0.9 * selection.high_selections

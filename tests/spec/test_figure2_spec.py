"""Paper-spec conformance: Figure 2, the virtual-address-based page
prefetcher.

Each test pins one numbered step of the figure's walk:

  (1) enter via the PGD base in the memory descriptor;
  (2-5) pgd/pud/pmd/pte offset traversal;
  (6) iterate candidates after the victim, skipping present pages;
  (7) on page-table exhaustion, revert to the next PMD entry.
"""

import pytest

from repro.core.prefetch import VirtualAddressPrefetcher
from repro.vm.address import ENTRIES_PER_TABLE, VirtualAddress
from repro.vm.page_table import PageTable


@pytest.fixture
def env(machine):
    machine.memory.register_process(1, range(0x300, 0x340))
    return machine


class TestSteps1Through5_TableTraversal:
    """The pgd_offset()/pud_offset()/pmd_offset()/pte_offset() chain the
    figure names resolves exactly the mapped leaf."""

    def test_four_level_offset_chain(self):
        table = PageTable()
        pte = table.ensure_pte(0x0000_7F12_3456_7000)
        va = VirtualAddress(0x0000_7F12_3456_7000)
        pud = table.pgd_offset(va)          # step 2
        pmd = table.pud_offset(pud, va)     # step 3
        pt = table.pmd_offset(pmd, va)      # step 4
        assert table.pte_offset(pt, va) is pte  # step 5

    def test_each_level_has_512_entries(self):
        assert ENTRIES_PER_TABLE == 512  # 9 index bits per level


class TestStep6_CandidateIteration:
    """'iteratively increments the page table offset ... to retrieve the
    candidate page following the victim page in the virtual addressing
    space' and 'checks the present bit stored in the PT entry'."""

    def test_candidates_follow_victim_in_va_order(self, env):
        prefetcher = VirtualAddressPrefetcher(env.memory, degree=3)
        candidates, __ = prefetcher.collect(1, 0x305)
        assert candidates == [0x306, 0x307, 0x308]

    def test_present_pages_skipped_not_fetched(self, env):
        env.memory.install_page(1, 0x306)
        prefetcher = VirtualAddressPrefetcher(env.memory, degree=3)
        candidates, __ = prefetcher.collect(1, 0x305)
        assert 0x306 not in candidates
        assert candidates == [0x307, 0x308, 0x309]

    def test_victim_itself_never_a_candidate(self, env):
        prefetcher = VirtualAddressPrefetcher(env.memory, degree=8)
        candidates, __ = prefetcher.collect(1, 0x305)
        assert 0x305 not in candidates


class TestStep7_NextPMDEntry:
    """'In cases where an insufficient number of candidate pages is
    gathered after walking through the entire page table, the policy
    reverts to traversing the next PMD entry.'"""

    def test_walk_continues_into_next_leaf_table(self, machine):
        # 0x1FF and 0x200 sit in different leaf page tables (PT index
        # wraps at 512).
        machine.memory.register_process(2, [0x1FE, 0x1FF, 0x200, 0x201])
        prefetcher = VirtualAddressPrefetcher(machine.memory, degree=3)
        candidates, __ = prefetcher.collect(2, 0x1FE)
        assert candidates == [0x1FF, 0x200, 0x201]

    def test_walk_skips_unpopulated_pmd_ranges(self, machine):
        # A hole of several leaf tables between mapped regions.
        machine.memory.register_process(3, [0x400, 0x400 + 4 * 512])
        prefetcher = VirtualAddressPrefetcher(machine.memory, degree=2)
        candidates, __ = prefetcher.collect(3, 0x400)
        assert candidates == [0x400 + 4 * 512]


class TestDMADispatchIsCPUFree:
    """'Employing DMA for this task bypasses utilizing CPU resources' —
    only the walk costs CPU time; the transfers do not."""

    def test_walk_cost_independent_of_transfer_size(self, env):
        prefetcher = VirtualAddressPrefetcher(env.memory, degree=4, walk_entry_ns=5)
        __, cost = prefetcher.collect(1, 0x300)
        assert cost == 4 * 5  # four PTEs scanned, nothing transfer-related

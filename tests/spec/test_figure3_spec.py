"""Paper-spec conformance: Figure 3, the fault-aware pre-execute flows.

One test per numbered step of Figure 3a (pre-execute store) and
Figure 3b (pre-execute load), plus the blanket safety sentence:
"pre-execute store operations do not write or modify any data in the
CPU cache or memory."
"""

import pytest

from repro.cpu.isa import Compute, Load, Store
from repro.cpu.registers import RegisterFile


@pytest.fixture
def env(preexec_machine):
    preexec_machine.memory.register_process(1, range(0x500, 0x510))
    for vpn in range(0x500, 0x508):  # front half resident, back half on device
        preexec_machine.memory.install_page(1, vpn)
    return preexec_machine


RESIDENT = 0x500 << 12
ON_DEVICE = 0x508 << 12


def run(env, trace, faulting_reg=None, registers=None):
    return env.preexec_engine.run_episode(
        1, registers or RegisterFile(), trace, 0, 10**6, faulting_reg=faulting_reg
    )


class TestFigure3a_Store:
    def test_step0_storage_resident_data_allocates_inv_line(self, env):
        """Store to data on the storage device: allocate a pre-execute
        cache line and set the INV bit for the written bytes."""
        mid_episode_state = {}

        # Observe the pre-execute cache *during* the episode via a probe
        # load to the same address placed right after the store.
        trace = [
            Store(src=1, vaddr=ON_DEVICE),
            Load(dst=2, vaddr=ON_DEVICE),
            Compute(dst=3, srcs=(2,)),
        ]
        stats, __ = run(env, trace)
        # The probe load forwarded the INV status: itself + dependent
        # compute + the invalid store = 3 skipped.
        assert stats.skipped_invalid == 3

    def test_step0_sets_pte_inv_bit(self, env):
        """'if the pre-execute store operation is invalid, the INV bit in
        the page table entry corresponding to the data is set' — and the
        recovery wipes it afterwards."""
        observed = []
        pte = env.memory.mm_of(1).pte_for(0x508)

        class SpyList(list):
            def append(self, item):
                observed.append(pte.inv)
                super().append(item)

        env.preexec_engine._dirty_inv_ptes = SpyList()
        run(env, [Store(src=1, vaddr=ON_DEVICE)])
        assert pte.inv is False  # cleared at episode end
        # The spy saw the bit just after it was registered as dirty.
        assert len(observed) == 1

    def test_step1_valid_store_enters_store_buffer(self, env):
        """Valid store writes its result into the store buffer, where a
        following load forwards from it as valid."""
        trace = [
            Store(src=1, vaddr=RESIDENT),
            Load(dst=2, vaddr=RESIDENT),
            Compute(dst=3, srcs=(2,)),
        ]
        stats, __ = run(env, trace)
        assert stats.skipped_invalid == 0

    def test_step2_fetch_query_warms_cache(self, env):
        """Data in memory but not cache: 'a data fetch query is sent to
        move it from memory to the cache'."""
        stats, __ = run(env, [Store(src=1, vaddr=RESIDENT)])
        assert stats.lines_warmed == 1
        frame = env.memory.mm_of(1).pte_for(0x500).frame
        assert env.hierarchy.llc.contains(frame * 4096)

    def test_step3_retirement_carries_inv_to_preexec_cache(self, env):
        """Retired store-buffer entries transfer data + INV bits into the
        pre-execute cache; a later load checks them there."""
        capacity = env.preexec_engine.store_buffer.capacity
        filler = [
            Store(src=1, vaddr=RESIDENT + 8 * (i + 1)) for i in range(capacity)
        ]
        trace = [
            Compute(dst=5, srcs=(0,)),            # INV via faulting reg
            Store(src=5, vaddr=RESIDENT),         # invalid store buffered
            *filler,                              # forces retirement
            Load(dst=2, vaddr=RESIDENT),          # hits the pre-execute cache
            Compute(dst=3, srcs=(2,)),
        ]
        stats, __ = run(env, trace, faulting_reg=0)
        assert stats.store_buffer_retirements >= 1
        # invalid chain: compute(5), store, forwarded load, dependent compute
        assert stats.skipped_invalid >= 4

    def test_blanket_rule_no_cache_or_memory_mutation(self, env):
        """Stores never dirty the real cache nor modify memory state."""
        trace = [Store(src=1, vaddr=RESIDENT), Store(src=2, vaddr=ON_DEVICE)]
        run(env, trace)
        assert all(not line.dirty for __, line in env.hierarchy.llc.iter_lines())
        assert env.memory.mm_of(1).pte_for(0x500).dirty is False


class TestFigure3b_Load:
    def test_step0_storage_resident_load_is_invalid(self, env):
        stats, discovered = run(env, [Load(dst=1, vaddr=ON_DEVICE)])
        assert stats.skipped_invalid == 1
        assert discovered == [0x508]

    def test_step1_store_buffer_forwarding_checked_first(self, env):
        """A load overlapping a buffered store takes the store's status —
        even when the underlying page is on the device."""
        trace = [
            Store(src=1, vaddr=ON_DEVICE),   # invalid; also in preexec cache
            Load(dst=2, vaddr=ON_DEVICE),    # forwards invalid
        ]
        stats, discovered = run(env, trace)
        # The load forwarded from the cache/buffer instead of reporting a
        # second discovery for the same page.
        assert discovered == [0x508]

    def test_step2_preexec_cache_inv_bytes_invalidate_load(self, env):
        trace = [
            Compute(dst=5, srcs=(0,)),          # INV
            Store(src=5, vaddr=RESIDENT),       # invalid store buffered
            Load(dst=2, vaddr=RESIDENT),        # forwards invalid
            Compute(dst=3, srcs=(2,)),          # cascades
        ]
        stats, __ = run(env, trace, faulting_reg=0)
        assert stats.skipped_invalid >= 3

    def test_step3_pte_inv_consulted_on_cache_hit(self, env):
        """Data in the main cache: the PTE INV bit decides validity."""
        # Warm the line into the LLC via a first episode-free touch.
        frame = env.memory.mm_of(1).pte_for(0x501).frame
        env.hierarchy.llc.touch(frame * 4096, owner=1)
        pte = env.memory.mm_of(1).pte_for(0x501)
        pte.inv = True  # as if set by an earlier invalid pre-exec store
        stats, __ = run(env, [Load(dst=2, vaddr=0x501 << 12)])
        assert stats.skipped_invalid == 1
        pte.inv = False

    def test_step4_memory_only_load_valid_and_moved_to_cache(self, env):
        stats, __ = run(env, [Load(dst=2, vaddr=0x502 << 12)])
        assert stats.skipped_invalid == 0
        assert stats.lines_warmed == 1

"""Paper-spec conformance: Sections 3.2-3.4 policy-level sentences."""

import dataclasses

import pytest

from repro.core import ITSPolicy
from repro.core.recovery import RecoveryTrigger, StateRecoveryPolicy
from repro.cpu.registers import RegisterFile
from repro.sim.simulator import Simulation, WorkloadInstance

from tests.conftest import make_linear_trace


def two_tier(small_config, policy, lo_first=True):
    lo = WorkloadInstance(name="lo", trace=make_linear_trace(6), priority=2)
    hi = WorkloadInstance(
        name="hi", trace=make_linear_trace(6, base_va=0x90_0000), priority=35
    )
    workloads = [lo, hi] if lo_first else [hi, lo]
    sim = Simulation(small_config, workloads, policy, batch_name="spec")
    result = sim.run()
    return sim, result


class TestSection32_Selection:
    """'our policy does not change the priority of each process and the
    process-execution orders maintained by the process scheduler' and
    'switching to kernel-level designs takes only hundreds of
    nanoseconds'."""

    def test_priorities_never_mutated(self, small_config):
        policy = ITSPolicy()
        sim, result = two_tier(small_config, policy)
        assert [p.priority for p in sim.processes] == [2, 35]

    def test_kernel_entry_cost_is_hundreds_of_ns(self, small_config):
        assert 100 <= small_config.its.kernel_entry_ns < 1000

    def test_classification_is_relative_not_absolute(self, small_config):
        # The same process is HIGH when nothing outranks it at the queue
        # head — classification depends on the moment, not a static tag.
        policy = ITSPolicy()
        sim, __ = two_tier(small_config, policy)
        # Both kinds of selections occurred across the run.
        assert policy.selection.high_selections > 0
        assert policy.selection.low_selections > 0


class TestSection33_SelfSacrifice:
    """'all low-priority processes are forced to switch their CPU
    resources to other processes once they are waiting for I/O
    completion' — 'even when it still has sufficient time slices'."""

    def test_forced_switch_with_slice_remaining(self, small_config):
        policy = ITSPolicy()
        sim, result = two_tier(small_config, policy)
        lo = next(p for p in result.processes if p.name == "lo")
        # The low process context-switched far more often than its slice
        # count would require (slices are >= 50 us; it ran ~us of work).
        assert policy.sacrificing.sacrifices > 0
        assert lo.context_switches >= 1

    def test_high_priority_never_blocks(self, small_config):
        policy = ITSPolicy()
        sim, result = two_tier(small_config, policy)
        hi = next(p for p in result.processes if p.name == "hi")
        # All of hi's faults were served synchronously.
        assert hi.storage_wait_ns > 0


class TestSection343_StateRecovery:
    """'checkpoints the register file state, including the program
    counter and stack pointer, to a shadow register file ... critical
    registers such as the branch history register and return address
    stack are checkpointed' — 'triggered by either polling ... or
    interruption'."""

    def test_checkpoint_covers_all_named_state(self):
        registers = RegisterFile()
        registers.pc = 11
        registers.sp = 22
        registers.record_branch(True)
        registers.return_stack.append(33)
        shadow = registers.checkpoint()
        assert shadow.pc == 11
        assert shadow.sp == 22
        assert shadow.branch_history == 1
        assert shadow.return_stack == (33,)

    def test_polling_detects_later_than_interrupt(self):
        registers = RegisterFile()
        poll = StateRecoveryPolicy(
            trigger=RecoveryTrigger.POLLING, poll_interval_ns=800
        )
        poll.checkpoint(registers)
        poll_latency = poll.restore(registers)
        irq = StateRecoveryPolicy(trigger=RecoveryTrigger.INTERRUPT)
        irq.checkpoint(registers)
        irq_latency = irq.restore(registers)
        assert poll_latency > irq_latency

    def test_both_triggers_work_end_to_end(self, small_config):
        for trigger in (RecoveryTrigger.POLLING, RecoveryTrigger.INTERRUPT):
            policy = ITSPolicy(recovery_trigger=trigger)
            __, result = two_tier(small_config, policy)
            assert result.makespan_ns > 0
            assert policy.recovery.checkpoints == policy.recovery.restores


class TestSection31_MajorFaultsOnly:
    """'this work concentrates solely on addressing major page faults':
    minor faults never invoke the ITS threads."""

    def test_minor_faults_do_not_steal(self, small_config):
        policy = ITSPolicy()
        sim, result = two_tier(small_config, policy)
        faults_seen = policy.selection.high_selections + policy.selection.low_selections
        assert faults_seen == result.major_faults
        assert result.minor_faults > 0  # prefetch produced minors...
        # ...and none of them entered the selection policy.

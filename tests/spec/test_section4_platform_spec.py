"""Paper-spec conformance: the Section 4.1 platform and the Sections
1-2 premise."""

import pytest

from repro.common.config import MachineConfig
from repro.common.units import MIB, MS, US
from repro.sim.machine import Machine
from repro.vm.replacement import GlobalLRUPolicy


class TestSection41_Platform:
    """The paper's evaluation platform, reproduced by
    MachineConfig.paper()."""

    def test_llc_16way_8mib(self):
        config = MachineConfig.paper()
        assert config.llc.size_bytes == 8 * MIB
        assert config.llc.ways == 16

    def test_half_llc_becomes_preexec_cache(self):
        config = MachineConfig.paper()
        machine = Machine(config, GlobalLRUPolicy(), with_preexec_cache=True)
        assert machine.hierarchy.llc.config.size_bytes == 4 * MIB
        assert machine.preexec_cache.config.size_bytes == 4 * MIB

    def test_nice_time_slices_800ms_to_5ms(self):
        scheduler = MachineConfig.paper().scheduler
        assert scheduler.time_slice_ns(scheduler.priority_levels - 1) == 800 * MS
        assert scheduler.time_slice_ns(0) == 5 * MS

    def test_context_switch_7us(self):
        assert MachineConfig.paper().scheduler.context_switch_ns == 7 * US

    def test_dram_50ns_device_3us(self):
        config = MachineConfig.paper()
        assert config.memory.dram_latency_ns == 50
        assert config.device.access_latency_ns == 3 * US

    def test_pcie_5x_4lane_bandwidth(self):
        pcie = MachineConfig.paper().pcie
        assert pcie.lanes == 4
        assert pcie.bandwidth_per_lane_bytes_per_sec == pytest.approx(3.983e9)


class TestSections1and2_Premise:
    """'storage response time ... often outpacing the overhead of
    context switches that can exceed 5-10 us': the default machine sits
    exactly in the killer-microsecond regime."""

    def test_device_faster_than_switch(self):
        config = MachineConfig()
        assert config.device.access_latency_ns < config.scheduler.context_switch_ns

    def test_switch_in_the_5_to_10us_band(self):
        config = MachineConfig()
        assert 5 * US <= config.scheduler.context_switch_ns <= 10 * US

    def test_scaled_machine_keeps_the_anchors(self):
        scaled, paper = MachineConfig(), MachineConfig.paper()
        assert scaled.device.access_latency_ns == paper.device.access_latency_ns
        assert (
            scaled.scheduler.context_switch_ns == paper.scheduler.context_switch_ns
        )
        assert scaled.memory.dram_latency_ns == paper.memory.dram_latency_ns

    def test_page_swap_in_is_microseconds(self):
        # One 4 KiB page: ~3 us flash + ~0.26 us PCIe — microseconds, the
        # 'killer microsecond' window no nanosecond technique can hide.
        config = MachineConfig()
        transfer = config.pcie.transfer_time_ns(config.memory.page_size)
        total = config.device.access_latency_ns + transfer
        assert 1 * US < total < 10 * US

"""Paper-spec conformance: Section 2.1 context-switch claims and the
two evaluation footnotes defining the Sync_Runahead and Sync_Prefetch
baselines."""

import pytest

from repro.baselines import SyncIOPolicy, SyncPrefetchPolicy, SyncRunaheadPolicy
from repro.sim.simulator import Simulation, WorkloadInstance

from tests.conftest import make_linear_trace


class TestSection211_ContextSwitch:
    """'Frequently performing context switching may cause frequent CPU
    cache misses and TLB shootdown.'"""

    def test_switch_flushes_tlb(self, machine):
        machine.memory.register_process(1, [0x100])
        machine.memory.install_page(1, 0x100)
        frame = machine.memory.mm_of(1).pte_for(0x100).frame
        machine.tlb.insert(1, 0x100, frame)
        machine.context_switch.perform(outgoing_pid=1)
        assert machine.tlb.lookup(1, 0x100) is None
        assert machine.tlb.stats.flushes == 1

    def test_switch_displaces_cache_footprint(self, machine):
        for i in range(20):
            machine.hierarchy.llc.access(i * 64, owner=1)
        before = machine.hierarchy.llc.resident_lines_of(1)
        machine.context_switch.perform(outgoing_pid=1)
        after = machine.hierarchy.llc.resident_lines_of(1)
        assert after < before

    def test_switch_cost_is_microseconds(self, machine):
        cost = machine.context_switch.perform(outgoing_pid=None)
        assert cost >= 1_000  # 'several microseconds' territory


def _two_process_sim(config, policy):
    workloads = [
        WorkloadInstance(name="a", trace=make_linear_trace(6, per_page=8), priority=20),
        WorkloadInstance(
            name="b",
            trace=make_linear_trace(6, base_va=0x90_0000, per_page=8),
            priority=5,
        ),
    ]
    sim = Simulation(config, workloads, policy, batch_name="footnotes")
    return sim, sim.run()


class TestFootnote4_RunaheadTrigger:
    """'Traditional runahead execution runs the pre-execution during
    handling cache misses, but ours does the pre-execution during
    handling page faults.'"""

    def test_runahead_triggers_without_any_page_fault(self, small_config):
        # Pre-install every page: zero major faults remain, yet cache
        # misses still open pre-execute episodes — the trigger is the
        # miss, not the fault.
        trace = make_linear_trace(4, per_page=8)
        workloads = [WorkloadInstance(name="w", trace=trace, priority=10)]
        sim = Simulation(
            small_config, workloads, SyncRunaheadPolicy(), batch_name="fn4"
        )
        for vpn in range(0x100, 0x104):
            sim.machine.memory.install_page(0, vpn)
        result = sim.run()
        assert result.major_faults == 0
        assert sim.machine.preexec_engine.stats.episodes > 0

    def test_plain_sync_never_preexecutes(self, small_config):
        __, result = _two_process_sim(small_config, SyncIOPolicy())
        assert result.preexec_instructions == 0


class TestFootnote5_PageOnPageUnit:
    """'It groups a static number of pages with continuous page id into
    a page-on-page unit and fetches an entire unit during handling a
    page fault.'"""

    def test_unit_is_aligned_not_sliding(self, small_config):
        # A fault on the unit's LAST page must prefetch the unit's
        # earlier pages (aligned grouping), not the following ones
        # (which a sliding window would).
        from repro.sim.eventlog import EventLog

        policy = SyncPrefetchPolicy(unit_pages=4)
        base_vpn = 0x90_0000 >> 12
        assert base_vpn % 4 == 0  # the unit boundary sits at base_vpn
        trace = [
            # Touch the last page of the first unit, then nothing else.
            *make_linear_trace(1, base_va=0x90_0000 + 3 * 4096)
        ]
        log = EventLog()
        workloads = [
            WorkloadInstance(
                name="w",
                trace=trace,
                priority=5,
                mapped_vpns=frozenset(range(base_vpn, base_vpn + 8)),
            )
        ]
        Simulation(
            small_config, workloads, policy, batch_name="unit", event_log=log
        ).run()
        issued = {e.vpn for e in log.of_kind("prefetch_issue")}
        # The aligned unit's other members were fetched; nothing beyond.
        assert issued == {base_vpn, base_vpn + 1, base_vpn + 2}

    def test_unit_fetch_happens_during_the_fault(self, small_config):
        sim, result = _two_process_sim(small_config, SyncPrefetchPolicy(unit_pages=4))
        # Prefetches were issued (during fault handling) and converted
        # later majors to minors.
        assert result.prefetch_issued > 0
        assert result.minor_faults > 0

"""Shared fixtures: tiny machines, tiny traces, assembled components."""

from __future__ import annotations

import pytest

from repro.common.config import (
    CacheConfig,
    DeviceConfig,
    ITSConfig,
    MachineConfig,
    MemoryConfig,
    SchedulerConfig,
    TLBConfig,
)
from repro.common.rng import DeterministicRNG
from repro.common.units import KIB, MS, US
from repro.cpu.isa import Compute, Load, Store
from repro.sim.machine import Machine
from repro.vm.replacement import GlobalLRUPolicy


@pytest.fixture(autouse=True)
def _hermetic_cache_dir(tmp_path, monkeypatch):
    """Point the sweep engine's default result cache at a throwaway dir.

    Keeps the suite from reading or writing ``~/.cache/repro-its`` —
    tests that care about cache behaviour pass their own directory.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def small_config() -> MachineConfig:
    """A deliberately tiny machine for fast unit tests."""
    return MachineConfig(
        llc=CacheConfig(size_bytes=16 * KIB, ways=4, line_size=64, hit_latency_ns=10),
        tlb=TLBConfig(entries=8),
        device=DeviceConfig(access_latency_ns=3 * US, channels=4),
        memory=MemoryConfig(dram_frames=32, dram_latency_ns=50),
        scheduler=SchedulerConfig(
            max_time_slice_ns=1 * MS, min_time_slice_ns=50 * US
        ),
        its=ITSConfig(prefetch_degree=4),
    )


@pytest.fixture
def machine(small_config: MachineConfig) -> Machine:
    """A machine with global-LRU replacement and no pre-execute cache."""
    return Machine(small_config, GlobalLRUPolicy())


@pytest.fixture
def preexec_machine(small_config: MachineConfig) -> Machine:
    """A machine with the pre-execute cache carved from the LLC."""
    return Machine(small_config, GlobalLRUPolicy(), with_preexec_cache=True)


@pytest.fixture
def rng() -> DeterministicRNG:
    """A seeded RNG."""
    return DeterministicRNG(1234)


def make_linear_trace(pages: int, base_va: int = 0x10_0000, per_page: int = 2):
    """A tiny sequential trace touching *pages* pages."""
    trace = []
    for p in range(pages):
        for i in range(per_page):
            dst = (p * per_page + i) % 16
            trace.append(Load(dst=dst, vaddr=base_va + p * 4096 + i * 64))
            trace.append(Compute(dst=(dst + 1) % 16, srcs=(dst,)))
    return trace


@pytest.fixture
def linear_trace():
    """Four-page sequential trace."""
    return make_linear_trace(4)

"""Property-based tests for the set-associative cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.mem.cache import SetAssociativeCache

CONFIG = CacheConfig(size_bytes=2048, ways=2, line_size=64)

addresses = st.integers(min_value=0, max_value=1 << 20)
access_sequences = st.lists(
    st.tuples(addresses, st.booleans()), min_size=1, max_size=200
)


@given(access_sequences)
def test_capacity_never_exceeded(seq):
    cache = SetAssociativeCache(CONFIG)
    for addr, is_write in seq:
        cache.access(addr, is_write=is_write)
    assert cache.resident_lines() <= CONFIG.num_lines


@given(access_sequences)
def test_hits_plus_misses_equals_accesses(seq):
    cache = SetAssociativeCache(CONFIG)
    for addr, is_write in seq:
        cache.access(addr, is_write=is_write)
    assert cache.stats.demand_hits + cache.stats.demand_misses == len(seq)


@given(access_sequences)
def test_access_makes_line_resident(seq):
    cache = SetAssociativeCache(CONFIG)
    for addr, is_write in seq:
        cache.access(addr, is_write=is_write)
        assert cache.contains(addr)


@given(addresses)
def test_immediate_rehit(addr):
    cache = SetAssociativeCache(CONFIG)
    cache.access(addr)
    assert cache.access(addr) is True


@given(access_sequences)
def test_flush_leaves_empty(seq):
    cache = SetAssociativeCache(CONFIG)
    for addr, _ in seq:
        cache.access(addr)
    cache.flush()
    assert cache.resident_lines() == 0


@given(st.lists(addresses, min_size=1, max_size=50), st.integers(0, 5))
def test_owner_eviction_only_touches_owner(seq, owner):
    cache = SetAssociativeCache(CONFIG)
    for i, addr in enumerate(seq):
        cache.access(addr, owner=i % 3)
    other_before = sum(
        cache.resident_lines_of(o) for o in range(3) if o != owner % 3
    )
    cache.evict_owner_fraction(owner % 3, 1.0)
    other_after = sum(
        cache.resident_lines_of(o) for o in range(3) if o != owner % 3
    )
    assert other_before == other_after
    assert cache.resident_lines_of(owner % 3) == 0

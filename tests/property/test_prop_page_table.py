"""Property-based tests for the 4-level page table."""

from hypothesis import given
from hypothesis import strategies as st

from repro.vm.page_table import PageTable

vpns = st.integers(min_value=0, max_value=(1 << 36) - 1)
vpn_sets = st.sets(vpns, min_size=1, max_size=60)


@given(vpn_sets)
def test_mapped_vpns_is_sorted_exact_set(vpn_set):
    table = PageTable()
    for vpn in vpn_set:
        table.ensure_vpn(vpn)
    mapped = table.mapped_vpns()
    assert mapped == sorted(vpn_set)


@given(vpn_sets)
def test_walk_finds_every_mapping(vpn_set):
    table = PageTable()
    ptes = {vpn: table.ensure_vpn(vpn) for vpn in vpn_set}
    for vpn, pte in ptes.items():
        assert table.lookup_vpn(vpn) is pte


@given(vpn_sets, vpns)
def test_iter_from_yields_strictly_greater_in_order(vpn_set, start):
    table = PageTable()
    for vpn in vpn_set:
        table.ensure_vpn(vpn)
    yielded = [vpn for vpn, _ in table.iter_ptes_from(start << 12)]
    assert yielded == sorted(v for v in vpn_set if v > start)


@given(vpn_sets)
def test_unmapped_neighbours_walk_to_none(vpn_set):
    table = PageTable()
    for vpn in vpn_set:
        table.ensure_vpn(vpn)
    probe = max(vpn_set) + 1
    if probe not in vpn_set and probe < (1 << 36):
        assert table.lookup_vpn(probe) is None


@given(vpn_sets)
def test_resident_subset_of_mapped(vpn_set):
    table = PageTable()
    for i, vpn in enumerate(sorted(vpn_set)):
        pte = table.ensure_vpn(vpn)
        if i % 2 == 0:
            pte.map_frame(i)
    resident = table.resident_vpns()
    assert set(resident) <= vpn_set
    assert resident == sorted(resident)

"""Property-based tests for the pre-execute cache's per-byte INV
semantics: it must agree with a byte-exact reference model wherever it
holds data (it may evict, but never corrupt)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.mem.preexec_cache import PreExecuteCache

CONFIG = CacheConfig(size_bytes=64 * 1024, ways=16, line_size=64)
# Large enough that small test workloads never evict; eviction-freedom
# lets the reference model be exact.

addresses = st.integers(min_value=0, max_value=4096 - 64)
sizes = st.integers(min_value=1, max_value=32)
writes = st.lists(
    st.tuples(addresses, sizes, st.booleans()), min_size=1, max_size=60
)


@given(writes, addresses, sizes)
@settings(max_examples=150, deadline=None)
def test_lookup_matches_byte_exact_model(write_list, probe_addr, probe_size):
    cache = PreExecuteCache(CONFIG)
    model: dict[int, bool] = {}  # byte address -> INV
    for addr, size, invalid in write_list:
        cache.write(addr, size, invalid=invalid)
        for b in range(addr, addr + size):
            model[b] = invalid

    result = cache.lookup(probe_addr, probe_size)
    probe_bytes = range(probe_addr, probe_addr + probe_size)
    if any(b not in model for b in probe_bytes):
        # Some probed byte was never written...
        if result is not None:
            # ...but the whole line may still be allocated (line-granular
            # allocation): then unwritten bytes read as valid.
            assert result == (not any(model.get(b, False) for b in probe_bytes))
    else:
        assert result is not None
        assert result == (not any(model[b] for b in probe_bytes))


@given(writes)
@settings(max_examples=100, deadline=None)
def test_clear_erases_everything(write_list):
    cache = PreExecuteCache(CONFIG)
    for addr, size, invalid in write_list:
        cache.write(addr, size, invalid=invalid)
    cache.clear()
    assert cache.resident_lines() == 0
    for addr, size, _ in write_list:
        assert cache.lookup(addr, size) is None


@given(writes)
@settings(max_examples=100, deadline=None)
def test_last_write_wins_per_byte(write_list):
    cache = PreExecuteCache(CONFIG)
    for addr, size, invalid in write_list:
        cache.write(addr, size, invalid=invalid)
    addr, size, invalid = write_list[-1]
    # Probe a byte only the last write could have set... if no earlier
    # write overlaps it, the status must equal the last write's.
    byte = addr + size - 1
    earlier_overlaps = any(
        a <= byte < a + s for a, s, _ in write_list[:-1]
    )
    if not earlier_overlaps:
        assert cache.lookup(byte, 1) == (not invalid)

"""Property-based tests for the TLB against a reference LRU model."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import TLBConfig
from repro.mem.tlb import TLB

ENTRIES = 4

keys = st.tuples(st.integers(0, 3), st.integers(0, 15))  # (pid, vpn)
ops = st.lists(
    st.tuples(st.sampled_from(["lookup", "insert", "shootdown", "flush"]), keys),
    min_size=1,
    max_size=120,
)


@given(ops)
@settings(max_examples=150, deadline=None)
def test_tlb_matches_reference_lru(op_list):
    tlb = TLB(TLBConfig(entries=ENTRIES))
    model: OrderedDict = OrderedDict()

    for op, key in op_list:
        pid, vpn = key
        if op == "lookup":
            got = tlb.lookup(pid, vpn)
            expected = model.get(key)
            if expected is not None:
                model.move_to_end(key)
            assert got == expected
        elif op == "insert":
            frame = (pid * 100) + vpn
            tlb.insert(pid, vpn, frame)
            if key in model:
                model.move_to_end(key)
            elif len(model) >= ENTRIES:
                model.popitem(last=False)
            model[key] = frame
        elif op == "shootdown":
            dropped = tlb.shootdown(pid, vpn)
            assert dropped == (model.pop(key, None) is not None)
        else:  # flush
            dropped = tlb.flush()
            assert dropped == len(model)
            model.clear()
        assert len(tlb) == len(model)


@given(ops)
@settings(max_examples=80, deadline=None)
def test_capacity_invariant(op_list):
    tlb = TLB(TLBConfig(entries=ENTRIES))
    for op, (pid, vpn) in op_list:
        if op == "insert":
            tlb.insert(pid, vpn, 1)
        elif op == "lookup":
            tlb.lookup(pid, vpn)
        assert len(tlb) <= ENTRIES

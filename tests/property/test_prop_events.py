"""Property-based tests for the event queue."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.events import EventQueue

times = st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=100)


@given(times)
def test_events_fire_in_time_order(time_list):
    q = EventQueue()
    fired = []
    for t in time_list:
        q.schedule_at(t, str(t), lambda e: fired.append(e.time_ns))
    q.run_due(10**9)
    assert fired == sorted(time_list)


@given(times, st.integers(min_value=0, max_value=10**9))
def test_run_due_fires_exactly_due_events(time_list, horizon):
    q = EventQueue()
    fired = []
    for t in time_list:
        q.schedule_at(t, str(t), lambda e: fired.append(e.time_ns))
    count = q.run_due(horizon)
    expected = [t for t in time_list if t <= horizon]
    assert count == len(expected)
    assert sorted(fired) == sorted(expected)
    assert len(q) == len(time_list) - len(expected)


@given(times, st.data())
def test_cancelled_events_never_fire(time_list, data):
    q = EventQueue()
    fired = []
    handles = [
        q.schedule_at(t, str(t), lambda e: fired.append(e.time_ns))
        for t in time_list
    ]
    n_cancel = data.draw(st.integers(0, len(handles)))
    for handle in handles[:n_cancel]:
        q.cancel(handle)
    q.run_due(10**9)
    assert len(fired) == len(time_list) - n_cancel


@given(times)
def test_peek_matches_next_pop(time_list):
    q = EventQueue()
    for t in time_list:
        q.schedule_at(t, str(t), lambda e: None)
    while len(q):
        peeked = q.peek_time()
        popped = q.pop()
        assert popped.time_ns == peeked

"""Property-based tests over whole simulations.

Random tiny traces under every policy: the run must terminate, commit
every instruction exactly once, and satisfy the time-conservation
decomposition — regardless of access pattern or priorities.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import POLICY_FACTORIES
from repro.common.config import (
    CacheConfig,
    MachineConfig,
    MemoryConfig,
    SchedulerConfig,
    TLBConfig,
)
from repro.common.units import KIB, MS, US
from repro.cpu.isa import Compute, Load, Store
from repro.sim.simulator import Simulation, WorkloadInstance


def tiny_config():
    return MachineConfig(
        llc=CacheConfig(size_bytes=8 * KIB, ways=2),
        tlb=TLBConfig(entries=4),
        memory=MemoryConfig(dram_frames=12),
        scheduler=SchedulerConfig(max_time_slice_ns=200 * US, min_time_slice_ns=20 * US),
    )


@st.composite
def tiny_trace(draw):
    n = draw(st.integers(4, 40))
    base = 0x40_0000
    instructions = []
    for i in range(n):
        kind = draw(st.sampled_from(["load", "store", "compute"]))
        if kind == "compute":
            instructions.append(Compute(dst=i % 16, srcs=((i + 1) % 16,)))
            continue
        page = draw(st.integers(0, 19))
        offset = draw(st.integers(0, 63)) * 64
        vaddr = base + page * 4096 + offset
        if kind == "load":
            instructions.append(Load(dst=i % 16, vaddr=vaddr))
        else:
            instructions.append(Store(src=i % 16, vaddr=vaddr))
    # Guarantee at least one memory touch.
    instructions.append(Load(dst=0, vaddr=base))
    return instructions


@st.composite
def workload_sets(draw):
    count = draw(st.integers(1, 4))
    priorities = draw(
        st.lists(
            st.integers(0, 39), min_size=count, max_size=count, unique=True
        )
    )
    return [
        WorkloadInstance(
            name=f"w{i}", trace=draw(tiny_trace()), priority=priorities[i]
        )
        for i in range(count)
    ]


policy_names = st.sampled_from(list(POLICY_FACTORIES))


@given(workload_sets(), policy_names)
@settings(max_examples=60, deadline=None)
def test_every_run_terminates_and_conserves_time(workloads, policy_name):
    sim = Simulation(
        tiny_config(), workloads, POLICY_FACTORIES[policy_name](), batch_name="prop"
    )
    result = sim.run()
    # Work conservation: every instruction committed exactly once.
    assert result.instructions_committed == sum(len(w.trace) for w in workloads)
    # Time conservation.
    cpu = sum(p.cpu_time_ns for p in result.processes)
    assert (
        cpu + result.idle.ctx_switch_overhead_ns + result.idle.async_idle_ns
        == result.makespan_ns
    )
    # Everyone finished, memory fully released.
    assert all(p.finish_time_ns is not None for p in result.processes)
    assert sim.machine.memory.frames.used_frames == 0


@given(workload_sets(), policy_names)
@settings(max_examples=40, deadline=None)
def test_runs_are_deterministic(workloads, policy_name):
    def run():
        return Simulation(
            tiny_config(),
            workloads,
            POLICY_FACTORIES[policy_name](),
            batch_name="prop",
        ).run()

    a, b = run(), run()
    assert a.makespan_ns == b.makespan_ns
    assert a.total_idle_ns == b.total_idle_ns
    assert a.major_faults == b.major_faults

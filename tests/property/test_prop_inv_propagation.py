"""Property-based tests for the fault-aware pre-execute INV rules.

The core safety property of Section 3.4.2: any value transitively
derived from the faulting (bogus) data must be INV at the moment it
would be consumed, and pre-execution must never dirty committed state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig, MachineConfig, MemoryConfig, TLBConfig
from repro.common.units import KIB
from repro.cpu.isa import Compute, Load, Store
from repro.cpu.registers import NUM_REGISTERS, RegisterFile
from repro.cpu.runahead import PreExecuteEngine
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.preexec_cache import PreExecuteCache
from repro.vm.frames import FrameAllocator
from repro.vm.mm import MemoryManager
from repro.vm.replacement import GlobalLRUPolicy
from repro.vm.swap import SwapArea

BASE_VPN = 0x100
RESIDENT_VPNS = range(BASE_VPN, BASE_VPN + 4)
ABSENT_VPN = BASE_VPN + 8

registers = st.integers(min_value=0, max_value=NUM_REGISTERS - 1)


@st.composite
def instructions(draw):
    kind = draw(st.sampled_from(["compute", "load", "store"]))
    if kind == "compute":
        srcs = tuple(draw(st.lists(registers, max_size=3)))
        return Compute(dst=draw(registers), srcs=srcs)
    vpn = draw(
        st.sampled_from([*RESIDENT_VPNS, ABSENT_VPN])
    )
    offset = draw(st.integers(0, 63)) * 64
    vaddr = (vpn << 12) + offset
    if kind == "load":
        return Load(dst=draw(registers), vaddr=vaddr)
    return Store(src=draw(registers), vaddr=vaddr)


def build_env():
    config = MachineConfig(
        llc=CacheConfig(size_bytes=16 * KIB, ways=4),
        tlb=TLBConfig(entries=8),
        memory=MemoryConfig(dram_frames=16),
    )
    memory = MemoryManager(
        FrameAllocator(16, 4096), SwapArea(64), GlobalLRUPolicy()
    )
    memory.register_process(1, [*RESIDENT_VPNS, ABSENT_VPN])
    for vpn in RESIDENT_VPNS:
        memory.install_page(1, vpn)
    hierarchy = MemoryHierarchy(config.llc.halved(), config.memory)
    engine = PreExecuteEngine(
        config, hierarchy, memory, PreExecuteCache(config.llc.halved())
    )
    return config, memory, hierarchy, engine


@given(st.lists(instructions(), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_register_state_always_restored(trace):
    _, __, ___, engine = build_env()
    rf = RegisterFile()
    rf.pc = 7
    engine.run_episode(1, rf, trace, 0, budget_ns=10**6, faulting_reg=0)
    assert rf.invalid_count() == 0
    assert rf.pc == 7


@given(st.lists(instructions(), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_speculative_state_fully_wiped(trace):
    _, memory, hierarchy, engine = build_env()
    engine.run_episode(1, RegisterFile(), trace, 0, budget_ns=10**6, faulting_reg=0)
    assert engine.preexec_cache.resident_lines() == 0
    assert len(engine.store_buffer) == 0
    for vpn in [*RESIDENT_VPNS, ABSENT_VPN]:
        pte = memory.mm_of(1).pte_for(vpn)
        assert pte.inv is False


@given(st.lists(instructions(), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_never_dirties_committed_cache_lines(trace):
    _, __, hierarchy, engine = build_env()
    engine.run_episode(1, RegisterFile(), trace, 0, budget_ns=10**6, faulting_reg=0)
    assert all(not line.dirty for _, line in hierarchy.llc.iter_lines())


@given(st.lists(instructions(), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_never_installs_pages(trace):
    _, memory, __, engine = build_env()
    resident_before = {
        vpn: memory.mm_of(1).pte_for(vpn).present
        for vpn in [*RESIDENT_VPNS, ABSENT_VPN]
    }
    engine.run_episode(1, RegisterFile(), trace, 0, budget_ns=10**6, faulting_reg=0)
    for vpn, present in resident_before.items():
        assert memory.mm_of(1).pte_for(vpn).present == present


@given(st.lists(instructions(), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_inv_taint_conservative(trace):
    """Shadow interpreter: anything our INV tracking says is *valid*
    must indeed be untainted under exact dataflow tracking.

    The engine may be conservative (marking clean data INV is safe) but
    never unsound.  We replicate the dataflow rules exactly, tracking
    taint from the faulting register and from absent-page data.
    """
    config, memory, hierarchy, engine = build_env()

    # Exact taint model.
    taint = [False] * NUM_REGISTERS
    taint[0] = True  # faulting register
    mem_taint: dict[tuple[int, int], bool] = {}  # (line) -> tainted

    stats, _ = engine.run_episode(
        1, RegisterFile(), list(trace), 0, budget_ns=10**6, faulting_reg=0
    )

    # Re-run the dataflow by hand and compare against a fresh engine run
    # instrumented through the register file (white-box: rerun and probe
    # after each step is complex, so instead we assert the aggregate:
    # the engine must skip at least as many instructions as carry taint
    # into a consumer).
    tainted_consumers = 0
    for instr in trace:
        if isinstance(instr, Compute):
            is_tainted = any(taint[s] for s in instr.srcs)
            taint[instr.dst] = is_tainted
            if is_tainted:
                tainted_consumers += 1
        elif isinstance(instr, Load):
            vpn = instr.vaddr >> 12
            if vpn == ABSENT_VPN:
                taint[instr.dst] = True
                tainted_consumers += 1
            else:
                key = instr.vaddr // 64
                taint[instr.dst] = mem_taint.get(key, False)
                if taint[instr.dst]:
                    tainted_consumers += 1
        elif isinstance(instr, Store):
            vpn = instr.vaddr >> 12
            if vpn != ABSENT_VPN:
                mem_taint[instr.vaddr // 64] = taint[instr.src]
            # stores to the absent page are inherently invalid
    assert stats.skipped_invalid >= tainted_consumers

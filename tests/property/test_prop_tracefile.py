"""Property-based round-trip tests for the trace file format and the
lackey parser."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import Branch, Compute, Load, Store
from repro.cpu.registers import NUM_REGISTERS
from repro.trace.lackey import parse_lackey
from repro.trace.tracefile import load_trace, save_trace

regs = st.integers(min_value=0, max_value=NUM_REGISTERS - 1)
vaddrs = st.integers(min_value=0, max_value=(1 << 47) - 1)
sizes = st.integers(min_value=1, max_value=64)

instruction = st.one_of(
    st.builds(
        Compute,
        dst=regs,
        srcs=st.lists(regs, max_size=3).map(tuple),
        cycles=st.integers(1, 10),
    ),
    st.builds(
        Load,
        dst=regs,
        vaddr=vaddrs,
        size=sizes,
        addr_reg=st.one_of(st.none(), regs),
    ),
    st.builds(
        Store,
        src=regs,
        vaddr=vaddrs,
        size=sizes,
        addr_reg=st.one_of(st.none(), regs),
    ),
    st.builds(
        Branch, srcs=st.lists(regs, max_size=2).map(tuple), taken=st.booleans()
    ),
)


@given(st.lists(instruction, max_size=100))
@settings(max_examples=100, deadline=None)
def test_tracefile_roundtrip_identity(tmp_path_factory, trace):
    path = tmp_path_factory.mktemp("traces") / "t.txt"
    save_trace(path, trace)
    assert load_trace(path) == trace


lackey_record = st.one_of(
    st.tuples(st.just("I "), vaddrs, sizes),
    st.tuples(st.just(" L "), vaddrs, sizes),
    st.tuples(st.just(" S "), vaddrs, sizes),
    st.tuples(st.just(" M "), vaddrs, sizes),
)


@given(st.lists(lackey_record, min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_lackey_preserves_memory_addresses(records):
    lines = [f"{marker}{addr:x},{size}" for marker, addr, size in records]
    trace = parse_lackey(lines)
    expected_mem = []
    for marker, addr, size in records:
        kind = marker.strip()
        if kind == "L":
            expected_mem.append(("load", addr, size))
        elif kind == "S":
            expected_mem.append(("store", addr, size))
        elif kind == "M":
            expected_mem.append(("load", addr, size))
            expected_mem.append(("store", addr, size))
    actual_mem = [
        (i.kind, i.vaddr, i.size)
        for i in trace
        if isinstance(i, (Load, Store))
    ]
    assert actual_mem == expected_mem


@given(st.lists(lackey_record, min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_lackey_instruction_count(records):
    lines = [f"{marker}{addr:x},{size}" for marker, addr, size in records]
    trace = parse_lackey(lines)
    expected = sum(2 if marker.strip() == "M" else 1 for marker, _, __ in records)
    assert len(trace) == expected


@given(st.lists(instruction, max_size=100))
@settings(max_examples=100, deadline=None)
def test_binary_roundtrip_identity(tmp_path_factory, trace):
    from repro.trace.binfile import load_trace_binary, save_trace_binary

    # The binary format caps compute cycles at 255; clamp the strategy's
    # output accordingly (the text format has no such cap).
    path = tmp_path_factory.mktemp("bintraces") / "t.bin"
    save_trace_binary(path, trace)
    assert load_trace_binary(path) == trace

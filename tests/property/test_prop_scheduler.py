"""Property-based tests for the SCHED_RR scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SchedulerConfig
from repro.cpu.isa import Compute
from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler import RoundRobinScheduler

CONFIG = SchedulerConfig(max_time_slice_ns=800, min_time_slice_ns=5)

priorities = st.integers(min_value=0, max_value=CONFIG.priority_levels - 1)


def make_processes(prios):
    return [
        Process(pid=i, name=f"p{i}", priority=p, trace=[Compute(dst=0)])
        for i, p in enumerate(prios)
    ]


actions = st.lists(
    st.sampled_from(["preempt", "block", "unblock", "unblock_resume", "finish"]),
    max_size=60,
)


@given(st.lists(priorities, min_size=1, max_size=8), actions)
@settings(max_examples=100, deadline=None)
def test_no_process_lost_or_duplicated(prios, action_list):
    """Conservation: every admitted process is always in exactly one of
    {current, ready, blocked, finished}."""
    processes = make_processes(prios)
    sched = RoundRobinScheduler(CONFIG)
    for p in processes:
        sched.add(p)
    blocked: list[Process] = []
    finished = 0

    for action in action_list:
        if sched.current is None:
            if sched.dispatch() is None and not blocked:
                break
        if action == "preempt" and sched.current is not None:
            sched.preempt_current()
        elif action == "block" and sched.current is not None:
            blocked.append(sched.block_current())
        elif action == "unblock" and blocked:
            sched.unblock(blocked.pop(0))
        elif action == "unblock_resume" and blocked:
            sched.unblock(blocked.pop(0), resume=True)
        elif action == "finish" and sched.current is not None:
            sched.finish_current(0)
            finished += 1

        in_system = (
            (1 if sched.current is not None else 0)
            + sched.ready_count()
            + sched.blocked_count()
            + finished
        )
        assert in_system == len(processes)

    # States are consistent with queue membership.
    for p in processes:
        if p.state is ProcessState.BLOCKED:
            assert p.pid in {b.pid for b in blocked}


@given(st.lists(priorities, min_size=1, max_size=8))
def test_dispatch_slice_matches_priority(prios):
    sched = RoundRobinScheduler(CONFIG)
    for p in make_processes(prios):
        sched.add(p)
    while True:
        process = sched.dispatch()
        if process is None:
            break
        assert process.slice_remaining_ns == CONFIG.time_slice_ns(process.priority)
        sched.finish_current(0)


@given(st.lists(priorities, min_size=2, max_size=8))
def test_round_robin_is_fair_cycle(prios):
    """With only preemptions, the dispatch order cycles."""
    processes = make_processes(prios)
    sched = RoundRobinScheduler(CONFIG)
    for p in processes:
        sched.add(p)
    first_cycle = []
    for _ in range(len(processes)):
        first_cycle.append(sched.dispatch().pid)
        sched.preempt_current()
    second_cycle = []
    for _ in range(len(processes)):
        second_cycle.append(sched.dispatch().pid)
        sched.preempt_current()
    assert first_cycle == second_cycle

"""Property-based tests for the SCHED_RR scheduler and its SMP facade."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CoreConfig, SchedulerConfig
from repro.cpu.isa import Compute
from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.smp import SMPScheduler

CONFIG = SchedulerConfig(max_time_slice_ns=800, min_time_slice_ns=5)

priorities = st.integers(min_value=0, max_value=CONFIG.priority_levels - 1)


def make_processes(prios):
    return [
        Process(pid=i, name=f"p{i}", priority=p, trace=[Compute(dst=0)])
        for i, p in enumerate(prios)
    ]


actions = st.lists(
    st.sampled_from(["preempt", "block", "unblock", "unblock_resume", "finish"]),
    max_size=60,
)


@given(st.lists(priorities, min_size=1, max_size=8), actions)
@settings(max_examples=100, deadline=None)
def test_no_process_lost_or_duplicated(prios, action_list):
    """Conservation: every admitted process is always in exactly one of
    {current, ready, blocked, finished}."""
    processes = make_processes(prios)
    sched = RoundRobinScheduler(CONFIG)
    for p in processes:
        sched.add(p)
    blocked: list[Process] = []
    finished = 0

    for action in action_list:
        if sched.current is None:
            if sched.dispatch() is None and not blocked:
                break
        if action == "preempt" and sched.current is not None:
            sched.preempt_current()
        elif action == "block" and sched.current is not None:
            blocked.append(sched.block_current())
        elif action == "unblock" and blocked:
            sched.unblock(blocked.pop(0))
        elif action == "unblock_resume" and blocked:
            sched.unblock(blocked.pop(0), resume=True)
        elif action == "finish" and sched.current is not None:
            sched.finish_current(0)
            finished += 1

        in_system = (
            (1 if sched.current is not None else 0)
            + sched.ready_count()
            + sched.blocked_count()
            + finished
        )
        assert in_system == len(processes)

    # States are consistent with queue membership.
    for p in processes:
        if p.state is ProcessState.BLOCKED:
            assert p.pid in {b.pid for b in blocked}


@given(st.lists(priorities, min_size=1, max_size=8))
def test_dispatch_slice_matches_priority(prios):
    sched = RoundRobinScheduler(CONFIG)
    for p in make_processes(prios):
        sched.add(p)
    while True:
        process = sched.dispatch()
        if process is None:
            break
        assert process.slice_remaining_ns == CONFIG.time_slice_ns(process.priority)
        sched.finish_current(0)


@given(st.lists(priorities, min_size=2, max_size=8))
def test_round_robin_is_fair_cycle(prios):
    """With only preemptions, the dispatch order cycles."""
    processes = make_processes(prios)
    sched = RoundRobinScheduler(CONFIG)
    for p in processes:
        sched.add(p)
    first_cycle = []
    for _ in range(len(processes)):
        first_cycle.append(sched.dispatch().pid)
        sched.preempt_current()
    second_cycle = []
    for _ in range(len(processes)):
        second_cycle.append(sched.dispatch().pid)
        sched.preempt_current()
    assert first_cycle == second_cycle


# -- SMP invariants ----------------------------------------------------------

smp_actions = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "dispatch",
                "preempt",
                "yield",
                "block",
                "unblock",
                "unblock_resume",
                "finish",
                "steal",
            ]
        ),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=60,
)


def smp_membership(sched):
    """Map each pid to the list of (queue, role) slots holding it."""
    seen: dict[int, list[tuple[int, str]]] = {}
    for index, q in enumerate(sched.queues):
        if q.current is not None:
            seen.setdefault(q.current.pid, []).append((index, "current"))
        for p in q._ready:
            seen.setdefault(p.pid, []).append((index, "ready"))
        for pid in q._blocked:
            seen.setdefault(pid, []).append((index, "blocked"))
    return seen


def drive_smp(sched, cores, processes, ops, on_step=None):
    """Replay a random op sequence against the SMP facade."""
    blocked: list[Process] = []
    finished: set[int] = set()
    for action, r in ops:
        sched.active = r % cores
        if action == "dispatch" and sched.current is None:
            sched.dispatch()
        elif action == "preempt" and sched.current is not None:
            sched.preempt_current()
        elif action == "yield" and sched.current is not None:
            sched.yield_current()
        elif action == "block" and sched.current is not None:
            blocked.append(sched.block_current())
        elif action == "unblock" and blocked:
            sched.unblock(blocked.pop(r % len(blocked)))
        elif action == "unblock_resume" and blocked:
            sched.unblock(blocked.pop(r % len(blocked)), resume=True)
        elif action == "finish" and sched.current is not None:
            finished.add(sched.finish_current(0).pid)
        elif action == "steal":
            sched.try_steal(r % cores)
        if on_step is not None:
            on_step(finished)
    return finished


@given(st.lists(priorities, min_size=1, max_size=8), st.integers(2, 4), smp_actions)
@settings(max_examples=100, deadline=None)
def test_smp_every_process_on_exactly_one_core(prios, cores, ops):
    """Across any op interleaving — including steals — every live
    process occupies exactly one slot on exactly one core, and
    ``core_of`` agrees with the queue that actually holds it."""
    processes = make_processes(prios)
    clock = [0]
    sched = SMPScheduler(CONFIG, CoreConfig(count=cores), lambda: clock[0])
    for p in processes:
        sched.add(p)

    def check(finished):
        clock[0] += 1
        seen = smp_membership(sched)
        for p in processes:
            if p.pid in finished:
                assert p.pid not in seen
                assert p.pid not in sched.core_of
            else:
                assert len(seen[p.pid]) == 1
                core, _role = seen[p.pid][0]
                assert sched.core_of[p.pid] == core

    drive_smp(sched, cores, processes, ops, on_step=check)


@given(st.lists(priorities, min_size=2, max_size=8), st.integers(2, 4), smp_actions)
@settings(max_examples=100, deadline=None)
def test_smp_conservation_counts(prios, cores, ops):
    """current + ready + blocked + finished always equals the number of
    admitted processes; stealing moves work, never creates or drops it."""
    processes = make_processes(prios)
    sched = SMPScheduler(CONFIG, CoreConfig(count=cores), lambda: 0)
    for p in processes:
        sched.add(p)

    def check(finished):
        in_system = sum(
            (1 if q.current is not None else 0)
            + q.ready_count()
            + q.blocked_count()
            for q in sched.queues
        ) + len(finished)
        assert in_system == len(processes)

    drive_smp(sched, cores, processes, ops, on_step=check)


@given(st.lists(priorities, min_size=1, max_size=8), st.integers(2, 4), smp_actions)
@settings(max_examples=100, deadline=None)
def test_smp_stats_nonnegative_and_monotone(prios, cores, ops):
    """Aggregate scheduler stats and steal counters only ever grow."""
    processes = make_processes(prios)
    sched = SMPScheduler(CONFIG, CoreConfig(count=cores), lambda: 0)
    for p in processes:
        sched.add(p)
    previous = [None]

    def snapshot():
        stats = sched.stats
        steal = sched.steal_stats
        return (
            stats.dispatches,
            stats.preemptions,
            stats.voluntary_switches,
            stats.blocks,
            stats.unblocks,
            steal.attempts,
            steal.steals,
        )

    def check(finished):
        current = snapshot()
        assert all(value >= 0 for value in current)
        if previous[0] is not None:
            assert all(now >= before for now, before in zip(current, previous[0]))
        assert sched.steal_stats.steals <= sched.steal_stats.attempts
        previous[0] = current

    drive_smp(sched, cores, processes, ops, on_step=check)


@given(st.lists(priorities, min_size=1, max_size=8), smp_actions)
@settings(max_examples=100, deadline=None)
def test_smp_single_core_matches_round_robin(prios, ops):
    """With one core the facade is behaviourally identical to the plain
    round-robin scheduler for any op sequence (steals are no-ops)."""
    smp = SMPScheduler(CONFIG, CoreConfig(count=1), lambda: 0)
    plain = RoundRobinScheduler(CONFIG)
    for p in make_processes(prios):
        smp.add(p)
    for p in make_processes(prios):
        plain.add(p)

    blocked_smp: list[Process] = []
    blocked_plain: list[Process] = []
    for action, r in ops:
        for sched, blocked in ((smp, blocked_smp), (plain, blocked_plain)):
            if action == "dispatch" and sched.current is None:
                sched.dispatch()
            elif action == "preempt" and sched.current is not None:
                sched.preempt_current()
            elif action == "block" and sched.current is not None:
                blocked.append(sched.block_current())
            elif action == "unblock" and blocked:
                sched.unblock(blocked.pop(r % len(blocked)))
            elif action == "finish" and sched.current is not None:
                sched.finish_current(0)
            elif action == "steal" and isinstance(sched, SMPScheduler):
                assert sched.try_steal(0) is None
        assert (smp.current is None) == (plain.current is None)
        if smp.current is not None:
            assert smp.current.pid == plain.current.pid
        assert smp.ready_count() == plain.ready_count()
        assert smp.blocked_count() == plain.blocked_count()

"""Property-based tests for the VM substrate: frames + swap + manager."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.frames import FrameAllocator
from repro.vm.mm import FaultKind, MemoryManager
from repro.vm.replacement import GlobalLRUPolicy
from repro.vm.swap import SwapArea

N_FRAMES = 8
N_PAGES = 24

vpn_strategy = st.integers(min_value=0, max_value=N_PAGES - 1)
ops = st.lists(
    st.tuples(st.sampled_from(["touch", "install", "prefetch"]), vpn_strategy),
    min_size=1,
    max_size=120,
)


def build_memory():
    memory = MemoryManager(
        FrameAllocator(N_FRAMES, 4096), SwapArea(N_PAGES * 2), GlobalLRUPolicy()
    )
    memory.register_process(1, range(N_PAGES))
    return memory


def apply_ops(memory, op_list):
    for op, vpn in op_list:
        if op == "touch":
            result = memory.classify_touch(1, vpn)
            if result.kind is FaultKind.MAJOR:
                memory.install_page(1, vpn)
        elif op == "install":
            if not memory.is_resident_or_cached(1, vpn):
                memory.install_page(1, vpn)
        else:  # prefetch
            if not memory.is_resident_or_cached(1, vpn):
                memory.install_page(1, vpn, prefetched=True)


@given(ops)
@settings(max_examples=100, deadline=None)
def test_frames_never_overcommitted(op_list):
    memory = build_memory()
    apply_ops(memory, op_list)
    assert memory.frames.used_frames <= N_FRAMES


@given(ops)
@settings(max_examples=100, deadline=None)
def test_frame_mappings_bijective(op_list):
    """Every used frame maps exactly one page, and every present or
    swap-cached PTE points at a distinct used frame."""
    memory = build_memory()
    apply_ops(memory, op_list)
    seen_frames = set()
    for vpn in range(N_PAGES):
        pte = memory.mm_of(1).pte_for(vpn)
        if pte.present or memory.swap_cache.contains(1, vpn):
            assert pte.frame is not None
            assert pte.frame not in seen_frames
            seen_frames.add(pte.frame)
            info = memory.frames.owner_of(pte.frame)
            assert info is not None and info.vpn == vpn
        elif not pte.present:
            assert pte.swap_slot is not None  # always backed by swap
    assert len(seen_frames) == memory.frames.used_frames


@given(ops)
@settings(max_examples=100, deadline=None)
def test_touch_after_ops_never_crashes_and_is_classified(op_list):
    memory = build_memory()
    apply_ops(memory, op_list)
    for vpn in range(N_PAGES):
        kind = memory.classify_touch(1, vpn).kind
        assert kind in (FaultKind.HIT, FaultKind.MINOR, FaultKind.MAJOR)
        if kind is FaultKind.MAJOR:
            memory.install_page(1, vpn)


@given(ops)
@settings(max_examples=50, deadline=None)
def test_replacement_tracks_exactly_residents(op_list):
    memory = build_memory()
    apply_ops(memory, op_list)
    resident = sum(
        1
        for vpn in range(N_PAGES)
        if memory.mm_of(1).pte_for(vpn).present
        or memory.swap_cache.contains(1, vpn)
    )
    assert len(memory.replacement) == resident

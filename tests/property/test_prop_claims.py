"""Property-based tests for the claim protocol: exactly one owner per
cell under any interleaving of acquire/release/heartbeat/expiry, and no
cell is ever lost (every key is always eventually claimable)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.claims import ClaimStore

N_WORKERS = 3
N_KEYS = 3
LEASE_S = 10.0

KEYS = [f"{i:x}" * 64 for i in range(N_KEYS)]

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("acquire"),
            st.integers(0, N_WORKERS - 1),
            st.integers(0, N_KEYS - 1),
        ),
        st.tuples(
            st.just("release"),
            st.integers(0, N_WORKERS - 1),
            st.integers(0, N_KEYS - 1),
        ),
        st.tuples(
            st.just("heartbeat"),
            st.integers(0, N_WORKERS - 1),
            st.integers(0, N_KEYS - 1),
        ),
        st.tuples(
            st.just("advance"),
            st.integers(1, 8),  # seconds
            st.just(0),
        ),
    ),
    min_size=1,
    max_size=60,
)


class Clock:
    """Deterministic shared clock for every store in one scenario."""

    def __init__(self):
        self.now = 1_000_000.0

    def __call__(self):
        return self.now


def make_world(tmp_path_factory):
    root = tmp_path_factory.mktemp("claims")
    clock = Clock()
    stores = [
        ClaimStore(root, worker_id=f"w{i}", lease_s=LEASE_S, clock=clock)
        for i in range(N_WORKERS)
    ]
    return clock, stores


@settings(deadline=None, max_examples=60)
@given(ops)
def test_exactly_one_owner_per_key(tmp_path_factory, sequence):
    """No two workers ever hold a live claim on the same key: a second
    acquire only succeeds after a release or a full lease expiry."""
    clock, stores = make_world(tmp_path_factory)
    # model: key -> (worker index, acquire time) for the live owner
    owner = {}

    def live(key):
        entry = owner.get(key)
        if entry is None:
            return None
        _, hearbeat_at = entry
        if clock() - hearbeat_at > LEASE_S:
            return None  # lease expired: claim is up for grabs
        return entry

    for op, a, b in sequence:
        if op == "advance":
            clock.now += a
        elif op == "acquire":
            key = KEYS[b]
            got = stores[a].acquire(key)
            entry = live(key)
            if entry is not None and entry[0] != a:
                assert got is False, "stole a live claim"
            if got:
                owner[key] = (a, clock())
        elif op == "heartbeat":
            key = KEYS[b]
            entry = live(key)
            stores[a].heartbeat(key)
            if entry is not None and entry[0] == a:
                owner[key] = (a, clock())
        elif op == "release":
            key = KEYS[b]
            stores[a].release(key)
            entry = owner.get(key)
            if entry is not None and entry[0] == a:
                owner.pop(key)


@settings(deadline=None, max_examples=60)
@given(ops)
def test_no_cell_is_ever_lost(tmp_path_factory, sequence):
    """Whatever happened, once every lease has expired a fresh worker
    can claim every key — no interleaving leaves a cell stuck."""
    clock, stores = make_world(tmp_path_factory)
    for op, a, b in sequence:
        if op == "advance":
            clock.now += a
        elif op == "acquire":
            stores[a].acquire(KEYS[b])
        elif op == "heartbeat":
            stores[a].heartbeat(KEYS[b])
        elif op == "release":
            stores[a].release(KEYS[b])
    clock.now += LEASE_S + 1.0
    fresh = ClaimStore(
        stores[0].root, worker_id="fresh", lease_s=LEASE_S, clock=clock
    )
    for key in KEYS:
        assert fresh.acquire(key) is True, f"cell {key[:8]} lost"
        fresh.release(key)


@settings(deadline=None, max_examples=60)
@given(ops)
def test_claim_files_match_model_owner(tmp_path_factory, sequence):
    """The claim file on disk always names the worker the model says
    holds the live claim."""
    import json

    clock, stores = make_world(tmp_path_factory)
    owner = {}
    for op, a, b in sequence:
        if op == "advance":
            clock.now += a
            continue
        key = KEYS[b]
        if op == "acquire":
            if stores[a].acquire(key):
                owner[key] = a
        elif op == "heartbeat":
            stores[a].heartbeat(key)
        elif op == "release":
            stores[a].release(key)
            if owner.get(key) == a:
                owner.pop(key)
        entry = owner.get(key)
        if entry is not None:
            path = stores[entry].path_for(key)
            data = json.loads(path.read_text(encoding="utf-8"))
            assert data["worker"] == f"w{entry}"

"""Property-based tests for the pre-execute engine's budget arithmetic
and monotonicity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import (
    CacheConfig,
    ITSConfig,
    MachineConfig,
    MemoryConfig,
    TLBConfig,
)
from repro.common.units import KIB
from repro.cpu.isa import Compute, Load, Store
from repro.cpu.registers import NUM_REGISTERS, RegisterFile
from repro.cpu.runahead import PreExecuteEngine
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.preexec_cache import PreExecuteCache
from repro.vm.frames import FrameAllocator
from repro.vm.mm import MemoryManager
from repro.vm.replacement import GlobalLRUPolicy
from repro.vm.swap import SwapArea

BASE_VPN = 0x200


def build_engine(per_instr=2, cap=1024):
    config = MachineConfig(
        llc=CacheConfig(size_bytes=16 * KIB, ways=4),
        tlb=TLBConfig(entries=8),
        memory=MemoryConfig(dram_frames=16),
        its=ITSConfig(preexec_instr_ns=per_instr, preexec_max_instructions=cap),
    )
    memory = MemoryManager(FrameAllocator(16, 4096), SwapArea(64), GlobalLRUPolicy())
    memory.register_process(1, range(BASE_VPN, BASE_VPN + 8))
    for vpn in range(BASE_VPN, BASE_VPN + 4):
        memory.install_page(1, vpn)
    hierarchy = MemoryHierarchy(config.llc.halved(), config.memory)
    return PreExecuteEngine(
        config, hierarchy, memory, PreExecuteCache(config.llc.halved())
    )


regs = st.integers(0, NUM_REGISTERS - 1)


@st.composite
def traces(draw):
    n = draw(st.integers(1, 80))
    out = []
    for i in range(n):
        kind = draw(st.sampled_from(["c", "l", "s"]))
        vpn = BASE_VPN + draw(st.integers(0, 7))
        vaddr = (vpn << 12) + draw(st.integers(0, 63)) * 64
        if kind == "c":
            out.append(Compute(dst=i % NUM_REGISTERS, srcs=(draw(regs),)))
        elif kind == "l":
            out.append(Load(dst=i % NUM_REGISTERS, vaddr=vaddr))
        else:
            out.append(Store(src=draw(regs), vaddr=vaddr))
    return out


@given(traces(), st.integers(0, 500))
@settings(max_examples=80, deadline=None)
def test_instructions_bounded_by_budget_and_cap(trace, budget):
    engine = build_engine(per_instr=2, cap=30)
    stats, _ = engine.run_episode(1, RegisterFile(), trace, 0, budget, faulting_reg=0)
    assert stats.instructions <= min(len(trace), 30, budget // 2)
    # And the bound is tight: the minimum of the three constraints is met.
    assert stats.instructions == min(len(trace), 30, budget // 2)


@given(traces(), st.integers(1, 400))
@settings(max_examples=60, deadline=None)
def test_more_budget_never_fewer_instructions(trace, budget):
    small_stats, _ = build_engine().run_episode(
        1, RegisterFile(), trace, 0, budget, faulting_reg=0
    )
    big_stats, _ = build_engine().run_episode(
        1, RegisterFile(), trace, 0, budget * 2, faulting_reg=0
    )
    assert big_stats.instructions >= small_stats.instructions


@given(traces())
@settings(max_examples=60, deadline=None)
def test_discovered_pages_are_genuinely_absent(trace):
    engine = build_engine()
    __, discovered = engine.run_episode(
        1, RegisterFile(), trace, 0, 10**6, faulting_reg=0
    )
    for vpn in discovered:
        pte = engine.memory.mm_of(1).pte_for(vpn)
        assert pte is not None and not pte.present


@given(traces(), st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_start_index_respected(trace, start):
    engine = build_engine()
    stats, _ = engine.run_episode(
        1, RegisterFile(), trace, start, 10**6, faulting_reg=0
    )
    assert stats.instructions <= max(0, len(trace) - start)
